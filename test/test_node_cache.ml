(* Decoded-node cache (frame-attached) tests.

   The cache stores each frame's last decoded [Node.t] stamped with the
   page LSN it reflects; [Node.get] serves hits, write_node writes
   through. These tests pin the three properties the design rests on:
   coherence (the cached node always fingerprints equal to a fresh decode
   of the image), invalidation at restart (recovery redo mutates raw
   images, so no pre-restart decode may survive [Recovery.restart]), and
   effectiveness (repeat traversals hit; the [node_cache=false] knob
   really disables it). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Page_id = Gist_storage.Page_id
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch
module Txn = Gist_txn.Txn_manager
module Metrics = Gist_obs.Metrics
module Dyn = Gist_util.Dyn

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let keys_of t db =
  let txn = Txn.begin_txn db.Db.txns in
  let r =
    Gist.search t txn (B.range min_int max_int)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db.Db.txns txn;
  r

let counter name = Metrics.counter_value (Metrics.snapshot ()) name

(* Walk every reachable page; fail if any frame's cached node disagrees
   with a fresh decode of its image. *)
let check_coherent db t =
  let rec go pid =
    let children =
      Buffer_pool.with_page db.Db.pool pid Latch.S (fun frame ->
          match Node.read B.ext frame with
          | exception Gist_util.Codec.Corrupt _ -> [] (* retired page *)
          | node ->
            if not (Node.cache_coherent B.ext frame) then
              Alcotest.failf "stale cached node on page %d" (Page_id.to_int pid);
            (match node.Node.entries with
            | Node.Leaf _ -> []
            | Node.Internal d -> Dyn.fold (fun l e -> e.Node.ie_child :: l) [] d))
    in
    List.iter go children
  in
  go (Gist.root t)

(* --- qcheck: coherence after arbitrary inserts/deletes/splits/GC --- *)

type op = Insert of int | Delete of int | Vacuum

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 20 160)
      (frequency
         [
           (6, map (fun k -> Insert k) (int_range 0 200));
           (3, map (fun k -> Delete k) (int_range 0 200));
           (1, return Vacuum);
         ]))

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert k -> Printf.sprintf "i%d" k
             | Delete k -> Printf.sprintf "d%d" k
             | Vacuum -> "v")
           ops))
    gen_ops

let prop_coherent_after_ops =
  QCheck.Test.make ~name:"node cache coherent after random ops" ~count:60 arb_ops (fun ops ->
      let db, t = make () in
      let next_rid = ref 0 in
      let live = Hashtbl.create 64 in
      List.iter
        (fun op ->
          let txn = Txn.begin_txn db.Db.txns in
          (match op with
          | Insert k ->
            incr next_rid;
            Gist.insert t txn ~key:(B.key k) ~rid:(rid !next_rid);
            Hashtbl.replace live k !next_rid
          | Delete k -> (
            match Hashtbl.find_opt live k with
            | Some r ->
              ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid r));
              Hashtbl.remove live k
            | None -> ())
          | Vacuum -> Gist.vacuum t);
          Txn.commit db.Db.txns txn)
        ops;
      check_coherent db t;
      true)

(* --- restart drops the cache (the stale-decode bug this would catch) --- *)

let test_restart_invalidates () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 60 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Db.checkpoint db;
  (* Warm the cache, then poison a cached leaf in memory WITHOUT writing
     the image — exactly the divergence a restart's raw-image redo can
     cause. If restart served surviving caches, the phantom key would be
     visible afterwards. *)
  ignore (keys_of t db);
  let poisoned = ref 0 in
  let rec poison pid =
    Buffer_pool.with_page db.Db.pool pid Latch.X (fun frame ->
        let node = Node.get B.ext frame in
        match node.Node.entries with
        | Node.Leaf _ ->
          Node.add_leaf_entry node
            {
              Node.le_key = B.key 99_999;
              le_rid = rid 99_999;
              le_creator = Gist_util.Txn_id.none;
              le_deleter = Gist_util.Txn_id.none;
            };
          incr poisoned;
          []
        | Node.Internal d -> Dyn.fold (fun l e -> e.Node.ie_child :: l) [] d)
    |> List.iter poison
  in
  poison (Gist.root t);
  Alcotest.(check bool) "poisoned at least one cached leaf" true (!poisoned > 0);
  let inval_before = counter "bp.node_cache.invalidate" in
  (* Restart the live (warm-pool) db: recovery must drop every cached
     decode before replaying. *)
  Recovery.restart db B.ext;
  let t' = Gist.open_existing db B.ext ~root:(Gist.root t) () in
  Alcotest.(check bool) "restart invalidated cached nodes" true
    (counter "bp.node_cache.invalidate" > inval_before);
  Alcotest.(check (list int)) "no phantom key after restart"
    (List.init 60 (fun i -> i + 1))
    (keys_of t' db);
  check_coherent db t'

(* --- hit rate and the off knob --- *)

let test_hit_rate () =
  (* Pool must hold the whole tree: the cache lives with the frame, so a
     shard-LRU eviction is a legitimate (counted) invalidation, not a
     hit-rate bug. *)
  let db = Db.create ~config:{ config with Db.pool_capacity = 512 } () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 300 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  ignore (keys_of t db);
  (* Warm: every page decoded once. Re-scan many times; pool (64 frames)
     holds the whole tree, so repeats must be nearly all hits. *)
  let h0 = counter "bp.node_cache.hit" and m0 = counter "bp.node_cache.miss" in
  for _ = 1 to 20 do
    ignore (keys_of t db)
  done;
  let hits = counter "bp.node_cache.hit" - h0
  and misses = counter "bp.node_cache.miss" - m0 in
  Alcotest.(check bool) "repeat scans hit the cache" true (hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hit rate > 90%% (hits=%d misses=%d)" hits misses)
    true
    (float_of_int hits /. float_of_int (hits + misses) > 0.9)

let test_cache_off () =
  let db = Db.create ~config:{ config with Db.node_cache = false } () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let h0 = counter "bp.node_cache.hit" in
  for _ = 1 to 5 do
    ignore (keys_of t db)
  done;
  Alcotest.(check int) "node_cache=false never hits" h0 (counter "bp.node_cache.hit");
  Alcotest.(check (list int)) "results unchanged" (List.init 100 (fun i -> i + 1)) (keys_of t db)

(* --- eviction recycles the cache with the frame --- *)

let test_eviction_invalidates () =
  (* Tiny pool: scanning a tree bigger than the pool forces recycling;
     coherence must survive frames being rebound to other pages. *)
  let small = { config with Db.pool_capacity = 16 } in
  let db = Db.create ~config:small () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 400 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  for _ = 1 to 3 do
    Alcotest.(check int) "scan sees all keys" 400 (List.length (keys_of t db))
  done;
  check_coherent db t

let suite =
  [
    Alcotest.test_case "restart invalidates cached nodes" `Quick test_restart_invalidates;
    Alcotest.test_case "repeat traversals hit (>90%)" `Quick test_hit_rate;
    Alcotest.test_case "node_cache=false disables the cache" `Quick test_cache_off;
    Alcotest.test_case "eviction recycles cache with frame" `Quick test_eviction_invalidates;
    QCheck_alcotest.to_alcotest prop_coherent_after_ops;
  ]
