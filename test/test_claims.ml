(* Direct tests of the paper's headline claims and the configuration
   ablation matrix (§10.1 variants, GC toggles) — every protocol
   configuration must preserve every invariant. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager
module Buffer_pool = Gist_storage.Buffer_pool

let rid i = Rid.make ~page:1000 ~slot:i

(* --- C1, directly: the protocol never does I/O while holding a latch --- *)

let test_no_latch_across_io_protocol () =
  (* Tiny pool so every operation faults pages in and evicts. *)
  let config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 16; page_size = 1024 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 2_000 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Buffer_pool.reset_stats db.Db.pool;
  for round = 1 to 20 do
    let txn = Txn.begin_txn db.Db.txns in
    ignore (Gist.search t txn (B.range (round * 50) ((round * 50) + 100)));
    Gist.insert t txn ~key:(B.key (10_000 + round)) ~rid:(rid (10_000 + round));
    ignore (Gist.delete t txn ~key:(B.key round) ~rid:(rid round));
    Txn.commit db.Db.txns txn
  done;
  Gist.vacuum t;
  Alcotest.(check bool) "pool thrashed (evictions happened)" true
    (Buffer_pool.evictions db.Db.pool > 0);
  Alcotest.(check int) "zero I/Os under a held latch" 0
    (Buffer_pool.io_while_latched db.Db.pool)

let test_no_latch_across_io_bg_writer () =
  (* Same thrash, background writer on: C1 must still hold, and on top of
     it the writer domain must absorb every eviction write-back — the
     foreground never flushes a dirty victim. *)
  let config =
    {
      Db.default_config with
      Db.max_entries = 8;
      pool_capacity = 16;
      page_size = 1024;
      bg_writer = true;
    }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 2_000 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  for round = 1 to 20 do
    let txn = Txn.begin_txn db.Db.txns in
    ignore (Gist.search t txn (B.range (round * 50) ((round * 50) + 100)));
    Gist.insert t txn ~key:(B.key (10_000 + round)) ~rid:(rid (10_000 + round));
    ignore (Gist.delete t txn ~key:(B.key round) ~rid:(rid round));
    Txn.commit db.Db.txns txn
  done;
  Gist.vacuum t;
  Alcotest.(check bool) "pool thrashed (evictions happened)" true
    (Buffer_pool.evictions db.Db.pool > 0);
  Alcotest.(check int) "zero I/Os under a held latch" 0
    (Buffer_pool.io_while_latched db.Db.pool);
  Alcotest.(check int) "zero foreground write-backs" 0
    (Buffer_pool.fg_writebacks db.Db.pool);
  Db.close db

let test_coarse_baseline_does_io_latched () =
  (* The same workload through the coarse wrapper holds its tree-global
     latch across every fault — which is exactly what the counter should
     expose. *)
  let config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 16; page_size = 1024 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let c = Gist_baseline.Coarse_lock.wrap t in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 2_000 do
    Gist_baseline.Coarse_lock.insert c txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Buffer_pool.reset_stats db.Db.pool;
  let txn = Txn.begin_txn db.Db.txns in
  ignore (Gist_baseline.Coarse_lock.search c txn (B.range 1 2_000));
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "coarse locking faults under its latch" true
    (Buffer_pool.io_while_latched db.Db.pool > 0)

(* --- configuration ablation matrix --- *)

let run_workload config =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let live = Hashtbl.create 256 in
  let rng = Gist_util.Xoshiro.create 21 in
  for _ = 1 to 15 do
    let txn = Txn.begin_txn db.Db.txns in
    for _ = 1 to 60 do
      let k = Gist_util.Xoshiro.int rng 800 in
      if Gist_util.Xoshiro.bool rng then begin
        if not (Hashtbl.mem live k) then begin
          Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
          Hashtbl.replace live k ()
        end
      end
      else if Hashtbl.mem live k then begin
        ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k));
        Hashtbl.remove live k
      end
    done;
    Txn.commit db.Db.txns txn
  done;
  Gist.vacuum t;
  (* Crash + restart on top, so the matrix also covers recovery. *)
  Gist_wal.Log_manager.force_all db.Db.log;
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  let txn = Txn.begin_txn db'.Db.txns in
  let got =
    Gist.search t' txn (B.range 0 1000)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db'.Db.txns txn;
  let expected = Hashtbl.fold (fun k () acc -> k :: acc) live [] |> List.sort compare in
  (got = expected, Tree_check.ok (Tree_check.check t'))

let test_config_matrix () =
  let base = { Db.default_config with Db.max_entries = 8; pool_capacity = 48; page_size = 1024 } in
  List.iter
    (fun (label, config) ->
      let data_ok, tree_ok = run_workload config in
      Alcotest.(check bool) (label ^ ": data intact") true data_ok;
      Alcotest.(check bool) (label ^ ": tree consistent") true tree_ok)
    [
      ("lsn+parent-memo (default)", base);
      ("lsn+global-memo", { base with Db.memo_source = Db.Memo_global });
      ( "dedicated-counter",
        { base with Db.nsn_source = Db.Nsn_from_counter; memo_source = Db.Memo_global } );
      ("gc-on-write off", { base with Db.gc_on_write = false });
      ("tiny pool", { base with Db.pool_capacity = 16 });
      ("big fanout", { base with Db.max_entries = 64; page_size = 4096 });
      ("minimal fanout", { base with Db.max_entries = 4 });
    ]

(* --- C1's other half: the protocol's latch usage is deadlock-free by
   construction; hammer mixed ops and require global progress. --- *)

let test_latch_progress_under_contention () =
  let config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 256; page_size = 1024 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let setup = Txn.begin_txn db.Db.txns in
  for i = 0 to 499 do
    Gist.insert t setup ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns setup;
  let completed = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Gist_util.Xoshiro.create (900 + d) in
            for i = 1 to 300 do
              let txn = Txn.begin_txn db.Db.txns in
              (try
                 (match Gist_util.Xoshiro.int rng 3 with
                 | 0 ->
                   let k = 10_000 + (d * 1000) + i in
                   Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
                 | 1 -> ignore (Gist.search t txn (B.range (d * 100) ((d * 100) + 50)))
                 | _ ->
                   ignore
                     (Gist.delete t txn
                        ~key:(B.key (Gist_util.Xoshiro.int rng 500))
                        ~rid:(rid (Gist_util.Xoshiro.int rng 500))));
                 Txn.commit db.Db.txns txn
               with Lock_manager.Deadlock _ -> Txn.abort db.Db.txns txn);
              Atomic.incr completed
            done))
  in
  List.iter Domain.join domains;
  (* Every operation terminated (no latch deadlock / livelock hang). *)
  Alcotest.(check int) "all 1200 operations completed" 1200 (Atomic.get completed);
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent" true (Tree_check.ok report)

let suite =
  [
    Alcotest.test_case "C1: no I/O under latches (protocol)" `Quick
      test_no_latch_across_io_protocol;
    Alcotest.test_case "C1 + bg writer: clean foreground eviction" `Quick
      test_no_latch_across_io_bg_writer;
    Alcotest.test_case "C1: coarse baseline faults under latch" `Quick
      test_coarse_baseline_does_io_latched;
    Alcotest.test_case "config ablation matrix" `Quick test_config_matrix;
    Alcotest.test_case "latch progress under contention" `Quick
      test_latch_progress_under_contention;
  ]
