(* Multicore-scaling pass: the de-serialized hot paths must behave
   exactly like their old global-mutex versions. Three angles:

   - a qcheck equivalence property driving the sharded predicate manager
     and a single-mutex reference model through the same random history
     and comparing every observable after every step;
   - concurrency tests for the lock-free WAL (atomic slot reservation,
     lock-free [durable_lsn]/[iter_from] racing appends and forces);
   - a fixed 4-domain smoke (independent of DUNE_JOBS) asserting that a
     real mixed workload through the link protocol keeps
     latches_held_across_io at zero, and that the crash-fuzz oracle
     sweep still passes over the rewritten WAL. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Page_id = Gist_storage.Page_id
module Txn_id = Gist_util.Txn_id
module Txn = Gist_txn.Txn_manager
module Buffer_pool = Gist_storage.Buffer_pool
module Log_manager = Gist_wal.Log_manager
module Log_record = Gist_wal.Log_record
module Pm = Gist_pred.Predicate_manager
module Crash_fuzz = Gist_fault.Crash_fuzz

(* --- predicate manager vs a global-mutex reference model ------------- *)

(* The reference: the §10.3 maps kept naively under one mutex —
   predicates by id, plus an explicit per-node FIFO attachment list
   (replication walks the source node's list in order, matching the
   manager's FIFO contract for [attached]). Formulas are ints so
   equality is structural. *)
module Ref_model = struct
  type pred = { owner : int; formula : int }

  type t = {
    m : Mutex.t;
    preds : (int, pred) Hashtbl.t;
    by_node : (int, int list ref) Hashtbl.t;  (* node -> pred ids, FIFO *)
    mutable next : int;
  }

  let create () =
    { m = Mutex.create (); preds = Hashtbl.create 16; by_node = Hashtbl.create 8; next = 0 }

  let locked t f =
    Mutex.lock t.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

  let node_list t node =
    match Hashtbl.find_opt t.by_node node with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.by_node node l;
      l

  let register t ~owner formula =
    locked t (fun () ->
        let id = t.next in
        t.next <- t.next + 1;
        Hashtbl.replace t.preds id { owner; formula };
        id)

  let attach t id node =
    locked t (fun () ->
        if Hashtbl.mem t.preds id then begin
          let l = node_list t node in
          if not (List.mem id !l) then l := !l @ [ id ]
        end)

  let forget t id =
    Hashtbl.remove t.preds id;
    Hashtbl.iter (fun _ l -> l := List.filter (fun i -> i <> id) !l) t.by_node

  let remove_pred t id = locked t (fun () -> forget t id)

  let remove_txn t owner =
    locked t (fun () ->
        let doomed =
          Hashtbl.fold (fun id p acc -> if p.owner = owner then id :: acc else acc) t.preds []
        in
        List.iter (forget t) doomed)

  let replicate t ~src ~dst ~keep =
    locked t (fun () ->
        let srcs = match Hashtbl.find_opt t.by_node src with Some l -> !l | None -> [] in
        let dstl = node_list t dst in
        List.iter
          (fun id ->
            match Hashtbl.find_opt t.preds id with
            | Some p when keep p.formula && not (List.mem id !dstl) -> dstl := !dstl @ [ id ]
            | _ -> ())
          srcs)

  (* Observables. *)
  let attached t node =
    locked t (fun () ->
        match Hashtbl.find_opt t.by_node node with
        | None -> []
        | Some l -> List.map (fun id -> (Hashtbl.find t.preds id).formula) !l)

  let predicates_of t owner =
    locked t (fun () ->
        Hashtbl.fold (fun _ p acc -> if p.owner = owner then p.formula :: acc else acc) t.preds [])

  let total_predicates t = locked t (fun () -> Hashtbl.length t.preds)

  let total_attachments t =
    locked t (fun () -> Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.by_node 0)
end

(* A history step. Owners, nodes, and predicate handles are drawn from
   small ranges so removals and replications actually collide. *)
type step =
  | Register of int * int  (* owner, formula *)
  | Attach of int * int  (* pred index (mod live), node *)
  | Remove_pred of int
  | Remove_txn of int
  | Replicate of int * int * int  (* src, dst, keep-threshold *)

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun o f -> Register (o, f)) (int_range 1 4) (int_range 0 99));
        (5, map2 (fun p n -> Attach (p, n)) (int_range 0 40) (int_range 0 7));
        (2, map (fun p -> Remove_pred p) (int_range 0 40));
        (1, map (fun o -> Remove_txn o) (int_range 1 4));
        (2, map3 (fun s d k -> Replicate (s, d, k)) (int_range 0 7) (int_range 0 7)
             (int_range 0 99));
      ])

let pp_step = function
  | Register (o, f) -> Printf.sprintf "Register(t%d, %d)" o f
  | Attach (p, n) -> Printf.sprintf "Attach(#%d, n%d)" p n
  | Remove_pred p -> Printf.sprintf "Remove_pred(#%d)" p
  | Remove_txn o -> Printf.sprintf "Remove_txn(t%d)" o
  | Replicate (s, d, k) -> Printf.sprintf "Replicate(n%d -> n%d, <%d)" s d k

let arb_history =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_step l))
    QCheck.Gen.(list_size (int_range 1 60) gen_step)

(* Both sides observed after every step; the sharded manager must be
   indistinguishable from the single-mutex model. *)
let prop_pred_equiv =
  QCheck.Test.make ~name:"sharded predicate manager == global-mutex model" ~count:300
    arb_history (fun history ->
      let pm = Pm.create () in
      let rm = Ref_model.create () in
      (* Parallel registries of live handles, same indexing. *)
      let real = ref [] and model = ref [] in
      let live () = List.length !real in
      let nth i = (List.nth !real i, List.nth !model i) in
      List.iter
        (fun step ->
          (match step with
          | Register (o, f) ->
            let p = Pm.register pm ~owner:(Txn_id.of_int o) ~kind:Pm.Scan f in
            let id = Ref_model.register rm ~owner:o f in
            real := !real @ [ p ];
            model := !model @ [ id ]
          | Attach (i, n) ->
            if live () > 0 then begin
              let p, id = nth (i mod live ()) in
              Pm.attach pm p (Page_id.of_int n);
              Ref_model.attach rm id n
            end
          | Remove_pred i ->
            if live () > 0 then begin
              let p, id = nth (i mod live ()) in
              Pm.remove_pred pm p;
              Ref_model.remove_pred rm id
            end
          | Remove_txn o ->
            Pm.remove_txn pm (Txn_id.of_int o);
            Ref_model.remove_txn rm o
          | Replicate (s, d, k) ->
            Pm.replicate pm ~src:(Page_id.of_int s) ~dst:(Page_id.of_int d)
              ~keep:(fun p -> Pm.formula p < k);
            Ref_model.replicate rm ~src:s ~dst:d ~keep:(fun f -> f < k));
          (* Compare every observable, FIFO order included. *)
          for n = 0 to 7 do
            let got = List.map Pm.formula (Pm.attached pm (Page_id.of_int n)) in
            let want = Ref_model.attached rm n in
            if got <> want then
              QCheck.Test.fail_reportf "attached(n%d): real [%s] model [%s] after %s" n
                (String.concat ";" (List.map string_of_int got))
                (String.concat ";" (List.map string_of_int want))
                (pp_step step)
          done;
          for o = 1 to 4 do
            let got = List.sort compare (List.map Pm.formula (Pm.predicates_of pm (Txn_id.of_int o))) in
            let want = List.sort compare (Ref_model.predicates_of rm o) in
            if got <> want then QCheck.Test.fail_reportf "predicates_of(t%d) diverged" o
          done;
          if Pm.total_predicates pm <> Ref_model.total_predicates rm then
            QCheck.Test.fail_reportf "total_predicates diverged";
          if Pm.total_attachments pm <> Ref_model.total_attachments rm then
            QCheck.Test.fail_reportf "total_attachments diverged")
        history;
      true)

(* --- lock-free WAL under concurrency --------------------------------- *)

(* Hammer the reservation path from several domains, then check the log
   is a dense, per-domain-ordered sequence with nothing lost. *)
let test_wal_concurrent_appends () =
  let log = Log_manager.create () in
  let n_domains = 4 and per = 500 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let lsns = Array.make per 0L in
            for i = 0 to per - 1 do
              lsns.(i) <-
                Log_manager.append log ~txn:(Txn_id.of_int (d + 1)) ~prev:0L
                  ~ext:(Printf.sprintf "d%d.%d" d i)
                  (Log_record.Checkpoint_end
                     { dirty_pages = []; active_txns = []; allocator = "" });
              if i mod 100 = 0 then Log_manager.force log lsns.(i)
            done;
            lsns))
  in
  let per_domain = List.map Domain.join domains in
  let total = n_domains * per in
  Alcotest.(check int64) "every reservation published" (Int64.of_int total)
    (Log_manager.last_lsn log);
  (* Each domain saw strictly increasing LSNs. *)
  List.iter
    (fun lsns ->
      for i = 1 to per - 1 do
        if Int64.compare lsns.(i - 1) lsns.(i) >= 0 then
          Alcotest.failf "per-domain LSNs not increasing: %Ld then %Ld" lsns.(i - 1) lsns.(i)
      done)
    per_domain;
  (* Dense: every LSN in [1, total] readable, each domain's payloads intact. *)
  let seen = Hashtbl.create total in
  Log_manager.iter_from log 1L (fun r ->
      Alcotest.(check bool) "no duplicate LSN" false (Hashtbl.mem seen r.Log_record.lsn);
      Hashtbl.replace seen r.Log_record.lsn ());
  Alcotest.(check int) "iter_from sees a dense log" total (Hashtbl.length seen);
  Log_manager.force_all log;
  Alcotest.(check int64) "force_all reaches the tip" (Int64.of_int total)
    (Log_manager.durable_lsn log)

(* A reader polls durable_lsn (no lock on that path now) while a writer
   appends and forces: the reader must observe a monotone value that
   never overtakes what the writer has forced. *)
let test_wal_durable_monotone_under_race () =
  let log = Log_manager.create () in
  let stop = Atomic.make false in
  let forced = Atomic.make 0L in
  let violations = ref 0 in
  let reader =
    Domain.spawn (fun () ->
        let last = ref 0L in
        while not (Atomic.get stop) do
          let d = Log_manager.durable_lsn log in
          if Int64.compare d !last < 0 then incr violations;
          if Int64.compare d (Atomic.get forced) > 0 then
            (* durable may lag the snapshot of [forced] but never lead the
               writer's true progress; re-read to confirm a real lead. *)
            if Int64.compare d (Atomic.get forced) > 0 then incr violations;
          last := d
        done)
  in
  for i = 1 to 2_000 do
    let lsn = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin in
    if i mod 7 = 0 then begin
      Atomic.set forced lsn;
      Log_manager.force log lsn
    end
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "durable_lsn stayed monotone and honest" 0 !violations

(* iter_from while another domain appends: the iteration must cover at
   least the records published before it started, in order, without
   blocking on the appender. *)
let test_wal_iter_during_appends () =
  let log = Log_manager.create () in
  for _ = 1 to 300 do
    ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin)
  done;
  let stop = Atomic.make false in
  let appender =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin)
        done)
  in
  for _ = 1 to 20 do
    let prev = ref 0L and n = ref 0 in
    Log_manager.iter_from log 1L (fun r ->
        if Int64.compare r.Log_record.lsn !prev <= 0 then
          Alcotest.failf "iter_from out of order: %Ld after %Ld" r.Log_record.lsn !prev;
        prev := r.Log_record.lsn;
        incr n);
    Alcotest.(check bool) "iteration covers the pre-iteration prefix" true (!n >= 300)
  done;
  Atomic.set stop true;
  Domain.join appender

(* --- 4-domain smoke: C1 invariant + crash-fuzz over the new WAL ------ *)

(* Fixed domain count: the point is that the kernel's behavior must not
   depend on however many domains dune felt like giving the test runner. *)
let smoke_domains = 4

let test_multidomain_c1_smoke () =
  let config =
    { Db.default_config with Db.max_entries = 16; pool_capacity = 64; page_size = 2048 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  Gist_harness.Workload.Btree.preload db t ~n:2_000;
  Buffer_pool.reset_stats db.Db.pool;
  let stats =
    Gist_harness.Driver.run_txn_ops ~db ~domains:smoke_domains ~duration_s:0.2 ~seed:7
      (fun ~worker ~rng ~txn ->
        List.iter
          (Gist_harness.Workload.Btree.apply t txn)
          (Gist_harness.Workload.Btree.scattered ~worker ~space:2_000 ~read_pct:50
             ~scan_width:10 rng))
  in
  Alcotest.(check bool) "the smoke actually ran transactions" true
    (stats.Gist_harness.Driver.ops > 0);
  Alcotest.(check bool) "pool faulted pages in" true (Buffer_pool.evictions db.Db.pool > 0);
  Alcotest.(check int) "C1: zero I/Os under a held latch across 4 domains" 0
    (Buffer_pool.io_while_latched db.Db.pool);
  let report = Tree_check.check t in
  if not (Tree_check.ok report) then
    Alcotest.failf "tree corrupt after smoke: %a" Tree_check.pp report

let test_crash_fuzz_over_new_wal () =
  (* A fixed 200-point sweep (unscaled by FUZZ_POINTS: this is the floor
     the scaling PR promises) with a seed distinct from test_fault's, so
     the slot-reservation WAL faces fresh schedules. *)
  let summaries = Crash_fuzz.run_sweep ~seed:20260814 ~points:200 () in
  List.iter
    (fun s ->
      List.iter (fun v -> Alcotest.failf "oracle violation: %s" v) s.Crash_fuzz.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s mode crashed at least once" (Crash_fuzz.mode_name s.Crash_fuzz.mode))
        true
        (s.Crash_fuzz.crashes > 0))
    summaries;
  let total = List.fold_left (fun acc s -> acc + s.Crash_fuzz.points) 0 summaries in
  Alcotest.(check bool)
    (Printf.sprintf "sweep covered >= 200 points (got %d)" total)
    true (total >= 200)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pred_equiv;
    Alcotest.test_case "WAL: concurrent appends stay dense and ordered" `Quick
      test_wal_concurrent_appends;
    Alcotest.test_case "WAL: durable_lsn monotone under append/force race" `Quick
      test_wal_durable_monotone_under_race;
    Alcotest.test_case "WAL: iter_from during concurrent appends" `Quick
      test_wal_iter_during_appends;
    Alcotest.test_case "4-domain smoke: latches_held_across_io = 0" `Quick
      test_multidomain_c1_smoke;
    Alcotest.test_case "crash-fuzz sweep over the slot-reservation WAL" `Quick
      test_crash_fuzz_over_new_wal;
  ]
