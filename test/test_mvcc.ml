(* MVCC snapshot reads (PROTOCOL.md §9).

   - a qcheck equivalence property: on a quiesced tree, a snapshot scan
     (and the streaming snapshot cursor) returns exactly what a locked
     search returns, across random op histories and queries;
   - reader isolation: snapshot scans acquire zero locks and attach zero
     predicates — the lock.*/pred.* counters do not move;
   - a scan under a concurrent writer sees exactly the snapshot-time
     state, scan after scan, while a snapshot begun after the churn sees
     the final state;
   - watermark: an open snapshot blocks version GC at vacuum; ending it
     advances the watermark and the same vacuum reclaims
     ([mvcc.gc_reclaimed]);
   - tree size stays bounded under delete churn with short-lived
     snapshots continuously opening and closing (the watermark advances,
     so versions do not pile up);
   - restart: a snapshot begun on the recovered environment sees exactly
     the committed set — losers are gone, commit timestamps re-derived;
   - the mvcc = false knob: begin_ro refuses, the write path is unchanged;
   - a crash-fuzz sweep (FUZZ_POINTS budget, shared with test_fault /
     test_eviction via bin/check.sh) with a racing snapshot-reader domain
     in every fault mode. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Latch = Gist_storage.Latch
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager
module Metrics = Gist_obs.Metrics
module Crash_fuzz = Gist_fault.Crash_fuzz

let rid i = Rid.make ~page:1000 ~slot:i

let small_config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let make_tree ?(config = small_config) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let sorted_keys results = results |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare

let counter name = Metrics.counter_value (Metrics.snapshot ()) name

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

let rec with_retry db f =
  let txn = Txn.begin_txn db.Db.txns in
  match f txn with
  | v ->
    Txn.commit db.Db.txns txn;
    v
  | exception Lock_manager.Deadlock _ ->
    Txn.abort db.Db.txns txn;
    with_retry db f

let snap_scan db t q =
  let ro = Db.begin_ro db in
  let got = Gist.snapshot_search t ro q in
  Db.end_ro db ro;
  got

(* --- qcheck equivalence: snapshot == locked search, quiesced --------- *)

let test_equivalence_qcheck =
  QCheck.Test.make ~count:40 ~name:"snapshot scan equals locked search"
    QCheck.(
      pair (small_list (pair (int_bound 500) bool)) (small_list (pair (int_bound 500) (int_bound 60))))
    (fun (ops, queries) ->
      let db, t = make_tree () in
      let present = Hashtbl.create 64 in
      List.iter
        (fun (k, ins) ->
          (* One committed transaction per op, so deleted keys become
             committed versions the snapshot must judge, not skip via
             live-txn rules. *)
          if ins then begin
            if not (Hashtbl.mem present k) then begin
              with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k));
              Hashtbl.replace present k ()
            end
          end
          else if Hashtbl.mem present k then begin
            with_retry db (fun txn -> ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)));
            Hashtbl.remove present k
          end)
        ops;
      let ro = Db.begin_ro db in
      let ok =
        List.for_all
          (fun (lo, w) ->
            let q = B.range lo (lo + w) in
            let locked = with_retry db (fun txn -> sorted_keys (Gist.search t txn q)) in
            let snap = sorted_keys (Gist.snapshot_search t ro q) in
            let streamed =
              let c = Cursor.open_snapshot t ro q in
              let rec drain acc =
                match Cursor.snap_next c with None -> acc | Some hit -> drain (hit :: acc)
              in
              sorted_keys (drain [])
            in
            snap = locked && streamed = locked)
          queries
      in
      Db.end_ro db ro;
      ok)

(* --- reader isolation: no locks, no predicates ----------------------- *)

let test_zero_locks_zero_preds () =
  let db, t = make_tree () in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) (List.init 400 Fun.id));
  (* Delete some keys so visibility filtering actually runs. *)
  with_retry db (fun txn ->
      List.iter
        (fun k -> ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)))
        (List.init 100 (fun i -> 4 * i)));
  let locks0 = counter "lock.acquire"
  and reg0 = counter "pred.register"
  and att0 = counter "pred.attach"
  and scans0 = counter "mvcc.snapshot_scan"
  and skipped0 = counter "mvcc.version_skipped" in
  for _ = 1 to 10 do
    let got = snap_scan db t (B.range 0 10_000) in
    Alcotest.(check int) "snapshot sees the 300 live keys" 300 (List.length got)
  done;
  Alcotest.(check int) "zero lock acquisitions across 10 snapshot scans" 0
    (counter "lock.acquire" - locks0);
  Alcotest.(check int) "zero predicates registered" 0 (counter "pred.register" - reg0);
  Alcotest.(check int) "zero predicates attached" 0 (counter "pred.attach" - att0);
  Alcotest.(check int) "scans counted" 10 (counter "mvcc.snapshot_scan" - scans0);
  Alcotest.(check bool) "deleted versions were skipped by visibility" true
    (counter "mvcc.version_skipped" > skipped0);
  Alcotest.(check int) "no latches leaked" 0 (Latch.held_by_self ())

(* --- a scan under a concurrent writer sees snapshot-time state ------- *)

let test_scan_under_writer () =
  let db, t = make_tree () in
  let evens = List.init 300 (fun i -> 2 * i) in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) evens);
  let ro = Db.begin_ro db in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        (* Churn odds and delete a growing slice of the evens: the open
           snapshot must keep seeing every even anyway. *)
        let i = ref 0 in
        while not (Atomic.get stop) do
          let odd = 1 + (2 * (!i mod 400)) in
          with_retry db (fun txn -> Gist.insert t txn ~key:(B.key odd) ~rid:(rid odd));
          with_retry db (fun txn -> ignore (Gist.delete t txn ~key:(B.key odd) ~rid:(rid odd)));
          let even = 2 * (!i mod 300) in
          with_retry db (fun txn -> ignore (Gist.delete t txn ~key:(B.key even) ~rid:(rid even)));
          if !i mod 50 = 49 then Gist.vacuum t;
          incr i
        done;
        !i)
  in
  let deadline = Unix.gettimeofday () +. 0.5 in
  let rounds = ref 0 in
  while Unix.gettimeofday () < deadline do
    let got = sorted_keys (Gist.snapshot_search t ro (B.range 0 10_000)) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d: snapshot still sees exactly the preloaded evens" !rounds)
      evens got;
    incr rounds
  done;
  Atomic.set stop true;
  let writer_rounds = Domain.join writer in
  Db.end_ro db ro;
  Alcotest.(check bool) "reader actually raced a writer" true (!rounds > 0 && writer_rounds > 0);
  (* A snapshot begun now sees the final state: whatever evens survive. *)
  let final_locked = with_retry db (fun txn -> sorted_keys (Gist.search t txn (B.range 0 10_000))) in
  let final_snap = sorted_keys (snap_scan db t (B.range 0 10_000)) in
  Alcotest.(check (list int)) "fresh snapshot sees the post-churn state" final_locked final_snap;
  Alcotest.(check int) "no latches leaked" 0 (Latch.held_by_self ());
  check_tree t

(* --- watermark: open snapshots block version GC, ending them unblocks - *)

let test_watermark_blocks_gc () =
  let db, t = make_tree () in
  let keys = List.init 200 Fun.id in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) keys);
  let ro_old = Db.begin_ro db in
  with_retry db (fun txn ->
      List.iter
        (fun k -> ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)))
        (List.filter (fun k -> k mod 2 = 1) keys));
  let ro_new = Db.begin_ro db in
  let reclaimed0 = counter "mvcc.gc_reclaimed" in
  Gist.vacuum t;
  Alcotest.(check int) "vacuum under an old snapshot reclaims nothing" 0
    (counter "mvcc.gc_reclaimed" - reclaimed0);
  Alcotest.(check int) "physical entries all still present" 200 (Gist.entry_count t);
  Alcotest.(check int) "old snapshot still sees every key" 200
    (List.length (Gist.snapshot_search t ro_old (B.range 0 1_000)));
  Db.end_ro db ro_old;
  (* ro_new began after the deletes committed: the watermark now sits at
     or past their commit timestamp, so vacuum may reclaim. *)
  Gist.vacuum t;
  Alcotest.(check int) "watermark advanced: deleted versions reclaimed" 100
    (counter "mvcc.gc_reclaimed" - reclaimed0);
  Alcotest.(check int) "physical entries dropped" 100 (Gist.entry_count t);
  Alcotest.(check int) "surviving snapshot sees the post-delete state" 100
    (List.length (Gist.snapshot_search t ro_new (B.range 0 1_000)));
  Db.end_ro db ro_new;
  check_tree t

(* --- tree size stays bounded under churn + short snapshots ----------- *)

let test_bounded_size_under_churn () =
  let db, t = make_tree () in
  let live = List.init 100 Fun.id in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) live);
  let worst = ref 0 in
  for round = 0 to 29 do
    (* Each round churns 50 transient keys through insert+delete while a
       short-lived snapshot is (briefly) open, then vacuums. With the
       watermark advancing every round, dead versions must not pile up. *)
    for i = 0 to 49 do
      let k = 1_000 + (round * 50) + i in
      with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k));
      with_retry db (fun txn -> ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)))
    done;
    let got = snap_scan db t (B.range 0 100_000) in
    Alcotest.(check int)
      (Printf.sprintf "round %d: snapshot sees exactly the stable keys" round)
      (List.length live) (List.length got);
    Gist.vacuum t;
    worst := max !worst (Gist.entry_count t)
  done;
  (* 1500 dead versions churned through; a leaky watermark would retain
     them all. Allow one round of slack over the 100 live entries. *)
  Alcotest.(check bool)
    (Printf.sprintf "entry count stays bounded (worst %d)" !worst)
    true (!worst <= 200);
  check_tree t

(* --- restart: snapshots on the recovered environment ----------------- *)

let test_snapshot_after_restart () =
  let db, t = make_tree () in
  let root = Gist.root t in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) (List.init 60 Fun.id));
  with_retry db (fun txn ->
      List.iter
        (fun k -> ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)))
        (List.init 10 (fun i -> 6 * i)));
  (* A loser in flight at the crash: its versions must be invisible to
     every post-restart snapshot. *)
  let loser = Txn.begin_txn db.Db.txns in
  List.iter (fun k -> Gist.insert t loser ~key:(B.key k) ~rid:(rid k)) (List.init 8 (fun i -> 500 + i));
  ignore (Gist.delete t loser ~key:(B.key 1) ~rid:(rid 1));
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  (* begin_ro immediately after restart — before any new commit — is the
     edge case: the timestamp counter was rebuilt by analysis, and the
     snapshot must see exactly the committed set. *)
  let snap = sorted_keys (snap_scan db' t' (B.range 0 10_000)) in
  let expect =
    List.init 60 Fun.id |> List.filter (fun k -> not (k mod 6 = 0 && k < 60))
  in
  Alcotest.(check (list int)) "post-restart snapshot = exactly the committed set" expect snap;
  let locked = with_retry db' (fun txn -> sorted_keys (Gist.search t' txn (B.range 0 10_000))) in
  Alcotest.(check (list int)) "snapshot and locked scan agree after restart" locked snap;
  check_tree t'

(* --- the knob: mvcc = false ------------------------------------------ *)

let test_mvcc_off () =
  let config = { small_config with Db.mvcc = false } in
  let db, t = make_tree ~config () in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) (List.init 50 Fun.id));
  (match Db.begin_ro db with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "begin_ro must refuse when config.mvcc = false");
  Alcotest.(check int) "the locking read path is unaffected" 50
    (List.length (with_retry db (fun txn -> Gist.search t txn (B.range 0 1_000))))

(* --- crash fuzz with racing snapshot readers ------------------------- *)

let fuzz_points () =
  match Sys.getenv_opt "FUZZ_POINTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let test_crash_fuzz_with_readers () =
  let points = fuzz_points () in
  let summaries = Crash_fuzz.run_sweep ~snapshot_reader:true ~seed:20260808 ~points () in
  List.iter
    (fun s ->
      List.iter
        (fun v -> Alcotest.failf "oracle violation with racing snapshot reader: %s" v)
        s.Crash_fuzz.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s mode crashed at least once" (Crash_fuzz.mode_name s.Crash_fuzz.mode))
        true
        (s.Crash_fuzz.crashes > 0))
    summaries;
  let total = List.fold_left (fun acc s -> acc + s.Crash_fuzz.points) 0 summaries in
  Alcotest.(check bool) "sweep covered the requested budget" true (total >= points)

let suite =
  [
    QCheck_alcotest.to_alcotest test_equivalence_qcheck;
    Alcotest.test_case "snapshot scans take zero locks, zero predicates" `Quick
      test_zero_locks_zero_preds;
    Alcotest.test_case "scan under a writer sees snapshot-time state" `Quick test_scan_under_writer;
    Alcotest.test_case "open snapshot blocks GC; ending it unblocks" `Quick
      test_watermark_blocks_gc;
    Alcotest.test_case "tree size bounded under churn + snapshots" `Quick
      test_bounded_size_under_churn;
    Alcotest.test_case "post-restart snapshots see the committed set" `Quick
      test_snapshot_after_restart;
    Alcotest.test_case "mvcc = false refuses begin_ro" `Quick test_mvcc_off;
    Alcotest.test_case "crash-fuzz sweep with snapshot readers (FUZZ_POINTS)" `Quick
      test_crash_fuzz_with_readers;
  ]
