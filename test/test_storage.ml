(* Unit tests for gist_storage: identifiers, latches, disk, buffer pool. *)

open Gist_storage

let test_page_id () =
  Alcotest.(check bool) "invalid" false (Page_id.is_valid Page_id.invalid);
  let p = Page_id.of_int 7 in
  Alcotest.(check bool) "valid" true (Page_id.is_valid p);
  Alcotest.(check int) "roundtrip" 7 (Page_id.to_int p);
  let b = Buffer.create 8 in
  Page_id.encode b p;
  Alcotest.(check bool) "codec" true
    (Page_id.equal p (Page_id.decode (Gist_util.Codec.reader (Buffer.to_bytes b))))

let test_rid () =
  let r1 = Rid.make ~page:3 ~slot:9 and r2 = Rid.make ~page:3 ~slot:10 in
  Alcotest.(check bool) "equal self" true (Rid.equal r1 r1);
  Alcotest.(check bool) "not equal" false (Rid.equal r1 r2);
  Alcotest.(check bool) "ordered" true (Rid.compare r1 r2 < 0);
  let b = Buffer.create 8 in
  Rid.encode b r1;
  Alcotest.(check bool) "codec" true
    (Rid.equal r1 (Rid.decode (Gist_util.Codec.reader (Buffer.to_bytes b))))

let test_latch_shared_readers () =
  let l = Latch.create () in
  Latch.acquire l Latch.S;
  Alcotest.(check bool) "second S admitted" true (Latch.try_acquire l Latch.S);
  Alcotest.(check bool) "X refused while S held" false (Latch.try_acquire l Latch.X);
  Latch.release l Latch.S;
  Latch.release l Latch.S;
  Alcotest.(check bool) "X after release" true (Latch.try_acquire l Latch.X);
  Alcotest.(check bool) "S refused while X held" false (Latch.try_acquire l Latch.S);
  Latch.release l Latch.X

let test_latch_mutual_exclusion_domains () =
  (* N domains increment a counter under the X latch; the result counts
     every increment iff the latch is exclusive. *)
  let l = Latch.create () in
  let counter = ref 0 in
  let per = 10_000 and n = 4 in
  let domains =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Latch.acquire l Latch.X;
              counter := !counter + 1;
              Latch.release l Latch.X
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (n * per) !counter

let test_latch_writer_not_starved () =
  (* With a continuous stream of readers, a writer must still get in. *)
  let l = Latch.create () in
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Latch.acquire l Latch.S;
              Domain.cpu_relax ();
              Latch.release l Latch.S
            done))
  in
  let got_write = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        Latch.acquire l Latch.X;
        Atomic.set got_write true;
        Latch.release l Latch.X)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while (not (Atomic.get got_write)) && Gist_util.Clock.elapsed_s t0 < 5.0 do
    Thread.yield ()
  done;
  Atomic.set stop true;
  Domain.join writer;
  List.iter Domain.join readers;
  Alcotest.(check bool) "writer eventually admitted" true (Atomic.get got_write)

let test_disk_read_write () =
  let d = Disk.create ~page_size:256 () in
  let img = Bytes.make 256 'x' in
  Disk.write d (Page_id.of_int 5) img;
  Alcotest.(check bytes) "read back" img (Disk.read d (Page_id.of_int 5));
  Alcotest.(check bytes) "unwritten page is zeros" (Bytes.make 256 '\000')
    (Disk.read d (Page_id.of_int 99));
  Alcotest.(check bool) "copy-out isolation" true
    (let r = Disk.read d (Page_id.of_int 5) in
     Bytes.set r 0 '!';
     Bytes.get (Disk.read d (Page_id.of_int 5)) 0 = 'x');
  Alcotest.(check int) "page_count tracks high water" 6 (Disk.page_count d);
  Alcotest.(check bool) "stats counted" true (Disk.reads d >= 3 && Disk.writes d = 1)

let with_pool ?(capacity = 8) f =
  let disk = Disk.create ~page_size:256 () in
  let forced = ref [] in
  let pool =
    Buffer_pool.create ~capacity ~disk ~force_log:(fun lsn -> forced := lsn :: !forced) ()
  in
  f disk pool forced

let test_pool_pin_and_dirty () =
  with_pool (fun disk pool _forced ->
      let p1 = Page_id.of_int 1 in
      let frame = Buffer_pool.pin_new pool p1 in
      Latch.acquire (Buffer_pool.latch frame) Latch.X;
      Bytes.set (Buffer_pool.data frame) 100 'A';
      Buffer_pool.mark_dirty pool frame ~lsn:42L;
      Latch.release (Buffer_pool.latch frame) Latch.X;
      Buffer_pool.unpin pool frame;
      Alcotest.(check int64) "page lsn stored" 42L (Buffer_pool.page_lsn frame);
      Alcotest.(check (list (pair int int64)))
        "dirty page table" [ (1, 42L) ]
        (List.map (fun (p, l) -> (Page_id.to_int p, l)) (Buffer_pool.dirty_page_table pool));
      Buffer_pool.flush_page pool p1;
      Alcotest.(check char) "flushed to disk" 'A' (Bytes.get (Disk.read disk p1) 100);
      Alcotest.(check int) "DPT empty after flush" 0
        (List.length (Buffer_pool.dirty_page_table pool)))

let test_pool_eviction_wal_rule () =
  with_pool ~capacity:4 (fun disk pool forced ->
      (* Dirty one page, then fault in colliding pages (the pool is sharded
         by page id) to force eviction from that shard. *)
      let p1 = Page_id.of_int 1 in
      let f = Buffer_pool.pin_new pool p1 in
      Latch.acquire (Buffer_pool.latch f) Latch.X;
      Bytes.set (Buffer_pool.data f) 50 'Z';
      Buffer_pool.mark_dirty pool f ~lsn:77L;
      Latch.release (Buffer_pool.latch f) Latch.X;
      Buffer_pool.unpin pool f;
      for i = 1 to 8 do
        (* Same shard as page 1 for any power-of-two shard count <= 64. *)
        let g = Buffer_pool.pin pool (Page_id.of_int (1 + (i * 64))) in
        Buffer_pool.unpin pool g
      done;
      Alcotest.(check bool) "eviction happened" true (Buffer_pool.evictions pool > 0);
      Alcotest.(check bool) "WAL rule: log forced up to page LSN" true
        (List.exists (fun l -> l >= 77L) !forced);
      Alcotest.(check char) "dirty page written back" 'Z' (Bytes.get (Disk.read disk p1) 50))

let test_pool_hit_miss () =
  with_pool (fun _disk pool _ ->
      let p = Page_id.of_int 3 in
      let f = Buffer_pool.pin pool p in
      Buffer_pool.unpin pool f;
      let f2 = Buffer_pool.pin pool p in
      Buffer_pool.unpin pool f2;
      Alcotest.(check int) "one miss" 1 (Buffer_pool.misses pool);
      Alcotest.(check int) "one hit" 1 (Buffer_pool.hits pool))

let test_pool_concurrent_pins () =
  with_pool ~capacity:16 (fun _disk pool _ ->
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                let rng = Gist_util.Xoshiro.create d in
                for _ = 1 to 2000 do
                  let p = Page_id.of_int (1 + Gist_util.Xoshiro.int rng 40) in
                  Buffer_pool.with_page pool p Latch.S (fun frame ->
                      ignore (Buffer_pool.page_lsn frame))
                done))
      in
      List.iter Domain.join domains;
      Alcotest.(check int) "all pins released" 0
        (List.length (Buffer_pool.dirty_page_table pool)))

let test_pool_drop_all () =
  with_pool (fun disk pool _ ->
      let p = Page_id.of_int 2 in
      let f = Buffer_pool.pin_new pool p in
      Latch.acquire (Buffer_pool.latch f) Latch.X;
      Bytes.set (Buffer_pool.data f) 0 'D';
      Buffer_pool.mark_dirty pool f ~lsn:5L;
      Latch.release (Buffer_pool.latch f) Latch.X;
      Buffer_pool.unpin pool f;
      Buffer_pool.drop_all pool;
      (* The dirty update is lost — crash semantics. *)
      Alcotest.(check char) "disk never saw the write" '\000' (Bytes.get (Disk.read disk p) 8))

let suite =
  [
    Alcotest.test_case "page ids" `Quick test_page_id;
    Alcotest.test_case "rids" `Quick test_rid;
    Alcotest.test_case "latch S/X semantics" `Quick test_latch_shared_readers;
    Alcotest.test_case "latch mutual exclusion (domains)" `Quick
      test_latch_mutual_exclusion_domains;
    Alcotest.test_case "latch writer not starved" `Quick test_latch_writer_not_starved;
    Alcotest.test_case "disk read/write" `Quick test_disk_read_write;
    Alcotest.test_case "pool pin and dirty tracking" `Quick test_pool_pin_and_dirty;
    Alcotest.test_case "pool eviction honors WAL rule" `Quick test_pool_eviction_wal_rule;
    Alcotest.test_case "pool hit/miss accounting" `Quick test_pool_hit_miss;
    Alcotest.test_case "pool concurrent pins" `Quick test_pool_concurrent_pins;
    Alcotest.test_case "pool drop_all loses volatile state" `Quick test_pool_drop_all;
  ]
