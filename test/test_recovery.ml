(* Crash injection and ARIES restart tests (experiment E6, Table 1).

   The failure model: [Db.crash] discards the buffer pool, lock tables and
   transaction tables, and truncates the log to its durable prefix. Tests
   steer the durable prefix with explicit [Log_manager.force] calls to
   position the "crash point" anywhere — including inside a split NTA —
   then restart and verify that exactly the committed data survives and
   every tree invariant holds. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Log = Gist_wal.Log_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let crash_restart db t =
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  (db', t')

let keys_of t db =
  let txn = Txn.begin_txn db.Db.txns in
  let r =
    Gist.search t txn (B.range min_int max_int)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db.Db.txns txn;
  r

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

let test_committed_survive () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  (* Nothing flushed: recovery must rebuild everything from the log. *)
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "all committed keys" (List.init 100 (fun i -> i + 1))
    (keys_of t' db');
  check_tree t'

let test_committed_survive_with_flush () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "all keys after flushed crash" (List.init 100 (fun i -> i + 1))
    (keys_of t' db');
  check_tree t'

let test_uncommitted_rolled_back () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 50 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 51 to 120 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  (* Make the loser's work durable so restart has something to undo. *)
  Log.force_all db.Db.log;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "losers rolled back" (List.init 50 (fun i -> i + 1))
    (keys_of t' db');
  check_tree t'

let test_uncommitted_delete_rolled_back () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 30 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 1 to 15 do
    ignore (Gist.delete t loser ~key:(B.key i) ~rid:(rid i))
  done;
  Log.force_all db.Db.log;
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "deletes undone" (List.init 30 (fun i -> i + 1)) (keys_of t' db');
  check_tree t'

let test_crash_mid_nta () =
  (* Position the durable watermark inside a split NTA: the Split record is
     durable but the parent-entry install and closing CLR are not. Restart
     must roll the half-split back (page-oriented undo) and then remove the
     loser's entries (logical undo). *)
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 7 do
    Gist.insert t txn ~key:(B.key (i * 10)) ~rid:(rid (i * 10))
  done;
  Txn.commit db.Db.txns txn;
  let split_lsn = ref Gist_wal.Lsn.nil in
  Gist.set_hook t (fun ev ->
      if ev = "split:done" && Gist_wal.Lsn.equal !split_lsn Gist_wal.Lsn.nil then
        split_lsn := Log.last_lsn db.Db.log);
  let loser = Txn.begin_txn db.Db.txns in
  for i = 1 to 5 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  Alcotest.(check bool) "a split happened" true
    (not (Gist_wal.Lsn.equal !split_lsn Gist_wal.Lsn.nil));
  (* Durable prefix ends two records before the NTA closed. *)
  Log.force db.Db.log (Int64.sub !split_lsn 2L);
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "committed keys intact" [ 10; 20; 30; 40; 50; 60; 70 ]
    (keys_of t' db');
  check_tree t'

let test_double_crash () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 60 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 61 to 90 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  Log.force_all db.Db.log;
  let db1, t1 = crash_restart db t in
  (* Crash again immediately — restart's own CLRs must replay correctly. *)
  let db2, t2 = crash_restart db1 t1 in
  Alcotest.(check (list int)) "stable across double crash" (List.init 60 (fun i -> i + 1))
    (keys_of t2 db2);
  check_tree t2

let test_checkpointed_recovery () =
  let db, t = make () in
  for batch = 0 to 4 do
    let txn = Txn.begin_txn db.Db.txns in
    for i = 1 to 40 do
      Gist.insert t txn ~key:(B.key ((batch * 40) + i)) ~rid:(rid ((batch * 40) + i))
    done;
    Txn.commit db.Db.txns txn;
    Db.checkpoint db;
    if batch = 2 then Gist_storage.Buffer_pool.flush_all db.Db.pool
  done;
  let db', t' = crash_restart db t in
  Alcotest.(check int) "200 keys after checkpointed recovery" 200
    (List.length (keys_of t' db'));
  check_tree t'

let test_randomized_crash_sweep () =
  (* E6 core: random workloads, random crash points, always consistent. *)
  let failures = ref [] in
  for seed = 1 to 12 do
    let rng = Gist_util.Xoshiro.create seed in
    let db, t = make () in
    let committed = Hashtbl.create 64 in
    for txn_no = 0 to 3 do
      let txn = Txn.begin_txn db.Db.txns in
      for _ = 1 to 30 do
        let k = Gist_util.Xoshiro.int rng 500 in
        if Gist_util.Xoshiro.int rng 4 > 0 then begin
          if not (Hashtbl.mem committed k) then begin
            Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
            Hashtbl.replace committed k ()
          end
        end
        else if Hashtbl.mem committed k then
          if Gist.delete t txn ~key:(B.key k) ~rid:(rid k) then Hashtbl.remove committed k
      done;
      Txn.commit db.Db.txns txn;
      if txn_no = 1 then Db.checkpoint db;
      if Gist_util.Xoshiro.bool rng then Gist_storage.Buffer_pool.flush_all db.Db.pool
    done;
    (* One in-flight loser. *)
    let loser = Txn.begin_txn db.Db.txns in
    for _ = 1 to 25 do
      let k = 500 + Gist_util.Xoshiro.int rng 200 in
      if Gist.search t loser (B.key k) = [] then Gist.insert t loser ~key:(B.key k) ~rid:(rid k)
    done;
    (* Random crash point at or after the current durable prefix. *)
    let durable = Int64.to_int (Log.durable_lsn db.Db.log) in
    let high = Int64.to_int (Log.last_lsn db.Db.log) in
    let cut = durable + Gist_util.Xoshiro.int rng (high - durable + 1) in
    Log.force db.Db.log (Int64.of_int cut);
    let db', t' = crash_restart db t in
    let expected = Hashtbl.fold (fun k () acc -> k :: acc) committed [] |> List.sort compare in
    let got = keys_of t' db' in
    if got <> expected then failures := Printf.sprintf "seed %d: wrong key set" seed :: !failures;
    let report = Tree_check.check t' in
    if not (Tree_check.ok report) then
      failures := Format.asprintf "seed %d: %a" seed Tree_check.pp report :: !failures
  done;
  Alcotest.(check (list string)) "no failures across crash sweep" [] !failures

let test_truncated_log_recovery () =
  (* checkpoint + flush + truncate, keep working, crash: restart must not
     need the reclaimed prefix. *)
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 120 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  Db.checkpoint db;
  let reclaimed = Db.truncate_log db in
  Alcotest.(check bool) "something reclaimed" true (reclaimed > 100);
  (* Post-truncation traffic, including a loser. *)
  let txn = Txn.begin_txn db.Db.txns in
  for i = 121 to 160 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 161 to 180 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  Log.force_all db.Db.log;
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "committed set exact" (List.init 160 (fun i -> i + 1))
    (keys_of t' db');
  check_tree t'

let test_truncation_blocked_by_active_txn () =
  (* An active transaction's backchain pins the log even past a checkpoint. *)
  let db, t = make () in
  let long_runner = Txn.begin_txn db.Db.txns in
  Gist.insert t long_runner ~key:(B.key 1) ~rid:(rid 1);
  let txn = Txn.begin_txn db.Db.txns in
  for i = 10 to 80 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  Db.checkpoint db;
  let reclaimed = Db.truncate_log db in
  (* Only the handful of records preceding the long-runner's Begin may go;
     its backchain pins everything after. *)
  Alcotest.(check bool)
    (Printf.sprintf "old active txn pins the log (reclaimed %d)" reclaimed)
    true (reclaimed < 10);
  (* After it ends, reclamation proceeds (next checkpoint). *)
  Txn.abort db.Db.txns long_runner;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  Db.checkpoint db;
  Alcotest.(check bool) "reclaims after the pin is gone" true (Db.truncate_log db > 50);
  let db', t' = crash_restart db t in
  Alcotest.(check (list int)) "loser rolled back, committed intact"
    (List.init 71 (fun i -> i + 10))
    (keys_of t' db');
  check_tree t'

let test_redo_idempotent () =
  (* Restart with no intervening work must be a fixpoint. *)
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 80 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let db1, t1 = crash_restart db t in
  let keys1 = keys_of t1 db1 in
  let db2, t2 = crash_restart db1 t1 in
  Alcotest.(check (list int)) "fixpoint" keys1 (keys_of t2 db2);
  check_tree t2

(* Satellite: recovery is idempotent. After a crash and one successful
   restart, running restart again — with no crash in between — is a pure
   no-op: the same tree comes back and the only new WAL records are the
   second restart's own checkpoint pair. *)
let test_restart_twice_noop () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 40 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 41 to 50 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  Log.force_all db.Db.log;
  let db', t' = crash_restart db t in
  let keys1 = keys_of t' db' in
  let before = Log.last_lsn db'.Db.log in
  Recovery.restart db' B.ext;
  Alcotest.(check int64) "second restart appends only its checkpoint pair" 2L
    (Int64.sub (Log.last_lsn db'.Db.log) before);
  Alcotest.(check (list int)) "contents unchanged by second restart" keys1 (keys_of t' db');
  check_tree t'

let suite =
  [
    Alcotest.test_case "committed survive crash (no flush)" `Quick test_committed_survive;
    Alcotest.test_case "committed survive crash (flushed)" `Quick
      test_committed_survive_with_flush;
    Alcotest.test_case "uncommitted inserts rolled back" `Quick test_uncommitted_rolled_back;
    Alcotest.test_case "uncommitted deletes rolled back" `Quick
      test_uncommitted_delete_rolled_back;
    Alcotest.test_case "crash mid split NTA" `Quick test_crash_mid_nta;
    Alcotest.test_case "double crash" `Quick test_double_crash;
    Alcotest.test_case "checkpointed recovery" `Quick test_checkpointed_recovery;
    Alcotest.test_case "randomized crash sweep" `Quick test_randomized_crash_sweep;
    Alcotest.test_case "truncated log recovery" `Quick test_truncated_log_recovery;
    Alcotest.test_case "truncation blocked by active txn" `Quick
      test_truncation_blocked_by_active_txn;
    Alcotest.test_case "redo idempotent" `Quick test_redo_idempotent;
    Alcotest.test_case "restart twice is a no-op" `Quick test_restart_twice_noop;
  ]
