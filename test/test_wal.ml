(* Unit tests for the WAL: the Table 1 record catalog round-trips and the
   log manager's durability semantics. *)

open Gist_wal
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid
module Txn_id = Gist_util.Txn_id

let pid = Page_id.of_int

let rid i = Rid.make ~page:7 ~slot:i

(* One representative of every payload constructor — the full Table 1
   catalog plus control records and CLR-carried inverses. *)
let catalog : Log_record.payload list =
  [
    Log_record.Begin;
    Log_record.Commit;
    Log_record.Abort;
    Log_record.End;
    Log_record.Checkpoint_begin;
    Log_record.Checkpoint_end
      {
        dirty_pages = [ (pid 1, 10L); (pid 2, 20L) ];
        active_txns =
          [
            (Txn_id.of_int 1, Log_record.Active, 30L);
            (Txn_id.of_int 2, Log_record.Aborting, 31L);
            (Txn_id.of_int 3, Log_record.Committed, 32L);
          ];
        allocator = "alloc-snapshot";
      };
    Log_record.Clr { action = Log_record.Act_none; undo_next = 17L };
    Log_record.Clr
      {
        action = Log_record.Act_apply (Log_record.Remove_leaf_entry { page = pid 4; rid = rid 1 });
        undo_next = 18L;
      };
    Log_record.Parent_entry_update { parent = pid 1; child = pid 2; new_bp = "bp-bytes" };
    Log_record.Split
      {
        orig = pid 3;
        right = pid 9;
        moved = [ "e1"; "e2"; "e3" ];
        orig_old_nsn = 5L;
        orig_new_nsn = 0L;
        orig_old_rightlink = pid 4;
        level = 0;
      };
    Log_record.Root_grow
      {
        root = pid 1;
        child = pid 10;
        entries = [ "a"; "b" ];
        root_old_nsn = 2L;
        old_level = 1;
        root_bp = "rootbp";
      };
    Log_record.Garbage_collection { page = pid 5; rids = [ rid 1; rid 2 ] };
    Log_record.Internal_entry_add { page = pid 5; entry = "ie" };
    Log_record.Internal_entry_update { page = pid 5; child = pid 6; new_bp = "n"; old_bp = "o" };
    Log_record.Internal_entry_delete { page = pid 5; entry = "ie" };
    Log_record.Add_leaf_entry { page = pid 6; nsn = 9L; entry = "le"; rid = rid 3 };
    Log_record.Mark_leaf_entry { page = pid 6; nsn = 9L; rid = rid 3 };
    Log_record.Get_page { page = pid 11 };
    Log_record.Free_page { page = pid 11 };
    Log_record.Remove_leaf_entry { page = pid 6; rid = rid 3 };
    Log_record.Unmark_leaf_entry { page = pid 6; rid = rid 3 };
    Log_record.Unsplit
      {
        orig = pid 3;
        right = pid 9;
        moved = [ "e1" ];
        restore_nsn = 5L;
        restore_rightlink = pid 4;
      };
    Log_record.Root_shrink
      { root = pid 1; child = pid 10; entries = [ "a" ]; restore_nsn = 2L; restore_level = 1 };
    Log_record.Format_node { page = pid 1; level = 0; bp = "empty" };
    Log_record.Set_rightlink { page = pid 2; new_rl = pid 9; old_rl = pid 3 };
    Log_record.Page_image { page = pid 6; image = "full-page-image-bytes" };
  ]

let test_catalog_roundtrip () =
  List.iteri
    (fun i payload ->
      let record =
        { Log_record.lsn = Int64.of_int (i + 1); txn = Txn_id.of_int i; prev = 3L; ext = "btree"; payload }
      in
      let b = Buffer.create 128 in
      Log_record.encode b record;
      let decoded = Log_record.decode (Gist_util.Codec.reader (Buffer.to_bytes b)) in
      Alcotest.(check bool)
        (Format.asprintf "record %d (%a) roundtrips" i Log_record.pp record)
        true (decoded = record))
    catalog

let test_redo_only_classification () =
  (* Table 1: records with "none" in the undo column are redo-only. *)
  let redo_only p = Log_record.is_redo_only p in
  Alcotest.(check bool) "parent-entry-update" true
    (redo_only (Log_record.Parent_entry_update { parent = pid 1; child = pid 2; new_bp = "" }));
  Alcotest.(check bool) "garbage-collection" true
    (redo_only (Log_record.Garbage_collection { page = pid 1; rids = [] }));
  Alcotest.(check bool) "split is undoable" false
    (redo_only
       (Log_record.Split
          {
            orig = pid 1;
            right = pid 2;
            moved = [];
            orig_old_nsn = 0L;
            orig_new_nsn = 0L;
            orig_old_rightlink = Page_id.invalid;
            level = 0;
          }));
  Alcotest.(check bool) "add-leaf-entry is undoable" false
    (redo_only (Log_record.Add_leaf_entry { page = pid 1; nsn = 0L; entry = ""; rid = rid 1 }));
  Alcotest.(check bool) "get-page is undoable" false
    (redo_only (Log_record.Get_page { page = pid 1 }));
  Alcotest.(check bool) "page-image" true
    (redo_only (Log_record.Page_image { page = pid 1; image = "x" }))

let test_pages_touched () =
  Alcotest.(check (list int)) "split touches both" [ 3; 9 ]
    (List.map Page_id.to_int
       (Log_record.pages_touched
          (Log_record.Split
             {
               orig = pid 3;
               right = pid 9;
               moved = [];
               orig_old_nsn = 0L;
               orig_new_nsn = 0L;
               orig_old_rightlink = Page_id.invalid;
               level = 0;
             })));
  Alcotest.(check (list int)) "clr inherits inner pages" [ 6 ]
    (List.map Page_id.to_int
       (Log_record.pages_touched
          (Log_record.Clr
             {
               action = Log_record.Act_apply (Log_record.Remove_leaf_entry { page = pid 6; rid = rid 1 });
               undo_next = 0L;
             })))

let test_log_manager_basics () =
  let log = Log_manager.create () in
  Alcotest.(check int64) "empty last_lsn" 0L (Log_manager.last_lsn log);
  let l1 = Log_manager.append log ~txn:(Txn_id.of_int 1) ~prev:0L Log_record.Begin in
  let l2 = Log_manager.append log ~txn:(Txn_id.of_int 1) ~prev:l1 Log_record.Commit in
  Alcotest.(check int64) "dense lsns" 1L l1;
  Alcotest.(check int64) "dense lsns 2" 2L l2;
  Alcotest.(check int64) "last" 2L (Log_manager.last_lsn log);
  (match Log_manager.read log l1 with
  | Some r ->
    Alcotest.(check bool) "payload" true (r.Log_record.payload = Log_record.Begin);
    Alcotest.(check int64) "lsn" 1L r.Log_record.lsn
  | None -> Alcotest.fail "record missing");
  Alcotest.(check bool) "oob read" true (Log_manager.read log 99L = None)

let test_log_durability_and_crash () =
  let log = Log_manager.create () in
  let t = Txn_id.of_int 1 in
  let l1 = Log_manager.append log ~txn:t ~prev:0L Log_record.Begin in
  let _l2 = Log_manager.append log ~txn:t ~prev:l1 (Log_record.Get_page { page = pid 3 }) in
  let _l3 = Log_manager.append log ~txn:t ~prev:2L Log_record.Commit in
  Log_manager.force log 2L;
  Alcotest.(check int64) "durable watermark" 2L (Log_manager.durable_lsn log);
  Log_manager.crash log;
  Alcotest.(check int64) "tail dropped" 2L (Log_manager.last_lsn log);
  Alcotest.(check bool) "lost record unreadable" true (Log_manager.read log 3L = None);
  (* New appends continue from the durable point. *)
  let l4 = Log_manager.append log ~txn:t ~prev:0L Log_record.Abort in
  Alcotest.(check int64) "lsn continues" 3L l4

let test_force_fast_path () =
  let log = Log_manager.create () in
  let t = Txn_id.of_int 1 in
  for _ = 1 to 5 do
    ignore (Log_manager.append log ~txn:t ~prev:0L Log_record.Begin)
  done;
  let noops name = Gist_obs.Metrics.counter_value (Gist_obs.Metrics.snapshot ()) name in
  let slow0 = Log_manager.forces log in
  Log_manager.force log 4L;
  Alcotest.(check int) "first force takes the slow path" (slow0 + 1) (Log_manager.forces log);
  let n0 = noops "wal.force_noop" in
  (* Redundant forces at or below the watermark skip the mutex. *)
  Log_manager.force log 4L;
  Log_manager.force log 2L;
  Alcotest.(check int) "redundant forces are noops" (slow0 + 1) (Log_manager.forces log);
  Alcotest.(check int) "wal.force_noop counts skips" (n0 + 2) (noops "wal.force_noop");
  Alcotest.(check int64) "watermark unchanged" 4L (Log_manager.durable_lsn log);
  (* A higher LSN still forces. *)
  Log_manager.force log 5L;
  Alcotest.(check int64) "higher LSN advances" 5L (Log_manager.durable_lsn log)

let test_log_iteration_and_anchor () =
  let log = Log_manager.create () in
  let t = Txn_id.none in
  for _ = 1 to 10 do
    ignore (Log_manager.append log ~txn:t ~prev:0L Log_record.Checkpoint_begin)
  done;
  let n = ref 0 in
  Log_manager.iter_from log 4L (fun r ->
      incr n;
      Alcotest.(check bool) "from 4" true (r.Log_record.lsn >= 4L));
  Alcotest.(check int) "iterated 7" 7 !n;
  Log_manager.set_anchor log 5L;
  Log_manager.force_all log;
  Alcotest.(check int64) "anchor" 5L (Log_manager.anchor log);
  Log_manager.crash log;
  Alcotest.(check int64) "anchor survives crash when durable" 5L (Log_manager.anchor log)

let test_truncation () =
  let log = Log_manager.create () in
  let t = Txn_id.of_int 1 in
  for _ = 1 to 50 do
    ignore (Log_manager.append log ~txn:t ~prev:0L (Log_record.Get_page { page = pid 3 }))
  done;
  (* Nothing durable / no anchor: truncation must refuse. *)
  Alcotest.(check int) "no anchor, nothing reclaimed" 0 (Log_manager.truncate_before log 40L);
  Log_manager.force_all log;
  Log_manager.set_anchor log 30L;
  Alcotest.(check int) "reclaims below min(request, anchor)" 29
    (Log_manager.truncate_before log 40L);
  (* LSNs are stable across truncation. *)
  Alcotest.(check bool) "pre-truncation record gone" true (Log_manager.read log 10L = None);
  (match Log_manager.read log 35L with
  | Some r -> Alcotest.(check int64) "retained record keeps its LSN" 35L r.Log_record.lsn
  | None -> Alcotest.fail "retained record missing");
  let l51 = Log_manager.append log ~txn:t ~prev:0L Log_record.Commit in
  Alcotest.(check int64) "appends continue the sequence" 51L l51;
  (* Iteration from below the truncation point yields only retained ones. *)
  let first = ref 0L in
  Log_manager.iter_from log 1L (fun r -> if !first = 0L then first := r.Log_record.lsn);
  Alcotest.(check int64) "iteration starts at the retained base" 30L !first;
  (* Idempotent. *)
  Alcotest.(check int) "second truncate reclaims nothing" 0
    (Log_manager.truncate_before log 40L)

(* Satellite property: whatever the caller asks, [truncate_before] never
   discards a record at or after the checkpoint anchor, nor one past the
   durability watermark — the two classes the next restart may need. *)
let prop_truncate_respects_anchor =
  QCheck.Test.make ~name:"wal: truncate_before never drops anchored or undurable records"
    ~count:300
    QCheck.(
      quad (int_range 1 80) (int_range 0 100) (int_range 0 100) (int_range 0 120))
    (fun (n, forced, anchor_req, trunc_req) ->
      let log = Log_manager.create () in
      let t = Txn_id.of_int 1 in
      for _ = 1 to n do
        ignore (Log_manager.append log ~txn:t ~prev:0L Log_record.Begin)
      done;
      Log_manager.force log (Int64.of_int (min forced n));
      let durable = Int64.to_int (Log_manager.durable_lsn log) in
      Log_manager.set_anchor log (Int64.of_int (min anchor_req n));
      let anchor = Int64.to_int (Log_manager.anchor log) in
      let reclaimed = Log_manager.truncate_before log (Int64.of_int trunc_req) in
      (* The effective boundary the implementation must respect. *)
      let boundary = min trunc_req (min anchor durable) in
      let expected = max 0 (boundary - 1) in
      let kept_ok = ref true in
      for lsn = max 1 boundary to n do
        match Log_manager.read log (Int64.of_int lsn) with
        | Some r when r.Log_record.lsn = Int64.of_int lsn -> ()
        | _ -> kept_ok := false
      done;
      let dropped_ok = ref true in
      for lsn = 1 to expected do
        if Log_manager.read log (Int64.of_int lsn) <> None then dropped_ok := false
      done;
      let next = Log_manager.append log ~txn:t ~prev:0L Log_record.Commit in
      reclaimed = expected && !kept_ok && !dropped_ok
      && Int64.to_int next = n + 1
      && Int64.to_int (Log_manager.anchor log) = anchor)

let test_concurrent_appends () =
  let log = Log_manager.create () in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              ignore
                (Log_manager.append log ~txn:(Txn_id.of_int i) ~prev:0L Log_record.Begin)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int64) "all records assigned unique dense lsns" 4000L
    (Log_manager.last_lsn log);
  Alcotest.(check int) "count" 4000 (Log_manager.appended log)

let suite =
  [
    Alcotest.test_case "Table 1 catalog roundtrips" `Quick test_catalog_roundtrip;
    Alcotest.test_case "redo-only classification" `Quick test_redo_only_classification;
    Alcotest.test_case "pages touched" `Quick test_pages_touched;
    Alcotest.test_case "log manager basics" `Quick test_log_manager_basics;
    Alcotest.test_case "durability and crash" `Quick test_log_durability_and_crash;
    Alcotest.test_case "force fast path (noop skip)" `Quick test_force_fast_path;
    Alcotest.test_case "iteration and anchor" `Quick test_log_iteration_and_anchor;
    Alcotest.test_case "truncation" `Quick test_truncation;
    QCheck_alcotest.to_alcotest prop_truncate_respects_anchor;
    Alcotest.test_case "concurrent appends" `Quick test_concurrent_appends;
  ]
