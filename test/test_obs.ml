(* The observability layer: registry semantics, cross-domain merging,
   trace-ring behavior, and an end-to-end check that the instrumented
   kernel actually reports what the paper's claims need (rightlink
   traversals > 0, I/Os under latches = 0). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace
module Stats = Gist_util.Stats

let rid i = Rid.make ~page:1000 ~slot:i

(* --- registry semantics --- *)

let test_registration () =
  let a = Metrics.counter ~unit_:"ops" "test.obs.reg" in
  let b = Metrics.counter "test.obs.reg" in
  Metrics.incr a;
  Metrics.incr b;
  (* Same name, same kind: one shared instrument. *)
  Alcotest.(check int) "idempotent registration shares the counter" 2 (Metrics.value a);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test.obs.reg\" already registered as a counter, not a histogram")
    (fun () -> ignore (Metrics.histogram "test.obs.reg"))

let test_merge_across_domains () =
  let c = Metrics.counter "test.obs.merge.c" in
  let s = Metrics.summary "test.obs.merge.s" in
  let h = Metrics.histogram "test.obs.merge.h" in
  let per_domain = 500 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Metrics.incr c;
              Metrics.observe s (Float.of_int (d + 1));
              Metrics.record h (Float.of_int i)
            done))
  in
  List.iter Domain.join domains;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter merged" (4 * per_domain)
    (Metrics.counter_value snap "test.obs.merge.c");
  (match Metrics.find snap "test.obs.merge.s" with
  | Some (Metrics.Summary sum) ->
    Alcotest.(check int) "summary count merged over 4 shards" (4 * per_domain)
      (Stats.Summary.count sum);
    Alcotest.(check (float 1e-9)) "summary min" 1.0 (Stats.Summary.min sum);
    Alcotest.(check (float 1e-9)) "summary max" 4.0 (Stats.Summary.max sum)
  | _ -> Alcotest.fail "summary sample missing");
  match Metrics.find snap "test.obs.merge.h" with
  | Some (Metrics.Histogram hist) ->
    Alcotest.(check int) "histogram count merged over 4 shards" (4 * per_domain)
      (Stats.Histogram.count hist)
  | _ -> Alcotest.fail "histogram sample missing"

let test_histogram_percentiles () =
  let h = Metrics.histogram ~unit_:"ns" "test.obs.pct" in
  for i = 1 to 1000 do
    Metrics.record h (Float.of_int i)
  done;
  let snap = Metrics.snapshot () in
  match Metrics.find snap "test.obs.pct" with
  | Some (Metrics.Histogram hist) ->
    let p50 = Stats.Histogram.percentile hist 0.50 in
    let p99 = Stats.Histogram.percentile hist 0.99 in
    (* Log buckets have ~11% resolution; allow a generous band. *)
    Alcotest.(check bool)
      (Printf.sprintf "p50 (%g) near 500" p50)
      true
      (p50 > 400.0 && p50 < 625.0);
    Alcotest.(check bool)
      (Printf.sprintf "p99 (%g) near 990" p99)
      true
      (p99 > 800.0 && p99 < 1250.0);
    Alcotest.(check bool) "percentiles ordered" true (p99 >= p50)
  | _ -> Alcotest.fail "histogram sample missing"

(* --- trace ring --- *)

let test_trace_wraparound () =
  Trace.set_capacity 64;
  Trace.enable ();
  (* A fresh domain gets a fresh ring sized by the new capacity. *)
  let dom =
    Domain.spawn (fun () ->
        for i = 0 to 199 do
          Trace.emit (Trace.Bp_hit { page = i })
        done;
        (Domain.self () :> int))
  in
  let dom_id = Domain.join dom in
  Trace.disable ();
  let mine = List.filter (fun e -> e.Trace.domain = dom_id) (Trace.dump ()) in
  Alcotest.(check int) "ring kept exactly its capacity" 64 (List.length mine);
  let pages =
    List.filter_map
      (fun e -> match e.Trace.event with Trace.Bp_hit { page } -> Some page | _ -> None)
      mine
  in
  (* Oldest events were overwritten: only the last 64 pages survive. *)
  Alcotest.(check int) "oldest surviving event" 136 (List.fold_left min max_int pages);
  Alcotest.(check int) "newest surviving event" 199 (List.fold_left max 0 pages);
  Trace.clear ();
  Alcotest.(check int) "clear drops everything" 0 (List.length (Trace.dump ()));
  Trace.set_capacity 4096

(* --- end to end: the instrumented kernel under a real workload --- *)

let rec with_retry db work =
  let txn = Txn.begin_txn db.Db.txns in
  match work txn with
  | v ->
    Txn.commit db.Db.txns txn;
    v
  | exception Lock_manager.Deadlock _ ->
    Txn.abort db.Db.txns txn;
    with_retry db work

(* Deterministic rightlink traversal (the Figure 1/2 interleaving): a
   search pauses before visiting a leaf, an insert splits that leaf, and
   the resumed search must follow the rightlink — which the metrics and
   the trace must both record. *)
let force_rightlink () =
  let config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 512; page_size = 1024 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let setup = Txn.begin_txn db.Db.txns in
  List.iter
    (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i))
    [ 1; 2; 3; 4; 5; 6; 7; 9; 11; 13; 15; 17; 19 ];
  Txn.commit db.Db.txns setup;
  let searcher_paused = Semaphore.Binary.make false in
  let split_done = Semaphore.Binary.make false in
  let in_searcher = Atomic.make false in
  let paused_once = Atomic.make false in
  Gist.set_hook t (fun ev ->
      if
        Atomic.get in_searcher
        && String.length ev > 13
        && String.sub ev 0 13 = "search:visit:"
        && (not (String.equal ev "search:visit:P1"))
        && not (Atomic.get paused_once)
      then begin
        Atomic.set paused_once true;
        Semaphore.Binary.release searcher_paused;
        Semaphore.Binary.acquire split_done
      end);
  let searcher =
    Domain.spawn (fun () ->
        Atomic.set in_searcher true;
        let txn = Txn.begin_txn db.Db.txns in
        let r = Gist.search t txn (B.range 1 30) in
        Txn.commit db.Db.txns txn;
        Atomic.set in_searcher false;
        List.length r)
  in
  Semaphore.Binary.acquire searcher_paused;
  let inserter = Txn.begin_txn db.Db.txns in
  List.iter
    (fun i -> Gist.insert t inserter ~key:(B.key i) ~rid:(rid i))
    [ 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 42; 43; 44; 45 ];
  Txn.commit db.Db.txns inserter;
  Semaphore.Binary.release split_done;
  ignore (Domain.join searcher);
  (Gist.stats t).Gist.rightlink_follows

let test_end_to_end () =
  (* Thrash phase: a preloaded tree behind a 16-frame pool, then a
     single-domain steady-state workload — every operation faults pages
     in and evicts, yet the link protocol never does that I/O under a
     latch. Structure modifications during the preload legitimately pin
     while latched (they run inside NTAs), so — exactly like the seed's
     claims suite — stats reset after the preload and the invariant is
     asserted over the steady-state rounds. *)
  let thrash_config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 16; page_size = 1024 }
  in
  let tdb = Db.create ~config:thrash_config () in
  let tt = Gist.create tdb B.ext ~empty_bp:B.Empty () in
  let preload = Txn.begin_txn tdb.Db.txns in
  for i = 1 to 2_000 do
    Gist.insert tt preload ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit tdb.Db.txns preload;
  Metrics.reset ();
  Trace.clear ();
  Trace.enable ();
  let thrash_rounds = 20 in
  for round = 1 to thrash_rounds do
    let txn = Txn.begin_txn tdb.Db.txns in
    ignore (Gist.search tt txn (B.range (round * 50) ((round * 50) + 100)));
    Gist.insert tt txn ~key:(B.key (10_000 + round)) ~rid:(rid (10_000 + round));
    Txn.commit tdb.Db.txns txn
  done;
  (* Contended phase: 4 domains insert concurrently (pool sized so the
     working set stays resident, as in the concurrency suite). *)
  let config =
    { Db.default_config with Db.max_entries = 8; pool_capacity = 512; page_size = 1024 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let n_domains = 4 and per_domain = 300 in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              let k = (d * 10_000) + i in
              with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k))
            done))
  in
  List.iter Domain.join domains;
  (* Deterministic phase: guarantee at least one rightlink traversal. *)
  let tree_rightlinks = force_rightlink () in
  Trace.disable ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "every insert counted"
    (thrash_rounds + (n_domains * per_domain) + 13 + 15)
    (Metrics.counter_value snap "gist.insert");
  Alcotest.(check bool) "splits happened" true (Metrics.counter_value snap "gist.split" > 0);
  Alcotest.(check bool) "WAL appended" true (Metrics.counter_value snap "wal.append" > 0);
  Alcotest.(check bool) "pool thrashed" true (Metrics.counter_value snap "bp.evict" > 0);
  Alcotest.(check bool) "rightlink traversals recorded (registry)" true
    (Metrics.counter_value snap "gist.rightlink_follow" > 0);
  Alcotest.(check bool) "rightlink traversals recorded (per-tree)" true (tree_rightlinks > 0);
  Alcotest.(check int) "claim C1: zero I/Os under latches" 0
    (Metrics.counter_value snap "latches_held_across_io");
  (* The trace saw the traversal too. *)
  let saw_rightlink =
    List.exists
      (fun e -> match e.Trace.event with Trace.Rightlink _ -> true | _ -> false)
      (Trace.dump ())
  in
  Alcotest.(check bool) "Rightlink event traced" true saw_rightlink;
  Trace.clear ();
  (* Rendered output contains the claim counter with its zero value. *)
  let json = Metrics.render_json snap in
  Alcotest.(check bool) "json exposes the C1 counter" true
    (let sub = {|"latches_held_across_io":0|} in
     let rec find i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let suite =
  [
    Alcotest.test_case "registration is idempotent, kind-checked" `Quick test_registration;
    Alcotest.test_case "snapshot merges 4 domains" `Quick test_merge_across_domains;
    Alcotest.test_case "histogram percentile sanity" `Quick test_histogram_percentiles;
    Alcotest.test_case "trace ring wraps at capacity" `Quick test_trace_wraparound;
    Alcotest.test_case "end to end: contended workload observed" `Quick test_end_to_end;
  ]
