(* Fault-injection subsystem: injector unit tests (each action at the
   storage/WAL layer), and the seeded crash-fuzz sweep — the executable
   evidence for claims C4/C5. The sweep's point budget is tuned with the
   FUZZ_POINTS environment variable (default 200; CI raises it). *)

module Fault = Gist_fault.Fault
module Crash_fuzz = Gist_fault.Crash_fuzz
module Disk = Gist_storage.Disk
module Page_id = Gist_storage.Page_id
module Log_manager = Gist_wal.Log_manager
module Log_record = Gist_wal.Log_record
module Txn_id = Gist_util.Txn_id

let pid = Page_id.of_int

let page_size = 256

let fresh () = (Disk.create ~page_size (), Log_manager.create ())

let img c = Bytes.make page_size c

(* --- injector unit tests -------------------------------------------- *)

let test_crash_after_nth_write () =
  let disk, log = fresh () in
  let ctl = Fault.arm ~disk ~log (Fault.crash_after Fault.Disk_write 3) in
  Disk.write disk (pid 0) (img 'a');
  Disk.write disk (pid 1) (img 'b');
  Alcotest.check_raises "third write crashes" Fault.Crash (fun () ->
      Disk.write disk (pid 2) (img 'c'));
  (* Power died before the third write touched the platter. *)
  Alcotest.(check int) "only two pages exist" 2 (Disk.page_count disk);
  Alcotest.(check (list (pair string int))) "the point fired" [ ("disk.write", 3) ]
    (Fault.fired ctl);
  Fault.disarm ctl;
  Disk.write disk (pid 2) (img 'c');
  Alcotest.(check int) "disarmed disk works" 3 (Disk.page_count disk)

let test_crash_after_nth_append () =
  let disk, log = fresh () in
  let ctl = Fault.arm ~disk ~log (Fault.crash_after Fault.Wal_append 2) in
  ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin);
  Alcotest.check_raises "second append crashes" Fault.Crash (fun () ->
      ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Commit));
  (* The interrupted append never consumed an LSN. *)
  Alcotest.(check int64) "log still holds one record" 1L (Log_manager.last_lsn log);
  Fault.disarm ctl

let test_torn_write_detected () =
  let disk, log = fresh () in
  Disk.write disk (pid 0) (img 'o');
  let ctl = Fault.arm ~disk ~log (Fault.torn_write_at 1 ~keep:16) in
  Alcotest.check_raises "power dies after the torn write lands" Fault.Crash (fun () ->
      Disk.write disk (pid 0) (img 'n'));
  Fault.disarm ctl;
  Alcotest.(check bool) "checksum flags the page" false (Disk.verify disk (pid 0));
  let got = Disk.read disk (pid 0) in
  Alcotest.(check char) "prefix is the new image" 'n' (Bytes.get got 0);
  Alcotest.(check char) "tail is the old content" 'o' (Bytes.get got 16);
  (* Overwriting with a full write heals the page. *)
  Disk.write disk (pid 0) (img 'n');
  Alcotest.(check bool) "full write heals" true (Disk.verify disk (pid 0))

let test_ragged_tail_discarded () =
  let disk, log = fresh () in
  for _ = 1 to 5 do
    ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin)
  done;
  Log_manager.force log 3L;
  (* Events count from arming: the next append is event 1. *)
  let ctl = Fault.arm ~disk ~log (Fault.ragged_append_at 1 ~keep:9) in
  Alcotest.check_raises "mid-append power loss" Fault.Crash (fun () ->
      ignore (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Commit));
  Fault.disarm ctl;
  (* Materialize the ragged crash the way [materialize_crash] does. *)
  Log_manager.crash_ragged ~keep_bytes:9 log;
  Alcotest.(check int64) "durable prefix survives" 3L (Log_manager.last_lsn log);
  Alcotest.(check bool) "a torn tail persisted" true (Log_manager.has_torn_tail log);
  Alcotest.(check bool) "restart detects and discards it" true
    (Log_manager.discard_torn_tail log);
  Alcotest.(check bool) "second scan finds nothing" false (Log_manager.discard_torn_tail log);
  (* Appends continue over the discarded garbage. *)
  Alcotest.(check int64) "next append reuses the slot" 4L
    (Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin)

let test_io_error_transient () =
  let disk, log = fresh () in
  Disk.write disk (pid 0) (img 'a');
  let ctl =
    Fault.arm ~disk ~log [ { Fault.site = Fault.Disk_read; at = 2; act = Fault.Io_error_once } ]
  in
  ignore (Disk.read disk (pid 0));
  Alcotest.check_raises "second read errors" Fault.Io_error (fun () ->
      ignore (Disk.read disk (pid 0)));
  (* Transient: the point is consumed, the device recovers. *)
  Alcotest.(check char) "third read succeeds" 'a' (Bytes.get (Disk.read disk (pid 0)) 0);
  Fault.disarm ctl

let test_latency_spike () =
  let disk, log = fresh () in
  Disk.write disk (pid 0) (img 'a');
  let ctl =
    Fault.arm ~disk ~log
      [ { Fault.site = Fault.Disk_read; at = 1; act = Fault.Delay_ns 2_000_000 } ]
  in
  let t0 = Gist_util.Clock.now_ns () in
  ignore (Disk.read disk (pid 0));
  let elapsed = Gist_util.Clock.now_ns () - t0 in
  Alcotest.(check bool)
    (Printf.sprintf "read stalled ~2ms (got %dns)" elapsed)
    true (elapsed >= 1_000_000);
  Fault.disarm ctl

let test_unallocated_read_counted () =
  let disk, _ = fresh () in
  Disk.write disk (pid 3) (img 'a');
  let before = Disk.reads_unallocated disk in
  ignore (Disk.read disk (pid 1));
  (* id below page_count but never written *)
  ignore (Disk.read disk (pid 9));
  (* id beyond page_count *)
  Alcotest.(check int) "both unallocated reads counted" (before + 2)
    (Disk.reads_unallocated disk);
  ignore (Disk.read disk (pid 3));
  Alcotest.(check int) "allocated read not counted" (before + 2)
    (Disk.reads_unallocated disk)

(* --- the crash-fuzz sweep ------------------------------------------- *)

let fuzz_points () =
  match Sys.getenv_opt "FUZZ_POINTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let test_crash_fuzz_sweep () =
  let points = fuzz_points () in
  let summaries = Crash_fuzz.run_sweep ~seed:20260806 ~points () in
  List.iter
    (fun s ->
      List.iter
        (fun v -> Alcotest.failf "oracle violation: %s" v)
        s.Crash_fuzz.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s mode fired at least one crash"
           (Crash_fuzz.mode_name s.Crash_fuzz.mode))
        true
        (s.Crash_fuzz.crashes > 0))
    summaries;
  let total = List.fold_left (fun acc s -> acc + s.Crash_fuzz.points) 0 summaries in
  Alcotest.(check bool)
    (Printf.sprintf "sweep covered >= %d points (got %d)" points total)
    true (total >= points)

let suite =
  [
    Alcotest.test_case "crash after nth disk write" `Quick test_crash_after_nth_write;
    Alcotest.test_case "crash after nth WAL append" `Quick test_crash_after_nth_append;
    Alcotest.test_case "torn write detected by checksum" `Quick test_torn_write_detected;
    Alcotest.test_case "ragged WAL tail discarded at restart" `Quick
      test_ragged_tail_discarded;
    Alcotest.test_case "transient I/O error" `Quick test_io_error_transient;
    Alcotest.test_case "latency spike" `Quick test_latency_spike;
    Alcotest.test_case "unallocated reads counted" `Quick test_unallocated_read_counted;
    Alcotest.test_case "crash-fuzz sweep (FUZZ_POINTS)" `Quick test_crash_fuzz_sweep;
  ]
