(* Group-commit subsystem: writer-domain lifecycle, leader/follower
   batching, waiter wakeup under multi-domain load, the Sync/Group
   equivalence property (same visibility after crash + restart), the
   Async pipelined-durability crash contract, the abort force-elision,
   and scaled-down crash-fuzz sweeps in the two new commit modes. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn_id = Gist_util.Txn_id
module Txn = Gist_txn.Txn_manager
module Log_manager = Gist_wal.Log_manager
module Log_record = Gist_wal.Log_record
module Group_commit = Gist_wal.Group_commit
module Crash_fuzz = Gist_fault.Crash_fuzz
module Metrics = Gist_obs.Metrics
module ISet = Set.Make (Int)

let rid i = Rid.make ~page:1000 ~slot:i

let counter snap name = Metrics.counter_value snap name

let hist_count snap name =
  match Metrics.find snap name with
  | Some (Metrics.Histogram h) -> Gist_util.Stats.Histogram.count h
  | _ -> 0

let config mode = { Db.default_config with Db.commit_mode = mode; max_entries = 8 }

let scan db bt =
  let txn = Txn.begin_txn db.Db.txns in
  let got =
    Gist.search bt txn (B.range 0 max_int)
    |> List.map (fun (_, r) -> r.Rid.slot)
    |> ISet.of_list
  in
  Txn.commit db.Db.txns txn;
  got

(* --- writer-domain lifecycle ----------------------------------------- *)

let test_lifecycle () =
  let log = Log_manager.create () in
  let g = Group_commit.create ~wait_us:0 log in
  Alcotest.(check bool) "created stopped" false (Group_commit.running g);
  Group_commit.start g;
  Group_commit.start g;
  Alcotest.(check bool) "start is idempotent and leaves it running" true
    (Group_commit.running g);
  let lsn = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin in
  Group_commit.submit g lsn;
  Alcotest.(check bool) "submit waited for durability" true
    (Log_manager.durable_lsn log >= lsn);
  Group_commit.stop g;
  Group_commit.stop g;
  Alcotest.(check bool) "stop is idempotent" false (Group_commit.running g);
  (* With no writer, a waiting submit degrades to an inline flush. *)
  let lsn2 = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Commit in
  Group_commit.submit g lsn2;
  Alcotest.(check bool) "inline fallback still durable" true
    (Log_manager.durable_lsn log >= lsn2);
  (* And restartable after stop. *)
  Group_commit.start g;
  let lsn3 = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.End in
  Group_commit.submit g lsn3;
  Group_commit.stop g;
  Alcotest.(check bool) "restarted writer serves requests" true
    (Log_manager.durable_lsn log >= lsn3)

(* [stop] drains: no-wait requests enqueued before it must be durable
   once it returns. *)
let test_stop_drains () =
  let log = Log_manager.create () in
  let g = Group_commit.create ~wait_us:0 log in
  Group_commit.start g;
  (* A slow device so the drain has something pending to prove. *)
  Log_manager.set_flush_delay_ns log 2_000_000;
  let last = ref 0L in
  for _ = 1 to 5 do
    last := Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin;
    Group_commit.submit ~wait:false g !last
  done;
  Group_commit.stop g;
  Alcotest.(check bool) "everything enqueued before stop is durable" true
    (Log_manager.durable_lsn log >= !last)

(* --- leader/follower batching ---------------------------------------- *)

(* Pin the writer in a long device flush, pile up no-wait requests behind
   it, and check the whole pile is retired by (at most) one more physical
   flush — the leader/follower coalescing the subsystem exists for. *)
let test_batching_under_load () =
  let log = Log_manager.create () in
  Log_manager.set_flush_delay_ns log 20_000_000 (* 20 ms *);
  let g = Group_commit.create ~wait_us:0 log in
  Group_commit.start g;
  let snap0 = Metrics.snapshot () in
  let lsn1 = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin in
  Group_commit.submit ~wait:false g lsn1;
  (* While the writer sits in the 20 ms flush of lsn1, these accumulate
     in the next window. *)
  let last = ref lsn1 in
  for _ = 1 to 8 do
    last := Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin;
    Group_commit.submit ~wait:false g !last
  done;
  (* A waiting submit rides the same window as the eight above. *)
  let lsn_w = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Commit in
  Group_commit.submit g lsn_w;
  Alcotest.(check bool) "waiter covered" true (Log_manager.durable_lsn log >= lsn_w);
  let snap1 = Metrics.snapshot () in
  let flushes = counter snap1 "wal.group_flush" - counter snap0 "wal.group_flush" in
  let commits = counter snap1 "wal.group_commit" - counter snap0 "wal.group_commit" in
  Alcotest.(check int) "10 requests submitted" 10 commits;
  Alcotest.(check bool)
    (Printf.sprintf "10 requests needed at most 3 physical flushes (got %d)" flushes)
    true
    (flushes >= 1 && flushes <= 3);
  Group_commit.stop g

(* --- waiter wakeup under multi-domain load ---------------------------- *)

(* N committer domains x M waiting submits each: every submit must return
   with its LSN durable (a lost wakeup hangs the test; a spurious one
   returns early and trips the durability check). *)
let test_waiter_wakeup_stress () =
  let log = Log_manager.create () in
  Log_manager.set_flush_delay_ns log 50_000 (* 50 us: windows overlap submits *);
  let g = Group_commit.create ~wait_us:100 log in
  Group_commit.start g;
  let n_domains = 4 and n_txns = 50 in
  let snap0 = Metrics.snapshot () in
  let failures = Atomic.make 0 in
  let worker () =
    for _ = 1 to n_txns do
      let lsn = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Commit in
      Group_commit.submit g lsn;
      if Log_manager.durable_lsn log < lsn then Atomic.incr failures
    done
  in
  let doms = Array.init n_domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join doms;
  Group_commit.stop g;
  let snap1 = Metrics.snapshot () in
  Alcotest.(check int) "every waiter woke with its LSN durable" 0 (Atomic.get failures);
  let commits = counter snap1 "wal.group_commit" - counter snap0 "wal.group_commit" in
  let flushes = counter snap1 "wal.group_flush" - counter snap0 "wal.group_flush" in
  Alcotest.(check int) "every submit was counted" (n_domains * n_txns) commits;
  Alcotest.(check bool)
    (Printf.sprintf "windows coalesced (%d flushes for %d commits)" flushes commits)
    true
    (flushes >= 1 && flushes <= commits)

(* --- Sync == Group visibility after crash + restart (qcheck) ---------- *)

(* A history is a list of transactions, each inserting a fresh batch of
   keys and then committing or aborting. Whatever the durability route,
   after a crash at history end + restart, exactly the committed keys are
   visible — and Sync and Group agree key for key. (Group waits for its
   window flush, so its durability contract is Sync's.) *)
let run_history ~mode txns =
  let db = Db.create ~config:(config mode) () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let root = Gist.root bt in
  let next = ref 0 in
  let committed = ref ISet.empty in
  List.iter
    (fun (n_keys, commit) ->
      let txn = Txn.begin_txn db.Db.txns in
      let keys =
        List.init (1 + (n_keys mod 4)) (fun _ ->
            incr next;
            !next)
      in
      List.iter (fun k -> Gist.insert bt txn ~key:(B.key k) ~rid:(rid k)) keys;
      if commit then begin
        Txn.commit db.Db.txns txn;
        committed := ISet.union !committed (ISet.of_list keys)
      end
      else Txn.abort db.Db.txns txn)
    txns;
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext ];
  let bt' = Gist.open_existing db' B.ext ~root () in
  let got = scan db' bt' in
  Db.close db';
  (got, !committed)

let prop_sync_group_equivalent =
  QCheck.Test.make ~name:"Sync and Group commit: same visibility after crash+restart"
    ~count:12
    QCheck.(list_of_size (Gen.int_range 1 6) (pair small_nat bool))
    (fun txns ->
      let got_s, want_s = run_history ~mode:Group_commit.Sync txns in
      let got_g, want_g = run_history ~mode:Group_commit.Group txns in
      ISet.equal got_s want_s && ISet.equal got_g want_g && ISet.equal got_s got_g)

(* --- Async: pipelined durability's crash contract --------------------- *)

let test_async_commit_may_roll_back () =
  let db = Db.create ~config:(config Group_commit.Async) () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let root = Gist.root bt in
  (* Phase 1: a durably committed baseline. *)
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert bt txn ~key:(B.key 1) ~rid:(rid 1);
  Txn.commit db.Db.txns txn;
  Log_manager.force_all db.Db.log;
  (* Phase 2: halt the writer so nothing can flush, then async-commit a
     3-key transaction. Commit returns, locks are gone — but durability
     never arrives before the power does. *)
  (match db.Db.group with Some g -> Group_commit.halt g | None -> Alcotest.fail "no writer");
  let txn2 = Txn.begin_txn db.Db.txns in
  List.iter (fun k -> Gist.insert bt txn2 ~key:(B.key k) ~rid:(rid k)) [ 2; 3; 4 ];
  Txn.commit db.Db.txns txn2;
  Alcotest.(check bool) "async commit returned without durability" true
    (Log_manager.durable_lsn db.Db.log < Txn.last_lsn txn2);
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext ];
  let bt' = Gist.open_existing db' B.ext ~root () in
  let got = scan db' bt' in
  (* The async-committed suffix rolled back atomically; the flushed
     prefix survived. *)
  Alcotest.(check bool)
    (Printf.sprintf "all-or-nothing: got {%s}"
       (ISet.elements got |> List.map string_of_int |> String.concat ","))
    true
    (ISet.equal got (ISet.of_list [ 1 ]) || ISet.equal got (ISet.of_list [ 1; 2; 3; 4 ]));
  Alcotest.(check bool) "the un-flushed commit was lost" true
    (ISet.equal got (ISet.of_list [ 1 ]));
  Db.close db'

let test_async_flushed_commit_survives () =
  let db = Db.create ~config:(config Group_commit.Async) () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let root = Gist.root bt in
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert bt txn ~key:(B.key 7) ~rid:(rid 7);
  Txn.commit db.Db.txns txn;
  (* One flush window later the commit is durable — crash can no longer
     take it. [stop] drains the window deterministically. *)
  (match db.Db.group with Some g -> Group_commit.stop g | None -> Alcotest.fail "no writer");
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext ];
  let bt' = Gist.open_existing db' B.ext ~root () in
  Alcotest.(check bool) "flushed async commit survives" true
    (ISet.equal (scan db' bt') (ISet.of_list [ 7 ]));
  Db.close db'

(* --- abort takes no durability barrier -------------------------------- *)

let test_abort_elides_force () =
  let db = Db.create () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let snap0 = Metrics.snapshot () in
  let forces0 = Log_manager.forces db.Db.log in
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert bt txn ~key:(B.key 1) ~rid:(rid 1);
  Txn.abort db.Db.txns txn;
  let snap1 = Metrics.snapshot () in
  Alcotest.(check int) "abort forced nothing" forces0 (Log_manager.forces db.Db.log);
  Alcotest.(check int) "the saved barrier was counted" 1
    (counter snap1 "wal.force_elided" - counter snap0 "wal.force_elided");
  (* The un-forced rollback is still correct after a crash. *)
  let root = Gist.root bt in
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext ];
  let bt' = Gist.open_existing db' B.ext ~root () in
  Alcotest.(check bool) "aborted insert stays invisible" true
    (ISet.is_empty (scan db' bt'))

(* --- wal.force_wait_ns ------------------------------------------------ *)

let test_force_wait_histogram () =
  let log = Log_manager.create () in
  Log_manager.set_flush_delay_ns log 1_000_000 (* 1 ms *);
  let snap0 = Metrics.snapshot () in
  let lsn = Log_manager.append log ~txn:Txn_id.none ~prev:0L Log_record.Begin in
  Log_manager.force log lsn;
  let snap1 = Metrics.snapshot () in
  Alcotest.(check int) "one stall recorded" 1
    (hist_count snap1 "wal.force_wait_ns" - hist_count snap0 "wal.force_wait_ns");
  (* Already durable: the fast path records no stall. *)
  Log_manager.force log lsn;
  let snap2 = Metrics.snapshot () in
  Alcotest.(check int) "noop force records nothing" 0
    (hist_count snap2 "wal.force_wait_ns" - hist_count snap1 "wal.force_wait_ns")

(* --- crash-fuzz in the new commit modes ------------------------------- *)

let test_fuzz_group_mode () =
  List.iter
    (fun s ->
      List.iter (fun v -> Alcotest.failf "oracle violation: %s" v) s.Crash_fuzz.violations)
    (Crash_fuzz.run_sweep ~commit_mode:Group_commit.Group ~seed:20260808 ~points:20 ())

let test_fuzz_async_mode () =
  List.iter
    (fun s ->
      List.iter (fun v -> Alcotest.failf "oracle violation: %s" v) s.Crash_fuzz.violations)
    (Crash_fuzz.run_sweep ~commit_mode:Group_commit.Async ~seed:20260809 ~points:20 ())

let suite =
  [
    Alcotest.test_case "writer lifecycle: start/stop/restart, inline fallback" `Quick
      test_lifecycle;
    Alcotest.test_case "stop drains the pending window" `Quick test_stop_drains;
    Alcotest.test_case "leader/follower batching under load" `Quick test_batching_under_load;
    Alcotest.test_case "waiter wakeup: 4 domains x 50 txns" `Quick test_waiter_wakeup_stress;
    QCheck_alcotest.to_alcotest prop_sync_group_equivalent;
    Alcotest.test_case "async commit may roll back after crash (atomically)" `Quick
      test_async_commit_may_roll_back;
    Alcotest.test_case "async commit survives once its window flushed" `Quick
      test_async_flushed_commit_survives;
    Alcotest.test_case "abort takes no durability barrier" `Quick test_abort_elides_force;
    Alcotest.test_case "wal.force_wait_ns records stalls, not noops" `Quick
      test_force_wait_histogram;
    Alcotest.test_case "crash-fuzz sweep, commit_mode=group" `Quick test_fuzz_group_mode;
    Alcotest.test_case "crash-fuzz sweep, commit_mode=async" `Quick test_fuzz_async_mode;
  ]
