(* Optimistic lock coupling on the search path (PROTOCOL.md §7).

   - version-word lifecycle unit tests on the latch itself;
   - a qcheck equivalence property: OLC search == S-latch search on the
     same tree, across random op histories and queries;
   - a concurrent mixer: writer domains churn odd keys through
     insert/split/delete while a reader searches stable even keys
     latch-free and must see exactly them;
   - a forced-restart test: a writer domain flips the root's version word
     under the reader, which must restart (olc.restart > 0) and still
     return correct results;
   - knob tests: olc_retries = 0 forces the fallback path; olc = false
     takes no optimistic attempts at all;
   - a crash-fuzz re-run (clean mode) pinned to olc = true, the
     configuration [Crash_fuzz.config] now ships.

   The mixer and flipper searches run at Read_committed: OLC only changes
   internal-node visits, and degree-2 keeps the reader's record locks
   instant-duration so the churn domains never deadlock against it. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Latch = Gist_storage.Latch
module Buffer_pool = Gist_storage.Buffer_pool
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager
module Metrics = Gist_obs.Metrics
module Crash_fuzz = Gist_fault.Crash_fuzz

let rid i = Rid.make ~page:1000 ~slot:i

let small_config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let make_tree ?(config = small_config) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let sorted_keys results =
  results |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare

let counter name = Metrics.counter_value (Metrics.snapshot ()) name

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

(* Deadlock-retry for transactions racing the mixer. *)
let rec with_retry db f =
  let txn = Txn.begin_txn db.Db.txns in
  match f txn with
  | v ->
    Txn.commit db.Db.txns txn;
    v
  | exception Lock_manager.Deadlock _ ->
    Txn.abort db.Db.txns txn;
    with_retry db f

(* --- version-word lifecycle ------------------------------------------ *)

let test_latch_version_word () =
  let l = Latch.create () in
  Alcotest.(check int) "fresh latch version is 0" 0 (Latch.version l);
  (match Latch.optimistic l with
  | Some 0 -> ()
  | v -> Alcotest.failf "optimistic on a fresh latch: %s"
           (match v with Some n -> string_of_int n | None -> "None"));
  Latch.acquire l Latch.S;
  Alcotest.(check int) "S acquire leaves the word alone" 0 (Latch.version l);
  Latch.release l Latch.S;
  let v0 = match Latch.optimistic l with Some v -> v | None -> Alcotest.fail "unheld yet odd" in
  Latch.acquire l Latch.X;
  Alcotest.(check int) "X acquire bumps to odd" 1 (Latch.version l);
  Alcotest.(check bool) "word is odd: no optimistic entry" true (Latch.optimistic l = None);
  Alcotest.(check bool) "stale snapshot fails validation" false (Latch.validate l v0);
  Latch.release l Latch.X;
  Alcotest.(check int) "X release bumps back to even" 2 (Latch.version l);
  Alcotest.(check bool) "snapshot from before the writer stays dead" false (Latch.validate l v0);
  Alcotest.(check bool) "try_acquire X bumps too" true (Latch.try_acquire l Latch.X);
  Alcotest.(check int) "odd while held" 3 (Latch.version l);
  Latch.release l Latch.X;
  let v1 = match Latch.optimistic l with Some v -> v | None -> Alcotest.fail "unheld yet odd" in
  Alcotest.(check bool) "a fresh snapshot validates while nothing moves" true
    (Latch.validate l v1)

(* --- qcheck equivalence: OLC == S-latch on a quiescent tree ---------- *)

let test_equivalence_qcheck =
  QCheck.Test.make ~count:40 ~name:"OLC search equals S-latch search"
    QCheck.(
      pair (small_list (pair (int_bound 500) bool)) (small_list (pair (int_bound 500) (int_bound 60))))
    (fun (ops, queries) ->
      let db, t = make_tree () in
      let txn = Txn.begin_txn db.Db.txns in
      let present = Hashtbl.create 64 in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            if not (Hashtbl.mem present k) then begin
              Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
              Hashtbl.replace present k ()
            end
          end
          else if Hashtbl.mem present k then begin
            ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k));
            Hashtbl.remove present k
          end)
        ops;
      Txn.commit db.Db.txns txn;
      let txn = Txn.begin_txn db.Db.txns in
      let ok =
        List.for_all
          (fun (lo, w) ->
            let q = B.range lo (lo + w) in
            let optimistic = sorted_keys (Gist.search ~olc:true t txn q) in
            let latched = sorted_keys (Gist.search ~olc:false t txn q) in
            optimistic = latched)
          queries
      in
      Txn.commit db.Db.txns txn;
      ok)

(* --- concurrent mixer: stable evens must read exactly ---------------- *)

let test_concurrent_mixer () =
  let db, t = make_tree () in
  let evens = List.init 300 (fun i -> 2 * i) in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) evens);
  let stop = Atomic.make false in
  let mixers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            (* Churn a private slice of odd keys: every insert/delete pair
               forces splits and GC around the evens the reader scans. *)
            let base = 1 + (2 * d * 1000) in
            let i = ref 0 in
            while not (Atomic.get stop) do
              let k = base + (2 * (!i mod 400)) in
              with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k));
              with_retry db (fun txn ->
                  ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k)));
              incr i
            done))
  in
  let attempts0 = counter "olc.read_attempt" in
  let deadline = Unix.gettimeofday () +. 0.5 in
  let rounds = ref 0 in
  while Unix.gettimeofday () < deadline do
    let lo = 2 * (!rounds mod 250) in
    let expect = List.filter (fun k -> k >= lo && k <= lo + 100) evens in
    let got =
      with_retry db (fun txn ->
          Gist.search ~isolation:`Read_committed ~olc:true t txn (B.range lo (lo + 100)))
    in
    let got_evens = List.filter (fun k -> k mod 2 = 0) (sorted_keys got) in
    Alcotest.(check (list int))
      (Printf.sprintf "round %d: stable even keys in [%d,%d]" !rounds lo (lo + 100))
      expect got_evens;
    incr rounds
  done;
  Atomic.set stop true;
  List.iter Domain.join mixers;
  Alcotest.(check bool) "reader actually ran" true (!rounds > 0);
  Alcotest.(check bool) "optimistic visits actually happened" true
    (counter "olc.read_attempt" > attempts0);
  Alcotest.(check int) "no latches leaked" 0 (Latch.held_by_self ());
  (* Quiesced: both traversals agree on the final tree. *)
  let txn = Txn.begin_txn db.Db.txns in
  let o = sorted_keys (Gist.search ~olc:true t txn (B.range 0 10_000)) in
  let s = sorted_keys (Gist.search ~olc:false t txn (B.range 0 10_000)) in
  Txn.commit db.Db.txns txn;
  Alcotest.(check (list int)) "post-mixer OLC == S-latch" s o;
  check_tree t

(* --- forced restarts: a writer flips the version word mid-read ------- *)

let test_forced_restarts () =
  let db, t = make_tree () in
  let keys = List.init 400 (fun i -> i) in
  with_retry db (fun txn ->
      List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) keys);
  let root = Gist.root t in
  let stop = Atomic.make false in
  let flipper =
    Domain.spawn (fun () ->
        (* X-latch the root frame in a tight loop, holding each grant for
           a few microseconds: optimistic readers see the word odd (or
           changed) and must restart. No data is modified, so results
           stay full-range correct. *)
        while not (Atomic.get stop) do
          Buffer_pool.with_page db.Db.pool root Latch.X (fun _ ->
              let t0 = Gist_util.Clock.now_ns () in
              while Gist_util.Clock.now_ns () - t0 < 5_000 do
                Domain.cpu_relax ()
              done)
        done)
  in
  let restarts0 = counter "olc.restart" in
  let deadline = Unix.gettimeofday () +. 0.5 in
  let n = ref 0 in
  while Unix.gettimeofday () < deadline do
    let got =
      with_retry db (fun txn ->
          Gist.search ~isolation:`Read_committed ~olc:true t txn (B.range 0 1_000))
    in
    Alcotest.(check int)
      (Printf.sprintf "search %d sees every key through the flipping" !n)
      (List.length keys) (List.length got);
    incr n
  done;
  Atomic.set stop true;
  Domain.join flipper;
  Alcotest.(check bool) "version flips forced restarts" true (counter "olc.restart" > restarts0);
  Alcotest.(check int) "no latches leaked" 0 (Latch.held_by_self ())

(* --- knobs ----------------------------------------------------------- *)

let test_zero_retries_falls_back () =
  let config = { small_config with Db.olc = true; olc_retries = 0 } in
  let db, t = make_tree ~config () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) (List.init 200 Fun.id);
  let fallbacks0 = counter "olc.fallback" in
  let attempts0 = counter "olc.read_attempt" in
  Alcotest.(check int) "exhausted budget still answers correctly" 200
    (List.length (Gist.search t txn (B.range 0 1_000)));
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "every internal visit fell back" true
    (counter "olc.fallback" > fallbacks0);
  Alcotest.(check int) "no optimistic attempt was made" attempts0 (counter "olc.read_attempt")

let test_olc_off_takes_latches () =
  let config = { small_config with Db.olc = false } in
  let db, t = make_tree ~config () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun k -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k)) (List.init 200 Fun.id);
  let attempts0 = counter "olc.read_attempt" in
  Alcotest.(check int) "classic path answers correctly" 200
    (List.length (Gist.search t txn (B.range 0 1_000)));
  Txn.commit db.Db.txns txn;
  Alcotest.(check int) "olc = false means zero optimistic reads" attempts0
    (counter "olc.read_attempt")

(* --- crash fuzz with OLC pinned on ----------------------------------- *)

let test_crash_fuzz_with_olc () =
  (* [Crash_fuzz.config] sets olc = true; a clean-mode slice of the sweep
     exercises crash/recover cycles whose workload and post-restart
     oracle scans both traverse latch-free. *)
  let s = Crash_fuzz.run_mode ~seed:20260808 ~points:25 Crash_fuzz.Clean in
  List.iter (fun v -> Alcotest.failf "oracle violation under OLC: %s" v) s.Crash_fuzz.violations;
  Alcotest.(check bool) "the sweep crashed at least once" true (s.Crash_fuzz.crashes > 0)

let force_restarts = Sys.getenv_opt "OLC_FORCE_RESTARTS" <> None

let suite =
  [
    Alcotest.test_case "latch version-word lifecycle" `Quick test_latch_version_word;
    QCheck_alcotest.to_alcotest test_equivalence_qcheck;
    Alcotest.test_case "concurrent mixer: OLC reads stay exact" `Quick test_concurrent_mixer;
    Alcotest.test_case "writer flips versions: reader restarts" `Quick test_forced_restarts;
    Alcotest.test_case "olc_retries = 0 forces the fallback path" `Quick
      test_zero_retries_falls_back;
    Alcotest.test_case "olc = false takes no optimistic reads" `Quick test_olc_off_takes_latches;
    Alcotest.test_case "crash-fuzz (clean mode) with olc = true" `Quick test_crash_fuzz_with_olc;
  ]
  @
  (* bin/check.sh --force-restarts: re-run the adversarial pair a few more
     times to shake out interleavings the single pass may miss. *)
  if force_restarts then
    List.init 3 (fun i ->
        Alcotest.test_case
          (Printf.sprintf "forced-restart stress %d (OLC_FORCE_RESTARTS)" i)
          `Slow test_forced_restarts)
  else []
