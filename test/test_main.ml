let () =
  Alcotest.run "gist-repro"
    [
      ("util", Test_util.suite);
      ("storage", Test_storage.suite);
      ("wal", Test_wal.suite);
      ("lock", Test_lock.suite);
      ("txn", Test_txn.suite);
      ("pred", Test_pred.suite);
      ("node", Test_node.suite);
      ("gist", Test_gist.suite);
      ("ams", Test_ams.suite);
      ("isolation", Test_isolation.suite);
      ("recovery", Test_recovery.suite);
      ("concurrency", Test_concurrency.suite);
      ("unique", Test_unique.suite);
      ("vacuum", Test_vacuum.suite);
      ("cursor", Test_cursor.suite);
      ("baseline", Test_baseline.suite);
      ("claims", Test_claims.suite);
      ("harness", Test_harness.suite);
      ("bulk", Test_bulk.suite);
      ("multitree", Test_multitree.suite);
      ("edge", Test_edge.suite);
      ("obs", Test_obs.suite);
      ("node_cache", Test_node_cache.suite);
      ("fault", Test_fault.suite);
      ("props", Test_props.suite);
      ("scaling", Test_scaling.suite);
      ("olc", Test_olc.suite);
      ("group_commit", Test_group_commit.suite);
      ("eviction", Test_eviction.suite);
      ("mvcc", Test_mvcc.suite);
    ]
