(* Unit tests for node layout: page codec, entry manipulation, capacity. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Page_id = Gist_storage.Page_id
module Txn_id = Gist_util.Txn_id
module Buffer_pool = Gist_storage.Buffer_pool
module Disk = Gist_storage.Disk

let ext = B.ext

let le k ?(creator = Txn_id.none) ?(deleter = Txn_id.none) rid_slot =
  {
    Node.le_key = B.key k;
    le_rid = Rid.make ~page:9 ~slot:rid_slot;
    le_creator = creator;
    le_deleter = deleter;
  }

let with_frame f =
  let disk = Disk.create ~page_size:1024 () in
  let pool = Buffer_pool.create ~capacity:4 ~disk ~force_log:(fun _ -> ()) () in
  let frame = Buffer_pool.pin_new pool (Page_id.of_int 1) in
  let r = f frame in
  Buffer_pool.unpin pool frame;
  r

let test_leaf_roundtrip () =
  with_frame (fun frame ->
      let n = Node.make_leaf ~id:(Page_id.of_int 1) ~bp:(B.range 1 100) in
      Node.add_leaf_entry n (le 5 1);
      Node.add_leaf_entry n (le 10 ~deleter:(Txn_id.of_int 3) 2);
      n.Node.nsn <- 77L;
      n.Node.rightlink <- Page_id.of_int 12;
      Node.write ext n frame;
      let n' = Node.read ext frame in
      Alcotest.(check bool) "leaf" true (Node.is_leaf n');
      Alcotest.(check int) "entries" 2 (Node.entry_count n');
      Alcotest.(check int) "live entries" 1 (Node.live_leaf_count n');
      Alcotest.(check int64) "nsn" 77L n'.Node.nsn;
      Alcotest.(check int) "rightlink" 12 (Page_id.to_int n'.Node.rightlink);
      Alcotest.(check bool) "bp" true (B.ext.Gist_core.Ext.matches_exact n'.Node.bp (B.range 1 100));
      match Node.find_leaf_by_rid n' (Rid.make ~page:9 ~slot:2) with
      | Some e ->
        Alcotest.(check bool) "deleter preserved" true
          (Txn_id.equal e.Node.le_deleter (Txn_id.of_int 3))
      | None -> Alcotest.fail "entry lost")

let test_internal_roundtrip () =
  with_frame (fun frame ->
      let n = Node.make_internal ~id:(Page_id.of_int 1) ~level:2 ~bp:(B.range 1 1000) in
      Node.add_internal_entry n { Node.ie_bp = B.range 1 500; ie_child = Page_id.of_int 3 };
      Node.add_internal_entry n { Node.ie_bp = B.range 501 1000; ie_child = Page_id.of_int 4 };
      Node.write ext n frame;
      let n' = Node.read ext frame in
      Alcotest.(check bool) "internal" false (Node.is_leaf n');
      Alcotest.(check int) "level" 2 n'.Node.level;
      Alcotest.(check int) "entries" 2 (Node.entry_count n');
      match Node.find_child n' (Page_id.of_int 4) with
      | Some e ->
        Alcotest.(check bool) "child bp" true
          (B.ext.Gist_core.Ext.matches_exact e.Node.ie_bp (B.range 501 1000))
      | None -> Alcotest.fail "child entry lost")

let test_unformatted_detection () =
  with_frame (fun frame ->
      Alcotest.(check bool) "zero page unformatted" false (Node.is_formatted frame);
      Alcotest.(check bool) "read raises" true
        (match Node.read ext frame with
        | _ -> false
        | exception Gist_util.Codec.Corrupt _ -> true);
      let n = Node.make_leaf ~id:(Page_id.of_int 1) ~bp:B.Empty in
      Node.write ext n frame;
      Alcotest.(check bool) "formatted after write" true (Node.is_formatted frame))

let test_live_vs_marked_lookup () =
  let n = Node.make_leaf ~id:(Page_id.of_int 1) ~bp:(B.range 0 10) in
  (* RID reuse: marked twin + live reincarnation. *)
  Node.add_leaf_entry n (le 5 ~deleter:(Txn_id.of_int 7) 1);
  Node.add_leaf_entry n (le 5 1);
  Alcotest.(check bool) "find_live skips marked" true
    (match Node.find_live_by_rid n (Rid.make ~page:9 ~slot:1) with
    | Some e -> not (Txn_id.is_some e.Node.le_deleter)
    | None -> false);
  Alcotest.(check bool) "find_marked_by txn" true
    (Node.find_marked_by n (Rid.make ~page:9 ~slot:1) (Txn_id.of_int 7) <> None);
  Alcotest.(check bool) "remove_marked keeps live" true
    (Node.remove_marked_by_rid n (Rid.make ~page:9 ~slot:1));
  Alcotest.(check int) "one left" 1 (Node.entry_count n);
  Alcotest.(check int) "the live one" 1 (Node.live_leaf_count n);
  Alcotest.(check bool) "remove_live" true (Node.remove_live_by_rid n (Rid.make ~page:9 ~slot:1));
  Alcotest.(check int) "empty" 0 (Node.entry_count n)

let test_capacity () =
  let n = Node.make_leaf ~id:(Page_id.of_int 1) ~bp:B.Empty in
  Alcotest.(check bool) "empty fits" true
    (Node.fits ext n ~page_size:1024 ~extra:0 ~max_entries:100);
  for i = 1 to 100 do
    Node.add_leaf_entry n (le i i)
  done;
  Alcotest.(check bool) "fanout cap respected" false
    (Node.fits ext n ~page_size:65536 ~extra:0 ~max_entries:100);
  Alcotest.(check bool) "byte budget respected" false
    (Node.fits ext n ~page_size:1024 ~extra:0 ~max_entries:10_000);
  Alcotest.(check bool) "body size positive" true (Node.body_size ext n > 100)

let test_entry_images () =
  let e = le 42 7 in
  let s = Node.encode_leaf_entry ext e in
  (match Node.decode_entry ext s with
  | `Leaf e' ->
    Alcotest.(check bool) "leaf image roundtrip" true
      (ext.Gist_core.Ext.matches_exact e'.Node.le_key (B.key 42)
      && Rid.equal e'.Node.le_rid e.Node.le_rid)
  | `Internal _ -> Alcotest.fail "wrong kind");
  let ie = { Node.ie_bp = B.range 1 5; ie_child = Page_id.of_int 8 } in
  match Node.decode_entry ext (Node.encode_internal_entry ext ie) with
  | `Internal ie' ->
    Alcotest.(check bool) "internal image roundtrip" true
      (ext.Gist_core.Ext.matches_exact ie'.Node.ie_bp (B.range 1 5)
      && Page_id.equal ie'.Node.ie_child (Page_id.of_int 8))
  | `Leaf _ -> Alcotest.fail "wrong kind"

let test_recompute_bp () =
  let n = Node.make_leaf ~id:(Page_id.of_int 1) ~bp:(B.range 0 1000) in
  Node.add_leaf_entry n (le 5 1);
  Node.add_leaf_entry n (le 50 2);
  Node.recompute_bp ext n;
  Alcotest.(check bool) "tightened" true
    (ext.Gist_core.Ext.matches_exact n.Node.bp (B.range 5 50));
  (* Empty node keeps its current BP. *)
  ignore (Node.remove_leaf_by_rid n (Rid.make ~page:9 ~slot:1));
  ignore (Node.remove_leaf_by_rid n (Rid.make ~page:9 ~slot:2));
  Node.recompute_bp ext n;
  Alcotest.(check bool) "empty keeps bp" true
    (ext.Gist_core.Ext.matches_exact n.Node.bp (B.range 5 50))

let suite =
  [
    Alcotest.test_case "leaf page roundtrip" `Quick test_leaf_roundtrip;
    Alcotest.test_case "internal page roundtrip" `Quick test_internal_roundtrip;
    Alcotest.test_case "unformatted detection" `Quick test_unformatted_detection;
    Alcotest.test_case "live vs marked lookups" `Quick test_live_vs_marked_lookup;
    Alcotest.test_case "capacity accounting" `Quick test_capacity;
    Alcotest.test_case "entry images" `Quick test_entry_images;
    Alcotest.test_case "recompute bp" `Quick test_recompute_bp;
  ]
