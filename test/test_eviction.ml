(* Larger-than-memory buffer management (E17's correctness half):

   - a qcheck equivalence property: the eviction policy is invisible to
     tree contents — identical op histories through an Lru pool and a
     Two_q pool end in identical trees;
   - scan resistance: a full-tree scan through a 2Q pool must not evict
     the protected hot set the way plain LRU does;
   - the background writer keeps foreground eviction clean
     (bp.fg_writeback = 0) while the pool thrashes;
   - fuzzy checkpoints fire from the writer domain and recovery after a
     crash replays from the last anchor (recovery.redo_span recorded);
   - cursor scans hand upcoming pages to the writer domain for
     read-ahead (bp.prefetch.issued);
   - a bg-enabled crash-fuzz sweep: every fault mode with the writer
     domain + 200µs fuzzy checkpoints + prefetch racing the crash point
     (point budget shared with test_fault via FUZZ_POINTS). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Buffer_pool = Gist_storage.Buffer_pool
module Txn = Gist_txn.Txn_manager
module Metrics = Gist_obs.Metrics
module Crash_fuzz = Gist_fault.Crash_fuzz

let rid i = Rid.make ~page:1000 ~slot:i

let counter name = Metrics.counter_value (Metrics.snapshot ()) name

let tiny_config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 32; page_size = 1024 }

let make_tree ?(config = tiny_config) ?(n = 0) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  if n > 0 then begin
    let txn = Txn.begin_txn db.Db.txns in
    for i = 1 to n do
      Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
    done;
    Txn.commit db.Db.txns txn
  end;
  (db, t)

let sorted_keys results =
  results |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

(* --- policy equivalence: eviction order never changes tree contents --- *)

let test_policy_equivalence_qcheck =
  QCheck.Test.make ~count:30 ~name:"Lru and Two_q pools end in identical trees"
    QCheck.(small_list (pair (int_bound 600) bool))
    (fun ops ->
      let run policy =
        let config = { tiny_config with Db.eviction_policy = policy } in
        let db, t = make_tree ~config () in
        let txn = Txn.begin_txn db.Db.txns in
        (* Keep the history well-formed: no duplicate live (key, rid)
           inserts, no deletes of absent keys — the generator is free-form
           but the tree's contract is not. *)
        let present = Hashtbl.create 64 in
        List.iter
          (fun (k, ins) ->
            if ins then begin
              if not (Hashtbl.mem present k) then begin
                Hashtbl.add present k ();
                Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
              end
            end
            else if Hashtbl.mem present k then begin
              Hashtbl.remove present k;
              ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k))
            end)
          ops;
        Txn.commit db.Db.txns txn;
        let txn = Txn.begin_txn db.Db.txns in
        let got = sorted_keys (Gist.search t txn (B.range 0 1_000)) in
        Txn.commit db.Db.txns txn;
        (got, Tree_check.ok (Tree_check.check t))
      in
      let lru, lru_ok = run Buffer_pool.Lru in
      let two_q, two_q_ok = run Buffer_pool.Two_q in
      lru_ok && two_q_ok && lru = two_q)

(* --- scan resistance ------------------------------------------------- *)

(* Warm a hot range until it is pool-resident, sweep the whole tree once,
   then re-probe the hot range and count the misses the sweep caused. *)
let hot_misses_after_scan policy =
  let config =
    (* Generous per-shard headroom: the pool is sharded, and a hot set
       that overloads one shard would miss for capacity reasons the
       policy cannot fix. *)
    { tiny_config with Db.pool_capacity = 256; eviction_policy = policy }
  in
  let db, t = make_tree ~config ~n:4_000 () in
  let probe_hot txn = ignore (Gist.search t txn (B.range 1 200)) in
  let txn = Txn.begin_txn db.Db.txns in
  for _ = 1 to 5 do
    probe_hot txn
  done;
  (* Hot set is resident: a probe now should not miss. *)
  let m0 = Buffer_pool.misses db.Db.pool in
  let h0 = Buffer_pool.hits db.Db.pool in
  probe_hot txn;
  let warm_misses = Buffer_pool.misses db.Db.pool - m0 in
  let hot_pages = Buffer_pool.hits db.Db.pool - h0 + warm_misses in
  ignore (Gist.search t txn (B.range 0 10_000));
  let m1 = Buffer_pool.misses db.Db.pool in
  probe_hot txn;
  Txn.commit db.Db.txns txn;
  let after = Buffer_pool.misses db.Db.pool - m1 in
  (warm_misses, after, hot_pages)

let test_scan_resistance () =
  let saved0 = counter "bp.scan_resist_saved" in
  let warm_2q, after_2q, hot_pages = hot_misses_after_scan Buffer_pool.Two_q in
  let _, after_lru, _ = hot_misses_after_scan Buffer_pool.Lru in
  (* Sharding skews residency a little; the hot set must be essentially
     resident, not perfectly so. *)
  Alcotest.(check bool)
    (Printf.sprintf "hot set resident before the scan (2Q: %d/%d misses)" warm_2q hot_pages)
    true
    (warm_2q * 10 < hot_pages);
  Alcotest.(check bool)
    (Printf.sprintf "scan evicts the LRU hot set (%d/%d misses)" after_lru hot_pages)
    true
    (after_lru > hot_pages / 2);
  Alcotest.(check bool)
    (Printf.sprintf "2Q keeps the hot set >90%% resident (%d/%d misses)" after_2q hot_pages)
    true
    (after_2q * 10 < hot_pages);
  Alcotest.(check bool) "probation victims were chosen over protected frames" true
    (counter "bp.scan_resist_saved" > saved0)

(* --- background writer: foreground eviction stays clean -------------- *)

let test_bg_writer_clean_foreground () =
  let config = { tiny_config with Db.bg_writer = true } in
  let db, t = make_tree ~config () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 3_000 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  for round = 0 to 19 do
    ignore (Gist.search t txn (B.range (round * 100) ((round * 100) + 150)))
  done;
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "pool thrashed (evictions happened)" true
    (Buffer_pool.evictions db.Db.pool > 0);
  Alcotest.(check bool) "the writer domain flushed" true
    (Buffer_pool.bg_writebacks db.Db.pool > 0);
  Alcotest.(check int) "foreground eviction never wrote back" 0
    (Buffer_pool.fg_writebacks db.Db.pool);
  Alcotest.(check int) "zero I/Os under a held latch" 0
    (Buffer_pool.io_while_latched db.Db.pool);
  check_tree t;
  Db.close db

(* --- fuzzy checkpoints bound the redo span --------------------------- *)

let test_fuzzy_checkpoint_recovery () =
  let config =
    { tiny_config with Db.bg_writer = true; checkpoint_interval_us = 500 }
  in
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let ckpt0 = counter "ckpt.fuzzy" in
  for batch = 0 to 19 do
    let txn = Txn.begin_txn db.Db.txns in
    for i = 1 to 100 do
      Gist.insert t txn ~key:(B.key ((batch * 100) + i)) ~rid:(rid ((batch * 100) + i))
    done;
    Txn.commit db.Db.txns txn;
    (* Give the writer domain a checkpoint window between batches. *)
    Unix.sleepf 0.001
  done;
  Alcotest.(check bool) "fuzzy checkpoints fired during the workload" true
    (counter "ckpt.fuzzy" > ckpt0);
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  let txn = Txn.begin_txn db'.Db.txns in
  let got = sorted_keys (Gist.search t' txn (B.range 0 10_000)) in
  Txn.commit db'.Db.txns txn;
  Alcotest.(check int) "every committed key survives the crash" 2_000 (List.length got);
  (match Metrics.find (Metrics.snapshot ()) "recovery.redo_span" with
  | Some (Metrics.Summary s) ->
    Alcotest.(check bool) "restart recorded its redo span" true
      (Gist_util.Stats.Summary.count s > 0)
  | _ -> Alcotest.fail "recovery.redo_span summary not registered");
  check_tree t';
  Db.close db'

(* --- range-scan prefetch --------------------------------------------- *)

let test_prefetch_on_scan () =
  let config =
    { tiny_config with Db.pool_capacity = 48; bg_writer = true; prefetch_depth = 4 }
  in
  let db, t = make_tree ~config ~n:3_000 () in
  let issued0 = counter "bp.prefetch.issued" in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 0 10_000) in
  let n = ref 0 in
  let rec drain () =
    match Cursor.next cursor with
    | Some _ ->
      incr n;
      drain ()
    | None -> ()
  in
  drain ();
  Cursor.close cursor;
  Txn.commit db.Db.txns txn;
  (* Let the writer domain drain whatever is still queued. *)
  Unix.sleepf 0.005;
  Alcotest.(check int) "cursor saw every key" 3_000 !n;
  Alcotest.(check bool) "the scan issued prefetches" true
    (counter "bp.prefetch.issued" > issued0);
  Db.close db

(* --- crash fuzz with the writer domain racing the fault -------------- *)

let fuzz_points () =
  match Sys.getenv_opt "FUZZ_POINTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let test_crash_fuzz_bg () =
  let points = fuzz_points () in
  let summaries = Crash_fuzz.run_sweep ~bg_writer:true ~seed:20260808 ~points () in
  List.iter
    (fun s ->
      List.iter
        (fun v -> Alcotest.failf "oracle violation: %s" v)
        s.Crash_fuzz.violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s mode fired at least one crash"
           (Crash_fuzz.mode_name s.Crash_fuzz.mode))
        true
        (s.Crash_fuzz.crashes > 0))
    summaries

let suite =
  [
    QCheck_alcotest.to_alcotest test_policy_equivalence_qcheck;
    Alcotest.test_case "scan resistance: 2Q protects the hot set" `Quick test_scan_resistance;
    Alcotest.test_case "bg writer: foreground eviction stays clean" `Quick
      test_bg_writer_clean_foreground;
    Alcotest.test_case "fuzzy checkpoints + crash recovery" `Quick
      test_fuzzy_checkpoint_recovery;
    Alcotest.test_case "cursor scan issues prefetch" `Quick test_prefetch_on_scan;
    Alcotest.test_case "crash-fuzz sweep with bg writer (FUZZ_POINTS)" `Quick
      test_crash_fuzz_bg;
  ]
