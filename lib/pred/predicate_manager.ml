open Gist_util
module Page_id = Gist_storage.Page_id
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_registers =
  Metrics.counter ~unit_:"ops" ~help:"predicates registered (scans, inserts, probes)"
    "pred.register"

let m_attaches = Metrics.counter ~unit_:"ops" ~help:"predicate-to-node attachments" "pred.attach"

let m_shard_lock =
  Metrics.counter ~unit_:"ops" ~help:"predicate-manager shard acquisitions" "pred.shard_lock"

let m_shard_contention =
  Metrics.counter ~unit_:"ops"
    ~help:"predicate-manager shard acquisitions that found the shard held" "pred.shard_contention"

type kind = Scan | Insert | Probe

type 'p pred = {
  pred_id : int;
  p_owner : Txn_id.t;
  p_kind : kind;
  p_formula : 'p;
  p_m : Mutex.t; (* guards [nodes] and [p_dead] *)
  mutable p_dead : bool; (* removed; a racing replicate must not resurrect it *)
  nodes : (int, unit) Hashtbl.t; (* node attachments of this predicate *)
}

(* Same shard count the lock manager uses; both tables hash with a cheap
   mask, so the id/page-id low bits spread the load. *)
let n_shards = 64

type 'p node_shard = {
  nm : Mutex.t;
  by_node : (int, 'p pred Dyn.t) Hashtbl.t; (* FIFO attachment order *)
}

type 'p txn_shard = {
  tm : Mutex.t;
  by_txn : (Txn_id.t, 'p pred list ref) Hashtbl.t;
}

type 'p t = {
  node_shards : 'p node_shard array;
  txn_shards : 'p txn_shard array;
  next_id : int Atomic.t;
}

let create () =
  {
    node_shards =
      Array.init n_shards (fun _ -> { nm = Mutex.create (); by_node = Hashtbl.create 8 });
    txn_shards =
      Array.init n_shards (fun _ -> { tm = Mutex.create (); by_txn = Hashtbl.create 8 });
    next_id = Atomic.make 1;
  }

let lock_shard m =
  if Mutex.try_lock m then Metrics.incr m_shard_lock
  else begin
    Metrics.incr m_shard_contention;
    Mutex.lock m;
    Metrics.incr m_shard_lock
  end

let node_shard t pid = t.node_shards.(pid land (n_shards - 1))

let txn_shard t tid = t.txn_shards.(Txn_id.to_int tid land (n_shards - 1))

let register t ~owner ~kind formula =
  Metrics.incr m_registers;
  let p =
    {
      pred_id = Atomic.fetch_and_add t.next_id 1;
      p_owner = owner;
      p_kind = kind;
      p_formula = formula;
      p_m = Mutex.create ();
      p_dead = false;
      nodes = Hashtbl.create 8;
    }
  in
  let sh = txn_shard t owner in
  lock_shard sh.tm;
  let lst =
    match Hashtbl.find_opt sh.by_txn owner with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace sh.by_txn owner l;
      l
  in
  lst := p :: !lst;
  Mutex.unlock sh.tm;
  p

let owner p = p.p_owner

let formula p = p.p_formula

let kind_of p = p.p_kind

(* Lock order: predicate mutex, then one node-shard mutex at a time.
   Nothing ever takes a predicate mutex while holding a shard mutex, and
   no path holds two shard mutexes at once, so the order is acyclic. *)

let attach_locked t p pid =
  let pid = Page_id.to_int pid in
  if not (Hashtbl.mem p.nodes pid) then begin
    Hashtbl.replace p.nodes pid ();
    let sh = node_shard t pid in
    lock_shard sh.nm;
    let d =
      match Hashtbl.find_opt sh.by_node pid with
      | Some d -> d
      | None ->
        let d = Dyn.create () in
        Hashtbl.replace sh.by_node pid d;
        d
    in
    Dyn.push d p;
    Mutex.unlock sh.nm;
    Metrics.incr m_attaches;
    if Trace.enabled () then Trace.emit (Trace.Pred_attach { page = pid; owner = p.p_owner })
  end

let attach t p pid =
  Mutex.lock p.p_m;
  if not p.p_dead then attach_locked t p pid;
  Mutex.unlock p.p_m

let attached t pid =
  let pid = Page_id.to_int pid in
  let sh = node_shard t pid in
  lock_shard sh.nm;
  let r =
    match Hashtbl.find_opt sh.by_node pid with
    | Some d -> Dyn.to_list d
    | None -> []
  in
  Mutex.unlock sh.nm;
  (* A predicate mid-removal may still sit in the list; its owner's locks
     are already gone, so reporting it would only cause a spurious
     conflict check. Filter it out. *)
  List.filter (fun p -> not p.p_dead) r

let is_attached _t p pid =
  Mutex.lock p.p_m;
  let r = Hashtbl.mem p.nodes (Page_id.to_int pid) in
  Mutex.unlock p.p_m;
  r

(* Caller holds [p.p_m]. *)
let detach_everywhere t p =
  Hashtbl.iter
    (fun pid () ->
      let sh = node_shard t pid in
      lock_shard sh.nm;
      (match Hashtbl.find_opt sh.by_node pid with
      | Some d ->
        Dyn.filter_in_place (fun q -> q.pred_id <> p.pred_id) d;
        if Dyn.is_empty d then Hashtbl.remove sh.by_node pid
      | None -> ());
      Mutex.unlock sh.nm)
    p.nodes;
  Hashtbl.reset p.nodes

let kill t p =
  Mutex.lock p.p_m;
  if not p.p_dead then begin
    p.p_dead <- true;
    detach_everywhere t p
  end;
  Mutex.unlock p.p_m

let remove_pred t p =
  kill t p;
  let sh = txn_shard t p.p_owner in
  lock_shard sh.tm;
  (match Hashtbl.find_opt sh.by_txn p.p_owner with
  | Some lst ->
    lst := List.filter (fun q -> q.pred_id <> p.pred_id) !lst;
    if !lst = [] then Hashtbl.remove sh.by_txn p.p_owner
  | None -> ());
  Mutex.unlock sh.tm

let remove_txn t owner =
  let sh = txn_shard t owner in
  lock_shard sh.tm;
  let preds =
    match Hashtbl.find_opt sh.by_txn owner with
    | Some lst ->
      Hashtbl.remove sh.by_txn owner;
      !lst
    | None -> []
  in
  Mutex.unlock sh.tm;
  List.iter (kill t) preds

let replicate t ~src ~dst ~keep =
  let spid = Page_id.to_int src in
  let sh = node_shard t spid in
  lock_shard sh.nm;
  (* Snapshot: attaching mutates the dst list, and src = dst must not
     loop (also keeps the shard mutex out of the predicate-mutex order). *)
  let snapshot =
    match Hashtbl.find_opt sh.by_node spid with Some d -> Dyn.to_list d | None -> []
  in
  Mutex.unlock sh.nm;
  List.iter
    (fun p ->
      if keep p then begin
        Mutex.lock p.p_m;
        (* A dead predicate's owner already released its locks; attaching
           it here would leak the entry forever. *)
        if not p.p_dead then attach_locked t p dst;
        Mutex.unlock p.p_m
      end)
    snapshot

let predicates_of t owner =
  let sh = txn_shard t owner in
  lock_shard sh.tm;
  let r = match Hashtbl.find_opt sh.by_txn owner with Some l -> !l | None -> [] in
  Mutex.unlock sh.tm;
  List.filter (fun p -> not p.p_dead) r

let total_attachments t =
  Array.fold_left
    (fun acc sh ->
      lock_shard sh.nm;
      let n = Hashtbl.fold (fun _ d acc -> acc + Dyn.length d) sh.by_node acc in
      Mutex.unlock sh.nm;
      n)
    0 t.node_shards

let total_predicates t =
  Array.fold_left
    (fun acc sh ->
      lock_shard sh.tm;
      let n = Hashtbl.fold (fun _ l acc -> acc + List.length !l) sh.by_txn acc in
      Mutex.unlock sh.tm;
      n)
    0 t.txn_shards
