open Gist_util
module Page_id = Gist_storage.Page_id
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_registers =
  Metrics.counter ~unit_:"ops" ~help:"predicates registered (scans, inserts, probes)"
    "pred.register"

let m_attaches = Metrics.counter ~unit_:"ops" ~help:"predicate-to-node attachments" "pred.attach"

type kind = Scan | Insert | Probe

type 'p pred = {
  pred_id : int;
  p_owner : Txn_id.t;
  p_kind : kind;
  p_formula : 'p;
  nodes : (int, unit) Hashtbl.t; (* node attachments of this predicate *)
}

type 'p t = {
  mutex : Mutex.t;
  by_txn : (Txn_id.t, 'p pred list ref) Hashtbl.t;
  by_node : (int, 'p pred Dyn.t) Hashtbl.t; (* FIFO attachment order *)
  mutable next_id : int;
}

let create () =
  {
    mutex = Mutex.create ();
    by_txn = Hashtbl.create 64;
    by_node = Hashtbl.create 256;
    next_id = 1;
  }

let register t ~owner ~kind formula =
  Metrics.incr m_registers;
  Mutex.lock t.mutex;
  let p =
    {
      pred_id = t.next_id;
      p_owner = owner;
      p_kind = kind;
      p_formula = formula;
      nodes = Hashtbl.create 8;
    }
  in
  t.next_id <- t.next_id + 1;
  let lst =
    match Hashtbl.find_opt t.by_txn owner with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.by_txn owner l;
      l
  in
  lst := p :: !lst;
  Mutex.unlock t.mutex;
  p

let owner p = p.p_owner

let formula p = p.p_formula

let kind_of p = p.p_kind

let node_list t pid =
  match Hashtbl.find_opt t.by_node pid with
  | Some d -> d
  | None ->
    let d = Dyn.create () in
    Hashtbl.replace t.by_node pid d;
    d

let attach_locked t p pid =
  let pid = Page_id.to_int pid in
  if not (Hashtbl.mem p.nodes pid) then begin
    Hashtbl.replace p.nodes pid ();
    Dyn.push (node_list t pid) p;
    Metrics.incr m_attaches;
    if Trace.enabled () then Trace.emit (Trace.Pred_attach { page = pid; owner = p.p_owner })
  end

let attach t p pid =
  Mutex.lock t.mutex;
  attach_locked t p pid;
  Mutex.unlock t.mutex

let attached t pid =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.by_node (Page_id.to_int pid) with
    | Some d -> Dyn.to_list d
    | None -> []
  in
  Mutex.unlock t.mutex;
  r

let is_attached t p pid =
  Mutex.lock t.mutex;
  let r = Hashtbl.mem p.nodes (Page_id.to_int pid) in
  Mutex.unlock t.mutex;
  r

let detach_everywhere t p =
  Hashtbl.iter
    (fun pid () ->
      match Hashtbl.find_opt t.by_node pid with
      | Some d ->
        Dyn.filter_in_place (fun q -> q.pred_id <> p.pred_id) d;
        if Dyn.is_empty d then Hashtbl.remove t.by_node pid
      | None -> ())
    p.nodes;
  Hashtbl.reset p.nodes

let remove_pred t p =
  Mutex.lock t.mutex;
  detach_everywhere t p;
  (match Hashtbl.find_opt t.by_txn p.p_owner with
  | Some lst -> lst := List.filter (fun q -> q.pred_id <> p.pred_id) !lst
  | None -> ());
  Mutex.unlock t.mutex

let remove_txn t owner =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.by_txn owner with
  | Some lst ->
    List.iter (detach_everywhere t) !lst;
    Hashtbl.remove t.by_txn owner
  | None -> ());
  Mutex.unlock t.mutex

let replicate t ~src ~dst ~keep =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.by_node (Page_id.to_int src) with
  | Some d ->
    (* Iterate over a snapshot: attach_locked mutates the dst list, and
       src = dst must not loop. *)
    List.iter (fun p -> if keep p then attach_locked t p dst) (Dyn.to_list d)
  | None -> ());
  Mutex.unlock t.mutex

let predicates_of t owner =
  Mutex.lock t.mutex;
  let r = match Hashtbl.find_opt t.by_txn owner with Some l -> !l | None -> [] in
  Mutex.unlock t.mutex;
  r

let total_attachments t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ d acc -> acc + Dyn.length d) t.by_node 0 in
  Mutex.unlock t.mutex;
  n

let total_predicates t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ l acc -> acc + List.length !l) t.by_txn 0 in
  Mutex.unlock t.mutex;
  n
