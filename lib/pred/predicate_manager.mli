(** Predicate manager (§10.3).

    The second half of the paper's hybrid locking mechanism: search
    operations attach their search predicates directly to the nodes they
    visit, and insert operations check only the predicates attached to
    their target leaf. This component maintains the three §10.3 data
    structures — predicates per transaction, node attachments per
    predicate, predicates per node — with the per-node lists kept in FIFO
    attachment order so that fairness can be enforced (a new predicate is
    checked against those *ahead* of it).

    It is generic in the predicate formula type ['p]; conflict testing is
    the caller's job (it applies the access method's [consistent]). Blocking
    "on a predicate" is also the caller's job, via an S lock on the owner's
    transaction id in the lock manager.

    Thread-safe and sharded: the per-node index is split into 64 shards by
    page id and the per-transaction index into 64 shards by transaction id
    (the same layout as the lock manager and buffer pool), with a small
    per-predicate mutex guarding each predicate's attachment set — no
    process-global mutex sits on the search/insert hot path. Shard traffic
    is exported as [pred.shard_lock] / [pred.shard_contention]. Callers
    attach/check while holding the node's latch, which serializes
    attachment order with respect to node content changes. *)

type kind =
  | Scan  (** A search operation's predicate, protects its whole range. *)
  | Insert  (** An insert's key, attached for FIFO fairness (§10.3). *)
  | Probe  (** A unique-insert "= key" predicate, released at operation end (§8). *)

type 'p pred
(** A registered predicate: owner transaction, kind, formula, and the set
    of nodes it is attached to. *)

type 'p t
(** The manager's three §10.3 indexes (by transaction, by node, and the
    per-predicate attachment set), sharded by transaction and page id. *)

val create : unit -> 'p t
(** An empty manager (one per database, shared by all trees). *)

val register : 'p t -> owner:Gist_util.Txn_id.t -> kind:kind -> 'p -> 'p pred
(** Create a predicate owned by [owner]; it is live (and visible to
    conflict checks once attached) until {!remove_pred} or {!remove_txn}. *)

val owner : 'p pred -> Gist_util.Txn_id.t
(** The transaction that registered the predicate. *)

val formula : 'p pred -> 'p
(** The formula to test with the access method's [consistent]. *)

val kind_of : 'p pred -> kind
(** Why the predicate exists (scan protection, insert fairness, probe). *)

val attach : 'p t -> 'p pred -> Gist_storage.Page_id.t -> unit
(** Idempotent: attaching twice to the same node is a no-op. *)

val attached : 'p t -> Gist_storage.Page_id.t -> 'p pred list
(** Predicates attached to the node, oldest first (FIFO). *)

val is_attached : 'p t -> 'p pred -> Gist_storage.Page_id.t -> bool
(** Whether {!attach} has linked this predicate to the node. *)

val remove_pred : 'p t -> 'p pred -> unit
(** Detach from every node and forget (unique-insert probes at op end). *)

val remove_txn : 'p t -> Gist_util.Txn_id.t -> unit
(** Drop all of a transaction's predicates (end-of-transaction hook). *)

val replicate :
  'p t ->
  src:Gist_storage.Page_id.t ->
  dst:Gist_storage.Page_id.t ->
  keep:('p pred -> bool) ->
  unit
(** Attach to [dst] every predicate attached to [src] that satisfies
    [keep] — used both when a split creates a new sibling (filter: pred
    consistent with the sibling's BP) and when BP expansion percolates
    ancestor predicates down to a child (§4.3). *)

val predicates_of : 'p t -> Gist_util.Txn_id.t -> 'p pred list
(** All live predicates registered by the transaction. *)

val total_attachments : 'p t -> int
(** Number of (predicate, node) attachment pairs currently live — the
    working-set size a pure predicate-locking scheme would scan. *)

val total_predicates : 'p t -> int
(** Number of live predicates across all transactions.

    Registration and attachment rates are also exported to the global
    metrics registry as [pred.register] / [pred.attach]; see
    OBSERVABILITY.md. *)
