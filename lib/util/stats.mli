(** Lightweight measurement accumulators for the experiment harness and the
    metrics registry ([Gist_obs.Metrics]). *)

(** Running counter with mean/min/max; not thread-safe (aggregate per-domain
    instances with [merge]). *)
module Summary : sig
  type t

  val create : unit -> t
  (** A fresh accumulator with zero observations. *)

  val add : t -> float -> unit
  (** Record one observation. *)

  val count : t -> int
  (** Number of observations recorded. *)

  val mean : t -> float
  (** Arithmetic mean; [0.0] when empty. *)

  val min : t -> float
  (** Smallest observation; [infinity] when empty. *)

  val max : t -> float
  (** Largest observation; [neg_infinity] when empty. *)

  val total : t -> float
  (** Sum of all observations. *)

  val merge : t -> t -> t
  (** Combine two accumulators into a fresh one (neither input changes). *)

  val reset : t -> unit
  (** Forget every observation, returning the accumulator to its freshly
      [create]d state. *)

  val pp : Format.formatter -> t -> unit
  (** One-line ["n=… mean=… min=… max=…"] rendering. *)
end

(** Fixed-resolution latency histogram (log-spaced buckets) supporting
    approximate percentiles. *)
module Histogram : sig
  type t

  val create : unit -> t
  (** A fresh, empty histogram. *)

  val add : t -> float -> unit
  (** Record one observation (non-positive values land in the lowest
      bucket). *)

  val count : t -> int
  (** Number of observations recorded. *)

  val percentile : t -> float -> float
  (** [percentile t 0.99] is an upper bound on the p99 sample (the upper
      edge of its bucket, within ~11% of the true value). *)

  val merge : t -> t -> t
  (** Combine two histograms into a fresh one (neither input changes). *)

  val reset : t -> unit
  (** Forget every observation. *)

  val pp : Format.formatter -> t -> unit
  (** One-line ["n=… p50=… p95=… p99=…"] rendering. *)
end

val atomic_counter : unit -> (unit -> unit) * (unit -> int)
(** [let incr, read = atomic_counter ()] builds a domain-safe counter. *)
