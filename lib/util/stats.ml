module Summary = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () = { count = 0; total = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t v =
    t.count <- t.count + 1;
    t.total <- t.total +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.total /. Float.of_int t.count

  let min t = t.min_v

  let max t = t.max_v

  let total t = t.total

  let merge a b =
    {
      count = a.count + b.count;
      total = a.total +. b.total;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }

  let reset t =
    t.count <- 0;
    t.total <- 0.0;
    t.min_v <- infinity;
    t.max_v <- neg_infinity

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f" t.count (mean t) t.min_v t.max_v
end

module Histogram = struct
  (* Buckets are log-spaced: bucket i covers [base^i, base^(i+1)) with
     base = 2^(1/8), giving ~11%% resolution over 12 decades. *)
  let buckets = 640

  let base = Float.exp (Float.log 2.0 /. 8.0)

  let log_base = Float.log base

  type t = { counts : int array; mutable n : int }

  let create () = { counts = Array.make buckets 0; n = 0 }

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let i = int_of_float (Float.log v /. log_base) + buckets / 2 in
      Stdlib.max 0 (Stdlib.min (buckets - 1) i)

  (* Bucket 0 is the catch-all for v <= base^(-buckets/2), which in
     practice means v = 0 (e.g. timings below clock granularity): report
     it as 0 rather than a meaningless sub-picosecond midpoint. *)
  let value_of i = if i = 0 then 0.0 else base ** Float.of_int (i + 1 - (buckets / 2))

  let add t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let percentile t p =
    if t.n = 0 then 0.0
    else begin
      let target = int_of_float (Float.of_int t.n *. p) in
      let acc = ref 0 in
      let result = ref (value_of (buckets - 1)) in
      (try
         for i = 0 to buckets - 1 do
           acc := !acc + t.counts.(i);
           if !acc > target then begin
             result := value_of i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let merge a b =
    let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
    { counts; n = a.n + b.n }

  let reset t =
    Array.fill t.counts 0 buckets 0;
    t.n <- 0

  let pp ppf t =
    Format.fprintf ppf "n=%d p50=%.3g p95=%.3g p99=%.3g" t.n (percentile t 0.50)
      (percentile t 0.95) (percentile t 0.99)
end

let atomic_counter () =
  let c = Atomic.make 0 in
  ((fun () -> Atomic.incr c), fun () -> Atomic.get c)
