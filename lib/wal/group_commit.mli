(** Group commit: a dedicated log-writer domain with leader/follower flush
    batching.

    PR 4 made WAL {e append} lock-free; this module removes the remaining
    global serialization point — durability. Instead of every committer
    paying its own physical flush ({!Log_manager.force}: device mutex +
    the full simulated device write), committers {e enqueue} their commit
    LSN into a flush window and a dedicated writer domain turns the whole
    window into one device write, waking every waiter it covered. Under
    load the window batches (one flush amortized over N commits — the
    "amortize the serial bottleneck" framing); when idle a lone request
    flushes immediately and pays no batching latency. The window is
    adaptively sized: a window smaller than the previous one — the
    signature of a pipeline bubble, with the last window's waiters still
    waking and re-submitting — stalls at most [wait_us] microseconds to
    refill before the device write is issued.

    Three commit modes, selected per-database by [Db.config.commit_mode]:

    - [Sync] — no writer domain; each commit calls {!Log_manager.force}
      itself (the pre-group-commit behavior, and the default).
    - [Group] — commits {!submit} with [wait = true]: the call returns
      once the writer's flush covers the commit LSN. Same durability
      contract as [Sync], higher throughput under concurrency.
    - [Async] — commits {!submit} with [wait = false]: locks and
      predicates release immediately and durability trails by one flush
      window. After a crash an async-committed transaction may roll back
      (atomically — all of it or none); a [Sync]/[Group]-committed one may
      not. See PROTOCOL.md §8.

    The device itself never merges flush commands — a {!Log_manager.force}
    that queues behind a neighbor covering its LSN still pays its own
    barrier ([wal.flush_absorbed] counts the write it saved). Window
    coalescing here is the host-side merging that turns N commits into
    one device command ([wal.group_size] per window). *)

(** How a transaction commit obtains durability. *)
type mode = Sync | Group | Async

val mode_to_string : mode -> string
(** ["sync"] / ["group"] / ["async"] — the spelling experiments and env
    knobs ([FUZZ_COMMIT_MODE]) use. *)

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string} (case-insensitive); [None] on anything
    else. *)

type t
(** A group-commit instance: the flush window (request count + highest
    requested LSN), the waiter queue, and the writer-domain lifecycle. *)

val create : ?wait_us:int -> Log_manager.t -> t
(** A stopped group-commit instance over [log]. [wait_us] (default 50)
    bounds the adaptive batching stall — the most extra latency a
    shrinking window can pay to refill before its device write. [0]
    disables the stall. *)

val start : t -> unit
(** Spawn the log-writer domain. Idempotent — a running writer is kept. *)

val stop : t -> unit
(** Drain the window and join the writer domain: every request enqueued
    before [stop] returns is durable (or crash-rewound), and every waiter
    has been released. Idempotent; {!start} may be called again after. *)

val halt : t -> unit
(** Power-cut shutdown: join the writer domain {e discarding} the pending
    window — those requests are the log tail a simulated crash loses. A
    flush the writer had already started still completes (a device write
    in flight at failure). Waiters are released un-covered; their commits
    died with the power anyway. [Db.crash] calls this before rewinding the
    log so the rewind is stop-the-world, as {!Log_manager.crash} assumes. *)

val running : t -> bool
(** Whether a writer domain is live. *)

val submit : ?wait:bool -> t -> Lsn.t -> unit
(** Request durability up to [lsn]. Fires the flush-request fault hook
    ({!Log_manager.set_flush_hook}) and counts [wal.group_commit], then
    enqueues into the writer's window. With [wait = true] (default),
    blocks until the durability watermark covers [lsn] — or until {!halt}
    discards the window (simulated power loss: durability can never
    arrive, and the waiting commit died with the power anyway). With
    [wait = false], returns as soon as the request is enqueued —
    pipelined durability.

    If no writer is running, a waiting submit degrades to an inline
    physical flush ({!Log_manager.flush_to} — the hook already fired
    here); a no-wait submit leaves the record volatile until a
    neighboring flush covers it. Waiting time lands in the shared
    [wal.force_wait_ns] histogram. *)
