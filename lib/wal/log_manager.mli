(** Write-ahead log manager.

    Records are serialized to bytes on append and kept in an in-memory
    sequence split by a durability watermark: a simulated crash discards
    everything after the last [force]. LSNs are dense (1, 2, 3, …) so the
    log doubles as the tree-global NSN counter of §10.1 — [last_lsn] is the
    "global counter" a traversal memorizes, and the LSN of a split's log
    record is the new NSN of the split node, recoverable for free.

    Thread-safe, and lock-free on every hot path: [append] encodes into a
    per-domain scratch buffer, reserves its LSN with one atomic
    fetch-and-add, stores the image into the reserved slot of a chunked
    slot store, and advances a contiguous {e publish watermark} — appends
    from N domains never convoy on a mutex. [last_lsn], [durable_lsn],
    [read] and [iter_from] are plain atomic reads over published slots
    (§10.1's warning about a synchronized NSN counter no longer applies;
    experiment E8 measures the alternatives, E14 the multi-domain
    scaling). The internal mutex guards only structural cold paths (chunk
    allocation, truncation, simulated crashes). *)

type t
(** A log manager: the record slots, the publish and durability
    watermarks, and the checkpoint anchor. *)

val create : unit -> t
(** An empty log; the first append gets LSN 1. *)

val append :
  t ->
  txn:Gist_util.Txn_id.t ->
  prev:Lsn.t ->
  ?ext:string ->
  Log_record.payload ->
  Lsn.t
(** Reserve the next LSN, serialize, and publish the record — no lock
    taken (amortized; the first append into each 1024-record chunk
    allocates it under the structural mutex). [ext] names the
    access-method extension the payload's opaque encodings belong to.
    On return the record's slot is filled; it becomes visible to readers
    once the publish watermark crosses it, i.e. as soon as every earlier
    reservation is also in place. *)

val force : t -> Lsn.t -> unit
(** Make every record up to and including [lsn] durable. Waits (parked on
    a condition variable) for the publish watermark to cover [lsn] if a
    neighboring append below it is still in flight, then performs one
    physical flush on the simulated log device: a single-admission mutex
    plus the configured {!set_flush_delay_ns} latency. Every flush
    command pays the full device round-trip — a caller that queued behind
    a neighbor whose flush already covered its LSN has nothing left to
    write ([wal.flush_absorbed]) but still owes its own barrier; merging
    concurrent flushes into one command is the host's job, which is what
    {!Group_commit}'s writer domain adds. Returns immediately when [lsn] is
    already durable (counted in the [wal.force_noop] metric, not in
    {!forces}). Time stalled in the slow path lands in the
    [wal.force_wait_ns] histogram; each entry fires the flush-request
    hook ({!set_flush_hook}). *)

val force_all : t -> unit
(** Make the whole log durable ({!force} up to the highest reserved LSN). *)

val flush_to : t -> Lsn.t -> unit
(** The physical flush alone: make records up to [lsn] durable {e without}
    firing the flush-request hook or counting a caller-side force — the
    entry point for {!Group_commit}'s log-writer domain, whose requests
    already fired the hook in the submitting domain. One device write
    covers every LSN up to the clamp, however many committers requested
    them. *)

val set_flush_delay_ns : t -> int -> unit
(** Simulated log-device latency per physical flush (default 0). Like the
    disk's [io_delay_ns] it blocks only the flushing domain, so group
    commit — which amortizes one flush over every commit in the window —
    shows up as real throughput, not just a counter. *)

val last_lsn : t -> Lsn.t
(** LSN of the most recent {e published} record (the global NSN counter).
    May momentarily trail a concurrent append that has not been published
    yet — under-reporting only ever causes a conservative extra rightlink
    check, never a missed split. *)

val durable_lsn : t -> Lsn.t
(** The durability watermark: every record at or below it survives a
    crash. A lock-free monotonic read, like {!force}'s fast path. *)

val read : t -> Lsn.t -> Log_record.t option
(** Decode the record at [lsn]; [None] if out of range (never appended,
    crash-lost, or truncated away). If [lsn] is reserved by an in-flight
    append, waits for publication — rollback must never mistake an
    in-flight record for a crash-lost one. *)

val iter_from : t -> Lsn.t -> (Log_record.t -> unit) -> unit
(** Apply to every published record with LSN >= the argument, in order.
    Entirely lock-free: one watermark snapshot bounds the scan, so
    restart replay over a long log takes zero lock round-trips. *)

val set_anchor : t -> Lsn.t -> unit
(** Persist the LSN of the most recent complete checkpoint (the "master
    record"). Durable immediately, like a separate anchor block. *)

val anchor : t -> Lsn.t
(** The persisted checkpoint anchor; [Lsn.nil] before the first
    {!set_anchor}. Restart's analysis pass begins here. *)

val crash : t -> unit
(** Discard the volatile tail: records after [durable_lsn] are lost, the
    anchor keeps its last durable value. Assumes the workload domains are
    gone (a simulated power loss is stop-the-world). *)

val crash_ragged : ?keep_bytes:int -> t -> unit
(** Like {!crash}, but the device was mid-append when power died: the
    first record past the durable watermark persists a [keep_bytes]-byte
    garbage prefix (a {e torn tail}). The garbage occupies no LSN slot —
    readers never see it — but restart must acknowledge and discard it via
    {!discard_torn_tail}, and any later {!append} overwrites it. *)

val has_torn_tail : t -> bool
(** Whether a ragged crash left a partially written record after the
    durable prefix. *)

val discard_torn_tail : t -> bool
(** Detect and drop the torn tail (restart's log-scan boundary check: a
    record that fails its length/checksum validation ends the usable log).
    Returns whether one was found; bumps the [wal.torn_tail] metric.
    Called by [Recovery.restart_multi] before analysis. *)

val truncate_before : t -> Lsn.t -> int
(** Reclaim records with LSN below the given point — clamped so nothing at
    or after the checkpoint anchor, or not yet durable, is ever discarded
    (restart may need those). Returns how many records were reclaimed.
    Safe after a checkpoint whose dirty pages have been flushed; runs
    concurrently with lock-free appends (they only touch slots above the
    durability watermark). *)

(** {1 Statistics}

    Per-log counters, mirrored into the global metrics registry
    ([wal.append], [wal.append_bytes], [wal.force], [wal.append_ns],
    [wal.append_retry]) — see OBSERVABILITY.md. *)

val appended : t -> int
(** Records published since creation (LSNs are dense, so this is also the
    highest published LSN). *)

val forces : t -> int
(** {!force} / {!force_all} calls (whether or not the watermark moved). *)

val bytes_written : t -> int
(** Total encoded size of appended records. Reported as the delta of the
    process-wide [wal.append_bytes] counter against a baseline captured at
    {!create} / {!reset_stats} — the byte count is recorded exactly once
    per append, not kept in a per-log twin. With several logs appending
    concurrently (tests), the figure aggregates all of them. *)

val reset_stats : t -> unit
(** Zero the per-log counters (not the global metrics registry). *)

(** {1 Fault injection} *)

val set_append_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook run at every {!append} entry, before the
    record touches any log state — so a raised exception (simulated power
    loss, [Gist_fault.Crash]) means the append never happened and never
    leaves the log, which survives the crash, in a locked or half-updated
    state. One [None] branch per append when injection is off. *)

val set_flush_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook run at every {e durability request} —
    {!force} / {!force_all} entry (before the already-durable fast path)
    and {!Group_commit.submit} — in the requesting domain, never in the
    log-writer domain. That placement keeps fault schedules deterministic:
    the hook fires once per request regardless of how many requests each
    physical flush absorbs. *)

val fire_flush_hook : t -> unit
(** Run the flush hook if one is installed — for durability entry points
    outside this module ({!Group_commit.submit}) that must participate in
    the same fault-injection site. *)
