(** Write-ahead log manager.

    Records are serialized to bytes on append and kept in an in-memory
    sequence split by a durability watermark: a simulated crash discards
    everything after the last [force]. LSNs are dense (1, 2, 3, …) so the
    log doubles as the tree-global NSN counter of §10.1 — [last_lsn] is the
    "global counter" a traversal memorizes, and the LSN of a split's log
    record is the new NSN of the split node, recoverable for free.

    Thread-safe. [last_lsn] takes the internal mutex, which is precisely
    the synchronization bottleneck §10.1 warns about; experiment E8 measures
    it against the parent-LSN memorization optimization. *)

type t
(** A log manager: the record sequence, its durability watermark, and the
    checkpoint anchor. *)

val create : unit -> t
(** An empty log; the first append gets LSN 1. *)

val append :
  t ->
  txn:Gist_util.Txn_id.t ->
  prev:Lsn.t ->
  ?ext:string ->
  Log_record.payload ->
  Lsn.t
(** Assign the next LSN, serialize, and buffer the record. [ext] names the
    access-method extension the payload's opaque encodings belong to. *)

val force : t -> Lsn.t -> unit
(** Make every record up to and including [lsn] durable. Returns without
    taking the mutex when [lsn] is already durable (counted in the
    [wal.force_noop] metric, not in {!forces}). *)

val force_all : t -> unit
(** Make the whole log durable ({!force} up to {!last_lsn}). *)

val last_lsn : t -> Lsn.t
(** LSN of the most recently appended record (the global NSN counter). *)

val durable_lsn : t -> Lsn.t
(** The durability watermark: every record at or below it survives a crash. *)

val read : t -> Lsn.t -> Log_record.t option
(** Decode the record at [lsn]; [None] if out of range. *)

val iter_from : t -> Lsn.t -> (Log_record.t -> unit) -> unit
(** Apply to every record with LSN >= the argument, in order. *)

val set_anchor : t -> Lsn.t -> unit
(** Persist the LSN of the most recent complete checkpoint (the "master
    record"). Durable immediately, like a separate anchor block. *)

val anchor : t -> Lsn.t
(** The persisted checkpoint anchor; [Lsn.nil] before the first
    {!set_anchor}. Restart's analysis pass begins here. *)

val crash : t -> unit
(** Discard the volatile tail: records after [durable_lsn] are lost, the
    anchor keeps its last durable value. *)

val crash_ragged : ?keep_bytes:int -> t -> unit
(** Like {!crash}, but the device was mid-append when power died: the
    first record past the durable watermark persists a [keep_bytes]-byte
    garbage prefix (a {e torn tail}). The garbage occupies no LSN slot —
    readers never see it — but restart must acknowledge and discard it via
    {!discard_torn_tail}, and any later {!append} overwrites it. *)

val has_torn_tail : t -> bool
(** Whether a ragged crash left a partially written record after the
    durable prefix. *)

val discard_torn_tail : t -> bool
(** Detect and drop the torn tail (restart's log-scan boundary check: a
    record that fails its length/checksum validation ends the usable log).
    Returns whether one was found; bumps the [wal.torn_tail] metric.
    Called by [Recovery.restart_multi] before analysis. *)

val truncate_before : t -> Lsn.t -> int
(** Reclaim records with LSN below the given point — clamped so nothing at
    or after the checkpoint anchor, or not yet durable, is ever discarded
    (restart may need those). Returns how many records were reclaimed.
    Safe after a checkpoint whose dirty pages have been flushed. *)

(** {1 Statistics}

    Per-log counters, mirrored into the global metrics registry
    ([wal.append], [wal.bytes], [wal.force], [wal.append_ns]) — see
    OBSERVABILITY.md. *)

val appended : t -> int
(** Records appended since creation (or {!reset_stats}). *)

val forces : t -> int
(** {!force} / {!force_all} calls (whether or not the watermark moved). *)

val bytes_written : t -> int
(** Total encoded size of appended records. *)

val reset_stats : t -> unit
(** Zero the per-log counters (not the global metrics registry). *)

(** {1 Fault injection} *)

val set_append_hook : t -> (unit -> unit) option -> unit
(** Install (or clear) a hook run at every {!append} entry, before the
    record touches any log state — so a raised exception (simulated power
    loss, [Gist_fault.Crash]) means the append never happened and never
    leaves the log, which survives the crash, in a locked or half-updated
    state. One [None] branch per append when injection is off. *)
