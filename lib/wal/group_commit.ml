module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

type mode = Sync | Group | Async

let mode_to_string = function Sync -> "sync" | Group -> "group" | Async -> "async"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sync" -> Some Sync
  | "group" -> Some Group
  | "async" -> Some Async
  | _ -> None

let m_group_commit =
  Metrics.counter ~unit_:"ops"
    ~help:"durability requests routed through the group-commit writer" "wal.group_commit"

let m_group_flush =
  Metrics.counter ~unit_:"ops"
    ~help:"flush windows the log-writer domain executed (one device write each)"
    "wal.group_flush"

let h_group_size =
  Metrics.histogram ~unit_:"reqs"
    ~help:"durability requests coalesced into each flush window" "wal.group_size"

(* Shared with [Log_manager]'s sync path: the registry dedupes by name, so
   both routes land their stall time in one histogram and pre/post latency
   stays directly comparable. *)
let h_force_wait_ns =
  Metrics.histogram ~unit_:"ns"
    ~help:"time a durability request stalled: device queueing + the physical flush"
    "wal.force_wait_ns"

(* All mutable state sits behind one mutex: the request window ([reqs]
   pending requests, [hi] the highest LSN among them) and the lifecycle
   flags. Committers only ever increment the window and wake the writer —
   the writer alone talks to the log device, so commit throughput is bound
   by windows per second, not flushes per committer. [last_group] is
   touched only by the writer domain (adaptive-window memory). *)
type t = {
  log : Log_manager.t;
  wait_us : int;
  m : Mutex.t;
  work : Condition.t;  (* writer parks here while the window is empty *)
  done_ : Condition.t;  (* waiters park here until their LSN is durable *)
  mutable reqs : int;
  mutable hi : Lsn.t;
  mutable stopping : bool;
  mutable writer : unit Domain.t option;
  mutable last_group : int;
}

let create ?(wait_us = 50) log =
  {
    log;
    wait_us = max 0 wait_us;
    m = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    reqs = 0;
    hi = Lsn.nil;
    stopping = false;
    writer = None;
    last_group = 1;
  }

(* One writer iteration: park until the window is non-empty, grab it,
   flush once, wake everyone. The adaptive stall fires when the pending
   window is smaller than the previous one — the signature of a pipeline
   bubble, where the last window's waiters are still waking up and
   re-submitting. Stalling at most [wait_us] lets the window refill so
   one device write keeps covering a full complement of commits (the
   binlog-style sync-delay heuristic); when idle ([last_group] = 1)
   requests flush immediately and pay no added latency. *)
let rec writer_loop t =
  Mutex.lock t.m;
  while t.reqs = 0 && not t.stopping do
    Condition.wait t.work t.m
  done;
  if t.reqs = 0 then (* stopping and fully drained *)
    Mutex.unlock t.m
  else begin
    if t.reqs < t.last_group && t.wait_us > 0 && not t.stopping then begin
      Mutex.unlock t.m;
      Unix.sleepf (Float.of_int t.wait_us /. 1e6);
      Mutex.lock t.m
    end;
    let n = t.reqs and target = t.hi in
    t.reqs <- 0;
    Mutex.unlock t.m;
    Log_manager.flush_to t.log target;
    t.last_group <- n;
    Metrics.incr m_group_flush;
    Metrics.record h_group_size (Float.of_int n);
    if Trace.enabled () then Trace.emit (Trace.Group_flush { lsn = target; group = n });
    Mutex.lock t.m;
    Condition.broadcast t.done_;
    Mutex.unlock t.m;
    writer_loop t
  end

let start t =
  Mutex.lock t.m;
  if t.writer = None then begin
    t.stopping <- false;
    t.writer <- Some (Domain.spawn (fun () -> writer_loop t))
  end;
  Mutex.unlock t.m

let running t =
  Mutex.lock t.m;
  let r = t.writer <> None in
  Mutex.unlock t.m;
  r

(* [drain = true] is a clean shutdown: the writer (and a final sweep here,
   for stragglers that enqueued between its last grab and its exit)
   flushes everything pending before the join returns. [drain = false] is
   a power cut: the pending window is discarded un-flushed — exactly the
   log tail a simulated crash loses — though a flush the writer already
   started runs to completion, like a device write in flight at failure. *)
let shutdown ~drain t =
  Mutex.lock t.m;
  let d = t.writer in
  t.writer <- None;
  if not drain then t.reqs <- 0;
  if d <> None then begin
    t.stopping <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.m;
  (match d with None -> () | Some d -> Domain.join d);
  Mutex.lock t.m;
  t.stopping <- false;
  if t.reqs > 0 then
    if drain then begin
      let target = t.hi in
      t.reqs <- 0;
      Mutex.unlock t.m;
      Log_manager.flush_to t.log target;
      Mutex.lock t.m
    end
    else t.reqs <- 0;
  Condition.broadcast t.done_;
  Mutex.unlock t.m

let stop t = shutdown ~drain:true t

let halt t = shutdown ~drain:false t

(* A waiter is released when its LSN is durable, or when the writer is
   gone with nothing pending (a [halt]: the power died with the request
   in the window — the waiting commit died with it, so there is nothing
   durable to wait for). The durable watermark is the only log state
   consulted: the publish watermark may legitimately trail a freshly
   reserved LSN while neighboring appends are in flight, so it cannot
   distinguish "not yet published" from "crash-rewound". *)
let covered t lsn = Lsn.compare (Log_manager.durable_lsn t.log) lsn >= 0

let submit ?(wait = true) t lsn =
  Log_manager.fire_flush_hook t.log;
  Metrics.incr m_group_commit;
  if Lsn.compare (Log_manager.durable_lsn t.log) lsn >= 0 then ()
  else begin
    Mutex.lock t.m;
    if t.writer = None && not t.stopping then begin
      (* No writer domain (stopped, or never started): fall back to an
         inline flush for synchronous waiters. The request hook already
         fired above, so go through the hookless physical-flush entry.
         A no-wait request stays volatile until a neighboring flush or
         checkpoint covers it: that is exactly Async's durability-trails
         contract. *)
      Mutex.unlock t.m;
      if wait then Metrics.time_ns h_force_wait_ns (fun () -> Log_manager.flush_to t.log lsn)
    end
    else begin
      t.reqs <- t.reqs + 1;
      if Lsn.compare lsn t.hi > 0 then t.hi <- lsn;
      Condition.signal t.work;
      if wait then
        Metrics.time_ns h_force_wait_ns (fun () ->
            while not (covered t lsn) && (t.writer <> None || t.reqs > 0 || t.stopping) do
              Condition.wait t.done_ t.m
            done);
      Mutex.unlock t.m
    end
  end
