open Gist_util
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_appends = Metrics.counter ~unit_:"ops" ~help:"log records appended" "wal.append"

let m_bytes = Metrics.counter ~unit_:"bytes" ~help:"serialized log bytes written" "wal.bytes"

let m_forces = Metrics.counter ~unit_:"ops" ~help:"log force (durability) requests" "wal.force"

let m_force_noop =
  Metrics.counter ~unit_:"ops"
    ~help:"force requests skipped because the LSN was already durable" "wal.force_noop"

let h_append_ns =
  Metrics.histogram ~unit_:"ns" ~help:"serialize + LSN-assign + buffer latency of one append"
    "wal.append_ns"

let m_torn_tail =
  Metrics.counter ~unit_:"ops"
    ~help:"partially-written log tails detected and discarded at restart" "wal.torn_tail"

(* Records are serialized outside the mutex (the expensive part); the
   critical section is only the LSN assignment and the push. The first 8
   bytes of each image are the LSN, patched in under the mutex. [last] is
   an atomic mirror of the length, so the NSN-counter read (§10.1) does
   not synchronize on the append path. *)
type t = {
  mutex : Mutex.t;
  mutable records : Bytes.t Dyn.t; (* index i holds the record with LSN base+i+1 *)
  mutable base : int; (* records below base+1 have been truncated away *)
  last : int Atomic.t;
  mutable durable : Lsn.t;
  mutable anchor : Lsn.t;
  forces : int Atomic.t;
  bytes_written : int Atomic.t;
  mutable append_hook : (unit -> unit) option;
      (* fault injection: runs at append entry, before any state changes *)
  mutable torn_tail : Bytes.t option;
      (* a partially persisted record beyond [durable] left by a ragged
         crash; occupies no LSN slot and must be discarded at restart *)
}

let create () =
  {
    mutex = Mutex.create ();
    records = Dyn.create ();
    base = 0;
    last = Atomic.make 0;
    durable = Lsn.nil;
    anchor = Lsn.nil;
    forces = Atomic.make 0;
    bytes_written = Atomic.make 0;
    append_hook = None;
    torn_tail = None;
  }

let set_append_hook t hook = t.append_hook <- hook

let append t ~txn ~prev ?(ext = "") payload =
  (match t.append_hook with None -> () | Some hook -> hook ());
  (* A successful append lands where the garbage tail sat: overwrite it. *)
  if t.torn_tail != None then t.torn_tail <- None;
  let t0 = Clock.now_ns () in
  let b = Buffer.create 128 in
  (* Placeholder LSN; patched under the mutex once assigned. *)
  Log_record.encode b { Log_record.lsn = Lsn.nil; txn; prev; ext; payload };
  let img = Buffer.to_bytes b in
  Atomic.fetch_and_add t.bytes_written (Bytes.length img) |> ignore;
  Mutex.lock t.mutex;
  let lsn = Int64.of_int (t.base + Dyn.length t.records + 1) in
  Bytes.set_int64_le img 0 lsn;
  Dyn.push t.records img;
  Atomic.incr t.last;
  Mutex.unlock t.mutex;
  Metrics.incr m_appends;
  Metrics.add m_bytes (Bytes.length img);
  Metrics.record h_append_ns (Float.of_int (Clock.now_ns () - t0));
  if Trace.enabled () then Trace.emit (Trace.Wal_append { lsn; bytes = Bytes.length img });
  lsn

let force t lsn =
  (* Fast path: already durable. The unlocked read is safe — [durable] is
     a boxed int64 read in one load, and it only grows, so a stale value
     can only under-report and send us to the locked path. Group-commit
     callers whose LSN a neighbor already forced skip the mutex entirely. *)
  if Lsn.( <= ) lsn t.durable then Metrics.incr m_force_noop
  else begin
    Atomic.incr t.forces;
    Metrics.incr m_forces;
    Mutex.lock t.mutex;
    let high = Int64.of_int (t.base + Dyn.length t.records) in
    if Lsn.( < ) t.durable (Lsn.min lsn high) then t.durable <- Lsn.min lsn high;
    let durable = t.durable in
    Mutex.unlock t.mutex;
    if Trace.enabled () then Trace.emit (Trace.Wal_force { lsn = durable })
  end

let force_all t =
  Atomic.incr t.forces;
  Metrics.incr m_forces;
  Mutex.lock t.mutex;
  t.durable <- Int64.of_int (t.base + Dyn.length t.records);
  let durable = t.durable in
  Mutex.unlock t.mutex;
  if Trace.enabled () then Trace.emit (Trace.Wal_force { lsn = durable })

let last_lsn t = Int64.of_int (Atomic.get t.last)

let durable_lsn t =
  Mutex.lock t.mutex;
  let l = t.durable in
  Mutex.unlock t.mutex;
  l

let read t lsn =
  Mutex.lock t.mutex;
  let idx = Int64.to_int lsn - 1 - t.base in
  let img =
    if idx >= 0 && idx < Dyn.length t.records then Some (Dyn.get t.records idx) else None
  in
  Mutex.unlock t.mutex;
  Option.map (fun img -> Log_record.decode (Codec.reader img)) img

let iter_from t lsn f =
  (* Records are append-only (truncation only removes below the anchor):
     indices under the snapshot are stable enough to read per record. *)
  Mutex.lock t.mutex;
  let n = Dyn.length t.records in
  let base = t.base in
  Mutex.unlock t.mutex;
  let start = max 0 (Int64.to_int lsn - 1 - base) in
  for i = start to n - 1 do
    Mutex.lock t.mutex;
    (* Truncation only discards below the anchor, which iteration never
       starts before; guard anyway. *)
    let img = if i >= 0 && i < Dyn.length t.records then Some (Dyn.get t.records i) else None in
    Mutex.unlock t.mutex;
    match img with Some img -> f (Log_record.decode (Codec.reader img)) | None -> ()
  done

let set_anchor t lsn =
  Mutex.lock t.mutex;
  t.anchor <- lsn;
  Mutex.unlock t.mutex

let anchor t =
  Mutex.lock t.mutex;
  let a = t.anchor in
  Mutex.unlock t.mutex;
  a

let crash t =
  Mutex.lock t.mutex;
  let keep = Int64.to_int t.durable - t.base in
  while Dyn.length t.records > keep do
    ignore (Dyn.pop t.records)
  done;
  Atomic.set t.last (t.base + Dyn.length t.records);
  if Lsn.( < ) t.durable t.anchor then t.anchor <- Lsn.nil;
  Mutex.unlock t.mutex

let crash_ragged ?(keep_bytes = 9) t =
  Mutex.lock t.mutex;
  let keep = Int64.to_int t.durable - t.base in
  (* The device was mid-append when power died: the first record past the
     durable watermark persisted only a prefix. Capture it before the
     volatile tail is dropped. *)
  if Dyn.length t.records > keep then begin
    let img = Dyn.get t.records keep in
    let n = min (max 1 keep_bytes) (Bytes.length img) in
    t.torn_tail <- Some (Bytes.sub img 0 n)
  end;
  Mutex.unlock t.mutex;
  crash t

let has_torn_tail t = t.torn_tail <> None

let discard_torn_tail t =
  Mutex.lock t.mutex;
  let found = t.torn_tail <> None in
  t.torn_tail <- None;
  Mutex.unlock t.mutex;
  if found then Metrics.incr m_torn_tail;
  found

let truncate_before t lsn =
  Mutex.lock t.mutex;
  (* Keep everything at or after the anchor and anything not yet durable:
     records the next restart could need must survive. *)
  let limit = Lsn.min lsn (Lsn.min t.anchor t.durable) in
  let cut = Int64.to_int limit - 1 - t.base in
  if cut > 0 then begin
    let remaining = Dyn.length t.records - cut in
    let fresh = Dyn.create () in
    for i = 0 to remaining - 1 do
      Dyn.push fresh (Dyn.get t.records (cut + i))
    done;
    t.records <- fresh;
    t.base <- t.base + cut
  end;
  let reclaimed = max 0 cut in
  Mutex.unlock t.mutex;
  reclaimed

let appended t = Atomic.get t.last

let forces t = Atomic.get t.forces

let bytes_written t = Atomic.get t.bytes_written

let reset_stats t =
  Atomic.set t.forces 0;
  Atomic.set t.bytes_written 0
