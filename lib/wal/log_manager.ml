open Gist_util
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_appends = Metrics.counter ~unit_:"ops" ~help:"log records appended" "wal.append"

let m_bytes =
  Metrics.counter ~unit_:"bytes" ~help:"serialized log bytes appended" "wal.append_bytes"

let m_forces = Metrics.counter ~unit_:"ops" ~help:"log force (durability) requests" "wal.force"

let m_force_noop =
  Metrics.counter ~unit_:"ops"
    ~help:"force requests skipped because the LSN was already durable" "wal.force_noop"

let m_append_retry =
  Metrics.counter ~unit_:"ops"
    ~help:"contended publish-watermark CAS retries on the lock-free append path"
    "wal.append_retry"

let m_flushes =
  Metrics.counter ~unit_:"ops"
    ~help:"physical log-device writes (one per flush window, however many LSNs it covers)"
    "wal.flush"

let m_flush_absorbed =
  Metrics.counter ~unit_:"ops"
    ~help:"flushes whose LSN a neighboring flush had already covered when they reached \
           the device head — their write was merged but their flush command still paid \
           the device barrier (host-side merging the caller left on the table)"
    "wal.flush_absorbed"

let h_force_wait_ns =
  Metrics.histogram ~unit_:"ns"
    ~help:"time a durability request stalled: device queueing + the physical flush"
    "wal.force_wait_ns"

let h_append_ns =
  Metrics.histogram ~unit_:"ns" ~help:"serialize + LSN-reserve + publish latency of one append"
    "wal.append_ns"

let m_torn_tail =
  Metrics.counter ~unit_:"ops"
    ~help:"partially-written log tails detected and discarded at restart" "wal.torn_tail"

(* The append path takes no lock. An appender

     1. encodes the record into a per-domain scratch buffer (the expensive
        part, fully outside any synchronization),
     2. reserves the next dense LSN with one [Atomic.fetch_and_add],
     3. patches the LSN into the image and stores it into the reserved
        slot of a chunked slot store, and
     4. advances the contiguous *publish watermark* over every filled slot.

   The watermark ([published]) is the log's public high-water mark: reads,
   iteration, [last_lsn] (the §10.1 NSN counter) and [force] all clamp to
   it, so a reserved-but-unfilled slot from a concurrent appender is never
   observable. A caller that needs a specific reserved LSN ([force] before
   commit returns, [read] during rollback) blocks on a condition variable
   until the watermark covers it — between reservation and slot store
   there is no fallible or blocking code, so the gap closes as soon as the
   neighboring appender is scheduled, and the group-commit property of the
   old mutex design is preserved without the convoy.

   The mutex guards only structural cold paths: chunk-directory growth,
   truncation, simulated crashes, and the torn-tail capture. *)

let chunk_bits = 10

let chunk_size = 1 lsl chunk_bits (* records per slot chunk *)

type chunk = Bytes.t option Atomic.t array

(* Shared sentinel for truncated-away (or not-yet-allocated) chunks. *)
let empty_chunk : chunk = [||]

type t = {
  mutex : Mutex.t; (* chunk growth, truncation, crash, torn-tail capture *)
  chunks : chunk array Atomic.t; (* directory; chunk c holds LSNs c*CS+1 .. (c+1)*CS *)
  next : int Atomic.t; (* highest reserved LSN *)
  published : int Atomic.t; (* highest contiguous in-place LSN *)
  durable : int Atomic.t; (* durability watermark; <= published *)
  floor : int Atomic.t; (* LSNs <= floor have been truncated away *)
  anchor : int Atomic.t; (* checkpoint anchor ("master record") *)
  wait_m : Mutex.t; (* publish-watermark waiters (force/read of an in-flight LSN) *)
  wait_c : Condition.t;
  waiters : int Atomic.t; (* publishers broadcast only when someone is parked *)
  forces : int Atomic.t;
  flush_m : Mutex.t;
      (* the simulated log device: one flush command at a time, and every
         command pays the full device round-trip ([flush_delay_ns]) — a
         barrier issued to the device costs the same whether or not the
         cache still holds dirty bytes. Merging concurrent flushes into
         one command is the *host's* job; [Group_commit]'s writer domain
         is where that happens. *)
  flush_delay_ns : int Atomic.t; (* simulated device latency per physical flush *)
  mutable bytes_base : int; (* [wal.append_bytes] value at create/reset_stats *)
  mutable append_hook : (unit -> unit) option;
      (* fault injection: runs at append entry, before any state changes *)
  mutable flush_hook : (unit -> unit) option;
      (* fault injection: runs at every durability *request* (force entry,
         group-commit submit) in the requesting domain, never in the
         log-writer domain — crash points inside the flush window stay
         deterministic for the crash fuzzer *)
  torn_tail : Bytes.t option Atomic.t;
      (* a partially persisted record beyond [durable] left by a ragged
         crash; occupies no LSN slot and must be discarded at restart *)
}

let create () =
  {
    mutex = Mutex.create ();
    chunks = Atomic.make [||];
    next = Atomic.make 0;
    published = Atomic.make 0;
    durable = Atomic.make 0;
    floor = Atomic.make 0;
    anchor = Atomic.make 0;
    wait_m = Mutex.create ();
    wait_c = Condition.create ();
    waiters = Atomic.make 0;
    forces = Atomic.make 0;
    flush_m = Mutex.create ();
    flush_delay_ns = Atomic.make 0;
    bytes_base = Metrics.value m_bytes;
    append_hook = None;
    flush_hook = None;
    torn_tail = Atomic.make None;
  }

let set_append_hook t hook = t.append_hook <- hook

let set_flush_hook t hook = t.flush_hook <- hook

let fire_flush_hook t = match t.flush_hook with None -> () | Some hook -> hook ()

let set_flush_delay_ns t ns = Atomic.set t.flush_delay_ns (max 0 ns)

(* The slot holding [lsn], or [None] when its chunk has not been allocated
   (or was truncated away wholesale). Lock-free. *)
let slot t lsn =
  let idx = lsn - 1 in
  let c = idx lsr chunk_bits in
  let dir = Atomic.get t.chunks in
  if c >= Array.length dir then None
  else
    let chunk = Array.unsafe_get dir c in
    let i = idx land (chunk_size - 1) in
    if i >= Array.length chunk then None else Some (Array.unsafe_get chunk i)

let slot_get t lsn = match slot t lsn with None -> None | Some s -> Atomic.get s

(* The slot for [lsn], allocating its chunk (and growing the directory)
   under the mutex if needed. Only the rare first-append-into-a-chunk
   takes the lock. *)
let ensure_slot t lsn =
  match slot t lsn with
  | Some s -> s
  | None ->
    Mutex.lock t.mutex;
    let idx = lsn - 1 in
    let c = idx lsr chunk_bits in
    let dir = Atomic.get t.chunks in
    let dir =
      if c < Array.length dir then dir
      else begin
        let dir' = Array.make (max (c + 1) (max 4 (2 * Array.length dir))) empty_chunk in
        Array.blit dir 0 dir' 0 (Array.length dir);
        Atomic.set t.chunks dir';
        dir'
      end
    in
    if dir.(c) == empty_chunk then dir.(c) <- Array.init chunk_size (fun _ -> Atomic.make None);
    let s = dir.(c).(idx land (chunk_size - 1)) in
    Mutex.unlock t.mutex;
    s

let wake_waiters t =
  if Atomic.get t.waiters > 0 then begin
    Mutex.lock t.wait_m;
    Condition.broadcast t.wait_c;
    Mutex.unlock t.wait_m
  end

(* Advance the publish watermark over every contiguous filled slot. Each
   appender calls this after storing its own record; whichever domain
   observes the next slot filled carries the watermark forward, so it
   reaches [next] as soon as every reservation below is in place. A failed
   CAS means a neighbor advanced concurrently — counted as
   [wal.append_retry], the contention the old design paid a mutex for. *)
let rec publish t =
  let p = Atomic.get t.published in
  if p < Atomic.get t.next && slot_get t (p + 1) <> None then begin
    if Atomic.compare_and_set t.published p (p + 1) then wake_waiters t
    else Metrics.incr m_append_retry;
    publish t
  end

(* Park until the watermark covers [target], or the reservation counter
   rewinds below it (a simulated crash dropped the tail). Parking (rather
   than spinning) matters on an oversubscribed host: the missing slot
   belongs to a neighbor that may not be scheduled yet. *)
let wait_published t target =
  if Atomic.get t.published < target && Atomic.get t.next >= target then begin
    Atomic.incr t.waiters;
    Mutex.lock t.wait_m;
    while Atomic.get t.published < target && Atomic.get t.next >= target do
      Condition.wait t.wait_c t.wait_m
    done;
    Mutex.unlock t.wait_m;
    Atomic.decr t.waiters
  end

let scratch_key : Buffer.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Buffer.create 256)

let append t ~txn ~prev ?(ext = "") payload =
  (match t.append_hook with None -> () | Some hook -> hook ());
  (* A successful append lands where the garbage tail sat: overwrite it. *)
  if Atomic.get t.torn_tail <> None then Atomic.set t.torn_tail None;
  let t0 = Clock.now_ns () in
  (* Serialize into the calling domain's reusable scratch buffer — no
     per-record [Buffer.create], no synchronization. *)
  let b = Domain.DLS.get scratch_key in
  Buffer.clear b;
  (* Placeholder LSN; patched once reserved. *)
  Log_record.encode b { Log_record.lsn = Lsn.nil; txn; prev; ext; payload };
  let img = Buffer.to_bytes b in
  (* Reservation to slot-store is straight-line infallible code, so every
     reserved slot is filled promptly and the watermark never sticks. *)
  let lsn = 1 + Atomic.fetch_and_add t.next 1 in
  Bytes.set_int64_le img 0 (Int64.of_int lsn);
  Atomic.set (ensure_slot t lsn) (Some img);
  publish t;
  Metrics.incr m_appends;
  (* The byte count is recorded exactly once — [bytes_written] reads this
     same counter relative to a baseline instead of keeping a twin. *)
  Metrics.add m_bytes (Bytes.length img);
  Metrics.record h_append_ns (Float.of_int (Clock.now_ns () - t0));
  let lsn64 = Int64.of_int lsn in
  if Trace.enabled () then Trace.emit (Trace.Wal_append { lsn = lsn64; bytes = Bytes.length img });
  lsn64

(* Monotonic CAS advance of the durability watermark. *)
let rec advance_durable t target =
  let d = Atomic.get t.durable in
  if d < target && not (Atomic.compare_and_set t.durable d target) then advance_durable t target

(* The physical flush: one simulated flush command making every record up
   to [target] durable. The device ([flush_m]) admits one command at a
   time and each pays the full round-trip: a caller that queued behind a
   neighbor whose write already covered its LSN has nothing left to
   *write* ([wal.flush_absorbed]) but still owes its own barrier —
   devices don't merge flush commands, hosts do. That merging is exactly
   what [Group_commit]'s writer domain adds: one command per window
   instead of one per committer. *)
let force_to t target =
  wait_published t target;
  (* If a simulated crash rewound the tail while we waited, only what
     remains published can be made durable. *)
  let target = min target (Atomic.get t.published) in
  if target > Atomic.get t.durable then begin
    Mutex.lock t.flush_m;
    if target <= Atomic.get t.durable then Metrics.incr m_flush_absorbed;
    let delay = Atomic.get t.flush_delay_ns in
    if delay > 0 then Unix.sleepf (Float.of_int delay /. 1e9);
    Metrics.incr m_flushes;
    (* Re-clamp: a crash during the simulated device wait may have
       rewound the published watermark below the target. *)
    advance_durable t (min target (Atomic.get t.published));
    Mutex.unlock t.flush_m
  end;
  if Trace.enabled () then Trace.emit (Trace.Wal_force { lsn = Int64.of_int (Atomic.get t.durable) })

let force t lsn =
  fire_flush_hook t;
  (* Fast path: already durable. [durable] only grows, so a stale read can
     only under-report and send us to the slow path. Group-commit callers
     whose LSN a neighbor already forced return immediately. *)
  if Int64.to_int lsn <= Atomic.get t.durable then Metrics.incr m_force_noop
  else begin
    Atomic.incr t.forces;
    Metrics.incr m_forces;
    Metrics.time_ns h_force_wait_ns (fun () ->
        force_to t (min (Int64.to_int lsn) (Atomic.get t.next)))
  end

let force_all t =
  fire_flush_hook t;
  Atomic.incr t.forces;
  Metrics.incr m_forces;
  Metrics.time_ns h_force_wait_ns (fun () -> force_to t (Atomic.get t.next))

(* The group-commit writer's entry point: a physical flush with no
   request hook (the request already fired in the submitting domain) and
   no [forces] accounting (the writer's device writes are counted in
   [wal.flush] / [wal.group_flush], not as caller-side force calls). *)
let flush_to t lsn = force_to t (min (Int64.to_int lsn) (Atomic.get t.next))

let last_lsn t = Int64.of_int (Atomic.get t.published)

(* Lock-free monotonic read, same justification as [force]'s fast path. *)
let durable_lsn t = Int64.of_int (Atomic.get t.durable)

let read t lsn =
  let l = Int64.to_int lsn in
  if l <= Atomic.get t.floor || l > Atomic.get t.next then None
  else begin
    (* A reserved LSN exists (its appender is mid-publish); wait for it so
       rollback never mistakes an in-flight record for a crash-lost one. *)
    wait_published t l;
    if l > Atomic.get t.published then None (* crash rewound the tail *)
    else
      (* A concurrent truncation may clear the slot after the floor check;
         the [None] that results is exactly the truncated-away answer. *)
      Option.map (fun img -> Log_record.decode (Codec.reader img)) (slot_get t l)
  end

let iter_from t lsn f =
  (* Slots are immutable once published and truncation only clears below
     the anchor (which iteration never starts before), so a single
     watermark snapshot bounds a fully lock-free scan — restart replay
     takes zero lock round-trips however long the log is. *)
  let hi = Atomic.get t.published in
  let start = max (Int64.to_int lsn) (Atomic.get t.floor + 1) in
  for l = max 1 start to hi do
    match slot_get t l with
    | Some img -> f (Log_record.decode (Codec.reader img))
    | None -> ()
  done

let set_anchor t lsn = Atomic.set t.anchor (Int64.to_int lsn)

let anchor t = Int64.of_int (Atomic.get t.anchor)

let crash t =
  (* Simulated power loss: stop-the-world by construction (the workload
     domains are gone). The volatile tail past [durable] is discarded and
     the reservation/publish counters rewind to the watermark. *)
  Mutex.lock t.mutex;
  let durable = Atomic.get t.durable in
  let high = Atomic.get t.next in
  for l = durable + 1 to high do
    match slot t l with None -> () | Some s -> Atomic.set s None
  done;
  Atomic.set t.next durable;
  Atomic.set t.published durable;
  if Atomic.get t.anchor > durable then Atomic.set t.anchor 0;
  Mutex.unlock t.mutex;
  (* Unpark anyone waiting on a now-lost LSN. *)
  Mutex.lock t.wait_m;
  Condition.broadcast t.wait_c;
  Mutex.unlock t.wait_m

let crash_ragged ?(keep_bytes = 9) t =
  Mutex.lock t.mutex;
  let durable = Atomic.get t.durable in
  (* The device was mid-append when power died: the first record past the
     durable watermark persisted only a prefix. Capture it before the
     volatile tail is dropped. *)
  (match slot_get t (durable + 1) with
  | Some img ->
    let n = min (max 1 keep_bytes) (Bytes.length img) in
    Atomic.set t.torn_tail (Some (Bytes.sub img 0 n))
  | None -> ());
  Mutex.unlock t.mutex;
  crash t

let has_torn_tail t = Atomic.get t.torn_tail <> None

let discard_torn_tail t =
  let found = Atomic.get t.torn_tail <> None in
  Atomic.set t.torn_tail None;
  if found then Metrics.incr m_torn_tail;
  found

let truncate_before t lsn =
  Mutex.lock t.mutex;
  (* Keep everything at or after the anchor and anything not yet durable:
     records the next restart could need must survive. *)
  let limit = min (Int64.to_int lsn) (min (Atomic.get t.anchor) (Atomic.get t.durable)) in
  let floor = Atomic.get t.floor in
  let floor' = max floor (limit - 1) in
  let reclaimed = floor' - floor in
  if reclaimed > 0 then begin
    for l = floor + 1 to floor' do
      match slot t l with None -> () | Some s -> Atomic.set s None
    done;
    (* Chunks now entirely below the floor are dropped wholesale (slot
       arrays freed, the directory keeps the shared sentinel). *)
    let dir = Atomic.get t.chunks in
    for c = 0 to (floor' / chunk_size) - 1 do
      if c < Array.length dir then dir.(c) <- empty_chunk
    done;
    Atomic.set t.floor floor'
  end;
  Mutex.unlock t.mutex;
  max 0 reclaimed

let appended t = Atomic.get t.published

let forces t = Atomic.get t.forces

let bytes_written t = Metrics.value m_bytes - t.bytes_base

let reset_stats t =
  Atomic.set t.forces 0;
  t.bytes_base <- Metrics.value m_bytes
