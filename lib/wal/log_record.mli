(** Log records — the catalog of Table 1 plus transaction control.

    Key and entry images are carried as opaque strings (the GiST extension's
    binary encoding); the WAL layer moves them around without interpreting
    them, exactly as the paper requires ("no additional user-supplied
    extension code is required to write the log records").

    Structure-modification records ([Split], [Root_grow],
    [Internal_entry_*], [Get_page], [Free_page]) are written inside nested
    top actions and are undone page-oriented if the NTA is incomplete at
    crash time. [Add_leaf_entry] and [Mark_leaf_entry] belong to the
    initiating transaction and are undone *logically* (rightlink traversal
    to relocate the entry), per §9.2. [Parent_entry_update] and
    [Garbage_collection] are redo-only. *)

type status = Active | Committed | Aborting

(** Redo-only actions a compensation record can describe. Rollback applies
    the inverse of the original record and logs it as a [Clr] whose action
    is replayed with ordinary page-LSN-conditional redo, so that restart
    repeats history and undo is never undone — even if the system crashes
    in the middle of restart undo. *)
type checkpoint_end = {
  dirty_pages : (Gist_storage.Page_id.t * Lsn.t) list;  (** ARIES dirty page table. *)
  active_txns : (Gist_util.Txn_id.t * status * Lsn.t) list;
      (** Transaction table: id, status, last LSN. *)
  allocator : string;  (** Opaque page-allocator snapshot. *)
}

type clr_action =
  | Act_none  (** Dummy CLR closing a nested top action. *)
  | Act_apply of payload
      (** The page-oriented inverse of the compensated record, e.g. a
          [Remove_leaf_entry] compensating an [Add_leaf_entry]. *)

and payload =
  | Begin
  | Commit
  | Abort
  | End
  | Clr of { action : clr_action; undo_next : Lsn.t }
  | Checkpoint_begin
  | Checkpoint_end of checkpoint_end
  (* --- Table 1 structure modification and content records --- *)
  | Parent_entry_update of {
      parent : Gist_storage.Page_id.t;
      child : Gist_storage.Page_id.t;
      new_bp : string;
    }  (** Redo-only: BP expansion in child header and parent slot. *)
  | Split of {
      orig : Gist_storage.Page_id.t;
      right : Gist_storage.Page_id.t;
      moved : string list;  (** Encoded entries moved to the right page. *)
      orig_old_nsn : Lsn.t;
      orig_new_nsn : Lsn.t;
      orig_old_rightlink : Gist_storage.Page_id.t;
      level : int;
    }
  | Root_grow of {
      root : Gist_storage.Page_id.t;
      child : Gist_storage.Page_id.t;
      entries : string list;  (** Everything moved from the root to [child]. *)
      root_old_nsn : Lsn.t;
      old_level : int;
      root_bp : string;
    }  (** Fixed-root root split: root's content moves into a fresh child. *)
  | Garbage_collection of {
      page : Gist_storage.Page_id.t;
      rids : Gist_storage.Rid.t list;
    }  (** Redo-only: physical removal of committed-deleted leaf entries. *)
  | Internal_entry_add of { page : Gist_storage.Page_id.t; entry : string }
  | Internal_entry_update of {
      page : Gist_storage.Page_id.t;
      child : Gist_storage.Page_id.t;
      new_bp : string;
      old_bp : string;
    }
  | Internal_entry_delete of { page : Gist_storage.Page_id.t; entry : string }
  | Add_leaf_entry of {
      page : Gist_storage.Page_id.t;
      nsn : Lsn.t;
      entry : string;
      rid : Gist_storage.Rid.t;
    }
  | Mark_leaf_entry of {
      page : Gist_storage.Page_id.t;
      nsn : Lsn.t;
      rid : Gist_storage.Rid.t;
    }
  | Get_page of { page : Gist_storage.Page_id.t }
  | Free_page of { page : Gist_storage.Page_id.t }
  (* --- CLR-only inverse actions (page-oriented, redo-only) --- *)
  | Remove_leaf_entry of { page : Gist_storage.Page_id.t; rid : Gist_storage.Rid.t }
      (** Physical removal compensating [Add_leaf_entry] (logical undo
          relocates the entry first; [page] is where it actually was). *)
  | Unmark_leaf_entry of { page : Gist_storage.Page_id.t; rid : Gist_storage.Rid.t }
      (** Compensates [Mark_leaf_entry]. *)
  | Unsplit of {
      orig : Gist_storage.Page_id.t;
      right : Gist_storage.Page_id.t;
      moved : string list;
      restore_nsn : Lsn.t;
      restore_rightlink : Gist_storage.Page_id.t;
    }  (** Compensates [Split] when a split NTA is interrupted. *)
  | Root_shrink of {
      root : Gist_storage.Page_id.t;
      child : Gist_storage.Page_id.t;
      entries : string list;
      restore_nsn : Lsn.t;
      restore_level : int;
    }  (** Compensates [Root_grow]. *)
  | Format_node of { page : Gist_storage.Page_id.t; level : int; bp : string }
      (** Formats an empty node (tree creation); redo-only — the enclosing
          NTA's Get-Page undo releases the page. *)
  | Set_rightlink of {
      page : Gist_storage.Page_id.t;
      new_rl : Gist_storage.Page_id.t;
      old_rl : Gist_storage.Page_id.t;
    }  (** Stitches a left sibling's rightlink past a deleted node (§7.2);
          written inside the node-deletion NTA. *)
  | Page_image of { page : Gist_storage.Page_id.t; image : string }
      (** Full page image (Postgres-style full-page write), logged by the
          buffer pool when a page first becomes dirty and
          [Db.config.full_page_writes] is on. Redo-only and
          extension-independent: restart installs the image verbatim
          (page-LSN conditional) — the repair source for pages a torn
          write destroyed. Never part of a transaction backchain. *)

type t = {
  lsn : Lsn.t;
  txn : Gist_util.Txn_id.t;
  prev : Lsn.t;  (** Backchain to this transaction's previous record. *)
  ext : string;
      (** Name of the access-method extension whose encodings the payload
          carries ("" for control records) — recovery dispatches on it in
          multi-tree databases. *)
  payload : payload;
}

val is_redo_only : payload -> bool
(** True for records whose undo action in Table 1 is "none". *)

val pages_touched : payload -> Gist_storage.Page_id.t list
(** Pages whose images this record's redo may modify (drives the dirty page
    table during analysis). *)

val encode : Buffer.t -> t -> unit
val decode : Gist_util.Codec.reader -> t
val pp : Format.formatter -> t -> unit
val pp_status : Format.formatter -> status -> unit
