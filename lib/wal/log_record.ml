open Gist_util
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid

type status = Active | Committed | Aborting

type checkpoint_end = {
  dirty_pages : (Page_id.t * Lsn.t) list;
  active_txns : (Txn_id.t * status * Lsn.t) list;
  allocator : string;
}

type clr_action = Act_none | Act_apply of payload

and payload =
  | Begin
  | Commit
  | Abort
  | End
  | Clr of { action : clr_action; undo_next : Lsn.t }
  | Checkpoint_begin
  | Checkpoint_end of checkpoint_end
  | Parent_entry_update of { parent : Page_id.t; child : Page_id.t; new_bp : string }
  | Split of {
      orig : Page_id.t;
      right : Page_id.t;
      moved : string list;
      orig_old_nsn : Lsn.t;
      orig_new_nsn : Lsn.t;
      orig_old_rightlink : Page_id.t;
      level : int;
    }
  | Root_grow of {
      root : Page_id.t;
      child : Page_id.t;
      entries : string list;
      root_old_nsn : Lsn.t;
      old_level : int;
      root_bp : string;
    }
  | Garbage_collection of { page : Page_id.t; rids : Rid.t list }
  | Internal_entry_add of { page : Page_id.t; entry : string }
  | Internal_entry_update of {
      page : Page_id.t;
      child : Page_id.t;
      new_bp : string;
      old_bp : string;
    }
  | Internal_entry_delete of { page : Page_id.t; entry : string }
  | Add_leaf_entry of { page : Page_id.t; nsn : Lsn.t; entry : string; rid : Rid.t }
  | Mark_leaf_entry of { page : Page_id.t; nsn : Lsn.t; rid : Rid.t }
  | Get_page of { page : Page_id.t }
  | Free_page of { page : Page_id.t }
  | Remove_leaf_entry of { page : Page_id.t; rid : Rid.t }
  | Unmark_leaf_entry of { page : Page_id.t; rid : Rid.t }
  | Unsplit of {
      orig : Page_id.t;
      right : Page_id.t;
      moved : string list;
      restore_nsn : Lsn.t;
      restore_rightlink : Page_id.t;
    }
  | Root_shrink of {
      root : Page_id.t;
      child : Page_id.t;
      entries : string list;
      restore_nsn : Lsn.t;
      restore_level : int;
    }
  | Format_node of { page : Page_id.t; level : int; bp : string }
  | Set_rightlink of { page : Page_id.t; new_rl : Page_id.t; old_rl : Page_id.t }
  | Page_image of { page : Page_id.t; image : string }

type t = { lsn : Lsn.t; txn : Txn_id.t; prev : Lsn.t; ext : string; payload : payload }

let is_redo_only = function
  | Parent_entry_update _ | Garbage_collection _ | Clr _ -> true
  | Begin | Commit | Abort | End | Checkpoint_begin | Checkpoint_end _ -> true
  | Remove_leaf_entry _ | Unmark_leaf_entry _ | Unsplit _ | Root_shrink _ -> true
  | Format_node _ | Page_image _ -> true
  | Set_rightlink _ -> false
  | Split _ | Root_grow _ | Internal_entry_add _ | Internal_entry_update _
  | Internal_entry_delete _ | Add_leaf_entry _ | Mark_leaf_entry _ | Get_page _
  | Free_page _ ->
    false

let rec pages_touched = function
  | Begin | Commit | Abort | End | Checkpoint_begin | Checkpoint_end _ -> []
  | Clr { action = Act_apply p; _ } -> pages_touched p
  | Clr { action = Act_none; _ } -> []
  | Remove_leaf_entry { page; _ } | Unmark_leaf_entry { page; _ } -> [ page ]
  | Unsplit { orig; right; _ } -> [ orig; right ]
  | Root_shrink { root; child; _ } -> [ root; child ]
  | Format_node { page; _ } -> [ page ]
  | Set_rightlink { page; _ } -> [ page ]
  | Page_image { page; _ } -> [ page ]
  | Parent_entry_update { parent; child; _ } -> [ parent; child ]
  | Split { orig; right; _ } -> [ orig; right ]
  | Root_grow { root; child; _ } -> [ root; child ]
  | Garbage_collection { page; _ }
  | Internal_entry_add { page; _ }
  | Internal_entry_update { page; _ }
  | Internal_entry_delete { page; _ }
  | Add_leaf_entry { page; _ }
  | Mark_leaf_entry { page; _ } ->
    [ page ]
  | Get_page _ | Free_page _ -> []

(* --- binary encoding --- *)

let tag_of = function
  | Begin -> 1
  | Commit -> 2
  | Abort -> 3
  | End -> 4
  | Clr _ -> 5
  | Checkpoint_begin -> 6
  | Checkpoint_end _ -> 7
  | Parent_entry_update _ -> 8
  | Split _ -> 9
  | Root_grow _ -> 10
  | Garbage_collection _ -> 11
  | Internal_entry_add _ -> 12
  | Internal_entry_update _ -> 13
  | Internal_entry_delete _ -> 14
  | Add_leaf_entry _ -> 15
  | Mark_leaf_entry _ -> 16
  | Get_page _ -> 17
  | Free_page _ -> 18
  | Remove_leaf_entry _ -> 19
  | Unmark_leaf_entry _ -> 20
  | Unsplit _ -> 21
  | Root_shrink _ -> 22
  | Format_node _ -> 23
  | Set_rightlink _ -> 24
  | Page_image _ -> 25

let encode_status b = function
  | Active -> Codec.put_u8 b 0
  | Committed -> Codec.put_u8 b 1
  | Aborting -> Codec.put_u8 b 2

let decode_status r =
  match Codec.get_u8 r with
  | 0 -> Active
  | 1 -> Committed
  | 2 -> Aborting
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad txn status %d" n))

let rec encode_action b = function
  | Act_none -> Codec.put_u8 b 0
  | Act_apply p ->
    Codec.put_u8 b 1;
    encode_payload b p

and encode_payload b p =
  Codec.put_u8 b (tag_of p);
  match p with
  | Begin | Commit | Abort | End | Checkpoint_begin -> ()
  | Clr { action; undo_next } ->
    encode_action b action;
    Lsn.encode b undo_next
  | Checkpoint_end { dirty_pages; active_txns; allocator } ->
    Codec.put_list
      (fun b (p, l) ->
        Page_id.encode b p;
        Lsn.encode b l)
      b dirty_pages;
    Codec.put_list
      (fun b (t, s, l) ->
        Txn_id.encode b t;
        encode_status b s;
        Lsn.encode b l)
      b active_txns;
    Codec.put_string b allocator
  | Parent_entry_update { parent; child; new_bp } ->
    Page_id.encode b parent;
    Page_id.encode b child;
    Codec.put_string b new_bp
  | Split { orig; right; moved; orig_old_nsn; orig_new_nsn; orig_old_rightlink; level } ->
    Page_id.encode b orig;
    Page_id.encode b right;
    Codec.put_list Codec.put_string b moved;
    Lsn.encode b orig_old_nsn;
    Lsn.encode b orig_new_nsn;
    Page_id.encode b orig_old_rightlink;
    Codec.put_i32 b level
  | Root_grow { root; child; entries; root_old_nsn; old_level; root_bp } ->
    Page_id.encode b root;
    Page_id.encode b child;
    Codec.put_list Codec.put_string b entries;
    Lsn.encode b root_old_nsn;
    Codec.put_i32 b old_level;
    Codec.put_string b root_bp
  | Garbage_collection { page; rids } ->
    Page_id.encode b page;
    Codec.put_list Rid.encode b rids
  | Internal_entry_add { page; entry } ->
    Page_id.encode b page;
    Codec.put_string b entry
  | Internal_entry_update { page; child; new_bp; old_bp } ->
    Page_id.encode b page;
    Page_id.encode b child;
    Codec.put_string b new_bp;
    Codec.put_string b old_bp
  | Internal_entry_delete { page; entry } ->
    Page_id.encode b page;
    Codec.put_string b entry
  | Add_leaf_entry { page; nsn; entry; rid } ->
    Page_id.encode b page;
    Lsn.encode b nsn;
    Codec.put_string b entry;
    Rid.encode b rid
  | Mark_leaf_entry { page; nsn; rid } ->
    Page_id.encode b page;
    Lsn.encode b nsn;
    Rid.encode b rid
  | Get_page { page } -> Page_id.encode b page
  | Free_page { page } -> Page_id.encode b page
  | Remove_leaf_entry { page; rid } ->
    Page_id.encode b page;
    Rid.encode b rid
  | Unmark_leaf_entry { page; rid } ->
    Page_id.encode b page;
    Rid.encode b rid
  | Unsplit { orig; right; moved; restore_nsn; restore_rightlink } ->
    Page_id.encode b orig;
    Page_id.encode b right;
    Codec.put_list Codec.put_string b moved;
    Lsn.encode b restore_nsn;
    Page_id.encode b restore_rightlink
  | Root_shrink { root; child; entries; restore_nsn; restore_level } ->
    Page_id.encode b root;
    Page_id.encode b child;
    Codec.put_list Codec.put_string b entries;
    Lsn.encode b restore_nsn;
    Codec.put_i32 b restore_level
  | Format_node { page; level; bp } ->
    Page_id.encode b page;
    Codec.put_i32 b level;
    Codec.put_string b bp
  | Set_rightlink { page; new_rl; old_rl } ->
    Page_id.encode b page;
    Page_id.encode b new_rl;
    Page_id.encode b old_rl
  | Page_image { page; image } ->
    Page_id.encode b page;
    Codec.put_string b image

let rec decode_action r =
  match Codec.get_u8 r with
  | 0 -> Act_none
  | 1 -> Act_apply (decode_payload r)
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad clr action %d" n))

and decode_payload r =
  match Codec.get_u8 r with
  | 1 -> Begin
  | 2 -> Commit
  | 3 -> Abort
  | 4 -> End
  | 5 ->
    let action = decode_action r in
    let undo_next = Lsn.decode r in
    Clr { action; undo_next }
  | 6 -> Checkpoint_begin
  | 7 ->
    let dirty_pages =
      Codec.get_list
        (fun r ->
          let p = Page_id.decode r in
          let l = Lsn.decode r in
          (p, l))
        r
    in
    let active_txns =
      Codec.get_list
        (fun r ->
          let t = Txn_id.decode r in
          let s = decode_status r in
          let l = Lsn.decode r in
          (t, s, l))
        r
    in
    let allocator = Codec.get_string r in
    Checkpoint_end { dirty_pages; active_txns; allocator }
  | 8 ->
    let parent = Page_id.decode r in
    let child = Page_id.decode r in
    let new_bp = Codec.get_string r in
    Parent_entry_update { parent; child; new_bp }
  | 9 ->
    let orig = Page_id.decode r in
    let right = Page_id.decode r in
    let moved = Codec.get_list Codec.get_string r in
    let orig_old_nsn = Lsn.decode r in
    let orig_new_nsn = Lsn.decode r in
    let orig_old_rightlink = Page_id.decode r in
    let level = Codec.get_i32 r in
    Split { orig; right; moved; orig_old_nsn; orig_new_nsn; orig_old_rightlink; level }
  | 10 ->
    let root = Page_id.decode r in
    let child = Page_id.decode r in
    let entries = Codec.get_list Codec.get_string r in
    let root_old_nsn = Lsn.decode r in
    let old_level = Codec.get_i32 r in
    let root_bp = Codec.get_string r in
    Root_grow { root; child; entries; root_old_nsn; old_level; root_bp }
  | 11 ->
    let page = Page_id.decode r in
    let rids = Codec.get_list Rid.decode r in
    Garbage_collection { page; rids }
  | 12 ->
    let page = Page_id.decode r in
    let entry = Codec.get_string r in
    Internal_entry_add { page; entry }
  | 13 ->
    let page = Page_id.decode r in
    let child = Page_id.decode r in
    let new_bp = Codec.get_string r in
    let old_bp = Codec.get_string r in
    Internal_entry_update { page; child; new_bp; old_bp }
  | 14 ->
    let page = Page_id.decode r in
    let entry = Codec.get_string r in
    Internal_entry_delete { page; entry }
  | 15 ->
    let page = Page_id.decode r in
    let nsn = Lsn.decode r in
    let entry = Codec.get_string r in
    let rid = Rid.decode r in
    Add_leaf_entry { page; nsn; entry; rid }
  | 16 ->
    let page = Page_id.decode r in
    let nsn = Lsn.decode r in
    let rid = Rid.decode r in
    Mark_leaf_entry { page; nsn; rid }
  | 17 -> Get_page { page = Page_id.decode r }
  | 18 -> Free_page { page = Page_id.decode r }
  | 19 ->
    let page = Page_id.decode r in
    let rid = Rid.decode r in
    Remove_leaf_entry { page; rid }
  | 20 ->
    let page = Page_id.decode r in
    let rid = Rid.decode r in
    Unmark_leaf_entry { page; rid }
  | 21 ->
    let orig = Page_id.decode r in
    let right = Page_id.decode r in
    let moved = Codec.get_list Codec.get_string r in
    let restore_nsn = Lsn.decode r in
    let restore_rightlink = Page_id.decode r in
    Unsplit { orig; right; moved; restore_nsn; restore_rightlink }
  | 22 ->
    let root = Page_id.decode r in
    let child = Page_id.decode r in
    let entries = Codec.get_list Codec.get_string r in
    let restore_nsn = Lsn.decode r in
    let restore_level = Codec.get_i32 r in
    Root_shrink { root; child; entries; restore_nsn; restore_level }
  | 23 ->
    let page = Page_id.decode r in
    let level = Codec.get_i32 r in
    let bp = Codec.get_string r in
    Format_node { page; level; bp }
  | 24 ->
    let page = Page_id.decode r in
    let new_rl = Page_id.decode r in
    let old_rl = Page_id.decode r in
    Set_rightlink { page; new_rl; old_rl }
  | 25 ->
    let page = Page_id.decode r in
    let image = Codec.get_string r in
    Page_image { page; image }
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad log record tag %d" n))

let encode b t =
  Lsn.encode b t.lsn;
  Txn_id.encode b t.txn;
  Lsn.encode b t.prev;
  Codec.put_string b t.ext;
  encode_payload b t.payload

let decode r =
  let lsn = Lsn.decode r in
  let txn = Txn_id.decode r in
  let prev = Lsn.decode r in
  let ext = Codec.get_string r in
  let payload = decode_payload r in
  { lsn; txn; prev; ext; payload }

let pp_status ppf = function
  | Active -> Format.pp_print_string ppf "active"
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborting -> Format.pp_print_string ppf "aborting"

let payload_name = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | End -> "end"
  | Clr _ -> "clr"
  | Checkpoint_begin -> "ckpt-begin"
  | Checkpoint_end _ -> "ckpt-end"
  | Parent_entry_update _ -> "parent-entry-update"
  | Split _ -> "split"
  | Root_grow _ -> "root-grow"
  | Garbage_collection _ -> "garbage-collection"
  | Internal_entry_add _ -> "internal-entry-add"
  | Internal_entry_update _ -> "internal-entry-update"
  | Internal_entry_delete _ -> "internal-entry-delete"
  | Add_leaf_entry _ -> "add-leaf-entry"
  | Mark_leaf_entry _ -> "mark-leaf-entry"
  | Get_page _ -> "get-page"
  | Free_page _ -> "free-page"
  | Remove_leaf_entry _ -> "remove-leaf-entry"
  | Unmark_leaf_entry _ -> "unmark-leaf-entry"
  | Unsplit _ -> "unsplit"
  | Root_shrink _ -> "root-shrink"
  | Format_node _ -> "format-node"
  | Set_rightlink _ -> "set-rightlink"
  | Page_image _ -> "page-image"

let pp ppf t =
  Format.fprintf ppf "@[<h>%a %a prev=%a %s" Lsn.pp t.lsn Txn_id.pp t.txn Lsn.pp t.prev
    (payload_name t.payload);
  (match t.payload with
  | Clr { undo_next; _ } -> Format.fprintf ppf " undo_next=%a" Lsn.pp undo_next
  | Split { orig; right; moved; _ } ->
    Format.fprintf ppf " %a->%a moved=%d" Page_id.pp orig Page_id.pp right (List.length moved)
  | Add_leaf_entry { page; rid; _ } ->
    Format.fprintf ppf " %a %a" Page_id.pp page Rid.pp rid
  | Mark_leaf_entry { page; rid; _ } ->
    Format.fprintf ppf " %a %a" Page_id.pp page Rid.pp rid
  | _ -> ());
  Format.fprintf ppf "@]"
