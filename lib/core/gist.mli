(** The concurrent, recoverable Generalized Search Tree.

    Implements the paper's protocol stack end to end:

    - {b Search} (Figure 3): stack-driven DFS with split detection via
      NSN/rightlink, predicate attachment for repeatable read, S record
      locks on qualifying entries, and latch-release-then-block when a
      record lock would wait. Internal nodes are by default visited
      {e latch-free} under the frame latch's version word (optimistic
      lock coupling, PROTOCOL.md §7), falling back to the classic
      per-node S latch on conflict; leaves always take the S latch.
    - {b Insert} (Figure 4): min-penalty descent without latch coupling,
      split compensation via rightlinks, recursive node splits and BP
      update propagation executed as nested top actions, the percolation
      and replication rules for predicate attachments, and the
      FIFO-ordered conflict check against the target leaf's predicates.
    - {b Delete} (§7): two-phase record locking plus logical deletion; the
      entry is only marked, never removed, and ancestors' BPs are not
      shrunk, so concurrent repeatable-read searches block on it.
    - {b Garbage collection} (§7.1): physical removal of committed-deleted
      entries, gated by the Commit_LSN fast path of [Moh90b].
    - {b Node deletion} (§7.2): the drain technique — conditionally
      X-locking the node's signaling-lock name; traversals hold S signaling
      locks on every node their stacks reference, and splits copy them to
      new siblings.
    - {b Unique insert} (§8): probe search leaving "= key" predicates on
      the visited path so racing duplicate inserters deadlock and one
      aborts; a found duplicate is S-locked so the error is repeatable.

    Operations may raise {!Gist_txn.Lock_manager.Deadlock}; the caller
    owns the transaction and should abort and (optionally) retry.

    A tree handle is bound to a {!Db.t}; after [Db.crash] + restart, use
    {!open_existing} against the new environment. *)

exception Duplicate_key
(** Raised by insert on a unique tree when the key already exists; the
    duplicate's record is left S-locked so the error repeats under
    repeatable read (§8). *)

type 'p t

val create : Db.t -> 'p Ext.t -> ?unique:bool -> empty_bp:'p -> unit -> 'p t
(** Allocate and format an empty root inside a nested top action.
    [empty_bp] is the bounding predicate of an empty tree (e.g. an empty
    interval / rectangle). *)

val open_existing :
  Db.t -> 'p Ext.t -> ?unique:bool -> root:Gist_storage.Page_id.t -> unit -> 'p t
(** Bind a handle to an already-formatted tree (after restart). *)

val db : 'p t -> Db.t
val ext : 'p t -> 'p Ext.t
val root : 'p t -> Gist_storage.Page_id.t
val predicate_manager : 'p t -> 'p Gist_pred.Predicate_manager.t

val prefetch_pending : 'p t -> (Gist_storage.Page_id.t * Gist_wal.Lsn.t) list -> unit
(** Hand the first [Db.config.prefetch_depth] pages of a search/cursor
    stack to the background writer for read-ahead ([Cursor] shares it).
    No-op without a background writer. Call with no latch held. *)

val search :
  ?isolation:[ `Repeatable_read | `Read_committed ] ->
  ?olc:bool ->
  'p t ->
  Gist_txn.Txn_manager.txn ->
  'p ->
  ('p * Gist_storage.Rid.t) list
(** All live leaf entries whose key is consistent with the query.

    [olc] overrides {!Db.config.olc} for this call (tests use it to
    compare the optimistic and S-latched traversals on one tree): when
    true, internal nodes are visited latch-free under the frame latch's
    version word, restarting on conflict and falling back to the S latch
    after [Db.config.olc_retries] attempts — see PROTOCOL.md §7. Leaf
    visits always take the S latch. Results are identical either way.

    Under [`Repeatable_read] (the default, the paper's Degree 3): returned
    records stay S-locked and the search predicate stays attached to every
    visited node until end of transaction — re-running the search in the
    same transaction returns the same result.

    Under [`Read_committed] (Degree 2): record locks are instant-duration
    (the scan still never returns uncommitted data, blocking on in-flight
    writers as needed) and no predicate is attached — phantoms and
    unrepeatable reads are possible, concurrency is higher. *)

val snapshot_search : 'p t -> Db.ro -> 'p -> ('p * Gist_storage.Rid.t) list
(** All leaf entries consistent with the query and {e visible to the
    snapshot}: creator committed at or before the snapshot's commit
    timestamp, deleter (if any) not. The MVCC read path (PROTOCOL.md §9):
    zero lock acquisitions, zero predicate attaches, never blocks on or
    blocks writers — traversal is optimistic ([olc.read_attempt]) with a
    {e non-blocking} S-latch fallback ([Latch.try_acquire] in a backoff
    loop: a snapshot reader never parks on a writer's latch), and page
    latches are the only synchronization.
    Repeating the scan under the same [Db.ro] returns the same result
    regardless of concurrent writers. Counted in [mvcc.snapshot_scan];
    invisible versions skipped are counted in [mvcc.version_skipped]. *)

val snapshot_visit :
  'p t ->
  ts:int ->
  stack:(Gist_storage.Page_id.t * Gist_wal.Lsn.t) list ref ->
  query:'p ->
  Gist_storage.Page_id.t ->
  Gist_wal.Lsn.t ->
  ('p * Gist_storage.Rid.t) list
(** One step of the snapshot traversal: visit node [pid] (optimistically,
    with S-latch fallback), push its consistent children — or the
    rightlink of a missed split — onto [stack], and return the visible
    matching leaf entries. Shared with {!Cursor.open_snapshot}; use
    {!snapshot_search} unless you are streaming results. *)

val insert : 'p t -> Gist_txn.Txn_manager.txn -> key:'p -> rid:Gist_storage.Rid.t -> unit
(** X-locks the record, descends by penalty, splits/expands as needed, adds
    the leaf entry, and blocks on conflicting attached predicates.
    @raise Duplicate_key on a unique tree. *)

val delete : 'p t -> Gist_txn.Txn_manager.txn -> key:'p -> rid:Gist_storage.Rid.t -> bool
(** Logical delete of the [(key, rid)] entry; [false] if absent. *)

val vacuum : 'p t -> unit
(** Tree-wide garbage collection: physically remove committed-deleted
    entries, and retire empty leaves via the drain technique (§7.2). Runs
    in its own system transaction. *)

val height : 'p t -> int

val leaf_count : 'p t -> int
(** Number of leaf nodes reachable from the root (diagnostic). *)

val entry_count : 'p t -> int
(** Physical leaf entries, including marked-deleted ones (diagnostic). *)

(** Cumulative operation counters (domain-safe). *)
type stats = {
  searches : int;
  inserts : int;
  deletes : int;
  splits : int;  (** Node splits, excluding root grows. *)
  root_grows : int;
  bp_updates : int;  (** Parent-Entry-Update atomic actions applied. *)
  rightlink_follows : int;  (** Split compensations during traversals (§3). *)
  gc_entries : int;  (** Marked entries physically reclaimed (§7.1). *)
  node_deletes : int;  (** Nodes retired via the drain technique (§7.2). *)
  pred_blocks : int;  (** Inserts that blocked on attached predicates. *)
}

val stats : 'p t -> stats
val reset_stats : 'p t -> unit

val set_hook : 'p t -> (string -> unit) -> unit
(** Test instrumentation: invoked with event labels ("insert:split",
    "search:visit:P7", ...) at protocol decision points, letting tests
    force specific interleavings deterministically. *)

val bulk_load :
  Db.t -> 'p Ext.t -> ?unique:bool -> ?fill:float -> empty_bp:'p ->
  ('p * Gist_storage.Rid.t) array -> 'p t
(** Build a tree bottom-up from pre-ordered entries (sort them first:
    by key for a B-tree, in STR order via {!Gist_ams.Rtree_ext.str_sort}
    for an R-tree — packing quality follows the given order). Nodes are
    packed to [fill] (default 0.85) of capacity.

    Minimal logging: page contents are not logged; instead every page is
    allocated inside one nested top action, all pages are flushed before
    it closes, and a checkpoint anchors the allocator — crash-safe at
    every point (before completion the pages are reclaimed by undo, after
    it the flushed images are the durable truth). *)

(** {1 Internals exposed for recovery and checking} *)

val install_recovery : 'p t -> unit
(** Register this tree's extension in the environment's registry, install
    the dispatching undo handler ({!Recovery.install}), and hook predicate
    cleanup to transaction end. Called by [create]/[open_existing]. *)
