open Gist_util
module Page_id = Gist_storage.Page_id
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch
module Lsn = Gist_wal.Lsn
module Log_record = Gist_wal.Log_record
module Log_manager = Gist_wal.Log_manager
module Txn_manager = Gist_txn.Txn_manager
module Metrics = Gist_obs.Metrics
module Disk = Gist_storage.Disk

let m_torn_repaired =
  Metrics.counter ~unit_:"pages"
    ~help:"pages failing their disk checksum at restart, repaired from a logged full-page image"
    "recovery.torn_page_repaired"

let m_torn_zeroed =
  Metrics.counter ~unit_:"pages"
    ~help:"pages failing their disk checksum at restart with no full-page image available (zeroed)"
    "recovery.torn_page_zeroed"

let m_redo_span =
  Metrics.summary ~unit_:"lsns"
    ~help:
      "log distance (last LSN - redo start) replayed per restart; bounded by the fuzzy-checkpoint \
       interval when the background checkpointer runs"
    "recovery.redo_span"

(* Apply [f] to the page under its X latch iff the page image predates
   [lsn]; stamp the page with [lsn] afterwards. The page-LSN comparison is
   what makes redo idempotent (repeat history). *)
let cond_page db page ~lsn f =
  Buffer_pool.with_page db.Db.pool page Latch.X (fun frame ->
      if Lsn.( < ) (Buffer_pool.page_lsn frame) lsn then begin
        f frame;
        Buffer_pool.mark_dirty db.Db.pool frame ~lsn
      end)

(* Redo writes install the rebuilt node as the frame's cached decode,
   stamped with the record's LSN: [cond_page] runs [mark_dirty ~lsn] after
   us and FPW is masked during restart, so the header ends at exactly
   [lsn]. *)
let write_back _db ext node frame ~lsn =
  Node.write ext node frame;
  Node.cache_at node frame ~lsn

(* Install a logged full-page image verbatim (extension-independent). The
   image's own header carries the LSN of the record that first dirtied the
   page; [cond_page] stamps the installing record's (higher) LSN on top,
   mirroring what the live page carried. The blit bypasses node encoding,
   so any cached decode is stale — drop it. *)
let redo_page_image db page image ~lsn =
  cond_page db page ~lsn (fun frame ->
      let dst = Buffer_pool.data frame in
      Bytes.blit_string image 0 dst 0 (min (String.length image) (Bytes.length dst));
      Buffer_pool.invalidate_cache frame)

let add_decoded ext node s =
  match Node.decode_entry ext s with
  | `Leaf le -> Node.add_leaf_entry node le
  | `Internal ie -> Node.add_internal_entry node ie

let remove_decoded ext node s =
  match Node.decode_entry ext s with
  | `Leaf le -> ignore (Node.remove_leaf_by_rid node le.Node.le_rid)
  | `Internal ie -> ignore (Node.remove_child node ie.Node.ie_child)

let rec redo_payload_txn db ext ~txn ~lsn payload =
  match payload with
  | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.End
  | Log_record.Checkpoint_begin | Log_record.Checkpoint_end _ ->
    ()
  | Log_record.Clr { action = Log_record.Act_none; _ } -> ()
  | Log_record.Clr { action = Log_record.Act_apply inner; _ } ->
    redo_payload_txn db ext ~txn ~lsn inner
  | Log_record.Format_node { page; level; bp } ->
    cond_page db page ~lsn (fun frame ->
        let bp = Ext.decode_of_string ext bp in
        let node =
          if level = 0 then Node.make_leaf ~id:page ~bp
          else Node.make_internal ~id:page ~level ~bp
        in
        write_back db ext node frame ~lsn)
  | Log_record.Parent_entry_update { parent; child; new_bp } ->
    let new_bp = Ext.decode_of_string ext new_bp in
    if Page_id.equal parent child then
      (* Degenerate form: expansion of a root leaf's header BP. *)
      cond_page db parent ~lsn (fun frame ->
          let node = Node.get ext frame in
          node.Node.bp <- new_bp;
          write_back db ext node frame ~lsn)
    else begin
      cond_page db parent ~lsn (fun frame ->
          let node = Node.get ext frame in
          (match Node.find_child node child with
          | Some ie -> ie.Node.ie_bp <- new_bp
          | None -> ());
          node.Node.bp <- ext.Ext.union [ node.Node.bp; new_bp ];
          write_back db ext node frame ~lsn);
      cond_page db child ~lsn (fun frame ->
          let node = Node.get ext frame in
          node.Node.bp <- new_bp;
          write_back db ext node frame ~lsn)
    end
  | Log_record.Split { orig; right; moved; orig_old_nsn; orig_new_nsn; orig_old_rightlink; level }
    ->
    let new_nsn = if Lsn.equal orig_new_nsn Lsn.nil then lsn else orig_new_nsn in
    cond_page db orig ~lsn (fun frame ->
        let node = Node.get ext frame in
        List.iter (remove_decoded ext node) moved;
        node.Node.nsn <- new_nsn;
        node.Node.rightlink <- right;
        Node.recompute_bp ext node;
        write_back db ext node frame ~lsn);
    cond_page db right ~lsn (fun frame ->
        (* Rebuild the new sibling from the record alone (it may never have
           been flushed). *)
        let dummy_bp =
          match Node.decode_entry ext (List.hd moved) with
          | `Leaf le -> le.Node.le_key
          | `Internal ie -> ie.Node.ie_bp
        in
        let node =
          if level = 0 then Node.make_leaf ~id:right ~bp:dummy_bp
          else Node.make_internal ~id:right ~level ~bp:dummy_bp
        in
        List.iter (add_decoded ext node) moved;
        node.Node.nsn <- orig_old_nsn;
        node.Node.rightlink <- orig_old_rightlink;
        Node.recompute_bp ext node;
        write_back db ext node frame ~lsn)
  | Log_record.Root_grow { root; child; entries; root_old_nsn; old_level; root_bp } ->
    let root_bp = Ext.decode_of_string ext root_bp in
    cond_page db root ~lsn (fun frame ->
        let node = Node.make_internal ~id:root ~level:(old_level + 1) ~bp:root_bp in
        Node.add_internal_entry node { Node.ie_bp = root_bp; ie_child = child };
        node.Node.nsn <- root_old_nsn;
        write_back db ext node frame ~lsn);
    cond_page db child ~lsn (fun frame ->
        let node =
          if old_level = 0 then Node.make_leaf ~id:child ~bp:root_bp
          else Node.make_internal ~id:child ~level:old_level ~bp:root_bp
        in
        List.iter (add_decoded ext node) entries;
        node.Node.nsn <- root_old_nsn;
        write_back db ext node frame ~lsn)
  | Log_record.Root_shrink { root; entries; restore_nsn; restore_level; _ } ->
    cond_page db root ~lsn (fun frame ->
        let old = Node.get ext frame in
        let node =
          if restore_level = 0 then Node.make_leaf ~id:root ~bp:old.Node.bp
          else Node.make_internal ~id:root ~level:restore_level ~bp:old.Node.bp
        in
        List.iter (add_decoded ext node) entries;
        node.Node.nsn <- restore_nsn;
        Node.recompute_bp ext node;
        write_back db ext node frame ~lsn)
  | Log_record.Unsplit { orig; moved; restore_nsn; restore_rightlink; _ } ->
    cond_page db orig ~lsn (fun frame ->
        let node = Node.get ext frame in
        List.iter (add_decoded ext node) moved;
        node.Node.nsn <- restore_nsn;
        node.Node.rightlink <- restore_rightlink;
        Node.recompute_bp ext node;
        write_back db ext node frame ~lsn)
  | Log_record.Garbage_collection { page; rids } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        List.iter (fun rid -> ignore (Node.remove_marked_by_rid node rid)) rids;
        Node.recompute_bp ext node;
        write_back db ext node frame ~lsn)
  | Log_record.Internal_entry_add { page; entry } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        add_decoded ext node entry;
        write_back db ext node frame ~lsn)
  | Log_record.Internal_entry_update { page; child; new_bp; _ } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        (match Node.find_child node child with
        | Some ie -> ie.Node.ie_bp <- Ext.decode_of_string ext new_bp
        | None -> ());
        write_back db ext node frame ~lsn)
  | Log_record.Internal_entry_delete { page; entry } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        remove_decoded ext node entry;
        write_back db ext node frame ~lsn)
  | Log_record.Add_leaf_entry { page; entry; _ } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        (match Node.decode_entry ext entry with
        | `Leaf le ->
          Node.add_leaf_entry node le;
          node.Node.bp <- ext.Ext.union [ node.Node.bp; le.Node.le_key ]
        | `Internal _ -> ());
        write_back db ext node frame ~lsn)
  | Log_record.Mark_leaf_entry { page; rid; _ } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        (match Node.find_live_by_rid node rid with
        | Some e -> e.Node.le_deleter <- txn
        | None -> ());
        write_back db ext node frame ~lsn)
  | Log_record.Remove_leaf_entry { page; rid } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        if not (Node.remove_live_by_rid node rid) then
          ignore (Node.remove_leaf_by_rid node rid);
        write_back db ext node frame ~lsn)
  | Log_record.Unmark_leaf_entry { page; rid } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        (match Node.find_marked_by node rid txn with
        | Some e -> e.Node.le_deleter <- Txn_id.none
        | None -> ());
        write_back db ext node frame ~lsn)
  | Log_record.Set_rightlink { page; new_rl; _ } ->
    cond_page db page ~lsn (fun frame ->
        let node = Node.get ext frame in
        node.Node.rightlink <- new_rl;
        write_back db ext node frame ~lsn)
  | Log_record.Get_page { page } -> Db.mark_unavailable db page
  | Log_record.Free_page { page } ->
    Db.mark_available db page;
    cond_page db page ~lsn (fun frame ->
        Bytes.fill (Buffer_pool.data frame) 0 (Bytes.length (Buffer_pool.data frame)) '\000';
        Buffer_pool.invalidate_cache frame)
  | Log_record.Page_image { page; image } -> redo_page_image db page image ~lsn

let redo_payload db ext ~lsn payload = redo_payload_txn db ext ~txn:Txn_id.none ~lsn payload

(* Allocator effects applied during analysis (the snapshot in the anchor
   checkpoint is the base; later Get/Free records replay on top). *)
let rec analysis_alloc db payload =
  match payload with
  | Log_record.Get_page { page } -> Db.mark_unavailable db page
  | Log_record.Free_page { page } -> Db.mark_available db page
  | Log_record.Clr { action = Log_record.Act_apply inner; _ } -> analysis_alloc db inner
  | _ -> ()


(* ------------------------------------------------------------------ *)
(* Undo (runtime aborts and restart losers)                            *)
(* ------------------------------------------------------------------ *)

let write_node db ext node frame ~lsn =
  Node.write ext node frame;
  Buffer_pool.mark_dirty db.Db.pool frame ~lsn;
  Node.cache node frame

let with_node db ext pid mode f =
  Buffer_pool.with_page db.Db.pool pid mode (fun frame -> f frame (Node.get ext frame))

(* Relocate the leaf entry a logical undo must touch, starting from the
   page recorded in the log (§9.2). Splits moved entries *right* (follow
   rightlinks — the chain is intact because the inserting transaction's
   signaling lock on its target leaf is retained until end of transaction,
   §7.2); a root grow moved them *down* (recurse into children). *)
let undo_on_chain db ext start f =
  let rec chase pid =
    if not (Page_id.is_valid pid) then false
    else
      let step =
        with_node db ext pid Latch.X (fun frame node ->
            if Node.is_leaf node then
              if f frame node then `Found else `Right node.Node.rightlink
            else
              `Down
                (Gist_util.Dyn.fold
                   (fun l e -> e.Node.ie_child :: l)
                   [] (Node.internal_entries node)
                |> List.rev))
      in
      match step with
      | `Found -> true
      | `Right rl -> chase rl
      | `Down kids -> List.exists chase kids
  in
  if not (chase start) then
    Logs.err (fun m ->
        m "recovery: logical undo could not relocate an entry from %a" Page_id.pp start)

(* Apply the compensating action for [record], logging a CLR (tagged with
   the record's own extension) whose redo is page-LSN conditional. *)
let undo_record db ext txn (record : Log_record.t) =
  let txns = db.Db.txns in
  let log_clr action =
    Txn_manager.log_update txns txn ~ext:record.Log_record.ext
      (Log_record.Clr { action; undo_next = record.Log_record.prev })
  in
  match record.Log_record.payload with
  | Log_record.Add_leaf_entry { page; rid; _ } ->
    undo_on_chain db ext page (fun frame node ->
        if Node.remove_live_by_rid node rid then begin
          let lsn =
            log_clr
              (Log_record.Act_apply (Log_record.Remove_leaf_entry { page = node.Node.id; rid }))
          in
          write_node db ext node frame ~lsn;
          true
        end
        else false)
  | Log_record.Mark_leaf_entry { page; rid; _ } ->
    undo_on_chain db ext page (fun frame node ->
        match Node.find_marked_by node rid (Txn_manager.id txn) with
        | Some e ->
          e.Node.le_deleter <- Txn_id.none;
          let lsn =
            log_clr
              (Log_record.Act_apply (Log_record.Unmark_leaf_entry { page = node.Node.id; rid }))
          in
          write_node db ext node frame ~lsn;
          true
        | None -> false)
  | Log_record.Internal_entry_add { page; entry } ->
    with_node db ext page Latch.X (fun frame node ->
        (match Node.decode_entry ext entry with
        | `Internal ie -> ignore (Node.remove_child node ie.Node.ie_child)
        | `Leaf _ -> ());
        let lsn =
          log_clr (Log_record.Act_apply (Log_record.Internal_entry_delete { page; entry }))
        in
        write_node db ext node frame ~lsn)
  | Log_record.Internal_entry_delete { page; entry } ->
    with_node db ext page Latch.X (fun frame node ->
        (match Node.decode_entry ext entry with
        | `Internal ie -> Node.add_internal_entry node ie
        | `Leaf _ -> ());
        let lsn =
          log_clr (Log_record.Act_apply (Log_record.Internal_entry_add { page; entry }))
        in
        write_node db ext node frame ~lsn)
  | Log_record.Internal_entry_update { page; child; new_bp; old_bp } ->
    with_node db ext page Latch.X (fun frame node ->
        (match Node.find_child node child with
        | Some ie -> ie.Node.ie_bp <- Ext.decode_of_string ext old_bp
        | None -> ());
        let lsn =
          log_clr
            (Log_record.Act_apply
               (Log_record.Internal_entry_update { page; child; new_bp = old_bp; old_bp = new_bp }))
        in
        write_node db ext node frame ~lsn)
  | Log_record.Split { orig; right; moved; orig_old_nsn; orig_old_rightlink; _ } ->
    (* Interrupted split NTA: move the entries back, restore the header. *)
    with_node db ext orig Latch.X (fun frame node ->
        List.iter (fun e -> add_decoded ext node e) moved;
        node.Node.nsn <- orig_old_nsn;
        node.Node.rightlink <- orig_old_rightlink;
        Node.recompute_bp ext node;
        let lsn =
          log_clr
            (Log_record.Act_apply
               (Log_record.Unsplit
                  {
                    orig;
                    right;
                    moved;
                    restore_nsn = orig_old_nsn;
                    restore_rightlink = orig_old_rightlink;
                  }))
        in
        write_node db ext node frame ~lsn)
  | Log_record.Root_grow { root = rt; child; entries; root_old_nsn; old_level; _ } ->
    with_node db ext rt Latch.X (fun frame node ->
        let restored =
          if old_level = 0 then Node.make_leaf ~id:rt ~bp:node.Node.bp
          else Node.make_internal ~id:rt ~level:old_level ~bp:node.Node.bp
        in
        List.iter (fun e -> add_decoded ext restored e) entries;
        restored.Node.nsn <- root_old_nsn;
        Node.recompute_bp ext restored;
        let lsn =
          log_clr
            (Log_record.Act_apply
               (Log_record.Root_shrink
                  { root = rt; child; entries; restore_nsn = root_old_nsn; restore_level = old_level }))
        in
        write_node db ext restored frame ~lsn)
  | Log_record.Set_rightlink { page; new_rl; old_rl } ->
    with_node db ext page Latch.X (fun frame node ->
        node.Node.rightlink <- old_rl;
        let lsn =
          log_clr
            (Log_record.Act_apply
               (Log_record.Set_rightlink { page; new_rl = old_rl; old_rl = new_rl }))
        in
        write_node db ext node frame ~lsn)
  | Log_record.Get_page { page } ->
    ignore (log_clr (Log_record.Act_apply (Log_record.Free_page { page })));
    Db.release_page db page
  | Log_record.Free_page { page } ->
    ignore (log_clr (Log_record.Act_apply (Log_record.Get_page { page })));
    Db.mark_unavailable db page
  | _ ->
    (* Redo-only and control records never reach the undo handler. *)
    ()

(* Install the dispatching undo handler: each undoable record names its
   access method; the registry supplies the codec. *)
let install db =
  Txn_manager.set_undo_handler db.Db.txns (fun txn record ->
      match record.Log_record.ext with
      | "" -> ()
      | name -> (
        match Db.find_ext db name with
        | Some (Ext.Packed ext) -> undo_record db ext txn record
        | None ->
          failwith
            (Printf.sprintf "recovery: no registered extension %S for undo" name)))

let restart_multi db packed_exts =
  let log = db.Db.log in
  let txns = db.Db.txns in
  List.iter (Db.register_ext db) packed_exts;
  install db;
  let ext_for name =
    match Db.find_ext db name with
    | Some (Ext.Packed _ as p) -> p
    | None -> failwith (Printf.sprintf "recovery: no registered extension %S" name)
  in
  (* A ragged crash may have left a partially written record beyond the
     durable prefix; restart's first act is to recognize and drop it. *)
  ignore (Log_manager.discard_torn_tail log : bool);
  (* The background checkpointer is masked for the whole restart: a fuzzy
     checkpoint logged mid-recovery would move the anchor past records
     still being replayed. (Its flusher half keeps running — a write-back
     of a partially redone page is safe under conditional redo.) *)
  (match db.Db.bg with
  | None -> ()
  | Some bg -> Gist_storage.Bg_writer.set_checkpoint_enabled bg false);
  (* Restart on a warm pool (e.g. the idempotence re-run): redo and the
     media check mutate raw page images, so no decoded node cached before
     this point may survive into recovered state. *)
  Buffer_pool.invalidate_caches db.Db.pool;
  (* Full-page-image logging is masked for the whole restart: an image
     logged mid-redo would stamp the page past records still to be
     replayed. Pages dirtied during restart are covered again as soon as
     normal operation re-dirties them. *)
  Buffer_pool.set_fpw db.Db.pool false;
  let anchor = Log_manager.anchor log in
  let start = if Lsn.( < ) Lsn.nil anchor then anchor else 1L in
  (* --- Analysis --- *)
  let table : (Txn_id.t, Log_record.status * Lsn.t) Hashtbl.t = Hashtbl.create 64 in
  let dpt : (Page_id.t, Lsn.t) Hashtbl.t = Hashtbl.create 256 in
  (* Seed from the checkpoint the anchor names. The anchor points at a
     [Checkpoint_begin]; its paired [Checkpoint_end] — the first end
     record at or after the anchor — carries the DPT / txn-table /
     allocator snapshot, captured at some instant *inside* the
     (begin, end) window. Seeding before the scan lets the window's own
     records update the snapshot in log order: a commit logged after the
     capture overrides the snapshot's Active entry, and a page first
     dirtied after the capture enters the DPT at its own LSN. The seeded
     rec_lsns are first-dirty LSNs, so they take precedence over any
     later record touching the same page. *)
  let seeded = ref false in
  Log_manager.iter_from log start (fun record ->
      match record.Log_record.payload with
      | Log_record.Checkpoint_end { dirty_pages; active_txns; allocator } when not !seeded ->
        seeded := true;
        Db.allocator_restore db allocator;
        List.iter (fun (p, rec_lsn) -> Hashtbl.replace dpt p rec_lsn) dirty_pages;
        List.iter (fun (t, s, l) -> Hashtbl.replace table t (s, l)) active_txns
      | _ -> ());
  (* The fuzzy capture is not atomic against concurrent appends: a record
     landing just before [Checkpoint_begin] can be reflected in neither the
     captured last_lsn of its transaction nor the captured DPT (its
     bookkeeping ran after the capture). Such a record's LSN is strictly
     above its transaction's captured last_lsn, so rescanning from the
     table's minimum last_lsn — instead of the anchor — rediscovers it,
     repairing both the undo chain head and the DPT entry. The wider scan
     is safe: table/DPT updates are monotone in log order and the
     allocator replay is idempotent; only the analysis pass lengthens. *)
  let analysis_start =
    Hashtbl.fold (fun _ (_, l) acc -> if Lsn.( < ) Lsn.nil l then Lsn.min l acc else acc) table start
  in
  Log_manager.iter_from log analysis_start (fun record ->
      let lsn = record.Log_record.lsn in
      let tid = record.Log_record.txn in
      (match record.Log_record.payload with
      | Log_record.Checkpoint_end _ -> () (* ingested above *)
      | Log_record.Begin -> Hashtbl.replace table tid (Log_record.Active, lsn)
      | Log_record.Commit ->
        Hashtbl.replace table tid (Log_record.Committed, lsn);
        (* Also re-derives MVCC commit timestamps: mark_committed assigns
           the next timestamp idempotently, and this scan visits Commit
           records in LSN order, so post-restart snapshot visibility
           reproduces the pre-crash commit order over the analysis window.
           Commits older than the window stay absent from the rebuilt
           table and read as timestamp 0 — visible to every snapshot
           (PROTOCOL.md §9). *)
        Txn_manager.mark_committed txns tid
      | Log_record.Abort -> Hashtbl.replace table tid (Log_record.Aborting, lsn)
      | Log_record.End -> Hashtbl.remove table tid
      | payload ->
        analysis_alloc db payload;
        if Txn_id.is_some tid then begin
          let status =
            match Hashtbl.find_opt table tid with Some (s, _) -> s | None -> Log_record.Active
          in
          Hashtbl.replace table tid (status, lsn)
        end;
        List.iter
          (fun p -> if not (Hashtbl.mem dpt p) then Hashtbl.replace dpt p lsn)
          (Log_record.pages_touched payload)));
  (* --- Media check: repair pages a torn disk write destroyed ---
     The disk detects them (page checksum mismatch); the latest logged
     full-page image — durable before the page could reach the disk and
     tear, by the WAL rule — is reinstalled, and conditional redo then
     replays forward from it. A corrupt page with no image in the retained
     log is zeroed: without full_page_writes there is no repair source. *)
  let disk = Buffer_pool.disk db.Db.pool in
  let corrupt = ref [] in
  for p = 0 to Disk.page_count disk - 1 do
    let pid = Page_id.of_int p in
    if not (Disk.verify disk pid) then corrupt := pid :: !corrupt
  done;
  (match !corrupt with
  | [] -> ()
  | pages ->
    let latest : (Page_id.t, string) Hashtbl.t = Hashtbl.create 8 in
    Log_manager.iter_from log 1L (fun record ->
        match record.Log_record.payload with
        | Log_record.Page_image { page; image } ->
          if List.exists (Page_id.equal page) pages then Hashtbl.replace latest page image
        | _ -> ());
    List.iter
      (fun pid ->
        match Hashtbl.find_opt latest pid with
        | Some image ->
          Disk.write disk pid (Bytes.of_string image);
          Metrics.incr m_torn_repaired;
          Logs.info (fun m ->
              m "restart: torn page %a repaired from full-page image" Page_id.pp pid)
        | None ->
          Disk.write disk pid (Bytes.make (Disk.page_size disk) '\000');
          Metrics.incr m_torn_zeroed;
          Logs.warn (fun m ->
              m
                "restart: torn page %a has no full-page image in the retained log; zeroed \
                 (enable full_page_writes)"
                Page_id.pp pid))
      pages);
  (* --- Redo: repeat history from the earliest recovery LSN --- *)
  let redo_start = Hashtbl.fold (fun _ l acc -> Lsn.min l acc) dpt Int64.max_int in
  Metrics.observe m_redo_span
    (if Int64.equal redo_start Int64.max_int then 0.
     else Int64.to_float (Int64.sub (Log_manager.last_lsn log) redo_start));
  if not (Int64.equal redo_start Int64.max_int) then
    Log_manager.iter_from log redo_start (fun record ->
        match record.Log_record.payload with
        | Log_record.Page_image { page; image } ->
          (* Extension-independent; ext is "" on these, so dispatch first. *)
          redo_page_image db page image ~lsn:record.Log_record.lsn
        | _ -> (
          match record.Log_record.ext with
          | "" -> ()
          | name ->
            let (Ext.Packed ext) = ext_for name in
            redo_payload_txn db ext ~txn:record.Log_record.txn ~lsn:record.Log_record.lsn
              record.Log_record.payload));
  (* --- Undo losers --- *)
  Hashtbl.iter
    (fun tid (status, last_lsn) ->
      match status with
      | Log_record.Committed ->
        let txn = Txn_manager.restore_txn txns tid ~status ~last_lsn in
        Txn_manager.mark_committed txns tid;
        Txn_manager.finish_txn txns txn
      | Log_record.Active | Log_record.Aborting ->
        let txn = Txn_manager.restore_txn txns tid ~status ~last_lsn in
        Logs.debug (fun m -> m "restart: rolling back loser %a" Txn_id.pp tid);
        Txn_manager.abort_for_restart txns txn)
    table;
  Buffer_pool.set_fpw db.Db.pool true;
  (* Bound future restarts. *)
  Db.checkpoint db;
  (match db.Db.bg with
  | None -> ()
  | Some bg -> Gist_storage.Bg_writer.set_checkpoint_enabled bg true);
  Gist_wal.Log_manager.force_all log

let restart db ext = restart_multi db [ Ext.Packed ext ]
