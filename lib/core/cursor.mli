(** Incremental scan cursors with savepoint support (§10.2).

    A cursor delivers the results of a search one at a time, keeping the
    traversal stack (and its signaling locks) alive between calls — the
    shape interactive scans take in a DBMS. The predicate is attached to
    visited nodes exactly as in {!Gist.search}, so repeatable read holds
    across the whole cursor lifetime.

    Savepoints: [save] snapshots the cursor position (the paper's "copy of
    the stack", §10.2); from that moment the cursor stops releasing
    signaling locks it already holds, so a later [restore] resumes from a
    position whose nodes are still protected from deletion. Storage for a
    snapshot is proportional to page capacity × tree height, as the paper
    notes.

    Cursors are single-threaded (use one per domain) and bound to one
    transaction; [close] releases the cursor's signaling locks (predicates
    stay attached until end of transaction, as isolation requires). *)

type 'p t

val open_ : 'p Gist.t -> Gist_txn.Txn_manager.txn -> 'p -> 'p t
(** Begin a scan for entries consistent with the predicate. *)

val next : 'p t -> ('p * Gist_storage.Rid.t) option
(** The next qualifying live entry (S-locked per two-phase locking), or
    [None] when the scan is exhausted. Blocks on entries with uncommitted
    writers, FIFO rules permitting.
    @raise Gist_txn.Lock_manager.Deadlock as for {!Gist.search}. *)

type 'p snapshot

val save : 'p t -> 'p snapshot
(** Record the cursor position (paired with a transaction savepoint). *)

val restore : 'p t -> 'p snapshot -> unit
(** Reposition the cursor to a snapshot taken on it earlier — after a
    partial rollback, the re-scan returns the same remaining results
    (modulo that rollback's own effects). *)

val close : 'p t -> unit
(** Release the cursor's signaling locks. Idempotent. *)

(** {1 Snapshot cursors (PROTOCOL.md §9)} *)

type 'p snap
(** A streaming scan bound to a read-only snapshot: results arrive one at
    a time like {!next}, but the traversal takes zero locks and attaches
    zero predicates — per-entry MVCC visibility at the snapshot's commit
    timestamp replaces both. There is no close: nothing is held between
    calls, and the snapshot's GC watermark plus deferred page free keep
    the versions and pages it may still visit alive until [Db.end_ro]. *)

val open_snapshot : 'p Gist.t -> Db.ro -> 'p -> 'p snap
(** Begin a snapshot scan for entries consistent with the predicate and
    visible to [ro]. Counted in [mvcc.snapshot_scan]. *)

val snap_next : 'p snap -> ('p * Gist_storage.Rid.t) option
(** The next visible qualifying entry, or [None] when exhausted. Never
    blocks on writers and never raises [Deadlock]; repeating a full scan
    under the same [Db.ro] yields the same set. *)
