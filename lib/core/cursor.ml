open Gist_util
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch
module Lsn = Gist_wal.Lsn
module Lock_manager = Gist_txn.Lock_manager
module Txn_manager = Gist_txn.Txn_manager
module Pm = Gist_pred.Predicate_manager

type 'p pending = { p_key : 'p; p_rid : Rid.t; p_leaf : Page_id.t }

type 'p t = {
  tree : 'p Gist.t;
  tid : Txn_id.t;
  query : 'p;
  spred : 'p Pm.pred;
  mutable stack : (Page_id.t * Lsn.t) list;
  mutable buffered : 'p pending list;
  mutable seen : (Rid.t, unit) Hashtbl.t;
  sig_counts : (int, int) Hashtbl.t; (* page -> hold count *)
  leaf_pending : (int, int) Hashtbl.t; (* page -> unconsumed buffered entries *)
  mutable pinned : bool;
  mutable closed : bool;
}

type 'p snapshot = {
  s_stack : (Page_id.t * Lsn.t) list;
  s_buffered : 'p pending list;
  s_seen : (Rid.t, unit) Hashtbl.t;
}

let db c = Gist.db c.tree

let ext c = Gist.ext c.tree

let locks c = (db c).Db.locks

let sig_acquire c pid =
  Lock_manager.lock (locks c) c.tid (Lock_manager.Node pid) Lock_manager.S;
  let k = Page_id.to_int pid in
  Hashtbl.replace c.sig_counts k (1 + Option.value ~default:0 (Hashtbl.find_opt c.sig_counts k))

(* Signaling locks are released as their stack entries are consumed —
   unless a snapshot pinned them (§10.2: locks existing at a savepoint must
   not be released later). *)
let sig_release c pid =
  if not c.pinned then begin
    let k = Page_id.to_int pid in
    match Hashtbl.find_opt c.sig_counts k with
    | Some n when n > 0 ->
      Hashtbl.replace c.sig_counts k (n - 1);
      Lock_manager.unlock (locks c) c.tid (Lock_manager.Node pid)
    | _ -> ()
  end

let open_ tree txn query =
  let tid = Txn_manager.id txn in
  let spred = Pm.register (Gist.predicate_manager tree) ~owner:tid ~kind:Pm.Scan query in
  let c =
    {
      tree;
      tid;
      query;
      spred;
      stack = [];
      buffered = [];
      seen = Hashtbl.create 32;
      sig_counts = Hashtbl.create 32;
      leaf_pending = Hashtbl.create 8;
      pinned = false;
      closed = false;
    }
  in
  sig_acquire c (Gist.root tree);
  c.stack <- [ (Gist.root tree, Db.global_nsn (Gist.db tree)) ];
  c

(* Visit the next stack node: push consistent children (or the rightlink of
   a missed split), buffer qualifying leaf entries. Mirrors Figure 3. *)
let advance c =
  match c.stack with
  | [] -> ()
  | (pid, memo) :: rest ->
    c.stack <- rest;
    let fresh = ref [] in
    Buffer_pool.with_page (db c).Db.pool pid Latch.S (fun frame ->
        match Node.get (ext c) frame with
        | exception Codec.Corrupt _ -> () (* retired page; nothing here *)
        | node ->
          if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
            sig_acquire c node.Node.rightlink;
            c.stack <- (node.Node.rightlink, memo) :: c.stack
          end;
          Pm.attach (Gist.predicate_manager c.tree) c.spred pid;
          if Node.is_leaf node then
            Dyn.iter
              (fun e ->
                if
                  (ext c).Ext.consistent c.query e.Node.le_key
                  && not (Hashtbl.mem c.seen e.Node.le_rid)
                then fresh := { p_key = e.Node.le_key; p_rid = e.Node.le_rid; p_leaf = pid } :: !fresh)
              (Node.leaf_entries node)
          else begin
            let child_memo =
              match (db c).Db.config.Db.memo_source with
              | Db.Memo_parent_lsn -> Buffer_pool.page_lsn frame
              | Db.Memo_global -> Db.global_nsn (db c)
            in
            Dyn.iter
              (fun e ->
                if (ext c).Ext.consistent c.query e.Node.ie_bp then begin
                  sig_acquire c e.Node.ie_child;
                  c.stack <- (e.Node.ie_child, child_memo) :: c.stack
                end)
              (Node.internal_entries node)
          end);
    Gist.prefetch_pending c.tree c.stack;
    (match !fresh with
    | [] -> sig_release c pid
    | entries ->
      (* Keep the leaf's signaling lock until its buffered entries are
         consumed, so the rightlink chain the revalidation may need cannot
         be broken by node deletion. *)
      Hashtbl.replace c.leaf_pending (Page_id.to_int pid) (List.length entries);
      c.buffered <- List.rev_append entries c.buffered)

let consume_leaf_slot c pid =
  let k = Page_id.to_int pid in
  match Hashtbl.find_opt c.leaf_pending k with
  | Some 1 ->
    Hashtbl.remove c.leaf_pending k;
    sig_release c pid
  | Some n -> Hashtbl.replace c.leaf_pending k (n - 1)
  | None -> ()

(* The FIFO rule of §10.3 (same as Gist.search): skip an uncommitted entry
   whose writer queued its predicate behind ours. *)
let writer_behind_us c leaf rid =
  let holders = Lock_manager.holders (locks c) (Lock_manager.Record rid) in
  let rec scan seen_self = function
    | [] -> false
    | p :: rest ->
      if Txn_id.equal (Pm.owner p) c.tid then scan true rest
      else if
        seen_self
        && (match Pm.kind_of p with Pm.Insert | Pm.Probe -> true | Pm.Scan -> false)
        && List.exists (fun (h, _) -> Txn_id.equal h (Pm.owner p)) holders
      then true
      else scan seen_self rest
  in
  scan false (Pm.attached (Gist.predicate_manager c.tree) leaf)

(* After acquiring the record lock, re-find the entry (it may have moved
   right via splits, which our retained leaf signaling lock keeps
   chained). Returns whether it is live. *)
let revalidate c pending =
  let rec chase pid =
    if not (Page_id.is_valid pid) then `Gone
    else
      match
        Buffer_pool.with_page (db c).Db.pool pid Latch.S (fun frame ->
            match Node.get (ext c) frame with
            | exception Codec.Corrupt _ -> `Gone
            | node ->
              if not (Node.is_leaf node) then
                (* A root grow moved the buffered leaf's content down. *)
                `Down
                  (Gist_util.Dyn.fold
                     (fun l e -> e.Node.ie_child :: l)
                     [] (Node.internal_entries node)
                  |> List.rev)
              else (
                match Node.find_live_by_rid node pending.p_rid with
                | Some _ -> `Live
                | None -> `Next node.Node.rightlink))
      with
      | `Next rl -> chase rl
      | `Down kids ->
        let rec first = function
          | [] -> `Gone
          | k :: rest -> ( match chase k with `Live -> `Live | _ -> first rest)
        in
        first kids
      | (`Live | `Gone) as r -> r
  in
  chase pending.p_leaf

let rec next c =
  if c.closed then None
  else
    match c.buffered with
    | pending :: rest ->
      c.buffered <- rest;
      if Hashtbl.mem c.seen pending.p_rid then begin
        consume_leaf_slot c pending.p_leaf;
        next c
      end
      else begin
        let lm = locks c in
        let name = Lock_manager.Record pending.p_rid in
        let acquired =
          if Lock_manager.try_lock lm c.tid name Lock_manager.S then true
          else if writer_behind_us c pending.p_leaf pending.p_rid then false
          else begin
            Lock_manager.lock lm c.tid name Lock_manager.S;
            true
          end
        in
        if not acquired then begin
          consume_leaf_slot c pending.p_leaf;
          next c
        end
        else
          match revalidate c pending with
          | `Live ->
            Hashtbl.replace c.seen pending.p_rid ();
            consume_leaf_slot c pending.p_leaf;
            Some (pending.p_key, pending.p_rid)
          | `Gone ->
            Lock_manager.unlock lm c.tid name;
            consume_leaf_slot c pending.p_leaf;
            next c
      end
    | [] -> (
      match c.stack with
      | [] -> None
      | _ ->
        advance c;
        next c)

let save c =
  c.pinned <- true;
  { s_stack = c.stack; s_buffered = c.buffered; s_seen = Hashtbl.copy c.seen }

let restore c snapshot =
  c.stack <- snapshot.s_stack;
  c.buffered <- snapshot.s_buffered;
  c.seen <- Hashtbl.copy snapshot.s_seen;
  (* Leaf slots may have been consumed since the snapshot; the pins taken
     at [save] keep the locks themselves alive, so just rebuild counts. *)
  Hashtbl.reset c.leaf_pending;
  List.iter
    (fun p ->
      let k = Page_id.to_int p.p_leaf in
      Hashtbl.replace c.leaf_pending k
        (1 + Option.value ~default:0 (Hashtbl.find_opt c.leaf_pending k)))
    c.buffered

let close c =
  if not c.closed then begin
    c.closed <- true;
    c.pinned <- false;
    Hashtbl.iter
      (fun k n ->
        for _ = 1 to n do
          Lock_manager.unlock (locks c) c.tid (Lock_manager.Node (Page_id.of_int k))
        done)
      c.sig_counts;
    Hashtbl.reset c.sig_counts
  end

(* ------------------------------------------------------------------ *)
(* Snapshot cursors (PROTOCOL.md §9)                                   *)
(* ------------------------------------------------------------------ *)

(* A streaming scan on the MVCC read path. Holds no locks, no predicates
   and no signaling locks between [snap_next] calls, so there is nothing
   to revalidate and nothing to close: visibility at the snapshot's
   timestamp is immutable, the GC watermark keeps qualifying versions
   alive, and deferred page free keeps visited nodes readable for the
   lifetime of the [Db.ro]. *)
type 'p snap = {
  sc_tree : 'p Gist.t;
  sc_ro : Db.ro;
  sc_query : 'p;
  mutable sc_stack : (Page_id.t * Lsn.t) list;
  mutable sc_buffered : ('p * Rid.t) list;
  sc_seen : (Rid.t, unit) Hashtbl.t; (* rid dedup across rightlink revisits *)
}

let m_snapshot_scans = Gist_obs.Metrics.counter "mvcc.snapshot_scan"

let open_snapshot tree ro query =
  Gist_obs.Metrics.incr m_snapshot_scans;
  if Gist_obs.Trace.enabled () then
    Gist_obs.Trace.emit (Gist_obs.Trace.Snapshot_scan { ts = Db.ro_ts ro });
  {
    sc_tree = tree;
    sc_ro = ro;
    sc_query = query;
    sc_stack = [ (Gist.root tree, Db.global_nsn (Gist.db tree)) ];
    sc_buffered = [];
    sc_seen = Hashtbl.create 32;
  }

let rec snap_next c =
  match c.sc_buffered with
  | (key, rid) :: rest ->
    c.sc_buffered <- rest;
    if Hashtbl.mem c.sc_seen rid then snap_next c
    else begin
      Hashtbl.replace c.sc_seen rid ();
      Some (key, rid)
    end
  | [] -> (
    match c.sc_stack with
    | [] -> None
    | (pid, memo) :: rest ->
      let stack = ref rest in
      let hits =
        Gist.snapshot_visit c.sc_tree ~ts:(Db.ro_ts c.sc_ro) ~stack ~query:c.sc_query pid memo
      in
      c.sc_stack <- !stack;
      Gist.prefetch_pending c.sc_tree c.sc_stack;
      c.sc_buffered <- hits;
      snap_next c)
