(** Database environment.

    Bundles the substrate a GiST lives on — simulated disk, buffer pool,
    write-ahead log, lock manager, transaction manager, page allocator —
    plus the protocol configuration knobs the experiments sweep.

    Crash/restart model: [crash] discards all volatile state (buffer pool
    contents, lock tables, transaction tables, allocator) and the unforced
    log tail, returning a fresh environment bound to the same disk and
    durable log. Callers then run {!Recovery.restart} and re-open trees
    with [Gist.open_existing]. *)

type nsn_source =
  | Nsn_from_lsn
      (** §10.1: NSNs are LSNs; a split's NSN is its Split record's LSN, and
          the "global counter" is the log's last LSN. Recoverable for free. *)
  | Nsn_from_counter
      (** A dedicated atomic counter (the R-link tree design the paper
          improves on); used by the E8 ablation. Recovered by resetting to
          the log's last LSN at restart (safe over-approximation). *)

type memo_source =
  | Memo_global  (** Traversals memorize the global counter (Figure 3). *)
  | Memo_parent_lsn
      (** §10.1 optimization: memorize the parent page's LSN instead,
          avoiding synchronization on the log manager. *)

type config = {
  page_size : int;
  pool_capacity : int;  (** Frames in the buffer pool. *)
  max_entries : int;  (** Fanout cap (besides the byte budget). *)
  io_delay_ns : int;  (** Simulated per-I/O latency. *)
  nsn_source : nsn_source;
  memo_source : memo_source;
  gc_on_write : bool;
      (** Garbage-collect committed-deleted entries opportunistically when
          an insert passes through a leaf (§7.1). *)
  full_page_writes : bool;
      (** Log a [Page_image] record whenever a page first becomes dirty
          (Postgres-style full-page writes). Costs log volume; buys restart
          the ability to repair pages destroyed by torn disk writes
          (detected by the disk's page checksums) — required for the
          torn-write fault-injection modes of [Gist_fault]. *)
  node_cache : bool;
      (** Keep the decoded [Node.t] attached to its buffer-pool frame,
          stamped with the page LSN it reflects, so repeat visits skip the
          page-image decode ([Node.get]). On by default; turn off to
          measure the decode cost it saves (experiment E13). *)
  olc : bool;
      (** Optimistic lock coupling on the search path: traverse internal
          nodes latch-free under the frame latch's version word
          ({!Gist_storage.Latch.optimistic}/[validate]) instead of taking
          the S latch, restarting the visit on a version conflict. On by
          default; leaf visits and all write-path traversals still latch.
          See PROTOCOL.md §7 and experiment E15. *)
  olc_retries : int;
      (** Optimistic attempts per node visit before falling back to the S
          latch (counted in [olc.fallback]). [0] disables optimism per
          visit even when [olc = true] — every visit falls back. *)
  commit_mode : Gist_wal.Group_commit.mode;
      (** How commits obtain durability: [Sync] (default) forces the log
          inline; [Group] enqueues to a dedicated log-writer domain and
          waits for its batched flush; [Async] enqueues without waiting —
          locks release immediately and durability trails by one flush
          window, so an async-committed transaction may roll back
          (atomically) after a crash. PROTOCOL.md §8; experiment E16. *)
  group_wait_us : int;
      (** Adaptive flush-window bound for [Group]/[Async]: the most extra
          microseconds a lone commit stalls to let a batch form (only
          after a batched window — an idle writer flushes immediately). *)
  wal_flush_delay_ns : int;
      (** Simulated log-device latency per physical flush
          ({!Gist_wal.Log_manager.set_flush_delay_ns}); the commit-path
          analogue of [io_delay_ns]. *)
  eviction_policy : Gist_storage.Buffer_pool.policy;
      (** Buffer-pool victim selection: [Two_q] (default) is the
          scan-resistant probationary/protected split; [Lru] is the plain
          policy it replaced (kept for the E17 ablation and the
          equivalence property test). *)
  bg_writer : bool;
      (** Run a background writer/checkpointer domain
          ({!Gist_storage.Bg_writer}) that keeps a clean-victim reserve in
          every pool shard — foreground evictions then never write back a
          dirty page ([bp.fg_writeback] = 0) — and services range-scan
          prefetch. Off by default; owned by this environment like the
          group-commit writer ([close] drains it, [crash] halts it). *)
  checkpoint_interval_us : int;
      (** With [bg_writer], take a fuzzy checkpoint (the same
          DPT + txn-table anchor as {!checkpoint}) every this many
          microseconds. Each tick first flushes pages dirtied before the
          {e previous} anchor ({!Gist_storage.Buffer_pool.flush_aged} —
          incremental, never the whole pool), which is what actually
          bounds restart's redo span by the interval: hot pages are never
          eviction victims, so without the sweep their recLSN would pin
          redo to the start of the log. [0] (default) disables periodic
          checkpoints. *)
  prefetch_depth : int;
      (** How many upcoming pages a leaf-level scan ([Cursor] /
          [Gist.search]) hands to the background writer for read-ahead
          each time it visits a node (rightlink successors and pending
          subtree roots). [0] disables prefetch; ignored without
          [bg_writer], which owns the prefetch queue. *)
  mvcc : bool;
      (** Snapshot reads: allow [begin_ro] read-only transactions that scan
          a commit-timestamp snapshot via {!Gist.snapshot_search} /
          {!Cursor.open_snapshot} with zero lock acquisitions and zero
          predicate attaches, and make node deletes defer page scrubbing
          while snapshots are active. On by default; the read-write path
          (record locks + C2/C3 predicate machinery) is unaffected either
          way. PROTOCOL.md §9; experiment E18. *)
}

val default_config : config

type t = {
  config : config;
  exts : (string, Ext.packed) Hashtbl.t;
      (** Access-method registry (by extension name), used by recovery to
          decode log-record payloads in multi-tree databases. Guarded by
          [alloc_mutex]. *)
  disk : Gist_storage.Disk.t;
  pool : Gist_storage.Buffer_pool.t;
  log : Gist_wal.Log_manager.t;
  locks : Gist_txn.Lock_manager.t;
  txns : Gist_txn.Txn_manager.t;
  group : Gist_wal.Group_commit.t option;
      (** The group-commit writer ([Some] iff [commit_mode] is [Group] or
          [Async]); owned by this environment — [close]/[crash] end it. *)
  mutable bg : Gist_storage.Bg_writer.t option;
      (** The background writer/checkpointer domain ([Some] iff
          [config.bg_writer]); owned by this environment — [close] drains
          it, [crash] halts it. Restart masks its periodic checkpoints
          while recovery replays the log. *)
  counter : int64 Atomic.t;  (** Dedicated NSN counter (Nsn_from_counter). *)
  alloc_mutex : Mutex.t;
  mutable alloc_next : int;
  mutable alloc_free : int list;
  mutable deferred_free : (int * Gist_wal.Lsn.t * int) list;
      (** Pages retired by node delete while a snapshot was active, parked
          until their snapshot barrier clears ([reap_free]). Guarded by
          [alloc_mutex]. *)
}

val create : ?config:config -> unit -> t

val close : t -> unit
(** Clean shutdown of the environment's background machinery: drain and
    join the group-commit writer domain (every enqueued commit is durable
    on return). A no-op in [Sync] mode. Call before dropping a
    [Group]/[Async] environment — domains are not garbage-collected. *)

val halt_domains : t -> unit
(** Kill the environment's writer domains (background flusher/checkpointer,
    group-commit log writer) in place, discarding in-flight work, without
    rewinding any other state. Idempotent; [crash] calls it first. The
    fault harness uses it to stop the domains while its hooks are still
    armed, before truncating the log, so no post-power-loss write-back can
    land a page whose records the truncation discards. *)

val crash : t -> t
(** Simulate a failure: volatile state and the unforced log tail are lost
    — including durability requests still queued in the group-commit
    writer's window, whose domain is halted un-drained — and the returned
    environment shares the disk and durable log (spawning a fresh writer
    if the config calls for one). The old value must not be used
    afterwards. *)

val checkpoint : t -> unit
(** Fuzzy checkpoint: Begin/End record pair carrying the dirty page table,
    transaction table, and allocator snapshot; updates the log anchor. *)

val truncate_log : t -> int
(** Reclaim log records no future restart can need: everything below
    min(checkpoint anchor, oldest active transaction's begin LSN, oldest
    dirty page's recovery LSN). Returns the number of records reclaimed.
    Call after [checkpoint] (and ideally a buffer-pool flush) to bound log
    growth. *)

(** {1 NSN management (§10.1)} *)

val global_nsn : t -> Gist_wal.Lsn.t
(** Current value of the tree-global counter (source per config). *)

val split_nsn : t -> record_lsn:Gist_wal.Lsn.t -> Gist_wal.Lsn.t
(** The NSN for a node being split: the Split record's own LSN in
    [Nsn_from_lsn] mode, a counter increment otherwise. *)

(** {1 Page allocation}

    Volatile free-space state; durably reconstructed from Get-Page and
    Free-Page records at restart. Logging is the caller's job (these are
    called from inside NTAs). *)

val allocate_page : t -> Gist_storage.Page_id.t
val release_page : t -> Gist_storage.Page_id.t -> unit
val page_is_free : t -> Gist_storage.Page_id.t -> bool
val mark_unavailable : t -> Gist_storage.Page_id.t -> unit
(** Redo of Get-Page. *)

val mark_available : t -> Gist_storage.Page_id.t -> unit
(** Redo of Free-Page. *)

val allocator_snapshot : t -> string
(** Serialized allocator state for [Checkpoint_end]: frontier, free list,
    and the still-parked [deferred_free] page ids — the parked list dies
    with a crash and its Free-Page records may predate the redo anchor,
    so the snapshot is the only durable record of those pages. *)

val allocator_restore : t -> string -> unit
(** Inverse of [allocator_snapshot]; parked pages go straight back to the
    free list (no snapshot survives a restart, so their barriers are
    trivially cleared). Idempotent against the analysis pass replaying
    Get/Free-Page records on top. *)

(** {1 Read-only snapshot transactions (PROTOCOL.md §9)}

    A snapshot transaction is not a transaction-table entry: it takes no
    transaction id, writes no log records, acquires no locks (not even the
    self X lock of [begin_txn]) and attaches no predicates. It is a commit
    timestamp plus a registry entry that (a) holds the version-GC
    watermark and (b) defers the scrubbing of pages retired by node
    deletes. *)

type ro

val begin_ro : t -> ro
(** Open a read-only snapshot transaction at the current published commit
    timestamp. Counted in [mvcc.snapshot_begin].
    @raise Invalid_argument when [config.mvcc] is false. *)

val end_ro : t -> ro -> unit
(** Close the snapshot (releases the GC watermark) and opportunistically
    reap deferred page frees whose barriers have cleared. *)

val ro_ts : ro -> int
(** The snapshot's commit timestamp. *)

val ro_snap : ro -> Gist_txn.Txn_manager.snapshot

val defer_free : t -> Gist_storage.Page_id.t -> lsn:Gist_wal.Lsn.t -> unit
(** Park a just-retired page (its Free-Page record already logged at
    [lsn]) instead of scrubbing it, because an active snapshot might still
    traverse into it. *)

val reap_free : t -> int
(** Scrub + release every parked page whose snapshot barrier has cleared;
    returns how many. Also called from [end_ro], the vacuum path, and
    [checkpoint] (before the allocator capture, so the releases are
    reflected in the snapshot). *)

val deferred_free_count : t -> int

(** {1 Extension registry} *)

val register_ext : t -> Ext.packed -> unit
(** Idempotent; keyed by [Ext.name]. Done by [Gist.create]/[open_existing]
    and [Recovery.restart]. *)

val find_ext : t -> string -> Ext.packed option
