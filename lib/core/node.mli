(** Tree node layout and page image codec.

    Every node carries the concurrency-protocol header of §3 — its NSN and
    rightlink — plus its level (0 = leaf) and its own bounding predicate
    (kept in sync with the parent entry by Parent-Entry-Update records; for
    the root, the header is the only copy).

    Leaf entries are [(key, RID)] pairs with the logical-deletion mark of
    §7 ([deleter] is the deleting transaction, [Txn_id.none] when live).
    The BP of a node covers *all* physical entries including marked ones —
    they must stay reachable so that repeatable-read searches can block on
    them.

    A node is (de)serialized to its page frame on every access; bytes 0–7
    of the page are the page LSN (buffer-pool convention) and the body
    starts at offset 8. *)

type 'p leaf_entry = {
  le_key : 'p;
  le_rid : Gist_storage.Rid.t;
  le_creator : Gist_util.Txn_id.t;
      (** The inserting transaction. With [le_deleter] it forms the entry's
          version interval: a snapshot at commit timestamp [ts] sees the
          entry iff the creator committed at or before [ts] and the deleter
          (if any) did not (PROTOCOL.md §9). [Txn_id.none] = visible to
          every snapshot (bulk-loaded entries). *)
  mutable le_deleter : Gist_util.Txn_id.t;
}

type 'p internal_entry = { mutable ie_bp : 'p; ie_child : Gist_storage.Page_id.t }

type 'p entries = Leaf of 'p leaf_entry Gist_util.Dyn.t | Internal of 'p internal_entry Gist_util.Dyn.t

type 'p t = {
  id : Gist_storage.Page_id.t;
  mutable nsn : Gist_wal.Lsn.t;
  mutable rightlink : Gist_storage.Page_id.t;  (** [Page_id.invalid] = none. *)
  mutable level : int;
  mutable bp : 'p;
  mutable entries : 'p entries;
}

val make_leaf : id:Gist_storage.Page_id.t -> bp:'p -> 'p t
val make_internal : id:Gist_storage.Page_id.t -> level:int -> bp:'p -> 'p t

val is_leaf : 'p t -> bool
val entry_count : 'p t -> int
val live_leaf_count : 'p t -> int
(** Leaf entries not marked deleted. *)

(** {1 Page image} *)

val is_formatted : Gist_storage.Buffer_pool.frame -> bool
(** Whether the frame's page holds an encoded node. *)

val read : 'p Ext.t -> Gist_storage.Buffer_pool.frame -> 'p t
(** Decode the node from the frame (caller holds at least the S latch).
    Always parses the image afresh, yielding a private copy — use when the
    result will be inspected after the latch drops (e.g. tree_check).
    @raise Gist_util.Codec.Corrupt on an unformatted or damaged page. *)

val get : 'p Ext.t -> Gist_storage.Buffer_pool.frame -> 'p t
(** Like {!read}, but served from the frame's decoded-node cache when the
    cached copy is still stamped with the current page LSN; on a miss,
    decodes once and installs. The returned node is {e shared} with the
    cache: mutate it only under the frame's X latch and re-encode with
    {!write} (+ {!cache}) before releasing — the standard write_node
    discipline. Counted in [bp.node_cache.hit]/[.miss];
    [bp.node_cache.decode_ns] times the miss path.
    @raise Gist_util.Codec.Corrupt on an unformatted or damaged page. *)

val peek : 'p Ext.t -> Gist_storage.Buffer_pool.frame -> 'p t
(** Optimistic variant of {!get} for latch-free readers: served from the
    decoded-node cache on a valid stamp, otherwise a private {!read} that
    is {e not} installed (an install without the X latch would race a
    writer's own). Call with only a pin held, inside a
    {!Gist_storage.Buffer_pool.frame_version} window; any exception (torn
    image mid-write) or returned garbage is neutralized by the caller's
    subsequent failed [validate_frame].
    @raise Gist_util.Codec.Corrupt on an unformatted or damaged page. *)

val write : 'p Ext.t -> 'p t -> Gist_storage.Buffer_pool.frame -> unit
(** Encode into the frame (caller holds the X latch and will [mark_dirty]).
    @raise Failure if the node exceeds the page size — callers must check
    {!fits} before growing a node. *)

val cache : 'p t -> Gist_storage.Buffer_pool.frame -> unit
(** Install [t] as the frame's cached decode, stamped with the current
    page-header LSN. Call {e after} [mark_dirty] so the stamp matches the
    final header (full-page writes can restamp it above the record LSN). *)

val cache_at : 'p t -> Gist_storage.Buffer_pool.frame -> lsn:int64 -> unit
(** Install [t] stamped with [lsn] — for redo, which calls
    [mark_dirty ~lsn] after the node write and leaves the header at
    exactly [lsn] (FPW is masked during restart). *)

val fingerprint : 'p Ext.t -> 'p t -> string
(** The node's encoded body — equal iff the nodes are structurally equal
    up to codec round-trip. Test hook for the cache-coherence property. *)

val cache_coherent : 'p Ext.t -> Gist_storage.Buffer_pool.frame -> bool
(** [true] iff the frame has no (valid) cached node, or its fingerprint
    equals that of a fresh {!read} of the image. Test oracle. *)

val body_size : 'p Ext.t -> 'p t -> int

val fits : 'p Ext.t -> 'p t -> page_size:int -> extra:int -> max_entries:int -> bool
(** Capacity check: would the node still fit in a page (with [extra] more
    bytes pending) and respect the configured fanout cap? *)

(** {1 Entry images (for log records)} *)

val encode_leaf_entry : 'p Ext.t -> 'p leaf_entry -> string
val encode_internal_entry : 'p Ext.t -> 'p internal_entry -> string
val decode_entry :
  'p Ext.t -> string -> [ `Leaf of 'p leaf_entry | `Internal of 'p internal_entry ]
val leaf_entry_size : 'p Ext.t -> 'p -> int
(** Encoded size of a leaf entry with the given key. *)

(** {1 Entry manipulation} *)

val leaf_entries : 'p t -> 'p leaf_entry Gist_util.Dyn.t
(** @raise Invalid_argument on an internal node. *)

val internal_entries : 'p t -> 'p internal_entry Gist_util.Dyn.t
(** @raise Invalid_argument on a leaf. *)

val find_leaf_by_rid : 'p t -> Gist_storage.Rid.t -> 'p leaf_entry option
(** First physical entry with this RID, live or marked. *)

val find_live_by_rid : 'p t -> Gist_storage.Rid.t -> 'p leaf_entry option
(** The live (unmarked) entry with this RID. A committed logical delete
    followed by a reinsertion of the same RID legitimately leaves a marked
    twin awaiting garbage collection, so RID-addressed operations must say
    which generation they mean. *)

val find_marked_by : 'p t -> Gist_storage.Rid.t -> Gist_util.Txn_id.t -> 'p leaf_entry option
(** The entry with this RID marked deleted by the given transaction. *)

val add_leaf_entry : 'p t -> 'p leaf_entry -> unit
val remove_leaf_by_rid : 'p t -> Gist_storage.Rid.t -> bool

val remove_live_by_rid : 'p t -> Gist_storage.Rid.t -> bool
(** Remove the live entry with this RID (used by undo of an insertion). *)

val remove_marked_by_rid : 'p t -> Gist_storage.Rid.t -> bool
(** Remove a marked-deleted entry with this RID (garbage collection). *)

val find_child : 'p t -> Gist_storage.Page_id.t -> 'p internal_entry option
val add_internal_entry : 'p t -> 'p internal_entry -> unit
val remove_child : 'p t -> Gist_storage.Page_id.t -> bool

val recompute_bp : 'p Ext.t -> 'p t -> unit
(** Reset the header BP to the union of all (physical) entries. A node with
    no entries keeps its current BP. *)

val entry_preds : 'p t -> 'p list
(** The key/BP of every physical entry. *)

val pp : 'p Ext.t -> Format.formatter -> 'p t -> unit
