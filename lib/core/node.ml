open Gist_util
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid
module Lsn = Gist_wal.Lsn
module Buffer_pool = Gist_storage.Buffer_pool
module Metrics = Gist_obs.Metrics

let m_cache_hits =
  Metrics.counter ~unit_:"ops" ~help:"node reads served from the frame's decoded-node cache"
    "bp.node_cache.hit"

let m_cache_misses =
  Metrics.counter ~unit_:"ops" ~help:"node reads that had to decode the page image"
    "bp.node_cache.miss"

let h_decode_ns =
  Metrics.histogram ~unit_:"ns" ~help:"full page-image decode latency on a node-cache miss"
    "bp.node_cache.decode_ns"

type 'p leaf_entry = {
  le_key : 'p;
  le_rid : Rid.t;
  le_creator : Txn_id.t;
      (* the inserting transaction — with [le_deleter] this is the entry's
         version interval: snapshot reads show the entry iff the creator
         committed at or before the snapshot timestamp and the deleter did
         not. [Txn_id.none] means "always visible" (bulk load, pre-MVCC
         images). *)
  mutable le_deleter : Txn_id.t;
}

type 'p internal_entry = { mutable ie_bp : 'p; ie_child : Page_id.t }

type 'p entries = Leaf of 'p leaf_entry Dyn.t | Internal of 'p internal_entry Dyn.t

type 'p t = {
  id : Page_id.t;
  mutable nsn : Lsn.t;
  mutable rightlink : Page_id.t;
  mutable level : int;
  mutable bp : 'p;
  mutable entries : 'p entries;
}

let body_offset = 8 (* bytes 0..7 hold the page LSN *)

(* On-page format versioning. The kind byte doubles as the format tag:
   high nibble = layout version, low nibble = node kind. Layout v2
   inserted the 4-byte [le_creator] between the rid and the deleter in
   every leaf entry; v1 images (bare kind bytes 1/2, pre-MVCC) must be
   refused outright — decoding them with the v2 codec would silently
   parse deleter bytes as the creator and trailing bytes as the
   deleter. *)
let format_version = 2

let kind_leaf = (format_version lsl 4) lor 1

let kind_internal = (format_version lsl 4) lor 2

let is_v1_kind k = k = 1 || k = 2

let refuse_v1 what =
  raise
    (Codec.Corrupt
       (Printf.sprintf
          "%s uses on-page format v1 (pre-MVCC leaf layout, no creator timestamp); this build \
           reads format v%d only — rebuild the database"
          what format_version))

let make_leaf ~id ~bp =
  { id; nsn = Lsn.nil; rightlink = Page_id.invalid; level = 0; bp; entries = Leaf (Dyn.create ()) }

let make_internal ~id ~level ~bp =
  if level < 1 then invalid_arg "Node.make_internal: level must be >= 1";
  { id; nsn = Lsn.nil; rightlink = Page_id.invalid; level; bp; entries = Internal (Dyn.create ()) }

let is_leaf t = t.level = 0

let leaf_entries t =
  match t.entries with
  | Leaf d -> d
  | Internal _ -> invalid_arg "Node.leaf_entries: internal node"

let internal_entries t =
  match t.entries with
  | Internal d -> d
  | Leaf _ -> invalid_arg "Node.internal_entries: leaf node"

let entry_count t = match t.entries with Leaf d -> Dyn.length d | Internal d -> Dyn.length d

let live_leaf_count t =
  Dyn.fold (fun n e -> if Txn_id.is_some e.le_deleter then n else n + 1) 0 (leaf_entries t)

(* --- entry codecs --- *)

let put_leaf_entry ext b e =
  ext.Ext.encode b e.le_key;
  Rid.encode b e.le_rid;
  Txn_id.encode b e.le_creator;
  Txn_id.encode b e.le_deleter

let get_leaf_entry ext r =
  let le_key = ext.Ext.decode r in
  let le_rid = Rid.decode r in
  let le_creator = Txn_id.decode r in
  let le_deleter = Txn_id.decode r in
  { le_key; le_rid; le_creator; le_deleter }

let put_internal_entry ext b e =
  ext.Ext.encode b e.ie_bp;
  Page_id.encode b e.ie_child

let get_internal_entry ext r =
  let ie_bp = ext.Ext.decode r in
  let ie_child = Page_id.decode r in
  { ie_bp; ie_child }

let encode_leaf_entry ext e =
  let b = Buffer.create 32 in
  Codec.put_u8 b kind_leaf;
  put_leaf_entry ext b e;
  Buffer.contents b

let encode_internal_entry ext e =
  let b = Buffer.create 32 in
  Codec.put_u8 b kind_internal;
  put_internal_entry ext b e;
  Buffer.contents b

let decode_entry ext s =
  let r = Codec.reader (Bytes.unsafe_of_string s) in
  let k = Codec.get_u8 r in
  if k = kind_leaf then `Leaf (get_leaf_entry ext r)
  else if k = kind_internal then `Internal (get_internal_entry ext r)
  else if is_v1_kind k then refuse_v1 "log-record entry"
  else raise (Codec.Corrupt (Printf.sprintf "bad entry kind %d" k))

let leaf_entry_size ext key =
  let b = Buffer.create 32 in
  ext.Ext.encode b key;
  Buffer.length b + 16 (* rid (8) + creator (4) + deleter (4) *)

(* --- page image --- *)

let is_formatted frame =
  let img = Buffer_pool.data frame in
  let k = Bytes.get_uint8 img body_offset in
  k = kind_leaf || k = kind_internal

let encode_body ext t b =
  Codec.put_u8 b (if is_leaf t then kind_leaf else kind_internal);
  Lsn.encode b t.nsn;
  Page_id.encode b t.rightlink;
  Codec.put_i32 b t.level;
  ext.Ext.encode b t.bp;
  match t.entries with
  | Leaf d ->
    Codec.put_i32 b (Dyn.length d);
    Dyn.iter (put_leaf_entry ext b) d
  | Internal d ->
    Codec.put_i32 b (Dyn.length d);
    Dyn.iter (put_internal_entry ext b) d

let body_size ext t =
  let b = Buffer.create 256 in
  encode_body ext t b;
  Buffer.length b

let fits ext t ~page_size ~extra ~max_entries =
  entry_count t < max_entries && body_size ext t + extra <= page_size - body_offset

let read ext frame =
  let img = Buffer_pool.data frame in
  let r = Codec.reader ~pos:body_offset img in
  let kind = Codec.get_u8 r in
  if is_v1_kind kind then
    refuse_v1 (Printf.sprintf "page %d" (Page_id.to_int (Buffer_pool.page_id frame)));
  if kind <> kind_leaf && kind <> kind_internal then
    raise
      (Codec.Corrupt
         (Printf.sprintf "page %d is not a formatted node (kind %d)"
            (Page_id.to_int (Buffer_pool.page_id frame))
            kind));
  let nsn = Lsn.decode r in
  let rightlink = Page_id.decode r in
  let level = Codec.get_i32 r in
  let bp = ext.Ext.decode r in
  let count = Codec.get_i32 r in
  let entries =
    if kind = kind_leaf then begin
      let d = Dyn.create () in
      for _ = 1 to count do
        Dyn.push d (get_leaf_entry ext r)
      done;
      Leaf d
    end
    else begin
      let d = Dyn.create () in
      for _ = 1 to count do
        Dyn.push d (get_internal_entry ext r)
      done;
      Internal d
    end
  in
  { id = Buffer_pool.page_id frame; nsn; rightlink; level; bp; entries }

(* Cached-read entry point. The cache holds the node by reference: a hit
   hands back the same value that the last decoder (or writer, via
   [cache]) installed, so all mutation must happen under the frame's X
   latch and be followed by [write] + [cache] before the latch drops —
   which is exactly the existing write_node discipline. Callers that walk
   a node's entries outside the latch (tree_check) must keep using [read]
   for a private copy. *)
let get ext frame =
  match Buffer_pool.cached_node frame with
  | Some o ->
    Metrics.incr m_cache_hits;
    (Obj.obj o : _ t)
  | None ->
    Metrics.incr m_cache_misses;
    let t0 = Clock.now_ns () in
    let n = read ext frame in
    Metrics.record h_decode_ns (Float.of_int (Clock.now_ns () - t0));
    Buffer_pool.cache_node frame (Obj.repr n);
    n

(* Optimistic (latch-free) read entry point: like [get] but never installs
   into the frame cache — an install without the X latch would race a
   writer's own install. Called with only a pin held, inside a version
   window the caller validates afterwards; a racing writer may make the
   decode see torn bytes and raise, which the caller must treat as a
   failed validation. *)
let peek ext frame =
  match Buffer_pool.cached_node frame with
  | Some o ->
    Metrics.incr m_cache_hits;
    (Obj.obj o : _ t)
  | None ->
    Metrics.incr m_cache_misses;
    let t0 = Clock.now_ns () in
    let n = read ext frame in
    Metrics.record h_decode_ns (Float.of_int (Clock.now_ns () - t0));
    n

let cache t frame = Buffer_pool.cache_node frame (Obj.repr t)

let cache_at t frame ~lsn = Buffer_pool.cache_node_at frame (Obj.repr t) ~lsn

let fingerprint ext t =
  let b = Buffer.create 512 in
  encode_body ext t b;
  Buffer.contents b

let cache_coherent ext frame =
  match Buffer_pool.cached_node frame with
  | None -> true
  | Some o -> String.equal (fingerprint ext (Obj.obj o : _ t)) (fingerprint ext (read ext frame))

let write ext t frame =
  let img = Buffer_pool.data frame in
  let b = Buffer.create 512 in
  encode_body ext t b;
  let len = Buffer.length b in
  if len > Bytes.length img - body_offset then
    failwith
      (Printf.sprintf "Node.write: node %d body (%d bytes) exceeds page size"
         (Page_id.to_int t.id) len);
  Buffer.blit b 0 img body_offset len;
  (* Zero one trailing byte so a shrunken node can't leave a stale valid
     kind tag beyond... the length prefix already bounds decoding; nothing
     else required. *)
  ()

(* --- entry manipulation --- *)

let find_by t p =
  let d = leaf_entries t in
  match Dyn.find_index p d with Some i -> Some (Dyn.get d i) | None -> None

let remove_by t p =
  let d = leaf_entries t in
  match Dyn.find_index p d with
  | Some i ->
    Dyn.remove d i;
    true
  | None -> false

let find_leaf_by_rid t rid = find_by t (fun e -> Rid.equal e.le_rid rid)

let find_live_by_rid t rid =
  find_by t (fun e -> Rid.equal e.le_rid rid && not (Txn_id.is_some e.le_deleter))

let find_marked_by t rid txn =
  find_by t (fun e -> Rid.equal e.le_rid rid && Txn_id.equal e.le_deleter txn)

let add_leaf_entry t e = Dyn.push (leaf_entries t) e

let remove_leaf_by_rid t rid = remove_by t (fun e -> Rid.equal e.le_rid rid)

let remove_live_by_rid t rid =
  remove_by t (fun e -> Rid.equal e.le_rid rid && not (Txn_id.is_some e.le_deleter))

let remove_marked_by_rid t rid =
  remove_by t (fun e -> Rid.equal e.le_rid rid && Txn_id.is_some e.le_deleter)

let find_child t pid =
  let d = internal_entries t in
  match Dyn.find_index (fun e -> Page_id.equal e.ie_child pid) d with
  | Some i -> Some (Dyn.get d i)
  | None -> None

let add_internal_entry t e = Dyn.push (internal_entries t) e

let remove_child t pid =
  let d = internal_entries t in
  match Dyn.find_index (fun e -> Page_id.equal e.ie_child pid) d with
  | Some i ->
    Dyn.remove d i;
    true
  | None -> false

let entry_preds t =
  match t.entries with
  | Leaf d -> Dyn.fold (fun acc e -> e.le_key :: acc) [] d
  | Internal d -> Dyn.fold (fun acc e -> e.ie_bp :: acc) [] d

let recompute_bp ext t =
  match entry_preds t with [] -> () | ps -> t.bp <- ext.Ext.union ps

let pp ext ppf t =
  Format.fprintf ppf "@[<v 2>node %a level=%d nsn=%a rightlink=%a bp=%a entries=%d" Page_id.pp
    t.id t.level Lsn.pp t.nsn Page_id.pp t.rightlink ext.Ext.pp t.bp (entry_count t);
  (match t.entries with
  | Leaf d ->
    Dyn.iter
      (fun e ->
        Format.fprintf ppf "@,%a %a%s" ext.Ext.pp e.le_key Rid.pp e.le_rid
          (if Txn_id.is_some e.le_deleter then
             Format.asprintf " (deleted by %a)" Txn_id.pp e.le_deleter
           else ""))
      d
  | Internal d ->
    Dyn.iter (fun e -> Format.fprintf ppf "@,%a -> %a" ext.Ext.pp e.ie_bp Page_id.pp e.ie_child) d);
  Format.fprintf ppf "@]"
