open Gist_util
module Disk = Gist_storage.Disk
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch
module Metrics = Gist_obs.Metrics
module Bg_writer = Gist_storage.Bg_writer
module Page_id = Gist_storage.Page_id
module Lsn = Gist_wal.Lsn
module Log_manager = Gist_wal.Log_manager
module Log_record = Gist_wal.Log_record
module Group_commit = Gist_wal.Group_commit

type nsn_source = Nsn_from_lsn | Nsn_from_counter

type memo_source = Memo_global | Memo_parent_lsn

type config = {
  page_size : int;
  pool_capacity : int;
  max_entries : int;
  io_delay_ns : int;
  nsn_source : nsn_source;
  memo_source : memo_source;
  gc_on_write : bool;
  full_page_writes : bool;
  node_cache : bool;
  olc : bool;
  olc_retries : int;
  commit_mode : Group_commit.mode;
  group_wait_us : int;
  wal_flush_delay_ns : int;
  eviction_policy : Buffer_pool.policy;
  bg_writer : bool;
  checkpoint_interval_us : int;
  prefetch_depth : int;
  mvcc : bool;
}

let default_config =
  {
    page_size = 4096;
    pool_capacity = 256;
    max_entries = 64;
    io_delay_ns = 0;
    nsn_source = Nsn_from_lsn;
    memo_source = Memo_parent_lsn;
    gc_on_write = true;
    full_page_writes = false;
    node_cache = true;
    olc = true;
    olc_retries = 8;
    commit_mode = Group_commit.Sync;
    group_wait_us = 50;
    wal_flush_delay_ns = 0;
    eviction_policy = Buffer_pool.Two_q;
    bg_writer = false;
    checkpoint_interval_us = 0;
    prefetch_depth = 2;
    mvcc = true;
  }

type t = {
  config : config;
  exts : (string, Ext.packed) Hashtbl.t;
  disk : Disk.t;
  pool : Buffer_pool.t;
  log : Log_manager.t;
  locks : Gist_txn.Lock_manager.t;
  txns : Gist_txn.Txn_manager.t;
  group : Group_commit.t option;
  mutable bg : Bg_writer.t option;
  counter : int64 Atomic.t;
  alloc_mutex : Mutex.t;
  mutable alloc_next : int;
  mutable alloc_free : int list;
  mutable deferred_free : (int * Lsn.t * int) list;
      (* (page, free-record LSN, snapshot barrier): pages retired by node
         delete while a snapshot was active. A lock-free snapshot reader
         holds no signaling lock, so the §7.2 drain cannot see it — the
         empty page image (rightlink intact) must survive until every
         snapshot registered before the barrier has ended, then [reap_free]
         scrubs and releases it. *)
}

(* --- allocator --- *)

let allocate_page t =
  Mutex.lock t.alloc_mutex;
  let pid =
    match t.alloc_free with
    | p :: rest ->
      t.alloc_free <- rest;
      p
    | [] ->
      let p = t.alloc_next in
      t.alloc_next <- p + 1;
      p
  in
  Mutex.unlock t.alloc_mutex;
  Page_id.of_int pid

let release_page t pid =
  let pid = Page_id.to_int pid in
  Mutex.lock t.alloc_mutex;
  if not (List.mem pid t.alloc_free) then t.alloc_free <- pid :: t.alloc_free;
  Mutex.unlock t.alloc_mutex

let page_is_free t pid =
  let pid = Page_id.to_int pid in
  Mutex.lock t.alloc_mutex;
  let r = List.mem pid t.alloc_free || pid >= t.alloc_next in
  Mutex.unlock t.alloc_mutex;
  r

let mark_unavailable t pid =
  let pid = Page_id.to_int pid in
  Mutex.lock t.alloc_mutex;
  t.alloc_free <- List.filter (fun p -> p <> pid) t.alloc_free;
  if pid >= t.alloc_next then begin
    (* Everything between the old frontier and pid stays allocatable. *)
    for p = t.alloc_next to pid - 1 do
      if not (List.mem p t.alloc_free) then t.alloc_free <- p :: t.alloc_free
    done;
    t.alloc_next <- pid + 1
  end;
  Mutex.unlock t.alloc_mutex

let mark_available t pid = release_page t pid

let allocator_snapshot t =
  Mutex.lock t.alloc_mutex;
  let b = Buffer.create 64 in
  Codec.put_i32 b t.alloc_next;
  Codec.put_list Codec.put_i32 b t.alloc_free;
  (* Snapshot-parked pages ride along: their Free_page records may predate
     the redo anchor this snapshot ends up in, and the in-memory park list
     dies with a crash — without this, a page parked across a checkpoint
     would never return to the allocator after restart (a permanent space
     leak). Restore hands them straight back to the free list: no snapshot
     survives a restart, so the park barrier is trivially cleared. *)
  Codec.put_list Codec.put_i32 b (List.map (fun (p, _, _) -> p) t.deferred_free);
  Mutex.unlock t.alloc_mutex;
  Buffer.contents b

let allocator_restore t s =
  let r = Codec.reader (Bytes.unsafe_of_string s) in
  let next = Codec.get_i32 r in
  let free = Codec.get_list Codec.get_i32 r in
  let parked = Codec.get_list Codec.get_i32 r in
  Mutex.lock t.alloc_mutex;
  t.alloc_next <- next;
  t.alloc_free <- free;
  List.iter
    (fun p -> if not (List.mem p t.alloc_free) then t.alloc_free <- p :: t.alloc_free)
    parked;
  Mutex.unlock t.alloc_mutex

(* --- read-only snapshots and deferred page reclamation --- *)

let m_snapshot_begins =
  Metrics.counter ~unit_:"ops" ~help:"read-only snapshot transactions opened (Db.begin_ro)"
    "mvcc.snapshot_begin"

type ro = { ro_snap : Gist_txn.Txn_manager.snapshot }

let begin_ro t =
  if not t.config.mvcc then
    invalid_arg "Db.begin_ro: snapshot reads are disabled (config.mvcc = false)";
  Metrics.incr m_snapshot_begins;
  { ro_snap = Gist_txn.Txn_manager.begin_snapshot t.txns }

let ro_ts ro = Gist_txn.Txn_manager.snapshot_ts ro.ro_snap

let ro_snap ro = ro.ro_snap

(* Park a retired page instead of scrubbing it: a lock-free snapshot
   reader takes no signaling locks, so the §7.2 drain cannot prove the
   page unreferenced. The empty image (rightlink intact) stays readable
   until every snapshot registered before [barrier] ends. *)
let defer_free t pid ~lsn =
  let barrier = Gist_txn.Txn_manager.snapshot_barrier t.txns in
  Mutex.lock t.alloc_mutex;
  t.deferred_free <- (Page_id.to_int pid, lsn, barrier) :: t.deferred_free;
  Mutex.unlock t.alloc_mutex

let deferred_free_count t =
  Mutex.lock t.alloc_mutex;
  let n = List.length t.deferred_free in
  Mutex.unlock t.alloc_mutex;
  n

(* Scrub and release every deferred page whose barrier has cleared (no
   snapshot registered before its retirement survives). Returns how many
   pages were reclaimed. *)
let reap_free t =
  let floor = Gist_txn.Txn_manager.min_active_snap_id t.txns in
  Mutex.lock t.alloc_mutex;
  let ready, still = List.partition (fun (_, _, barrier) -> barrier <= floor) t.deferred_free in
  t.deferred_free <- still;
  Mutex.unlock t.alloc_mutex;
  List.iter
    (fun (p, lsn, _) ->
      let pid = Page_id.of_int p in
      Buffer_pool.with_page t.pool pid Latch.X (fun frame ->
          let img = Buffer_pool.data frame in
          Bytes.fill img 0 (Bytes.length img) '\000';
          Buffer_pool.invalidate_cache frame;
          Buffer_pool.mark_dirty t.pool frame ~lsn);
      release_page t pid)
    ready;
  List.length ready

let end_ro t ro =
  Gist_txn.Txn_manager.end_snapshot t.txns ro.ro_snap;
  ignore (reap_free t)

(* --- checkpointing --- *)

let checkpoint t =
  (* Drain cleared deferred frees first so the allocator snapshot below
     already reflects their release — otherwise a page reaped between the
     snapshot capture and the next checkpoint leaks if we crash while its
     Free_page record sits behind the redo anchor. Pages whose barrier has
     not cleared stay parked and are carried by the snapshot itself. *)
  ignore (reap_free t);
  let none = Txn_id.none in
  let begin_lsn = Log_manager.append t.log ~txn:none ~prev:Lsn.nil Log_record.Checkpoint_begin in
  (* Capture order matters: txn table FIRST, DPT second. A transaction's
     append and its bookkeeping (last_lsn update, mark_dirty) are not
     atomic against this capture, so a record just before [begin_lsn] can
     be missing from both captures. Analysis closes the gap by rescanning
     from the captured table's minimum last_lsn — which only works if the
     racing record's transaction is still IN the captured table, or ended
     so early that its mark_dirty is already visible to the (later) DPT
     capture. Capturing the DPT first would leave a window with neither
     repair. *)
  let active_txns = Gist_txn.Txn_manager.active_txns t.txns in
  let dirty_pages = Buffer_pool.dirty_page_table t.pool in
  let allocator = allocator_snapshot t in
  let end_lsn =
    Log_manager.append t.log ~txn:none ~prev:Lsn.nil
      (Log_record.Checkpoint_end { dirty_pages; active_txns; allocator })
  in
  Log_manager.force t.log end_lsn;
  (* The anchor names the *begin* record, not the end: a fuzzy checkpoint
     runs concurrently with transactions, so records can land between
     [Checkpoint_begin] and the DPT/txn-table capture. Analysis scans from
     the begin record and so covers that window; anchoring the end record
     would lose it (a loser beginning there would never be undone, a page
     first dirtied there never redone). *)
  Log_manager.set_anchor t.log begin_lsn

(* --- lifecycle --- *)

let attach ~config ~disk ~log =
  Log_manager.set_flush_delay_ns log config.wal_flush_delay_ns;
  let log_page_image =
    if not config.full_page_writes then None
    else
      Some
        (fun pid image ->
          Log_manager.append log ~txn:Gist_util.Txn_id.none ~prev:Gist_wal.Lsn.nil
            (Log_record.Page_image { page = pid; image = Bytes.to_string image }))
  in
  let pool =
    Buffer_pool.create ?log_page_image ~node_cache:config.node_cache
      ~policy:config.eviction_policy ~capacity:config.pool_capacity ~disk
      ~force_log:(fun lsn -> Log_manager.force log lsn)
      ()
  in
  let locks = Gist_txn.Lock_manager.create () in
  let txns = Gist_txn.Txn_manager.create ~log ~locks in
  (* Sync spawns no writer domain: the default configuration costs nothing
     and tears down nothing. Group/Async own a live log-writer until
     [close] (drain) or [crash] (discard). *)
  let group =
    match config.commit_mode with
    | Group_commit.Sync -> None
    | Group_commit.Group | Group_commit.Async ->
      let g = Group_commit.create ~wait_us:config.group_wait_us log in
      Group_commit.start g;
      Some g
  in
  Gist_txn.Txn_manager.set_durability txns ~mode:config.commit_mode ~group;
  let db =
    {
      config;
      exts = Hashtbl.create 4;
      disk;
      pool;
      log;
      locks;
      txns;
      group;
      bg = None;
      counter = Atomic.make 0L;
      alloc_mutex = Mutex.create ();
      alloc_next = 1; (* page 0 is the reserved invalid id *)
      alloc_free = [];
      deferred_free = [];
    }
  in
  (* The background writer/checkpointer domain, like the group-commit
     writer, is owned by this environment. Its checkpoint callback closes
     over [db] so fuzzy checkpoints go through the same machinery as
     explicit ones. *)
  if config.bg_writer then begin
    let ckpt =
      if config.checkpoint_interval_us > 0 then
        Some
          (fun () ->
            checkpoint db;
            Log_manager.anchor log)
      else None
    in
    (* Per-shard clean reserve: a quarter of a shard, at least one frame. *)
    let reserve = max 1 (config.pool_capacity / 64) in
    let bg =
      Bg_writer.create ?checkpoint:ckpt ~checkpoint_interval_us:config.checkpoint_interval_us
        ~reserve pool
    in
    Bg_writer.start bg;
    Buffer_pool.set_bg_writer pool
      ~wake:(fun () -> Bg_writer.wake bg)
      ~alive:(fun () -> Bg_writer.running bg);
    db.bg <- Some bg
  end;
  db

let create ?(config = default_config) () =
  let disk = Disk.create ~io_delay_ns:config.io_delay_ns ~page_size:config.page_size () in
  let log = Log_manager.create () in
  attach ~config ~disk ~log

let close t =
  (match t.bg with
  | None -> ()
  | Some bg ->
    Bg_writer.stop bg;
    Buffer_pool.clear_bg_writer t.pool;
    t.bg <- None);
  match t.group with None -> () | Some g -> Group_commit.stop g

(* Kill the writer domains in place, discarding their in-flight work — the
   background flusher mid-pass, the log writer with its un-flushed window.
   Idempotent, and deliberately does NOT rewind any state: the fault
   harness must be able to stop the domains while its hooks are still
   armed, *before* the log is truncated, or a flusher could write back a
   page whose records the rewind is about to discard. *)
let halt_domains t =
  (match t.bg with
  | None -> ()
  | Some bg ->
    Bg_writer.halt bg;
    Buffer_pool.clear_bg_writer t.pool;
    t.bg <- None);
  match t.group with None -> () | Some g -> Group_commit.halt g

let crash t =
  (* Power first: the writer domains die with their in-flight work, so the
     rewind below really is stop-the-world. *)
  halt_domains t;
  Buffer_pool.drop_all t.pool;
  Log_manager.crash t.log;
  let fresh = attach ~config:t.config ~disk:t.disk ~log:t.log in
  (* A dedicated counter is volatile; restart over-approximates it from the
     log so NSN comparisons stay conservative. *)
  Atomic.set fresh.counter (Log_manager.last_lsn t.log);
  fresh

(* --- NSN management --- *)

let global_nsn t =
  match t.config.nsn_source with
  | Nsn_from_lsn -> Log_manager.last_lsn t.log
  | Nsn_from_counter -> Atomic.get t.counter

let split_nsn t ~record_lsn =
  match t.config.nsn_source with
  | Nsn_from_lsn -> record_lsn
  | Nsn_from_counter ->
    let rec bump () =
      let v = Atomic.get t.counter in
      let nv = Int64.add v 1L in
      if Atomic.compare_and_set t.counter v nv then nv else bump ()
    in
    bump ()

let register_ext t (Ext.Packed e as packed) =
  Mutex.lock t.alloc_mutex;
  Hashtbl.replace t.exts e.Ext.name packed;
  Mutex.unlock t.alloc_mutex

let find_ext t name =
  Mutex.lock t.alloc_mutex;
  let r = Hashtbl.find_opt t.exts name in
  Mutex.unlock t.alloc_mutex;
  r

let truncate_log t =
  let anchor = Log_manager.anchor t.log in
  if Lsn.equal anchor Lsn.nil then 0
  else begin
    (* Undo needs every loser's backchain from its Begin; redo needs every
       unflushed page's first-dirtying record. *)
    let oldest_active = Gist_txn.Txn_manager.commit_lsn t.txns in
    let oldest_rec_lsn =
      List.fold_left
        (fun acc (_, rec_lsn) -> Lsn.min acc rec_lsn)
        Int64.max_int
        (Buffer_pool.dirty_page_table t.pool)
    in
    Log_manager.truncate_before t.log (Lsn.min anchor (Lsn.min oldest_active oldest_rec_lsn))
  end
