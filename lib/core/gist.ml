open Gist_util
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch
module Lsn = Gist_wal.Lsn
module Log_record = Gist_wal.Log_record
module Lock_manager = Gist_txn.Lock_manager
module Txn_manager = Gist_txn.Txn_manager
module Pm = Gist_pred.Predicate_manager
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

(* Global metrics, aggregated across every tree in the process; the
   per-tree [counters] below stay authoritative for per-object stats. *)
let m_searches = Metrics.counter ~unit_:"ops" ~help:"search operations" "gist.search"

let m_inserts = Metrics.counter ~unit_:"ops" ~help:"insert operations" "gist.insert"

let m_deletes = Metrics.counter ~unit_:"ops" ~help:"logical-delete operations" "gist.delete"

let m_splits = Metrics.counter ~unit_:"ops" ~help:"node splits (split NTAs)" "gist.split"

let m_root_grows =
  Metrics.counter ~unit_:"ops" ~help:"fixed-root splits growing the tree" "gist.root_grow"

let m_bp_updates =
  Metrics.counter ~unit_:"ops" ~help:"parent-entry BP expansions propagated" "gist.bp_update"

let m_rightlinks =
  Metrics.counter ~unit_:"ops"
    ~help:"rightlink traversals compensating for missed splits (NSN mismatch)"
    "gist.rightlink_follow"

let m_gc_entries =
  Metrics.counter ~unit_:"entries" ~help:"committed-deleted entries reclaimed" "gist.gc_entry"

let m_node_deletes =
  Metrics.counter ~unit_:"ops" ~help:"empty nodes retired by the drain technique" "gist.node_delete"

let m_pred_blocks =
  Metrics.counter ~unit_:"ops" ~help:"inserts blocked on a conflicting predicate" "gist.pred_block"

let m_pred_checks =
  Metrics.counter ~unit_:"ops" ~help:"insert step-6 conflict checks executed" "pred.check"

let m_pred_conflicts =
  Metrics.counter ~unit_:"preds" ~help:"conflicting predicates found by checks" "pred.conflict"

let m_olc_attempts =
  Metrics.counter ~unit_:"ops" ~help:"optimistic latch-free node reads attempted (search path)"
    "olc.read_attempt"

let m_olc_restarts =
  Metrics.counter ~unit_:"ops"
    ~help:"optimistic reads discarded (version word busy or changed across the read)"
    "olc.restart"

let m_olc_fallbacks =
  Metrics.counter ~unit_:"ops"
    ~help:"node visits that exhausted the optimistic retry budget and took the S latch"
    "olc.fallback"

let m_snapshot_scans =
  Metrics.counter ~unit_:"ops" ~help:"read-only snapshot scans (lock-free MVCC read path)"
    "mvcc.snapshot_scan"

let m_version_skipped =
  Metrics.counter ~unit_:"entries"
    ~help:"leaf-entry versions skipped by snapshot visibility filtering (creator too new or \
           deleter already committed at the snapshot timestamp)"
    "mvcc.version_skipped"

let m_gc_reclaimed =
  Metrics.counter ~unit_:"entries"
    ~help:"dead versions reclaimed by GC under the oldest-active-snapshot watermark"
    "mvcc.gc_reclaimed"

exception Duplicate_key

exception Parent_needs_split
(* Internal: a split found its parent full; the caller climbs the descent
   stack, splits the parent, and retries. *)

type counters = {
  c_searches : int Atomic.t;
  c_inserts : int Atomic.t;
  c_deletes : int Atomic.t;
  c_splits : int Atomic.t;
  c_root_grows : int Atomic.t;
  c_bp_updates : int Atomic.t;
  c_rightlinks : int Atomic.t;
  c_gc_entries : int Atomic.t;
  c_node_deletes : int Atomic.t;
  c_pred_blocks : int Atomic.t;
}

let fresh_counters () =
  {
    c_searches = Atomic.make 0;
    c_inserts = Atomic.make 0;
    c_deletes = Atomic.make 0;
    c_splits = Atomic.make 0;
    c_root_grows = Atomic.make 0;
    c_bp_updates = Atomic.make 0;
    c_rightlinks = Atomic.make 0;
    c_gc_entries = Atomic.make 0;
    c_node_deletes = Atomic.make 0;
    c_pred_blocks = Atomic.make 0;
  }

type 'p t = {
  db : Db.t;
  ext : 'p Ext.t;
  root : Page_id.t;
  preds : 'p Pm.t;
  unique : bool;
  counters : counters;
  mutable hook : string -> unit;
}

type stats = {
  searches : int;
  inserts : int;
  deletes : int;
  splits : int;
  root_grows : int;
  bp_updates : int;
  rightlink_follows : int;
  gc_entries : int;
  node_deletes : int;
  pred_blocks : int;
}

let db t = t.db

let ext t = t.ext

let root t = t.root

let predicate_manager t = t.preds

let set_hook t f = t.hook <- f

let stats t =
  let c = t.counters in
  {
    searches = Atomic.get c.c_searches;
    inserts = Atomic.get c.c_inserts;
    deletes = Atomic.get c.c_deletes;
    splits = Atomic.get c.c_splits;
    root_grows = Atomic.get c.c_root_grows;
    bp_updates = Atomic.get c.c_bp_updates;
    rightlink_follows = Atomic.get c.c_rightlinks;
    gc_entries = Atomic.get c.c_gc_entries;
    node_deletes = Atomic.get c.c_node_deletes;
    pred_blocks = Atomic.get c.c_pred_blocks;
  }

let reset_stats t =
  let c = t.counters in
  List.iter
    (fun a -> Atomic.set a 0)
    [
      c.c_searches;
      c.c_inserts;
      c.c_deletes;
      c.c_splits;
      c.c_root_grows;
      c.c_bp_updates;
      c.c_rightlinks;
      c.c_gc_entries;
      c.c_node_deletes;
      c.c_pred_blocks;
    ]

let hook t label = t.hook label

(* Hot paths guard hook-argument construction on this test: [ignore] is the
   physical default. *)
let hook_on t = t.hook != ignore

let hookf t fmt = if hook_on t then Format.kasprintf t.hook fmt else Format.ikfprintf ignore Format.str_formatter fmt

(* Record one rightlink compensation (§3): a traversal found a node whose
   NSN is newer than its memorized value and must evaluate the right
   sibling too. Bumps the per-tree counter and the global metric, and
   under tracing emits the NSN-mismatch + traversal pair. *)
let note_rightlink_raw t ~from_pid ~memo ~nsn ~rightlink =
  Atomic.incr t.counters.c_rightlinks;
  Metrics.incr m_rightlinks;
  if Trace.enabled () then begin
    Trace.emit (Trace.Nsn_mismatch { page = Page_id.to_int from_pid; memo; nsn });
    Trace.emit
      (Trace.Rightlink
         { from_page = Page_id.to_int from_pid; to_page = Page_id.to_int rightlink })
  end

let note_rightlink t ~from_pid ~memo node =
  note_rightlink_raw t ~from_pid ~memo ~nsn:node.Node.nsn ~rightlink:node.Node.rightlink

(* ------------------------------------------------------------------ *)
(* Node access helpers                                                 *)
(* ------------------------------------------------------------------ *)

let with_node t pid mode f =
  Buffer_pool.with_page t.db.Db.pool pid mode (fun frame -> f frame (Node.get t.ext frame))

(* Pin [pid] un-latched for the duration of [f]. The pin keeps the frame
   resident, so pinning the same page inside [f] — typically under an
   ancestor's latch (latch order parent → child) — is a guaranteed buffer
   hit: whatever I/O the pin needs (fault-in, evicting a dirty victim)
   happens here with no latches held, honoring claim C1 even when the
   pool thrashes. *)
let with_resident t pid f =
  let pool = t.db.Db.pool in
  let frame = Buffer_pool.pin pool pid in
  Fun.protect ~finally:(fun () -> Buffer_pool.unpin pool frame) f

(* Write a node back under an X latch and stamp the page with [lsn]. The
   cache install comes after mark_dirty so the stamp matches the final
   header LSN (a first-dirty full-page write restamps the header above
   [lsn]). *)
let write_node t frame node ~lsn =
  Node.write t.ext node frame;
  Buffer_pool.mark_dirty t.db.Db.pool frame ~lsn;
  Node.cache node frame

let bp_string t p = Ext.encode_to_string t.ext p

let bp_equal t a b = String.equal (bp_string t a) (bp_string t b)

(* The value a traversal memorizes when reading child pointers out of a
   node (§10.1): the node's own page LSN under the optimized scheme, the
   global counter otherwise. Must be called under the node's latch. *)
let memo_of t frame =
  match t.db.Db.config.Db.memo_source with
  | Db.Memo_parent_lsn -> Buffer_pool.page_lsn frame
  | Db.Memo_global -> Db.global_nsn t.db

let node_fits t node ~extra =
  Node.fits t.ext node ~page_size:t.db.Db.config.Db.page_size ~extra
    ~max_entries:t.db.Db.config.Db.max_entries

(* ------------------------------------------------------------------ *)
(* Operation context: signaling locks (§7.2)                           *)
(* ------------------------------------------------------------------ *)

type opctx = { tid : Txn_id.t; mutable sig_locks : Page_id.t list }

(* Place a signaling lock on [pid]. Must be called while holding the latch
   of the node the pointer was read from, so that a concurrent split's
   lock-copying covers every right sibling we may traverse (§7.2). Never
   blocks: node deleters only ever try-lock X. *)
let sig_lock t ctx pid =
  Lock_manager.lock t.db.Db.locks ctx.tid (Lock_manager.Node pid) Lock_manager.S;
  ctx.sig_locks <- pid :: ctx.sig_locks

(* Single pass: hash the (few) kept pids once instead of List.exists per
   held lock, which made release O(held × kept) on scan-heavy ops. The
   filter both unlocks and rebuilds the kept list; duplicates in
   [sig_locks] are preserved (each holds its own lock count). *)
let release_sig_locks t ctx ~keep =
  let keep_tbl = Hashtbl.create 8 in
  List.iter (fun pid -> Hashtbl.replace keep_tbl (Page_id.to_int pid) ()) keep;
  ctx.sig_locks <-
    List.filter
      (fun pid ->
        Hashtbl.mem keep_tbl (Page_id.to_int pid)
        ||
        (Lock_manager.unlock t.db.Db.locks ctx.tid (Lock_manager.Node pid);
         false))
      ctx.sig_locks

let with_ctx txn ~keep_on_success t f =
  let ctx = { tid = Txn_manager.id txn; sig_locks = [] } in
  match f ctx with
  | v ->
    release_sig_locks t ctx ~keep:(keep_on_success v);
    v
  | exception e ->
    release_sig_locks t ctx ~keep:[];
    raise e

(* ------------------------------------------------------------------ *)
(* Recovery handler installation                                       *)
(* ------------------------------------------------------------------ *)

let install_recovery t =
  Db.register_ext t.db (Ext.Packed t.ext);
  Recovery.install t.db;
  Txn_manager.add_end_hook t.db.Db.txns (fun tid -> Pm.remove_txn t.preds tid)

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let make_handle db ext_ unique root =
  {
    db;
    ext = ext_;
    root;
    preds = Pm.create ();
    unique;
    counters = fresh_counters ();
    hook = ignore;
  }

let open_existing db ext_ ?(unique = false) ~root () =
  let t = make_handle db ext_ unique root in
  install_recovery t;
  t

let create db ext_ ?(unique = false) ~empty_bp () =
  let t0 = make_handle db ext_ unique Page_id.invalid in
  install_recovery t0;
  (* Format the root inside an NTA owned by a short system transaction. *)
  let txn = Txn_manager.begin_txn db.Db.txns in
  let nta = Txn_manager.begin_nta db.Db.txns txn in
  let root = Db.allocate_page db in
  ignore (Txn_manager.log_nta db.Db.txns txn ~ext:ext_.Ext.name (Log_record.Get_page { page = root }));
  let fmt_lsn =
    Txn_manager.log_nta db.Db.txns txn ~ext:ext_.Ext.name
      (Log_record.Format_node { page = root; level = 0; bp = Ext.encode_to_string ext_ empty_bp })
  in
  let frame = Buffer_pool.pin_new db.Db.pool root in
  Latch.acquire (Buffer_pool.latch frame) Latch.X;
  let node = Node.make_leaf ~id:root ~bp:empty_bp in
  Node.write ext_ node frame;
  Buffer_pool.mark_dirty db.Db.pool frame ~lsn:fmt_lsn;
  Node.cache node frame;
  Latch.release (Buffer_pool.latch frame) Latch.X;
  Buffer_pool.unpin db.Db.pool frame;
  Txn_manager.end_nta db.Db.txns txn nta;
  (* The tree's existence is not expressible as transaction rollback:
     lose these records in a crash and recovery has no root to rebuild.
     So this commit is durable even under async commit (DDL semantics). *)
  Txn_manager.commit ~durability:`Force db.Db.txns txn;
  let t = { t0 with root } in
  install_recovery t;
  t

(* ------------------------------------------------------------------ *)
(* Optimistic traversal (PROTOCOL.md §7)                               *)
(* ------------------------------------------------------------------ *)

(* One latch-free attempt at the internal-node step of a search visit:
   everything the S-latch path reads out of the node — rightlink decision,
   child memo, consistent children — computed from a raw [Node.peek],
   with the signaling locks (§7.2) taken *inside* the version window so
   that a successful validation proves they were placed while the node
   state we acted on was current, exactly as if we had held the S latch.
   Returns a commit thunk to run after validation: counter bumps, hooks
   and stack pushes for state the attempt may yet discard. Sig locks
   taken by a failed attempt are merely conservative — S-mode node locks
   block nobody but a drain's conditional X, and the op releases them at
   the end either way. *)
let olc_read_step t ctx ~stack ~query frame pid memo =
  let node = Node.peek t.ext frame in
  if Node.is_leaf node then `Leaf
  else begin
    let rl =
      if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
        sig_lock t ctx node.Node.rightlink;
        Some (node.Node.rightlink, node.Node.nsn)
      end
      else None
    in
    let child_memo = memo_of t frame in
    let children =
      Dyn.fold
        (fun acc e ->
          if t.ext.Ext.consistent query e.Node.ie_bp then begin
            sig_lock t ctx e.Node.ie_child;
            e.Node.ie_child :: acc
          end
          else acc)
        [] (Node.internal_entries node)
    in
    `Internal
      (fun () ->
        (match rl with
        | Some (rightlink, nsn) ->
          note_rightlink_raw t ~from_pid:pid ~memo ~nsn ~rightlink;
          stack := (rightlink, memo) :: !stack;
          hookf t "search:rightlink:%a" Page_id.pp rightlink
        | None -> ());
        (* [children] is accumulated in reverse entry order; pushing it
           as-is leaves the stack popping children in entry order, matching
           the S-latch path's last-pushed-first-popped layout closely
           enough — search order is unspecified and results are a set. *)
        List.iter (fun child -> stack := (child, child_memo) :: !stack) children)
  end

(* Visit one search-stack entry without latching, under the frame latch's
   version word. [true] = internal node fully processed (children
   sig-locked and pushed); [false] = take the S-latch path: the node is a
   leaf (record try-locks and the §10.3 FIFO check need a stable entry
   list), or the retry budget ran out ([olc.fallback]). A racing writer
   can tear the raw decode mid-[peek]; any exception inside the window is
   re-raised only if the window still validates (then it is a genuine
   corruption an S-latched reader would also have hit). *)
let olc_visit t ctx ~spred ~stack ~query pid memo =
  let cfg = t.db.Db.config in
  let pool = t.db.Db.pool in
  let frame = Buffer_pool.pin pool pid in
  Fun.protect
    ~finally:(fun () -> Buffer_pool.unpin pool frame)
    (fun () ->
      (* Attach before any entry is examined (§4.3). Idempotent, so one
         attach ahead of the retry loop covers every attempt — and it must
         sit outside the window because attaching takes the predicate
         manager's shard lock, which could stall the window arbitrarily. *)
      (match spred with Some sp -> Pm.attach t.preds sp pid | None -> ());
      let rec attempt n =
        if n >= cfg.Db.olc_retries then begin
          Metrics.incr m_olc_fallbacks;
          if Trace.enabled () then
            Trace.emit (Trace.Olc_fallback { page = Page_id.to_int pid });
          false
        end
        else begin
          Metrics.incr m_olc_attempts;
          let restart () =
            Metrics.incr m_olc_restarts;
            if Trace.enabled () then
              Trace.emit (Trace.Olc_restart { page = Page_id.to_int pid });
            Domain.cpu_relax ();
            attempt (n + 1)
          in
          match Buffer_pool.frame_version frame with
          | None -> restart ()
          | Some v0 -> (
            match olc_read_step t ctx ~stack ~query frame pid memo with
            | exception e ->
              if Buffer_pool.validate_frame frame v0 then raise e else restart ()
            | `Leaf -> false
            | `Internal commit ->
              if Buffer_pool.validate_frame frame v0 then begin
                commit ();
                true
              end
              else restart ())
        end
      in
      attempt 0)

(* Hand the scan's next visit targets (pending subtree roots and rightlink
   successors already on the stack) to the background writer for
   read-ahead. Called with no latch held; resident pages are ignored by
   the pool, so over-asking is cheap. *)
let prefetch_pending t stack =
  match t.db.Db.bg with
  | None -> ()
  | Some bg ->
    let depth = t.db.Db.config.Db.prefetch_depth in
    let rec go n = function
      | (pid, _) :: rest when n < depth ->
        Gist_storage.Bg_writer.prefetch bg pid;
        go (n + 1) rest
      | _ -> ()
    in
    go 0 stack

let search ?(isolation = `Repeatable_read) ?olc t txn query =
  let tid = Txn_manager.id txn in
  let locks = t.db.Db.locks in
  let use_olc = match olc with Some b -> b | None -> t.db.Db.config.Db.olc in
  let rr = isolation = `Repeatable_read in
  Atomic.incr t.counters.c_searches;
  Metrics.incr m_searches;
  with_ctx txn ~keep_on_success:(fun _ -> []) t (fun ctx ->
      let results : (Rid.t, 'p) Hashtbl.t = Hashtbl.create 32 in
      (* Degree-2 (read committed) scans take no predicate and hold record
         locks only for the duration of the read: cheaper, admits
         phantoms/unrepeatable reads (§4 discusses only Degree 3; Degree 2
         is the standard weaker point in the same design space). *)
      let spred =
        if rr then Some (Pm.register t.preds ~owner:tid ~kind:Pm.Scan query) else None
      in
      let stack = ref [ (t.root, Db.global_nsn t.db) ] in
      sig_lock t ctx t.root;
      let blocked = ref None in
      while !stack <> [] do
        let pid, memo = List.hd !stack in
        stack := List.tl !stack;
        hookf t "search:visit:%a" Page_id.pp pid;
        let handled = use_olc && olc_visit t ctx ~spred ~stack ~query pid memo in
        if not handled then
        with_node t pid Latch.S (fun frame node ->
            (* Detect splits missed since the pointer was memorized (§3). *)
            if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
              note_rightlink t ~from_pid:pid ~memo node;
              sig_lock t ctx node.Node.rightlink;
              stack := (node.Node.rightlink, memo) :: !stack;
              hook t (Format.asprintf "search:rightlink:%a" Page_id.pp node.Node.rightlink)
            end;
            (* Attach before examining entries so the §4.3 invariant holds
               even if we must release the latch to block below. *)
            (match spred with Some sp -> Pm.attach t.preds sp pid | None -> ());
            if Node.is_leaf node then begin
              (try
                 Dyn.iter
                   (fun e ->
                     if
                       t.ext.Ext.consistent query e.Node.le_key
                       && not (Hashtbl.mem results e.Node.le_rid)
                     then
                       if
                         Lock_manager.try_lock locks tid
                           (Lock_manager.Record e.Node.le_rid)
                           Lock_manager.S
                       then begin
                         if Txn_id.is_some e.Node.le_deleter then begin
                           (* Deleter finished: committed ⇒ awaiting GC,
                              skip; our own mark ⇒ we deleted it. *)
                           if not (Txn_id.equal e.Node.le_deleter tid) then
                             Lock_manager.unlock locks tid (Lock_manager.Record e.Node.le_rid)
                         end
                         else begin
                           Hashtbl.replace results e.Node.le_rid e.Node.le_key;
                           (* Degree 2: the lock was only needed to verify
                              the entry is committed. *)
                           if not rr then
                             Lock_manager.unlock locks tid (Lock_manager.Record e.Node.le_rid)
                         end
                       end
                       else begin
                         (* The record is X-locked by a writer. FIFO rule
                            (§10.3): if that writer's insert predicate is
                            queued *behind* our scan predicate on this
                            leaf, the writer is waiting for us — skip its
                            uncommitted entry (we serialize before it).
                            Otherwise release the latch first (§5), then
                            wait on the record lock and rescan this leaf. *)
                         let holders =
                           Lock_manager.holders locks (Lock_manager.Record e.Node.le_rid)
                         in
                         let writer_behind_us =
                           (* "Us" is the transaction: an earlier scan of
                              ours may have queued the predicate the writer
                              is waiting on. *)
                           let rec scan seen_self = function
                             | [] -> false
                             | p :: rest ->
                               if Txn_id.equal (Pm.owner p) tid then scan true rest
                               else if
                                 seen_self
                                 && (match Pm.kind_of p with
                                    | Pm.Insert | Pm.Probe -> true
                                    | Pm.Scan -> false)
                                 && List.exists
                                      (fun (h, _) -> Txn_id.equal h (Pm.owner p))
                                      holders
                               then true
                               else scan seen_self rest
                           in
                           scan false (Pm.attached t.preds pid)
                         in
                         if not writer_behind_us then begin
                           blocked := Some e.Node.le_rid;
                           raise Exit
                         end
                       end)
                   (Node.leaf_entries node)
               with Exit -> ());
              match !blocked with
              | Some _ -> stack := (pid, memo) :: !stack
              | None -> ()
            end
            else begin
              let child_memo = memo_of t frame in
              Dyn.iter
                (fun e ->
                  if t.ext.Ext.consistent query e.Node.ie_bp then begin
                    sig_lock t ctx e.Node.ie_child;
                    stack := (e.Node.ie_child, child_memo) :: !stack
                  end)
                (Node.internal_entries node)
            end);
        prefetch_pending t !stack;
        match !blocked with
        | Some rid ->
          blocked := None;
          hookf t "search:block:%a" Rid.pp rid;
          (* Blocking wait with no latches held; Deadlock may propagate. *)
          Lock_manager.lock locks tid (Lock_manager.Record rid) Lock_manager.S
        | None -> ()
      done;
      Hashtbl.fold (fun rid key acc -> (key, rid) :: acc) results [])

(* ------------------------------------------------------------------ *)
(* Snapshot search: the lock-free MVCC read path (PROTOCOL.md §9)      *)
(* ------------------------------------------------------------------ *)

(* Per-entry visibility against snapshot timestamp [ts]: the creator's
   effects are in (committed at or below [ts], or historical) and the
   deleter's are not. MUST be evaluated while the entry's node state is
   known current — under the S latch or inside a version window that
   subsequently validates — because an aborting creator physically removes
   its entries before leaving the transaction table; checked after the
   fact, a just-aborted creator would read as "historical" and a dead
   entry would become visible. Within a validated window the entry is
   physically present for the whole span, so its creator is still in one
   of the two tables whenever this runs. *)
let entry_visible t ~ts e =
  let txns = t.db.Db.txns in
  if not (Txn_manager.committed_as_of txns ~ts e.Node.le_creator) then begin
    Metrics.incr m_version_skipped;
    false
  end
  else if
    Txn_id.is_some e.Node.le_deleter && Txn_manager.committed_as_of txns ~ts e.Node.le_deleter
  then begin
    Metrics.incr m_version_skipped;
    false
  end
  else true

(* Everything a snapshot scan takes from one node: rightlink compensation
   decision, consistent children (internal), or visible matching entries
   (leaf). Pure reads plus txn-table lookups — no locks, no predicates, no
   mutation. Runs under the S latch or inside a version window. *)
let snapshot_read_step t ~ts ~query frame pid memo =
  ignore pid;
  let node = Node.peek t.ext frame in
  let rl =
    if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then
      Some (node.Node.rightlink, node.Node.nsn)
    else None
  in
  if Node.is_leaf node then
    let hits =
      Dyn.fold
        (fun acc e ->
          if t.ext.Ext.consistent query e.Node.le_key && entry_visible t ~ts e then
            (e.Node.le_key, e.Node.le_rid) :: acc
          else acc)
        [] (Node.leaf_entries node)
    in
    `Step (rl, None, [], hits)
  else
    let child_memo = memo_of t frame in
    let children =
      Dyn.fold
        (fun acc e ->
          if t.ext.Ext.consistent query e.Node.ie_bp then e.Node.ie_child :: acc else acc)
        [] (Node.internal_entries node)
    in
    `Step (rl, Some child_memo, children, [])

(* Visit one snapshot-scan stack entry and return its visible leaf hits.
   No signaling locks and no predicate attach anywhere on this path: the
   snapshot does not need them (visibility is decided per entry, and a
   page retired under our feet is just an empty node or an unformatted
   image we skip). Optimistic first, like [olc_visit]; the S-latch
   fallback covers pathological write traffic. *)
let snapshot_visit t ~ts ~stack ~query pid memo =
  let cfg = t.db.Db.config in
  let pool = t.db.Db.pool in
  let frame = Buffer_pool.pin pool pid in
  Fun.protect
    ~finally:(fun () -> Buffer_pool.unpin pool frame)
    (fun () ->
      let act = function
        | `Retired -> []
        | `Step (rl, child_memo, children, hits) ->
          (match rl with
          | Some (rightlink, nsn) ->
            note_rightlink_raw t ~from_pid:pid ~memo ~nsn ~rightlink;
            stack := (rightlink, memo) :: !stack;
            hookf t "snapshot:rightlink:%a" Page_id.pp rightlink
          | None -> ());
          (match child_memo with
          | Some cm -> List.iter (fun child -> stack := (child, cm) :: !stack) children
          | None -> ());
          hits
      in
      (* The snapshot path must never *block* on a writer's latch — not
         even as a fallback. A blocking acquire here would also deadlock
         the crash fuzzer's racing readers: its simulated power loss is an
         exception raised in the faulting domain, which strands any
         bare-held X latch (a real power loss takes every domain with it),
         and a reader parked on that latch never wakes. So the fallback
         spins on [try_acquire], and every so often probes the disk — a
         no-op read whose fault hook re-raises the sticky power-off in
         *this* domain, turning the stranded-latch case into the same
         [Fault.Crash] the reader already absorbs. *)
      let latched () =
        let l = Buffer_pool.latch frame in
        let rec try_s spins =
          if Latch.try_acquire l Latch.S then
            Fun.protect
              ~finally:(fun () -> Latch.release l Latch.S)
              (fun () ->
                match snapshot_read_step t ~ts ~query frame pid memo with
                | exception Codec.Corrupt _ -> act `Retired
                | step -> act step)
          else begin
            if spins land 255 = 255 then
              ignore (Gist_storage.Disk.read (Buffer_pool.disk pool) pid);
            Domain.cpu_relax ();
            try_s (spins + 1)
          end
        in
        try_s 0
      in
      if not cfg.Db.olc then latched ()
      else begin
        let rec attempt n =
          if n >= cfg.Db.olc_retries then begin
            Metrics.incr m_olc_fallbacks;
            if Trace.enabled () then Trace.emit (Trace.Olc_fallback { page = Page_id.to_int pid });
            latched ()
          end
          else begin
            Metrics.incr m_olc_attempts;
            let restart () =
              Metrics.incr m_olc_restarts;
              if Trace.enabled () then Trace.emit (Trace.Olc_restart { page = Page_id.to_int pid });
              Domain.cpu_relax ();
              attempt (n + 1)
            in
            match Buffer_pool.frame_version frame with
            | None -> restart ()
            | Some v0 -> (
              match snapshot_read_step t ~ts ~query frame pid memo with
              | exception Codec.Corrupt _ ->
                (* A validated corrupt decode is a page retired by a node
                   delete (scrub deferred or replayed) — skip it. *)
                if Buffer_pool.validate_frame frame v0 then act `Retired else restart ()
              | exception e -> if Buffer_pool.validate_frame frame v0 then raise e else restart ()
              | step -> if Buffer_pool.validate_frame frame v0 then act step else restart ())
          end
        in
        attempt 0
      end)

let snapshot_search t ro query =
  let ts = Db.ro_ts ro in
  Atomic.incr t.counters.c_searches;
  Metrics.incr m_searches;
  Metrics.incr m_snapshot_scans;
  if Trace.enabled () then Trace.emit (Trace.Snapshot_scan { ts });
  let results : (Rid.t, 'p) Hashtbl.t = Hashtbl.create 32 in
  let stack = ref [ (t.root, Db.global_nsn t.db) ] in
  while !stack <> [] do
    let pid, memo = List.hd !stack in
    stack := List.tl !stack;
    hookf t "snapshot:visit:%a" Page_id.pp pid;
    let hits = snapshot_visit t ~ts ~stack ~query pid memo in
    (* Dedup by rid: a split can make the scan visit the same leaf both
       through its parent entry and through a rightlink chase. Visibility
       already guarantees at most one version of a rid qualifies at [ts]. *)
    List.iter
      (fun (key, rid) -> if not (Hashtbl.mem results rid) then Hashtbl.replace results rid key)
      hits;
    prefetch_pending t !stack
  done;
  Hashtbl.fold (fun rid key acc -> (key, rid) :: acc) results []

(* ------------------------------------------------------------------ *)
(* Split machinery (Figure 4: splitNode)                               *)
(* ------------------------------------------------------------------ *)

(* Slow-path parent lookup: full DFS (with rightlink closure at every
   node) for the internal node holding the entry for [child]. Needed when
   a descent-stack hint went stale — in particular after a root grow moved
   the parent entry one level down. *)
let locate_parent_of t child =
  (* Exhaustive walk: children *and* rightlinks at every level, so nodes
     whose own parent entries are mid-install (inside a concurrent split
     NTA) are still reached via their left siblings. Retried a few times
     because such windows are transient. *)
  let attempt () =
    let visited = Hashtbl.create 64 in
    let rec dfs pid =
      if (not (Page_id.is_valid pid)) || Hashtbl.mem visited (Page_id.to_int pid) then None
      else begin
        Hashtbl.replace visited (Page_id.to_int pid) ();
        match
          with_node t pid Latch.S (fun _f node ->
              if Node.is_leaf node then `Next (node.Node.rightlink, [])
              else if Node.find_child node child <> None then `Here
              else
                `Next
                  ( node.Node.rightlink,
                    Dyn.fold (fun l e -> e.Node.ie_child :: l) [] (Node.internal_entries node)
                  ))
        with
        | exception Codec.Corrupt _ -> None
        | `Here -> Some pid
        | `Next (rl, kids) -> (
          match dfs rl with
          | Some p -> Some p
          | None ->
            let rec try_kids = function
              | [] -> None
              | k :: rest -> ( match dfs k with Some p -> Some p | None -> try_kids rest)
            in
            try_kids kids)
      end
    in
    dfs t.root
  in
  let rec retry n = match attempt () with Some p -> Some p | None -> if n = 0 then None else retry (n - 1) in
  retry 5

(* Find, X-latched, the node on the rightlink chain from [start] that holds
   the parent entry for [child]; run [f] on it. Entries only ever move
   right, so the walk normally terminates at the holder (§6); if the hint
   went stale (root grow), fall back to a full relocation. *)
let rec with_parent_holding t start child f =
  let next =
    with_node t start Latch.X (fun frame node ->
        match Node.find_child node child with
        | Some _ -> `Done (f frame node)
        | None -> `Next node.Node.rightlink)
  in
  match next with
  | `Done v -> v
  | `Next rl ->
    if Page_id.is_valid rl then with_parent_holding t rl child f
    else (
      match locate_parent_of t child with
      | Some p -> with_parent_holding t p child f
      | None ->
        failwith
          (Format.asprintf "gist: no parent entry for %a anywhere (hint %a)" Page_id.pp child
             Page_id.pp start))

(* Split the (full) node [pid] as a nested top action. The caller holds no
   latches. [parent_hint] is where the parent entry was last seen; [None]
   means [pid] is the root. @raise Parent_needs_split if the parent cannot
   take another entry. *)
let rec split_node t txn ~parent_hint pid =
  let txns = t.db.Db.txns in
  match parent_hint with
  | None ->
    (* Root split: fixed-root trick — push the root's content into a fresh
       child, then split that child with the root as parent. *)
    let grown =
      Buffer_pool.with_page t.db.Db.pool t.root Latch.X (fun root_frame ->
          let root_node = Node.get t.ext root_frame in
          if node_fits t root_node ~extra:0 then None
          else begin
            hook t "split:root-grow";
            Atomic.incr t.counters.c_root_grows;
            Metrics.incr m_root_grows;
            let nta = Txn_manager.begin_nta txns txn in
            let child = Db.allocate_page t.db in
            if Trace.enabled () then
              Trace.emit
                (Trace.Root_grow
                   { root = Page_id.to_int t.root; child = Page_id.to_int child });
            ignore (Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Get_page { page = child }));
            let entries_enc =
              match root_node.Node.entries with
              | Node.Leaf d -> List.map (Node.encode_leaf_entry t.ext) (Dyn.to_list d)
              | Node.Internal d -> List.map (Node.encode_internal_entry t.ext) (Dyn.to_list d)
            in
            let grow_lsn =
              Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                (Log_record.Root_grow
                   {
                     root = t.root;
                     child;
                     entries = entries_enc;
                     root_old_nsn = root_node.Node.nsn;
                     old_level = root_node.Node.level;
                     root_bp = bp_string t root_node.Node.bp;
                   })
            in
            (* Child receives the root's content, NSN and (nil) rightlink. *)
            let child_frame = Buffer_pool.pin_new t.db.Db.pool child in
            Latch.acquire (Buffer_pool.latch child_frame) Latch.X;
            let child_node =
              {
                Node.id = child;
                nsn = root_node.Node.nsn;
                rightlink = Page_id.invalid;
                level = root_node.Node.level;
                bp = root_node.Node.bp;
                entries = root_node.Node.entries;
              }
            in
            Node.write t.ext child_node child_frame;
            Buffer_pool.mark_dirty t.db.Db.pool child_frame ~lsn:grow_lsn;
            Node.cache child_node child_frame;
            (* Root becomes internal with a single child entry. *)
            let new_root =
              Node.make_internal ~id:t.root ~level:(root_node.Node.level + 1)
                ~bp:root_node.Node.bp
            in
            Node.add_internal_entry new_root { Node.ie_bp = root_node.Node.bp; ie_child = child };
            new_root.Node.nsn <- root_node.Node.nsn;
            write_node t root_frame new_root ~lsn:grow_lsn;
            (* Stack pointers to the root now lead to the child: extend
               deletion protection and predicate attachments to it. *)
            Lock_manager.copy_holders t.db.Db.locks ~src:(Lock_manager.Node t.root)
              ~dst:(Lock_manager.Node child);
            Pm.replicate t.preds ~src:t.root ~dst:child ~keep:(fun p ->
                t.ext.Ext.consistent (Pm.formula p) child_node.Node.bp);
            Txn_manager.end_nta txns txn nta;
            Latch.release (Buffer_pool.latch child_frame) Latch.X;
            Buffer_pool.unpin t.db.Db.pool child_frame;
            Some child
          end)
    in
    (match grown with
    | None -> ()
    | Some child -> split_node t txn ~parent_hint:(Some t.root) child)
  | Some parent_start ->
    (* Latch order: parent first, then child — the same order as node
       deletion and parent-entry update, so latches cannot deadlock. The
       child is pinned resident first so its re-pin under the parent latch
       never faults. *)
    let outcome =
      with_resident t pid @@ fun () ->
      with_parent_holding t parent_start pid (fun parent_frame parent_node ->
          Buffer_pool.with_page t.db.Db.pool pid Latch.X (fun child_frame ->
              let node = Node.get t.ext child_frame in
              if node_fits t node ~extra:0 then `No_split
              else begin
                (* The parent must be able to take one more entry. *)
                let extra = String.length (bp_string t node.Node.bp) + 16 in
                if not (node_fits t parent_node ~extra) then `Parent_full
                else begin
                  hookf t "split:node:%a" Page_id.pp pid;
                  Atomic.incr t.counters.c_splits;
                  Metrics.incr m_splits;
                  let nta = Txn_manager.begin_nta txns txn in
                  let right = Db.allocate_page t.db in
                  if Trace.enabled () then
                    Trace.emit
                      (Trace.Node_split
                         { orig = Page_id.to_int pid; right = Page_id.to_int right });
                  ignore (Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Get_page { page = right }));
                  let preds_arr = Array.of_list (List.rev (Node.entry_preds node)) in
                  let assignment = Ext.check_pick_split t.ext preds_arr in
                  let moved_enc = ref [] in
                  let right_node =
                    if Node.is_leaf node then Node.make_leaf ~id:right ~bp:node.Node.bp
                    else Node.make_internal ~id:right ~level:node.Node.level ~bp:node.Node.bp
                  in
                  (match node.Node.entries with
                  | Node.Leaf d ->
                    let keep = Dyn.create () in
                    Dyn.iteri
                      (fun i e ->
                        if assignment.(i) then begin
                          Node.add_leaf_entry right_node e;
                          moved_enc := Node.encode_leaf_entry t.ext e :: !moved_enc
                        end
                        else Dyn.push keep e)
                      d;
                    node.Node.entries <- Node.Leaf keep
                  | Node.Internal d ->
                    let keep = Dyn.create () in
                    Dyn.iteri
                      (fun i e ->
                        if assignment.(i) then begin
                          Node.add_internal_entry right_node e;
                          moved_enc := Node.encode_internal_entry t.ext e :: !moved_enc
                        end
                        else Dyn.push keep e)
                      d;
                    node.Node.entries <- Node.Internal keep);
                  let moved = List.rev !moved_enc in
                  let old_nsn = node.Node.nsn in
                  let old_rightlink = node.Node.rightlink in
                  (* Under Nsn_from_lsn the new NSN *is* the Split record's
                     LSN (§10.1), encoded as nil and resolved by redo; a
                     dedicated counter must be bumped first and embedded. *)
                  let counter_nsn =
                    match t.db.Db.config.Db.nsn_source with
                    | Db.Nsn_from_lsn -> Lsn.nil
                    | Db.Nsn_from_counter -> Db.split_nsn t.db ~record_lsn:Lsn.nil
                  in
                  let split_record_lsn =
                    Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                      (Log_record.Split
                         {
                           orig = pid;
                           right;
                           moved;
                           orig_old_nsn = old_nsn;
                           orig_new_nsn = counter_nsn;
                           orig_old_rightlink = old_rightlink;
                           level = node.Node.level;
                         })
                  in
                  let new_nsn =
                    if Lsn.equal counter_nsn Lsn.nil then split_record_lsn else counter_nsn
                  in
                  (* The new sibling inherits the old NSN and rightlink;
                     the original gets the incremented counter value (§3). *)
                  right_node.Node.nsn <- old_nsn;
                  right_node.Node.rightlink <- old_rightlink;
                  Node.recompute_bp t.ext right_node;
                  node.Node.nsn <- new_nsn;
                  node.Node.rightlink <- right;
                  Node.recompute_bp t.ext node;
                  let right_frame = Buffer_pool.pin_new t.db.Db.pool right in
                  Latch.acquire (Buffer_pool.latch right_frame) Latch.X;
                  Node.write t.ext right_node right_frame;
                  Buffer_pool.mark_dirty t.db.Db.pool right_frame ~lsn:split_record_lsn;
                  Node.cache right_node right_frame;
                  write_node t child_frame node ~lsn:split_record_lsn;
                  (* §7.2: extend deletion protection to the new sibling. *)
                  Lock_manager.copy_holders t.db.Db.locks ~src:(Lock_manager.Node pid)
                    ~dst:(Lock_manager.Node right);
                  (* §4.3: replicate consistent predicate attachments. *)
                  Pm.replicate t.preds ~src:pid ~dst:right ~keep:(fun p ->
                      t.ext.Ext.consistent (Pm.formula p) right_node.Node.bp);
                  (* Install the parent entry for the new sibling and
                     tighten the original's parent entry. *)
                  let right_entry = { Node.ie_bp = right_node.Node.bp; ie_child = right } in
                  let add_lsn =
                    Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                      (Log_record.Internal_entry_add
                         {
                           page = parent_node.Node.id;
                           entry = Node.encode_internal_entry t.ext right_entry;
                         })
                  in
                  Node.add_internal_entry parent_node right_entry;
                  (* Stamp the parent at [add_lsn] before logging the
                     follow-up update: the DPT rec_lsn must name the FIRST
                     record that dirtied the page. Marking once at the
                     later LSN lets a fuzzy checkpoint capture a rec_lsn
                     one past the entry-add, and redo seeded from that
                     checkpoint skips the add — the sibling's parent entry
                     is silently lost if the split hit a freshly-flushed
                     parent. *)
                  write_node t parent_frame parent_node ~lsn:add_lsn;
                  (match Node.find_child parent_node pid with
                  | Some ie ->
                    let upd_lsn =
                      Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                        (Log_record.Internal_entry_update
                           {
                             page = parent_node.Node.id;
                             child = pid;
                             new_bp = bp_string t node.Node.bp;
                             old_bp = bp_string t ie.Node.ie_bp;
                           })
                    in
                    ie.Node.ie_bp <- node.Node.bp;
                    write_node t parent_frame parent_node ~lsn:upd_lsn
                  | None -> ());
                  Txn_manager.end_nta txns txn nta;
                  Latch.release (Buffer_pool.latch right_frame) Latch.X;
                  Buffer_pool.unpin t.db.Db.pool right_frame;
                  hook t "split:done";
                  `Split
                end
              end))
    in
    (match outcome with
    | `No_split | `Split -> ()
    | `Parent_full -> raise Parent_needs_split)

(* Split [pid], recursively splitting full ancestors first. [stack] is the
   descent stack, immediate parent first. *)
let rec ensure_space t txn ~stack pid =
  let parent_hint = match stack with [] -> None | (p, _) :: _ -> Some p in
  match split_node t txn ~parent_hint pid with
  | () -> ()
  | exception Parent_needs_split -> (
    match stack with
    | [] -> assert false (* the root path never raises Parent_needs_split *)
    | (parent, _) :: rest ->
      ensure_space t txn ~stack:rest parent;
      ensure_space t txn ~stack pid)

(* ------------------------------------------------------------------ *)
(* BP update propagation (Figure 4: updateBP)                          *)
(* ------------------------------------------------------------------ *)

(* The paper's updateBP (Figure 4) backs up the tree holding latches
   through the whole propagation. To keep single-node latching (and the
   uniform parent-before-child latch order), this implementation instead
   propagates *after* the entry is physically on the leaf, bottom-up:
   once the key is present, any concurrent split's BP recomputation
   includes it, so an expansion can never be wiped (the race a released-
   latch top-down scheme would have). Each step is an independent
   redo-only Parent-Entry-Update atomic action (Table 1).

   Returns the updated path top-down, for the percolation pass. *)
let propagate_bp t txn ~stack ~leaf needed_bp =
  let txns = t.db.Db.txns in
  let expand_root_header needed =
    Buffer_pool.with_page t.db.Db.pool t.root Latch.X (fun frame ->
        let node = Node.get t.ext frame in
        let new_bp = t.ext.Ext.union [ node.Node.bp; needed ] in
        if not (bp_equal t new_bp node.Node.bp) then begin
          let lsn =
            Txn_manager.log_update txns txn ~ext:t.ext.Ext.name
              (Log_record.Parent_entry_update
                 { parent = t.root; child = t.root; new_bp = bp_string t new_bp })
          in
          node.Node.bp <- new_bp;
          write_node t frame node ~lsn
        end)
  in
  (* The climb runs ALL the way to the root even when an entry already
     covers the key: with released latches, a concurrent insert's own climb
     may have expanded this level but not yet the ones above (the classic
     window a paper-style latched top-down updateBP would not have). Each
     level is verified — and fixed if needed — by this climb itself, so
     when it returns, every ancestor entry on the path covers the key.
     The full path is returned so percolation also runs on unchanged
     levels: a racing probe may have parked its predicate high on the path
     moments before this key became visible there. *)
  let rec climb child needed hints path =
    if Page_id.equal child t.root then begin
      expand_root_header needed;
      path
    end
    else begin
      let hint = match hints with (p, _) :: _ -> p | [] -> t.root in
      let hints_rest = match hints with _ :: r -> r | [] -> [] in
      let parent_found =
        with_resident t child @@ fun () ->
        with_parent_holding t hint child (fun parent_frame parent_node ->
            match Node.find_child parent_node child with
            | None -> assert false (* with_parent_holding guarantees it *)
            | Some ie ->
              let new_bp = t.ext.Ext.union [ ie.Node.ie_bp; needed ] in
              if not (bp_equal t new_bp ie.Node.ie_bp) then begin
                hookf t "bp-update:%a" Page_id.pp child;
                Atomic.incr t.counters.c_bp_updates;
                Metrics.incr m_bp_updates;
                Buffer_pool.with_page t.db.Db.pool child Latch.X (fun child_frame ->
                    let child_node = Node.get t.ext child_frame in
                    let lsn =
                      Txn_manager.log_update txns txn ~ext:t.ext.Ext.name
                        (Log_record.Parent_entry_update
                           {
                             parent = parent_node.Node.id;
                             child;
                             new_bp = bp_string t new_bp;
                           })
                    in
                    ie.Node.ie_bp <- new_bp;
                    parent_node.Node.bp <- t.ext.Ext.union [ parent_node.Node.bp; new_bp ];
                    write_node t parent_frame parent_node ~lsn;
                    child_node.Node.bp <- t.ext.Ext.union [ child_node.Node.bp; new_bp ];
                    write_node t child_frame child_node ~lsn)
              end;
              parent_node.Node.id)
      in
      climb parent_found needed hints_rest ((parent_found, child) :: path)
    end
  in
  climb leaf needed_bp stack []

(* §4.3 percolation, run top-down along the path the expansion touched:
   ancestor predicates that became consistent with a child's wider BP are
   attached to the child, so the insert's conflict check at the leaf sees
   every scan whose range the new key entered. *)
let percolate_path t path =
  List.iter
    (fun (parent, child) ->
      let child_bp = with_node t child Latch.S (fun _f n -> n.Node.bp) in
      Pm.replicate t.preds ~src:parent ~dst:child ~keep:(fun p ->
          t.ext.Ext.consistent (Pm.formula p) child_bp))
    path

(* ------------------------------------------------------------------ *)
(* Garbage collection of logically deleted entries (§7.1)              *)
(* ------------------------------------------------------------------ *)

(* Remove committed-deleted entries from a leaf. Caller holds the X latch.
   Uses the Commit_LSN fast path of [Moh90b]: if the page's LSN predates
   the oldest active transaction, every mark on it is committed. *)
let gc_leaf t frame node =
  if not (Node.is_leaf node) then false
  else begin
    let txns = t.db.Db.txns in
    let commit_lsn = Txn_manager.commit_lsn txns in
    let fast = Lsn.( < ) (Buffer_pool.page_lsn frame) commit_lsn in
    (* Oldest-active-snapshot watermark (PROTOCOL.md §9): a version whose
       delete some registered snapshot cannot yet see must survive. Also
       capped at the published timestamp so a delete whose commit mapping
       is inserted but not yet published cannot be reclaimed out from
       under a snapshot beginning at this very instant. [max_int]-free
       when no snapshot is registered apart from the publish cap, i.e.
       the pre-MVCC rule.

       Read order matters and OCaml does not fix argument evaluation
       order, so the publish cap is bound explicitly FIRST: a snapshot
       registering after that read has snap_ts >= published and is capped
       by the min either way. Read the watermark first instead and a
       snapshot registering between the two reads could have versions
       with cts in (snap_ts, published] reclaimed under it. *)
    let published = Txn_manager.published_cts txns in
    let reclaim_ts = min (Txn_manager.oldest_snapshot_ts txns) published in
    let victims = ref [] in
    Dyn.iter
      (fun e ->
        if
          Txn_id.is_some e.Node.le_deleter
          && (fast || Txn_manager.is_committed txns e.Node.le_deleter)
          (* [committed_as_of] (not an inline table probe): its None
             branch re-checks the commit table after [is_active], closing
             the race where the deleter commits — with cts > reclaim_ts —
             and drops from the live table between two lookups, which a
             single-look fallback would misread as a historical delete
             and reclaim under a live snapshot. *)
          && Txn_manager.committed_as_of txns ~ts:reclaim_ts e.Node.le_deleter
        then victims := e.Node.le_rid :: !victims)
      (Node.leaf_entries node);
    match !victims with
    | [] -> false
    | rids ->
      hookf t "gc:%a:%d" Page_id.pp node.Node.id (List.length rids);
      List.iter (fun _ -> Atomic.incr t.counters.c_gc_entries) rids;
      Metrics.add m_gc_entries (List.length rids);
      Metrics.add m_gc_reclaimed (List.length rids);
      let lsn =
        Gist_wal.Log_manager.append t.db.Db.log ~txn:Txn_id.none ~prev:Lsn.nil
          ~ext:t.ext.Ext.name
          (Log_record.Garbage_collection { page = node.Node.id; rids })
      in
      List.iter (fun rid -> ignore (Node.remove_marked_by_rid node rid)) rids;
      Node.recompute_bp t.ext node;
      write_node t frame node ~lsn;
      true
  end

(* ------------------------------------------------------------------ *)
(* Insert (Figure 4)                                                   *)
(* ------------------------------------------------------------------ *)

(* Descend from the root along minimum-penalty branches without latch
   coupling, compensating for missed splits by evaluating the whole
   rightlink chain (§6). Returns the target leaf id, the memo under which
   it was reached, and the descent stack (immediate parent first). *)
let locate_leaf t ctx key =
  let rec best_in_chain pid memo best =
    (* Walk the chain delimited by [memo], keeping the min-penalty node. *)
    let pen, next =
      with_node t pid Latch.S (fun _frame node ->
          let pen = t.ext.Ext.penalty node.Node.bp key in
          let next =
            if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
              note_rightlink t ~from_pid:pid ~memo node;
              sig_lock t ctx node.Node.rightlink;
              Some node.Node.rightlink
            end
            else None
          in
          (pen, next))
    in
    let best = match best with Some (_, bp) when bp <= pen -> best | _ -> Some (pid, pen) in
    match next with None -> Option.get best |> fst | Some rl -> best_in_chain rl memo best
  in
  let rec step pid memo stack =
    let chosen = best_in_chain pid memo None in
    let descend =
      with_node t chosen Latch.S (fun frame node ->
          if Node.is_leaf node then None
          else begin
            let child_memo = memo_of t frame in
            let best = ref None in
            Dyn.iter
              (fun e ->
                let pen = t.ext.Ext.penalty e.Node.ie_bp key in
                match !best with
                | Some (_, bp) when bp <= pen -> ()
                | _ -> best := Some (e.Node.ie_child, pen))
              (Node.internal_entries node);
            match !best with
            | None ->
              (* An internal node cannot be empty mid-protocol. *)
              failwith "gist: internal node with no entries during descent"
            | Some (child, _) ->
              sig_lock t ctx child;
              Some (child, child_memo, (chosen, node.Node.nsn))
          end)
    in
    match descend with
    | None -> (chosen, memo, stack)
    | Some (child, child_memo, frame_info) -> step child child_memo (frame_info :: stack)
  in
  step t.root (Db.global_nsn t.db) []

(* The conflict check of insert step 6: predicates attached to the leaf,
   owned by others, consistent with the new key — restricted to those
   attached *before* [own] when the insert predicate is already in place
   (FIFO fairness, §10.3). *)
(* The conflict set of insert step 6. The target leaf's list is filtered
   with FIFO fairness (only predicates ahead of our own insert predicate
   count). Additionally, the [ancestors] the insert traversed are
   consulted: a predicate parked high on the path (a probe or scan that
   pruned before the key's region became covered) is semantically attached
   to the leaf by the §4.3 invariant, but the percolation that implements
   the invariant can race a concurrent split moving our entry to a fresh
   sibling — the direct ancestor read closes that window. Still O(path
   attachment lists), never the tree-global predicate set. *)
let conflicting_preds t ~tid ~own ~key ~ancestors pid =
  let all = Pm.attached t.preds pid in
  let before_own =
    match own with
    | None -> all
    | Some mine ->
      let rec take acc = function
        | [] -> List.rev acc
        | p :: _ when p == mine -> List.rev acc
        | p :: rest -> take (p :: acc) rest
      in
      take [] all
  in
  let matches p =
    (not (Txn_id.equal (Pm.owner p) tid)) && t.ext.Ext.consistent key (Pm.formula p)
  in
  let leaf_conflicts = List.filter matches before_own in
  let from_ancestors =
    List.concat_map
      (fun anc ->
        if Page_id.equal anc pid then []
        else List.filter matches (Pm.attached t.preds anc))
      ancestors
  in
  (* Dedup by physical identity. *)
  let conflicts =
    List.fold_left
      (fun acc p -> if List.memq p acc then acc else p :: acc)
      leaf_conflicts from_ancestors
  in
  Metrics.incr m_pred_checks;
  Metrics.add m_pred_conflicts (List.length conflicts);
  if Trace.enabled () then
    Trace.emit
      (Trace.Pred_check { page = Page_id.to_int pid; conflicts = List.length conflicts });
  conflicts

(* Find the leaf currently holding the live entry [rid], starting from the
   page where it was placed: splits may have moved it right (follow
   rightlinks) and a root grow may have moved it down (descend). *)
let locate_entry_leaf t start rid =
  let rec chase pid =
    if not (Page_id.is_valid pid) then None
    else
      match
        with_node t pid Latch.S (fun _f node ->
            if Node.is_leaf node then
              if Node.find_live_by_rid node rid <> None then `Here
              else `Chase node.Node.rightlink
            else
              `Down
                (Dyn.fold (fun l e -> e.Node.ie_child :: l) [] (Node.internal_entries node)
                |> List.rev))
      with
      | `Here -> Some pid
      | `Chase rl -> chase rl
      | `Down kids ->
        let rec first = function
          | [] -> None
          | k :: rest -> ( match chase k with Some p -> Some p | None -> first rest)
        in
        first kids
  in
  chase start

let insert_entry t txn ~key ~rid =
  let tid = Txn_manager.id txn in
  let txns = t.db.Db.txns in
  let locks = t.db.Db.locks in
  let entry_extra = Node.leaf_entry_size t.ext key + 8 in
  (* A key that cannot fit on an empty page can never be placed: splitting
     would loop forever. Refuse it up front. *)
  if entry_extra + 64 > t.db.Db.config.Db.page_size then
    invalid_arg
      (Printf.sprintf "Gist.insert: encoded key (%d bytes) exceeds the page budget (%d)"
         entry_extra t.db.Db.config.Db.page_size);
  with_ctx txn
    ~keep_on_success:(fun target ->
      (* §7.2: the signaling lock on the insert's target leaf is retained
         until end of transaction so logical undo can rely on the chain. *)
      [ target ])
    t
    (fun ctx ->
      Atomic.incr t.counters.c_inserts;
      Metrics.incr m_inserts;
      (* Phase 1: the data record is X-locked before the tree is touched. *)
      Lock_manager.lock locks tid (Lock_manager.Record rid) Lock_manager.X;
      let leaf0, memo0, stack0 = locate_leaf t ctx key in
      (* Settle on a leaf that has room and whose BP covers the key; every
         structural fix releases all latches and re-examines. *)
      let own_pred = ref None in
      let rec settle pid memo stack =
        (* Re-evaluate the chain in case the leaf split while unlatched. *)
        let target = ref pid in
        let rec pick p =
          let next =
            with_node t p Latch.S (fun _f node ->
                if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
                  note_rightlink t ~from_pid:p ~memo node;
                  sig_lock t ctx node.Node.rightlink;
                  Some (node.Node.rightlink, t.ext.Ext.penalty node.Node.bp key)
                end
                else None)
          in
          match next with
          | None -> ()
          | Some (rl, _) ->
            (* Choose by penalty between current target and the sibling. *)
            let pen_t =
              with_node t !target Latch.S (fun _f n -> t.ext.Ext.penalty n.Node.bp key)
            in
            let pen_r = with_node t rl Latch.S (fun _f n -> t.ext.Ext.penalty n.Node.bp key) in
            if pen_r < pen_t then target := rl;
            pick rl
        in
        pick pid;
        let pid = !target in
        let action =
          Buffer_pool.with_page t.db.Db.pool pid Latch.X (fun frame ->
              let node = Node.get t.ext frame in
              if not (Node.is_leaf node) then
                (* The root grew underneath us (fixed-root split): the page
                   we targeted is now internal — descend again. *)
                `Redescend
              else if
                (if t.db.Db.config.Db.gc_on_write then ignore (gc_leaf t frame node);
                 not (node_fits t node ~extra:entry_extra))
              then `Split
              else begin
                begin
                  (* Add the (key, RID) pair; BP propagation and the
                     predicate conflict check follow once the entry is
                     physically present (see propagate_bp). *)
                  hookf t "insert:add:%a" Page_id.pp pid;
                  let entry =
                    {
                      Node.le_key = key;
                      le_rid = rid;
                      le_creator = Txn_manager.id txn;
                      le_deleter = Txn_id.none;
                    }
                  in
                  let lsn =
                    Txn_manager.log_update txns txn ~ext:t.ext.Ext.name
                      (Log_record.Add_leaf_entry
                         {
                           page = pid;
                           nsn = node.Node.nsn;
                           entry = Node.encode_leaf_entry t.ext entry;
                           rid;
                         })
                  in
                  Node.add_leaf_entry node entry;
                  node.Node.bp <- t.ext.Ext.union [ node.Node.bp; key ];
                  write_node t frame node ~lsn;
                  `Done
                end
              end)
        in
        match action with
        | `Redescend ->
          let leaf, memo, stack = locate_leaf t ctx key in
          settle leaf memo stack
        | `Split ->
          hook t "insert:split";
          ensure_space t txn ~stack pid;
          settle pid memo stack
        | `Done -> (pid, stack)
      in
      let target, final_stack = settle leaf0 memo0 stack0 in
      (* Steps 3-4 of Figure 4, reordered: with the entry physically on the
         leaf, expand ancestor BPs bottom-up (immune to concurrent split
         recomputation) and then percolate predicate attachments top-down
         along the updated path. *)
      let path = propagate_bp t txn ~stack:final_stack ~leaf:target key in
      percolate_path t path;
      (* Every node the insert's BP climb touched, plus the root (the
         universal prune point for predicates over uncovered regions). *)
      let ancestors =
        t.root :: List.concat_map (fun (p, c) -> [ p; c ]) path
        @ List.map fst final_stack
      in
      (* Block on conflicting predicate owners (no latches held); FIFO
         recheck until no conflicts remain ahead of our insert predicate. *)
      let rec wait_for owners =
        match owners with
        | [] -> ()
        | _ :: _ ->
          hook t "insert:block";
          Atomic.incr t.counters.c_pred_blocks;
          Metrics.incr m_pred_blocks;
          List.iter
            (fun owner ->
              Lock_manager.lock locks tid (Lock_manager.Txn owner) Lock_manager.S;
              Lock_manager.unlock locks tid (Lock_manager.Txn owner))
            owners;
          let here = Option.value ~default:target (locate_entry_leaf t target rid) in
          wait_for
            (List.map Pm.owner
               (conflicting_preds t ~tid ~own:!own_pred ~key
                  ~ancestors:(if Page_id.equal here target then [] else ancestors)
                  here))
      in
      (* Step 6: check predicates attached to the leaf holding the entry.
         In the common case (the entry still sits where we put it, after
         our own percolation pass) the leaf list alone is sound. If a
         concurrent split moved the entry to a fresh sibling, predicates
         percolated to the old leaf after that split never reached the
         sibling — consult the walked ancestors too (see
         conflicting_preds). *)
      let initial_conflicts =
        let here = Option.value ~default:target (locate_entry_leaf t target rid) in
        let conflicts =
          conflicting_preds t ~tid ~own:!own_pred ~key
            ~ancestors:(if Page_id.equal here target then [] else ancestors)
            here
        in
        hookf t "insert:conflicts:%d@%a" (List.length conflicts) Page_id.pp here;
        if conflicts <> [] && !own_pred = None then begin
          let mine = Pm.register t.preds ~owner:tid ~kind:Pm.Insert key in
          Pm.attach t.preds mine here;
          own_pred := Some mine
        end;
        List.map Pm.owner conflicts
      in
      wait_for initial_conflicts;
      hook t "insert:done";
      target)

(* ------------------------------------------------------------------ *)
(* Unique insert (§8)                                                  *)
(* ------------------------------------------------------------------ *)

(* Probe search: look for an exact duplicate of [key], leaving "= key"
   predicates on every visited node so two racing inserters of the same
   value deadlock instead of both succeeding. Returns the duplicate's RID
   (S-locked, for error repeatability) or the probe predicate to discard
   after the insert completes. *)
let unique_probe t txn key =
  let tid = Txn_manager.id txn in
  let locks = t.db.Db.locks in
  with_ctx txn ~keep_on_success:(fun _ -> []) t (fun ctx ->
      let probe = Pm.register t.preds ~owner:tid ~kind:Pm.Probe key in
      let dup = ref None in
      let stack = ref [ (t.root, Db.global_nsn t.db) ] in
      sig_lock t ctx t.root;
      let blocked = ref None in
      while !stack <> [] && !dup = None do
        let pid, memo = List.hd !stack in
        stack := List.tl !stack;
        hookf t "probe:visit:%a:memo=%a" Page_id.pp pid Lsn.pp memo;
        with_node t pid Latch.S (fun frame node ->
            if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
              note_rightlink t ~from_pid:pid ~memo node;
              sig_lock t ctx node.Node.rightlink;
              stack := (node.Node.rightlink, memo) :: !stack
            end;
            Pm.attach t.preds probe pid;
            if Node.is_leaf node then begin
              try
                Dyn.iter
                  (fun e ->
                    if t.ext.Ext.matches_exact key e.Node.le_key then
                      if
                        Lock_manager.try_lock locks tid
                          (Lock_manager.Record e.Node.le_rid)
                          Lock_manager.S
                      then begin
                        if Txn_id.is_some e.Node.le_deleter then begin
                          if not (Txn_id.equal e.Node.le_deleter tid) then
                            Lock_manager.unlock locks tid (Lock_manager.Record e.Node.le_rid)
                          (* committed delete: not a duplicate *)
                        end
                        else begin
                          dup := Some e.Node.le_rid;
                          raise Exit
                        end
                      end
                      else begin
                        blocked := Some e.Node.le_rid;
                        raise Exit
                      end)
                  (Node.leaf_entries node)
              with Exit -> ()
            end
            else begin
              let child_memo = memo_of t frame in
              Dyn.iter
                (fun e ->
                  if t.ext.Ext.consistent key e.Node.ie_bp then begin
                    sig_lock t ctx e.Node.ie_child;
                    stack := (e.Node.ie_child, child_memo) :: !stack
                  end)
                (Node.internal_entries node)
            end);
        match !blocked with
        | Some rid ->
          blocked := None;
          Lock_manager.lock locks tid (Lock_manager.Record rid) Lock_manager.S;
          (* Re-examine: the blocking inserter committed (duplicate) or
             aborted (gone). *)
          stack := (pid, memo) :: !stack
        | None -> ()
      done;
      match !dup with
      | Some rid ->
        (* §8: the S lock on the duplicate's record alone makes the error
           repeatable; the probe predicates can go. *)
        hookf t "probe:dup:%a" Rid.pp rid;
        Pm.remove_pred t.preds probe;
        `Duplicate rid
      | None ->
        hook t "probe:clear";
        `Clear probe)

let insert t txn ~key ~rid =
  if not t.unique then ignore (insert_entry t txn ~key ~rid)
  else
    match unique_probe t txn key with
    | `Duplicate _ -> raise Duplicate_key
    | `Clear probe ->
      ignore (insert_entry t txn ~key ~rid);
      (* "Once the insert operation is finished, the predicates left behind
         from the search phase can be released." *)
      Pm.remove_pred t.preds probe

(* ------------------------------------------------------------------ *)
(* Delete (§7): logical deletion                                       *)
(* ------------------------------------------------------------------ *)

let delete t txn ~key ~rid =
  let tid = Txn_manager.id txn in
  let locks = t.db.Db.locks in
  let txns = t.db.Db.txns in
  Atomic.incr t.counters.c_deletes;
  Metrics.incr m_deletes;
  with_ctx txn ~keep_on_success:(fun _ -> []) t (fun ctx ->
      (* Two-phase lock the data record first; this is what makes scans
         that returned it block us (and vice versa). *)
      Lock_manager.lock locks tid (Lock_manager.Record rid) Lock_manager.X;
      let found = ref false in
      let stack = ref [ (t.root, Db.global_nsn t.db) ] in
      sig_lock t ctx t.root;
      while !stack <> [] && not !found do
        let pid, memo = List.hd !stack in
        stack := List.tl !stack;
        with_node t pid Latch.X (fun frame node ->
            if Lsn.( < ) memo node.Node.nsn && Page_id.is_valid node.Node.rightlink then begin
              note_rightlink t ~from_pid:pid ~memo node;
              sig_lock t ctx node.Node.rightlink;
              stack := (node.Node.rightlink, memo) :: !stack
            end;
            if Node.is_leaf node then begin
              match Node.find_live_by_rid node rid with
              | Some e when t.ext.Ext.matches_exact key e.Node.le_key ->
                hookf t "delete:mark:%a" Rid.pp rid;
                let lsn =
                  Txn_manager.log_update txns txn ~ext:t.ext.Ext.name
                    (Log_record.Mark_leaf_entry { page = pid; nsn = node.Node.nsn; rid })
                in
                e.Node.le_deleter <- tid;
                write_node t frame node ~lsn;
                found := true
              | Some _ | None -> ()
            end
            else begin
              let child_memo = memo_of t frame in
              Dyn.iter
                (fun e ->
                  if t.ext.Ext.consistent key e.Node.ie_bp then begin
                    sig_lock t ctx e.Node.ie_child;
                    stack := (e.Node.ie_child, child_memo) :: !stack
                  end)
                (Node.internal_entries node)
            end)
      done;
      !found)

(* ------------------------------------------------------------------ *)
(* Vacuum: GC sweep + node deletion via the drain technique (§7.2)     *)
(* ------------------------------------------------------------------ *)

(* Find the node whose rightlink points at [victim] (lock-free scan; S
   latches one node at a time). None means nothing pointed at it when
   scanned — and nothing can start to, since a rightlink to [victim] could
   only be inherited from an existing one at split time. *)
let find_left_sibling t victim =
  let found = ref None in
  let rec dfs pid =
    if !found = None then
      match
        with_node t pid Latch.S (fun _f node ->
            if Page_id.equal node.Node.rightlink victim then `Found
            else if Node.is_leaf node then `Stop
            else
              `Kids (Dyn.fold (fun l e -> e.Node.ie_child :: l) [] (Node.internal_entries node)))
      with
      | exception Codec.Corrupt _ -> ()
      | `Found -> found := Some pid
      | `Stop -> ()
      | `Kids kids -> List.iter dfs kids
  in
  dfs t.root;
  !found

(* Delete an empty, non-root leaf if no operation holds a direct or
   indirect pointer to it (the drain technique, §7.2). Latch order parent →
   victim → left sibling; the signaling-lock check is a conditional
   [try_lock], so deletion never blocks traversals — it simply skips nodes
   that are still referenced. The left sibling's rightlink is stitched past
   the victim inside the same NTA, so no dangling rightlink survives. *)
let try_delete_node t txn ~parent ~victim =
  let txns = t.db.Db.txns in
  let locks = t.db.Db.locks in
  let tid = Txn_manager.id txn in
  let left = find_left_sibling t victim in
  (* Pin the victim and its left sibling resident before any latch is
     taken, so their re-pins under the parent latch never fault. *)
  let with_left f = match left with None -> f () | Some l -> with_resident t l f in
  with_resident t victim @@ fun () ->
  with_left @@ fun () ->
  with_parent_holding t parent victim (fun parent_frame parent_node ->
      if Dyn.length (Node.internal_entries parent_node) <= 1 then
        (* Never retire a parent's last child: internal nodes must stay
           non-empty for descent. *)
        false
      else if
        not (Lock_manager.try_lock locks tid (Lock_manager.Node victim) Lock_manager.X)
      then false
      else begin
        let deleted =
          Buffer_pool.with_page t.db.Db.pool victim Latch.X (fun victim_frame ->
              let node = Node.get t.ext victim_frame in
              if (not (Node.is_leaf node)) || Node.entry_count node > 0 then false
              else begin
                hookf t "node-delete:%a" Page_id.pp victim;
                Atomic.incr t.counters.c_node_deletes;
                Metrics.incr m_node_deletes;
                let nta = Txn_manager.begin_nta txns txn in
                let stitched =
                  match left with
                  | None -> true
                  | Some l ->
                    Buffer_pool.with_page t.db.Db.pool l Latch.X (fun left_frame ->
                        match Node.get t.ext left_frame with
                        | exception Codec.Corrupt _ -> true (* left was retired itself *)
                        | left_node ->
                          if not (Page_id.equal left_node.Node.rightlink victim) then
                            (* The left sibling split meanwhile and the
                               pointer moved; skip this round. *)
                            false
                          else begin
                            let lsn =
                              Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                                (Log_record.Set_rightlink
                                   {
                                     page = l;
                                     new_rl = node.Node.rightlink;
                                     old_rl = victim;
                                   })
                            in
                            left_node.Node.rightlink <- node.Node.rightlink;
                            write_node t left_frame left_node ~lsn;
                            true
                          end)
                in
                if not stitched then begin
                  Txn_manager.end_nta txns txn nta;
                  false
                end
                else begin
                  (match Node.find_child parent_node victim with
                  | Some ie ->
                    let del_lsn =
                      Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
                        (Log_record.Internal_entry_delete
                           {
                             page = parent_node.Node.id;
                             entry = Node.encode_internal_entry t.ext ie;
                           })
                    in
                    ignore (Node.remove_child parent_node victim);
                    write_node t parent_frame parent_node ~lsn:del_lsn
                  | None -> assert false);
                  let free_lsn =
                    Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Free_page { page = victim })
                  in
                  if t.db.Db.config.Db.mvcc && Txn_manager.active_snapshots txns > 0 then
                    (* A lock-free snapshot reader holds no signaling lock,
                       so the conditional-X drain above proves nothing about
                       it — one may still hold a pointer at the victim.
                       Park the empty image (rightlink intact) instead of
                       scrubbing; [Db.reap_free] finishes the job once every
                       snapshot registered before this instant has ended.
                       Snapshots beginning later cannot reach the victim:
                       its parent entry and the left rightlink are already
                       stitched past it. *)
                    Db.defer_free t.db victim ~lsn:free_lsn
                  else begin
                    (* Unformat the page: it is unreachable by construction.
                       The zero-fill bypasses node encoding, so drop the
                       cached decode explicitly. *)
                    Bytes.fill (Buffer_pool.data victim_frame) 0
                      (Bytes.length (Buffer_pool.data victim_frame))
                      '\000';
                    Buffer_pool.invalidate_cache victim_frame;
                    Buffer_pool.mark_dirty t.db.Db.pool victim_frame ~lsn:free_lsn;
                    Db.release_page t.db victim
                  end;
                  Txn_manager.end_nta txns txn nta;
                  true
                end
              end)
        in
        Lock_manager.unlock locks tid (Lock_manager.Node victim);
        deleted
      end)

let vacuum t =
  (* First reclaim pages whose deferred frees have cleared their snapshot
     barriers — vacuum is the natural reap point besides [Db.end_ro]. *)
  ignore (Db.reap_free t.db);
  let txn = Txn_manager.begin_txn t.db.Db.txns in
  (* Single-pass DFS over parent structure; collects (parent, leaf) pairs
     first, then GCs and retires empties. *)
  let pairs = ref [] in
  let rec walk pid =
    let children =
      with_node t pid Latch.S (fun _f node ->
          if Node.is_leaf node then []
          else
            Dyn.fold (fun acc e -> e.Node.ie_child :: acc) [] (Node.internal_entries node)
            |> List.map (fun c -> (pid, c)))
    in
    List.iter
      (fun (parent, child) ->
        let is_leaf = with_node t child Latch.S (fun _f n -> Node.is_leaf n) in
        if is_leaf then pairs := (parent, child) :: !pairs else walk child)
      children
  in
  (* A leaf root is garbage-collected in place and never deleted. *)
  let root_is_leaf =
    Buffer_pool.with_page t.db.Db.pool t.root Latch.X (fun frame ->
        let node = Node.get t.ext frame in
        if Node.is_leaf node then begin
          ignore (gc_leaf t frame node);
          true
        end
        else false)
  in
  if not root_is_leaf then walk t.root;
  List.iter
    (fun (parent, leaf) ->
      let empty =
        Buffer_pool.with_page t.db.Db.pool leaf Latch.X (fun frame ->
            match Node.get t.ext frame with
            | node ->
              ignore (gc_leaf t frame node);
              Node.entry_count node = 0
            | exception Codec.Corrupt _ -> false (* already retired *))
      in
      if empty then ignore (try_delete_node t txn ~parent ~victim:leaf))
    !pairs;
  Txn_manager.commit t.db.Db.txns txn

(* ------------------------------------------------------------------ *)
(* Bulk loading: bottom-up packing with minimal logging                *)
(* ------------------------------------------------------------------ *)

let bulk_load db ext_ ?(unique = false) ?(fill = 0.85) ~empty_bp entries =
  if fill <= 0.0 || fill > 1.0 then invalid_arg "Gist.bulk_load: fill must be in (0,1]";
  let txns = db.Db.txns in
  let t = make_handle db ext_ unique Page_id.invalid in
  install_recovery t;
  let txn = Txn_manager.begin_txn txns in
  let nta = Txn_manager.begin_nta txns txn in
  (* The fixed root page is allocated first so its id is stable. *)
  let root = Db.allocate_page db in
  ignore (Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Get_page { page = root }));
  let t = { t with root } in
  install_recovery t;
  let page_budget =
    int_of_float (Float.of_int (db.Db.config.Db.page_size - 8) *. fill)
  in
  let entry_budget = max 2 (int_of_float (Float.of_int db.Db.config.Db.max_entries *. fill)) in
  (* Write [node]'s image to a fresh page (or the root). *)
  let write_page node =
    let lsn = Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Get_page { page = node.Node.id }) in
    let frame = Buffer_pool.pin_new db.Db.pool node.Node.id in
    Latch.acquire (Buffer_pool.latch frame) Latch.X;
    Node.write ext_ node frame;
    Buffer_pool.mark_dirty db.Db.pool frame ~lsn;
    Node.cache node frame;
    Latch.release (Buffer_pool.latch frame) Latch.X;
    Buffer_pool.unpin db.Db.pool frame
  in
  (* Pack one level: fold items into nodes of ~[fill] occupancy; returns
     the (bp, child) pairs of the level above. *)
  let pack_level ~level ~add ~count items =
    let parents = ref [] in
    let current = ref None in
    let flush_current () =
      match !current with
      | None -> ()
      | Some node ->
        Node.recompute_bp ext_ node;
        write_page node;
        parents := (node.Node.bp, node.Node.id) :: !parents;
        current := None
    in
    List.iter
      (fun item ->
        let node =
          match !current with
          | Some node
            when count node < entry_budget && Node.body_size ext_ node < page_budget ->
            node
          | _ ->
            flush_current ();
            let id = Db.allocate_page db in
            let node =
              if level = 0 then Node.make_leaf ~id ~bp:empty_bp
              else Node.make_internal ~id ~level ~bp:empty_bp
            in
            current := Some node;
            node
        in
        add node item)
      items;
    flush_current ();
    List.rev !parents
  in
  (* Leaves first. *)
  let leaf_parents =
    pack_level ~level:0
      ~add:(fun node (key, rid) ->
        Node.add_leaf_entry node
          { Node.le_key = key; le_rid = rid; le_creator = Txn_id.none; le_deleter = Txn_id.none })
      ~count:(fun n -> Dyn.length (Node.leaf_entries n))
      (Array.to_list entries)
  in
  (* Then internal levels upward until one node's worth remains, which is
     written into the fixed root page. *)
  let fits_in_root ~level items =
    List.length items <= entry_budget
    &&
    let probe = Node.make_internal ~id:root ~level ~bp:empty_bp in
    List.iter
      (fun (bp, child) -> Node.add_internal_entry probe { Node.ie_bp = bp; ie_child = child })
      items;
    Node.body_size ext_ probe < page_budget
  in
  let rec to_root ~level items =
    if fits_in_root ~level:(level + 1) items then begin
      let node = Node.make_internal ~id:root ~level:(level + 1) ~bp:empty_bp in
      List.iter
        (fun (bp, child) -> Node.add_internal_entry node { Node.ie_bp = bp; ie_child = child })
        items;
      Node.recompute_bp ext_ node;
      node
    end
    else
      to_root ~level:(level + 1)
        (pack_level ~level:(level + 1)
           ~add:(fun node (bp, child) ->
             Node.add_internal_entry node { Node.ie_bp = bp; ie_child = child })
           ~count:(fun n -> Dyn.length (Node.internal_entries n))
           items)
  in
  let root_node =
    match leaf_parents with
    | [] -> Node.make_leaf ~id:root ~bp:empty_bp
    | [ (_, only) ] ->
      (* Everything fit one leaf: its content becomes the root itself;
         reclaim the now-unused page. *)
      ignore (Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name (Log_record.Free_page { page = only }));
      Db.release_page db only;
      let node = Node.make_leaf ~id:root ~bp:empty_bp in
      Array.iter
        (fun (key, rid) ->
          Node.add_leaf_entry node
            { Node.le_key = key; le_rid = rid; le_creator = Txn_id.none; le_deleter = Txn_id.none })
        entries;
      Node.recompute_bp ext_ node;
      node
    | parents -> to_root ~level:0 parents
  in
  let fmt_lsn =
    Txn_manager.log_nta txns txn ~ext:t.ext.Ext.name
      (Log_record.Format_node
         {
           page = root;
           level = root_node.Node.level;
           bp = Ext.encode_to_string ext_ root_node.Node.bp;
         })
  in
  let frame = Buffer_pool.pin_new db.Db.pool root in
  Latch.acquire (Buffer_pool.latch frame) Latch.X;
  Node.write ext_ root_node frame;
  Buffer_pool.mark_dirty db.Db.pool frame ~lsn:fmt_lsn;
  Node.cache root_node frame;
  Latch.release (Buffer_pool.latch frame) Latch.X;
  Buffer_pool.unpin db.Db.pool frame;
  (* Minimal logging: make every page durable before the NTA commits. *)
  Buffer_pool.flush_all db.Db.pool;
  Txn_manager.end_nta txns txn nta;
  Txn_manager.commit txns txn;
  Db.checkpoint db;
  t

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

let height t = with_node t t.root Latch.S (fun _f node -> node.Node.level + 1)

let rec fold_leaves t pid acc f =
  let step =
    with_node t pid Latch.S (fun _frame node ->
        if Node.is_leaf node then `Leaf (f acc node)
        else
          `Children (Dyn.fold (fun l e -> e.Node.ie_child :: l) [] (Node.internal_entries node)))
  in
  match step with
  | `Leaf acc -> acc
  | `Children kids -> List.fold_left (fun acc kid -> fold_leaves t kid acc f) acc kids

let leaf_count t = fold_leaves t t.root 0 (fun n _ -> n + 1)

let entry_count t = fold_leaves t t.root 0 (fun n node -> n + Node.entry_count node)
