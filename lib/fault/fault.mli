(** Deterministic fault injection.

    A {!plan} is a small set of {!point}s — "on the [at]-th event of
    {!site}, perform {!action}" — armed onto a database's disk and log via
    the no-op-by-default hook points ({!Gist_storage.Disk.set_hooks},
    {!Gist_wal.Log_manager.set_append_hook}). When no plan is armed the
    hooks cost one [None] branch per I/O; when armed, event counting is
    exact and single-domain-deterministic, so a crash point found by the
    fuzzer replays bit-identically from the same seed.

    Crash model: a firing crash point raises {!Crash} out of the hook,
    {e before} any survivor state (the disk store, the log's record
    sequence) is touched — the power is gone, the operation never
    happened. Volatile state (buffer-pool frames stuck loading, held
    latches, transaction tables) may be left wedged; that is the point —
    [materialize_crash] discards all of it via [Db.crash], exactly as a
    real power loss would. The two exceptions that persist {e corrupted}
    state are {!Crash_torn} (the in-flight page write lands mangled, then
    power dies) and {!Crash_ragged} (the in-flight log append leaves a
    partial record past the durable watermark). *)

exception Crash
(** Simulated power loss, raised from a hook. Catch it at the driver's top
    level and call {!materialize_crash}. *)

exception Io_error
(** Simulated transient device error ({!Io_error_once}); the operation
    failed but the system lives on. *)

type site = Disk_read | Disk_write | Wal_append | Wal_flush
(** Hook points events are counted at (each counted from 1 per arming).
    [Wal_flush] counts durability {e requests} — [Log_manager.force] entry
    and [Group_commit.submit] — in the requesting domain (never the
    log-writer domain), so one count per commit regardless of how many
    requests each physical flush window absorbs: schedules stay
    seed-deterministic across commit modes. A crash there is power dying
    between a commit record's append and its durability. *)

val site_name : site -> string
(** ["disk.read"], ["disk.write"], ["wal.append"], ["wal.flush"] — the
    labels used by the [Fault_inject] trace event. *)

type action =
  | Crash_now  (** Power loss before the operation touches anything. *)
  | Crash_torn of int
      (** Disk-write only: persist the first [n] bytes of the new image
          over the old content, then power loss ([after_write]). The
          disk's checksum flags the page; restart's media check repairs
          it from a logged full-page image. *)
  | Crash_ragged of int
      (** WAL-append only: power loss, with the interrupted record
          leaving an [n]-byte garbage prefix past the durable watermark
          (materialized via [Log_manager.crash_ragged]). *)
  | Io_error_once  (** Raise {!Io_error} once; the point is consumed. *)
  | Delay_ns of int  (** A latency spike: block the caller, then proceed. *)

type point = { site : site; at : int; act : action }

type plan = point list

val crash_after : site -> int -> plan
(** Power loss at the [n]-th event of [site]. *)

val torn_write_at : int -> keep:int -> plan
(** Torn write at the [n]-th disk write, persisting [keep] bytes. *)

val ragged_append_at : int -> keep:int -> plan
(** Ragged log tail at the [n]-th append, keeping [keep] garbage bytes. *)

type t
(** An armed controller: the plan plus per-site event counters. *)

val arm : disk:Gist_storage.Disk.t -> log:Gist_wal.Log_manager.t -> plan -> t
(** Install the hooks. An empty plan counts events without ever firing —
    the fuzzer's profiling pass. *)

val disarm : t -> unit
(** Remove the hooks (idempotent; also done by {!materialize_crash}). *)

val events_seen : t -> site -> int
(** Events counted at [site] since arming (profiling pass output). *)

val fired : t -> (string * int) list
(** The points that fired, in firing order, as [(site_name, seq)]. *)

val materialize_crash : t -> Gist_core.Db.t -> Gist_core.Db.t
(** Turn a raised {!Crash} into the post-power-loss world: disarm the
    hooks, leave the ragged tail in the log if a {!Crash_ragged} point
    fired, and run [Db.crash] (drop all volatile state, truncate the log
    to its durable prefix). Run recovery on the returned environment. *)
