open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module Rid = Gist_storage.Rid
module Disk = Gist_storage.Disk
module Buffer_pool = Gist_storage.Buffer_pool
module Log_manager = Gist_wal.Log_manager
module Group_commit = Gist_wal.Group_commit
module Txn = Gist_txn.Txn_manager
module Xoshiro = Gist_util.Xoshiro
module Metrics = Gist_obs.Metrics
module ISet = Set.Make (Int)

type mode = Clean | Torn | Ragged | Double

let mode_name = function
  | Clean -> "clean"
  | Torn -> "torn"
  | Ragged -> "ragged"
  | Double -> "double"

type summary = {
  mode : mode;
  points : int;
  crashes : int;
  events : int;
  violations : string list;
}

(* Torn-write modes need full-page writes: without a logged image there is
   no repair source for a page the tear destroyed. Clean and ragged modes
   run without, covering the plain-WAL path. *)
let config ?(commit_mode = Group_commit.Sync) ?(bg_writer = false) mode =
  {
    Db.default_config with
    Db.max_entries = 8;
    pool_capacity = 32;
    page_size = 1024;
    full_page_writes = (match mode with Torn | Double -> true | Clean | Ragged -> false);
    (* Fuzz what ships: searches in the workload (and the post-restart
       scans the checker runs) traverse internal nodes latch-free. *)
    olc = true;
    commit_mode;
    (* No adaptive stall: the fuzz workload is single-domain, so a window
       can never batch anyway — waiting would only slow the sweep. *)
    group_wait_us = 0;
    (* With the background writer: aggressive fuzzy checkpoints (so crash
       points land between/inside them) and scan prefetch, putting the
       flusher domain's own I/O inside the fault-injection stream. *)
    bg_writer;
    checkpoint_interval_us = (if bg_writer then 200 else 0);
    prefetch_depth = (if bg_writer then 2 else 0);
  }

let rid i = Rid.make ~page:1000 ~slot:i

let rect_of i =
  let x = Float.of_int (i mod 37) *. 2.0 and y = Float.of_int (i / 37 mod 37) *. 2.0 in
  R.rect x y (x +. 1.5) (y +. 1.5)

(* ------------------------------------------------------------------ *)
(* Shadow model                                                        *)
(* ------------------------------------------------------------------ *)

type wtree = T_btree | T_rtree

type wop = Add of int | Del of int

type shadow = {
  mutable cb : ISet.t;  (* committed btree keys *)
  mutable cr : ISet.t;  (* committed rtree ids *)
  mutable history : (wtree * wop) list list;
      (* committed op batches in commit order — the async-mode oracle
         accepts the state after any prefix of this history, because
         pipelined durability only ever loses a suffix of commit order
         (durability is one watermark; commit LSNs are monotone) *)
  mutable in_doubt : (wtree * wop) list option;
      (* a commit was in flight at the crash: the recovered state must
         reflect either none or all of these ops, jointly on both trees *)
}

let apply_ops (b, r) ops =
  List.fold_left
    (fun (b, r) op ->
      match op with
      | T_btree, Add k -> (ISet.add k b, r)
      | T_btree, Del k -> (ISet.remove k b, r)
      | T_rtree, Add k -> (b, ISet.add k r)
      | T_rtree, Del k -> (b, ISet.remove k r))
    (b, r) ops

let pp_set s = ISet.elements s |> List.map string_of_int |> String.concat ","

let rids_of hits = List.map (fun (_, r) -> r.Rid.slot) hits |> ISet.of_list

let all_b = B.range 0 max_int

let all_r = R.rect (-1e9) (-1e9) 1e9 1e9

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

(* A seeded, single-domain workload over a B-tree and an R-tree sharing
   one database: six transactions of mixed inserts/deletes/searches (one
   in five aborts), environment operations (flushes, checkpoints, vacuum,
   log truncation) between them, and a trailing loser left in flight.
   Deterministic given the seed and config, so the profiling pass and
   every crash-point replay see the identical event stream (a racing
   snapshot reader, when enabled, adds nondeterministic events on top —
   the oracle is interleaving-agnostic, so this only moves where in the
   stream the planned fault lands).

   After every commit the workload opens a snapshot and scans both trees
   through the MVCC read path: with a single writer domain the result must
   equal the committed sets exactly ([snap_bad] receives any mismatch).
   [pub], when given, atomically publishes [(history, in_doubt)] for a
   racing reader's prefix oracle — set to [(h, Some ops)] before the
   commit call and [(h ++ ops, None)] after, so a batch is visible in the
   publication no later than its commit timestamp is published. *)
let run_workload ?(snap_bad = fun (_ : string) -> ()) ?pub db bt rt rng shadow =
  let next = ref 0 in
  let fresh_id () =
    incr next;
    !next
  in
  for txn_no = 1 to 6 do
    (* One unconditional flush so every seed has disk-write events for
       torn-write points to land on. *)
    if txn_no = 4 then Buffer_pool.flush_all db.Db.pool;
    (match Xoshiro.int rng 6 with
    | 0 -> Buffer_pool.flush_all db.Db.pool
    | 1 -> Db.checkpoint db
    | 2 -> Gist.vacuum bt
    | 3 -> Gist.vacuum rt
    | 4 -> ignore (Db.truncate_log db : int)
    | _ -> ());
    let txn = Txn.begin_txn db.Db.txns in
    let pending = ref [] in
    (* Committed keys still live from this transaction's point of view. *)
    let live tree committed =
      List.fold_left
        (fun acc op ->
          match op with tr, Del k when tr = tree -> ISet.remove k acc | _ -> acc)
        committed !pending
    in
    let pick_from rng s =
      let arr = Array.of_list (ISet.elements s) in
      arr.(Xoshiro.int rng (Array.length arr))
    in
    let n_ops = 10 + Xoshiro.int rng 8 in
    for _ = 1 to n_ops do
      match Xoshiro.int rng 8 with
      | 0 | 1 | 2 ->
        let k = fresh_id () in
        Gist.insert bt txn ~key:(B.key k) ~rid:(rid k);
        pending := (T_btree, Add k) :: !pending
      | 3 | 4 ->
        let i = fresh_id () in
        Gist.insert rt txn ~key:(rect_of i) ~rid:(rid i);
        pending := (T_rtree, Add i) :: !pending
      | 5 ->
        let s = live T_btree shadow.cb in
        if not (ISet.is_empty s) then begin
          let k = pick_from rng s in
          ignore (Gist.delete bt txn ~key:(B.key k) ~rid:(rid k) : bool);
          pending := (T_btree, Del k) :: !pending
        end
      | 6 ->
        let s = live T_rtree shadow.cr in
        if not (ISet.is_empty s) then begin
          let i = pick_from rng s in
          ignore (Gist.delete rt txn ~key:(rect_of i) ~rid:(rid i) : bool);
          pending := (T_rtree, Del i) :: !pending
        end
      | _ ->
        ignore
          (Gist.search ~isolation:`Read_committed bt txn (B.range 0 (!next + 1))
            : (B.t * Rid.t) list)
    done;
    if Xoshiro.int rng 5 = 0 then Txn.abort db.Db.txns txn
    else begin
      let ops = List.rev !pending in
      (* From here until commit returns, the transaction is in doubt: a
         crash may land before or after the durability point, and either
         outcome — all of [ops] or none — is legal, jointly across both
         trees. *)
      shadow.in_doubt <- Some ops;
      (match pub with Some p -> Atomic.set p (shadow.history, Some ops) | None -> ());
      Txn.commit db.Db.txns txn;
      let b, r = apply_ops (shadow.cb, shadow.cr) ops in
      shadow.cb <- b;
      shadow.cr <- r;
      shadow.history <- shadow.history @ [ ops ];
      shadow.in_doubt <- None;
      (match pub with Some p -> Atomic.set p (shadow.history, None) | None -> ());
      let ro = Db.begin_ro db in
      let sb = rids_of (Gist.snapshot_search bt ro all_b)
      and sr = rids_of (Gist.snapshot_search rt ro all_r) in
      Db.end_ro db ro;
      if not (ISet.equal sb shadow.cb && ISet.equal sr shadow.cr) then
        snap_bad
          (Printf.sprintf
             "post-commit snapshot: btree got {%s} want {%s}, rtree got {%s} want {%s}"
             (pp_set sb) (pp_set shadow.cb) (pp_set sr) (pp_set shadow.cr))
    end
  done;
  (* A loser in flight at the crash point: restart must roll it back. *)
  let loser = Txn.begin_txn db.Db.txns in
  for _ = 1 to 6 do
    let k = fresh_id () in
    Gist.insert bt loser ~key:(B.key k) ~rid:(rid k)
  done;
  let i = fresh_id () in
  Gist.insert rt loser ~key:(rect_of i) ~rid:(rid i)

(* A racing snapshot reader: loop begin_ro → scan both trees lock-free →
   end_ro until stopped, checking each scan against the writer's published
   commit history. The publication is read {e after} the scan and grows
   monotonically, so whatever prefix of commit order the snapshot captured
   is guaranteed to be present in it; acceptance is therefore "the state
   after some prefix of [history]", with the single in-doubt batch
   accepted on top of the full history only (it was submitted after every
   batch in it). A half-visible batch — some of a transaction's ops
   without the rest — matches no prefix and is flagged. On [Fault.Crash]
   the reader just exits: the power-off flag is sticky across domains, so
   the workload domain still observes the planned crash. *)
let reader_loop db bt rt pub stop =
  let bad = ref [] in
  (try
     while not (Atomic.get stop) do
       let ro = Db.begin_ro db in
       let got_b = rids_of (Gist.snapshot_search bt ro all_b)
       and got_r = rids_of (Gist.snapshot_search rt ro all_r) in
       Db.end_ro db ro;
       let history, in_doubt = Atomic.get pub in
       let matches (b, r) = ISet.equal got_b b && ISet.equal got_r r in
       let rec prefixes state = function
         | [] -> (
           matches state
           || match in_doubt with Some ops -> matches (apply_ops state ops) | None -> false)
         | batch :: rest -> matches state || prefixes (apply_ops state batch) rest
       in
       if not (prefixes (ISet.empty, ISet.empty) history) then
         bad :=
           Printf.sprintf
             "racing snapshot matches no prefix of the commit history: btree {%s} rtree {%s}"
             (pp_set got_b) (pp_set got_r)
           :: !bad
     done
   with
  | Fault.Crash -> ()
  | e -> bad := Printf.sprintf "racing snapshot reader raised %s" (Printexc.to_string e) :: !bad);
  !bad

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let scan_b db t =
  let txn = Txn.begin_txn db.Db.txns in
  let got = rids_of (Gist.search t txn all_b) in
  Txn.commit db.Db.txns txn;
  got

let scan_r db t =
  let txn = Txn.begin_txn db.Db.txns in
  let got = rids_of (Gist.search t txn all_r) in
  Txn.commit db.Db.txns txn;
  got

(* Run the full post-recovery oracle; returns violation strings. With
   [async] (pipelined durability), a commit that returned may still be
   lost in the crash — but only together with every later commit, so the
   acceptance set widens from "the final committed state (± the in-doubt
   batch)" to "the state after any prefix of the commit history (the
   in-doubt batch accepted on top of the full history only)". *)
let oracle ~label ?(async = false) db bt rt shadow =
  let bad = ref [] in
  let add fmt = Printf.ksprintf (fun s -> bad := Printf.sprintf "%s: %s" label s :: !bad) fmt in
  (* 1. Structural invariants of both trees. *)
  let repb = Tree_check.check bt and repr = Tree_check.check rt in
  if not (Tree_check.ok repb) then
    add "btree invariants: %s" (String.concat "; " repb.Tree_check.violations);
  if not (Tree_check.ok repr) then
    add "rtree invariants: %s" (String.concat "; " repr.Tree_check.violations);
  (* 2. Exactly the committed effects are visible — with an in-flight
     commit accepted all-or-nothing, jointly across both trees. Logical
     deletion can never leave an entry half-visible: the scans go through
     [Gist.search], which skips marked-deleted entries. Recovery redo may
     legitimately probe never-flushed pages; the post-recovery scans must
     not ([disk.read_unallocated] delta stays 0). *)
  let ru0 = Disk.reads_unallocated db.Db.disk in
  let got_b = scan_b db bt and got_r = scan_r db rt in
  let ru1 = Disk.reads_unallocated db.Db.disk in
  if ru1 - ru0 <> 0 then
    add "post-recovery scan read %d unallocated pages (allocator replay broken?)" (ru1 - ru0);
  let base = (shadow.cb, shadow.cr) in
  let matches (b, r) = ISet.equal got_b b && ISet.equal got_r r in
  let with_in_doubt state =
    match shadow.in_doubt with None -> false | Some ops -> matches (apply_ops state ops)
  in
  let consistent =
    if async then begin
      (* Every prefix of the commit history, oldest first; the in-doubt
         batch can only sit on top of the full history (it was submitted
         after every durable-or-not commit before it). *)
      let rec prefixes state = function
        | [] -> matches state || with_in_doubt state
        | batch :: rest -> matches state || prefixes (apply_ops state batch) rest
      in
      prefixes (ISet.empty, ISet.empty) shadow.history
    end
    else matches base || with_in_doubt base
  in
  if not consistent then begin
    let b, r = base in
    add "recovered state matches %s: btree got {%s} want {%s}%s, rtree got {%s} want {%s}"
      (if async then "no prefix of the commit history" else "neither commit boundary")
      (pp_set got_b) (pp_set b)
      (match shadow.in_doubt with Some _ -> " (or +in-doubt)" | None -> "")
      (pp_set got_r) (pp_set r)
  end;
  (* 2b. MVCC after restart: a snapshot begun now sees exactly what the
     locked scans just saw. Analysis re-derived commit timestamps by
     replaying Commit records in LSN order, losers' versions were erased
     or unmarked by undo, and pre-checkpoint commits read as historical —
     so committed-version visibility must coincide with the
     exactly-committed set, never a half-visible version pair. *)
  let ro = Db.begin_ro db in
  let snap_b = rids_of (Gist.snapshot_search bt ro all_b)
  and snap_r = rids_of (Gist.snapshot_search rt ro all_r) in
  Db.end_ro db ro;
  if not (ISet.equal snap_b got_b && ISet.equal snap_r got_r) then
    add "post-restart snapshot scan disagrees with locked scan: btree {%s} vs {%s}, rtree {%s} vs {%s}"
      (pp_set snap_b) (pp_set got_b) (pp_set snap_r) (pp_set got_r);
  (* 3. Garbage collection after recovery must not change the logical
     contents. *)
  Gist.vacuum bt;
  Gist.vacuum rt;
  if not (ISet.equal (scan_b db bt) got_b && ISet.equal (scan_r db rt) got_r) then
    add "vacuum after recovery changed the visible contents";
  if not (Tree_check.ok (Tree_check.check bt) && Tree_check.ok (Tree_check.check rt)) then
    add "tree invariants broken by post-recovery vacuum";
  !bad

(* Recovery must be idempotent: running restart again, without a crash in
   between, appends nothing but checkpoint records — its own end-of-restart
   pair, plus any pairs the background checkpointer domain slips in while
   the probe runs — and changes nothing visible. *)
let check_idempotent ~label db bt rt got_b got_r bad =
  let add fmt =
    Printf.ksprintf (fun s -> bad := Printf.sprintf "%s: %s" label s :: !bad) fmt
  in
  let before = Log_manager.last_lsn db.Db.log in
  Recovery.restart_multi db [ Ext.Packed B.ext; Ext.Packed R.ext ];
  let non_ckpt = ref 0 in
  Log_manager.iter_from db.Db.log (Int64.add before 1L) (fun r ->
      match r.Gist_wal.Log_record.payload with
      | Gist_wal.Log_record.Checkpoint_begin | Gist_wal.Log_record.Checkpoint_end _ -> ()
      | _ -> incr non_ckpt);
  if !non_ckpt <> 0 then
    add "second restart appended %d non-checkpoint records (want 0: redo/undo must be no-ops)"
      !non_ckpt;
  if not (ISet.equal (scan_b db bt) got_b && ISet.equal (scan_r db rt) got_r) then
    add "second restart changed the visible contents"

(* ------------------------------------------------------------------ *)
(* One crash point                                                     *)
(* ------------------------------------------------------------------ *)

let recover db = Recovery.restart_multi db [ Ext.Packed B.ext; Ext.Packed R.ext ]

(* Deterministic second-crash plan for double-crash mode: hit restart
   itself on an early disk read (redo faulting pages in) or WAL append
   (undo writing CLRs), varying with the point index. *)
let recovery_plan i =
  if i mod 2 = 0 then Fault.crash_after Fault.Disk_read (1 + (i / 2 mod 7))
  else Fault.crash_after Fault.Wal_append (1 + (i / 2 mod 4))

type point_result = { crashed : bool; violations : string list }

let run_point ?(commit_mode = Group_commit.Sync) ?(bg_writer = false) ?(snapshot_reader = false)
    ~mode ~seed ~index plan =
  let label =
    Printf.sprintf "%s/%s%s%s seed=%d point=%d [%s]" (mode_name mode)
      (Group_commit.mode_to_string commit_mode)
      (if bg_writer then "+bg" else "")
      (if snapshot_reader then "+snap" else "")
      seed index
      (String.concat ","
         (List.map (fun { Fault.site; at; _ } -> Printf.sprintf "%s#%d" (Fault.site_name site) at) plan))
  in
  let latched0 = Metrics.counter_value (Metrics.snapshot ()) "latches_held_across_io" in
  let fg_wb0 = Metrics.counter_value (Metrics.snapshot ()) "bp.fg_writeback" in
  let db = Db.create ~config:(config ~commit_mode ~bg_writer mode) () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let rt = Gist.create db R.ext ~empty_bp:R.Empty () in
  let broot = Gist.root bt and rroot = Gist.root rt in
  let shadow = { cb = ISet.empty; cr = ISet.empty; history = []; in_doubt = None } in
  let rng = Xoshiro.create seed in
  let inline_bad = ref [] in
  let snap_bad s = inline_bad := Printf.sprintf "%s: %s" label s :: !inline_bad in
  let pub = Atomic.make (([] : (wtree * wop) list list), (None : (wtree * wop) list option)) in
  let stop = Atomic.make false in
  let ctl = Fault.arm ~disk:db.Db.disk ~log:db.Db.log plan in
  let reader =
    if snapshot_reader then Some (Domain.spawn (fun () -> reader_loop db bt rt pub stop))
    else None
  in
  let crashed =
    match run_workload ~snap_bad ~pub db bt rt rng shadow with
    | () -> false
    | exception Fault.Crash -> true
  in
  (* Stop and join the racing reader before volatile state is torn down:
     after the join no other domain touches the pool or the snapshot
     registry. *)
  Atomic.set stop true;
  let reader_bad =
    match reader with
    | None -> []
    | Some d -> List.map (fun s -> Printf.sprintf "%s: %s" label s) (Domain.join d)
  in
  (* Claim C1 at scale: while the background writer is alive, the
     foreground path never writes back a dirty page. Measured over the
     workload phase only (recovery and the post-crash oracle run with a
     fresh writer of their own); waived when an injected fault killed the
     writer mid-run — the foreground then legitimately evicts for itself. *)
  let fg_wb1 = Metrics.counter_value (Metrics.snapshot ()) "bp.fg_writeback" in
  let bg_handle = db.Db.bg in
  (* Power loss (at the injected point, or at workload end if the point
     was never reached): all volatile state goes. *)
  let db' = Fault.materialize_crash ctl db in
  let bg_crashed =
    match bg_handle with Some bg -> Gist_storage.Bg_writer.crashed bg | None -> false
  in
  let had_tail = Log_manager.has_torn_tail db'.Db.log in
  let db', double_bad =
    match mode with
    | Double -> (
      let ctl2 = Fault.arm ~disk:db'.Db.disk ~log:db'.Db.log (recovery_plan index) in
      match recover db' with
      | () ->
        Fault.disarm ctl2;
        (db', [])
      | exception Fault.Crash ->
        (* Crash in the middle of restart: recovery itself must be
           restartable from scratch. *)
        let db2 = Fault.materialize_crash ctl2 db' in
        (match recover db2 with
        | () -> (db2, [])
        | exception e ->
          (db2, [ Printf.sprintf "%s: restart-after-restart-crash raised %s" label (Printexc.to_string e) ])))
    | Clean | Torn | Ragged -> (
      match recover db' with
      | () -> (db', [])
      | exception e ->
        (db', [ Printf.sprintf "%s: restart raised %s" label (Printexc.to_string e) ]))
  in
  let bad = ref (double_bad @ List.rev !inline_bad @ reader_bad) in
  if double_bad = [] then begin
    if had_tail && Log_manager.has_torn_tail db'.Db.log then
      bad := [ Printf.sprintf "%s: restart left the torn log tail in place" label ];
    let bt' = Gist.open_existing db' B.ext ~root:broot () in
    let rt' = Gist.open_existing db' R.ext ~root:rroot () in
    bad := oracle ~label ~async:(commit_mode = Group_commit.Async) db' bt' rt' shadow @ !bad;
    if !bad = [] then begin
      let got_b = scan_b db' bt' and got_r = scan_r db' rt' in
      check_idempotent ~label db' bt' rt' got_b got_r bad
    end
  end;
  (* The recovered environment spawned a fresh log-writer domain in
     Group/Async mode — a sweep leaks hundreds of domains without this. *)
  Db.close db';
  let latched1 = Metrics.counter_value (Metrics.snapshot ()) "latches_held_across_io" in
  if latched1 - latched0 <> 0 then
    bad :=
      Printf.sprintf "%s: latches_held_across_io grew by %d during a fault run" label
        (latched1 - latched0)
      :: !bad;
  if bg_writer && (not bg_crashed) && fg_wb1 - fg_wb0 <> 0 then
    bad :=
      Printf.sprintf
        "%s: bp.fg_writeback grew by %d with a live background writer (want 0)" label
        (fg_wb1 - fg_wb0)
      :: !bad;
  { crashed; violations = List.rev !bad }

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

(* Count the workload's event stream with a never-firing plan, so crash
   points can be spread evenly across it. *)
let profile ?commit_mode ?bg_writer ~mode ~seed () =
  let db = Db.create ~config:(config ?commit_mode ?bg_writer mode) () in
  let bt = Gist.create db B.ext ~empty_bp:B.Empty () in
  let rt = Gist.create db R.ext ~empty_bp:R.Empty () in
  let shadow = { cb = ISet.empty; cr = ISet.empty; history = []; in_doubt = None } in
  let rng = Xoshiro.create seed in
  let ctl = Fault.arm ~disk:db.Db.disk ~log:db.Db.log [] in
  run_workload db bt rt rng shadow;
  Fault.disarm ctl;
  Db.close db;
  ( Fault.events_seen ctl Fault.Disk_read,
    Fault.events_seen ctl Fault.Disk_write,
    Fault.events_seen ctl Fault.Wal_append,
    Fault.events_seen ctl Fault.Wal_flush )

let plan_for ~mode ~counts:(reads, writes, appends, flushes) ~page_size ~index ~points =
  let spread total i = 1 + (i * total / max 1 points) mod max 1 total in
  match mode with
  | Clean | Double ->
    (* Flush-request points cover the window between a commit record's
       append and its durability — the group-commit crash surface. *)
    let total = reads + writes + appends + flushes in
    let g = spread total index in
    if g <= reads then Fault.crash_after Fault.Disk_read g
    else if g <= reads + writes then Fault.crash_after Fault.Disk_write (g - reads)
    else if g <= reads + writes + appends then
      Fault.crash_after Fault.Wal_append (g - reads - writes)
    else Fault.crash_after Fault.Wal_flush (g - reads - writes - appends)
  | Torn ->
    let keep = 8 + (index * 97 mod (page_size - 8)) in
    Fault.torn_write_at (spread writes index) ~keep
  | Ragged ->
    let keep = 1 + (index * 7 mod 48) in
    Fault.ragged_append_at (spread appends index) ~keep

let run_mode ?commit_mode ?bg_writer ?snapshot_reader ~seed ~points mode =
  let counts = profile ?commit_mode ?bg_writer ~mode ~seed () in
  let reads, writes, appends, flushes = counts in
  let page_size = (config mode).Db.page_size in
  let crashes = ref 0 and violations = ref [] in
  for i = 0 to points - 1 do
    let plan = plan_for ~mode ~counts ~page_size ~index:i ~points in
    let r = run_point ?commit_mode ?bg_writer ?snapshot_reader ~mode ~seed ~index:i plan in
    if r.crashed then incr crashes;
    violations := !violations @ r.violations
  done;
  {
    mode;
    points;
    crashes = !crashes;
    events = reads + writes + appends + flushes;
    violations = !violations;
  }

(* 2:1:1:1 split across clean / torn / ragged / double-crash modes. *)
let run_sweep ?commit_mode ?bg_writer ?snapshot_reader ~seed ~points () =
  let clean = max 1 (2 * points / 5) in
  let torn = max 1 (points / 5) in
  let ragged = max 1 (points / 5) in
  let double = max 1 (points - clean - torn - ragged) in
  [
    run_mode ?commit_mode ?bg_writer ?snapshot_reader ~seed ~points:clean Clean;
    run_mode ?commit_mode ?bg_writer ?snapshot_reader ~seed:(seed + 1) ~points:torn Torn;
    run_mode ?commit_mode ?bg_writer ?snapshot_reader ~seed:(seed + 2) ~points:ragged Ragged;
    run_mode ?commit_mode ?bg_writer ?snapshot_reader ~seed:(seed + 3) ~points:double Double;
  ]

let pp_summary ppf s =
  Format.fprintf ppf "%-7s points=%d crashes=%d events=%d violations=%d" (mode_name s.mode)
    s.points s.crashes s.events (List.length s.violations)
