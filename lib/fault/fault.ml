module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace
module Disk = Gist_storage.Disk
module Page_id = Gist_storage.Page_id
module Log_manager = Gist_wal.Log_manager

exception Crash

exception Io_error

let m_armed = Metrics.counter ~unit_:"ops" ~help:"fault plans armed" "fault.armed"

let m_fired =
  Metrics.counter ~unit_:"ops" ~help:"fault-injection points that fired" "fault.fired"

let m_crashes =
  Metrics.counter ~unit_:"ops" ~help:"injected crashes (power loss)" "fault.crash"

let m_torn = Metrics.counter ~unit_:"ops" ~help:"injected torn page writes" "fault.torn_write"

let m_io_errors =
  Metrics.counter ~unit_:"ops" ~help:"injected transient I/O errors" "fault.io_error"

let m_delays = Metrics.counter ~unit_:"ops" ~help:"injected latency spikes" "fault.delay"

type site = Disk_read | Disk_write | Wal_append | Wal_flush

let site_name = function
  | Disk_read -> "disk.read"
  | Disk_write -> "disk.write"
  | Wal_append -> "wal.append"
  | Wal_flush -> "wal.flush"

type action =
  | Crash_now
  | Crash_torn of int
  | Crash_ragged of int
  | Io_error_once
  | Delay_ns of int

type point = { site : site; at : int; act : action }

type plan = point list

let crash_after site at = [ { site; at; act = Crash_now } ]

let torn_write_at at ~keep = [ { site = Disk_write; at; act = Crash_torn keep } ]

let ragged_append_at at ~keep = [ { site = Wal_append; at; act = Crash_ragged keep } ]

(* The controller is driven from a single domain (the fuzzer's workload is
   sequential); counters are plain mutable fields. *)
type t = {
  disk : Disk.t;
  log : Log_manager.t;
  mutable points : point list;
  mutable n_read : int;
  mutable n_write : int;
  mutable n_append : int;
  mutable n_flush : int;
  mutable ragged_keep : int option;
      (* a ragged-append point fired: [materialize_crash] must leave a
         torn tail in the log *)
  mutable crash_after_write : bool;
      (* a torn-write point fired: the [after_write] hook crashes once the
         mangled image has landed *)
  mutable in_hook : bool;
      (* reentrancy guard: building a torn image reads the old page
         content through the public [Disk.read], which must not count as
         a workload event *)
  mutable power_off : bool;
      (* a crash point fired: the simulated power is off, so every
         subsequent disk or WAL operation — from any domain — raises
         instead of landing. Without this, a background domain (flusher,
         checkpointer) racing the unwinding workload could keep forcing
         the log and writing pages *after* the power-loss instant,
         retroactively violating the WAL rule once [materialize_crash]
         rewinds the log (a page on disk whose records were discarded, a
         commit durable whose [commit] never returned). A plain bool is
         enough: OCaml word reads/writes do not tear, and a domain
         missing the flag for one extra operation is indistinguishable
         from that operation having raced the crash itself. *)
  mutable fired : (string * int) list;
}

let events_seen t = function
  | Disk_read -> t.n_read
  | Disk_write -> t.n_write
  | Wal_append -> t.n_append
  | Wal_flush -> t.n_flush

let fired t = List.rev t.fired

let lookup t site seq =
  List.find_opt (fun p -> p.site = site && p.at = seq) t.points

(* Bookkeeping common to every firing point: consume it, record it,
   surface it in metrics and the trace ring. *)
let note t site seq =
  t.points <- List.filter (fun p -> not (p.site = site && p.at = seq)) t.points;
  t.fired <- (site_name site, seq) :: t.fired;
  Metrics.incr m_fired;
  if Trace.enabled () then Trace.emit (Trace.Fault_inject { site = site_name site; seq })

let apply_simple t site seq act =
  note t site seq;
  match act with
  | Crash_now ->
    Metrics.incr m_crashes;
    t.power_off <- true;
    raise Crash
  | Crash_ragged keep ->
    Metrics.incr m_crashes;
    t.ragged_keep <- Some keep;
    t.power_off <- true;
    raise Crash
  | Io_error_once ->
    Metrics.incr m_io_errors;
    raise Io_error
  | Delay_ns ns ->
    Metrics.incr m_delays;
    if ns > 0 then Unix.sleepf (Float.of_int ns /. 1e9)
  | Crash_torn _ -> assert false (* only reachable from the write hook *)

let before_read t _pid =
  if t.power_off then raise Crash;
  if not t.in_hook then begin
    t.n_read <- t.n_read + 1;
    match lookup t Disk_read t.n_read with
    | Some p -> apply_simple t Disk_read t.n_read p.act
    | None -> ()
  end

let before_write t pid img =
  if t.power_off then raise Crash;
  if t.in_hook then Disk.Write_full
  else begin
    t.n_write <- t.n_write + 1;
    let seq = t.n_write in
    match lookup t Disk_write seq with
    | Some { act = Crash_torn keep; _ } ->
      note t Disk_write seq;
      Metrics.incr m_torn;
      (* What the platter ends up holding: a prefix of the new image
         spliced onto the old content (zeros if the page was never
         written) — the classic interrupted sector train. *)
      t.in_hook <- true;
      let old =
        match Disk.read t.disk pid with
        | bytes -> bytes
        | exception _ -> Bytes.make (Bytes.length img) '\000'
      in
      t.in_hook <- false;
      let torn = Bytes.copy old in
      let n = min (max 0 keep) (Bytes.length img) in
      Bytes.blit img 0 torn 0 n;
      t.crash_after_write <- true;
      Disk.Write_torn torn
    | Some p ->
      apply_simple t Disk_write seq p.act;
      Disk.Write_full
    | None -> Disk.Write_full
  end

let after_write t _pid =
  if t.crash_after_write then begin
    t.crash_after_write <- false;
    Metrics.incr m_crashes;
    t.power_off <- true;
    raise Crash
  end

let on_append t =
  if t.power_off then raise Crash;
  if not t.in_hook then begin
    t.n_append <- t.n_append + 1;
    match lookup t Wal_append t.n_append with
    | Some p -> apply_simple t Wal_append t.n_append p.act
    | None -> ()
  end

(* Counted at the durability *request* — [force]/[force_all] entry and
   [Group_commit.submit] — in the requesting domain, never in the
   log-writer domain; the count is the same however many requests each
   physical flush later absorbs, so schedules stay seed-deterministic
   across commit modes. A crash here is the power dying with a commit's
   flush request in flight: the commit record is appended but (unless a
   neighbor already covered it) not durable. *)
let on_flush t =
  if t.power_off then raise Crash;
  if not t.in_hook then begin
    t.n_flush <- t.n_flush + 1;
    match lookup t Wal_flush t.n_flush with
    | Some p -> apply_simple t Wal_flush t.n_flush p.act
    | None -> ()
  end

let arm ~disk ~log plan =
  let t =
    {
      disk;
      log;
      points = plan;
      n_read = 0;
      n_write = 0;
      n_append = 0;
      n_flush = 0;
      ragged_keep = None;
      crash_after_write = false;
      in_hook = false;
      power_off = false;
      fired = [];
    }
  in
  Disk.set_hooks disk
    (Some
       {
         Disk.before_read = (fun pid -> before_read t pid);
         before_write = (fun pid img -> before_write t pid img);
         after_write = (fun pid -> after_write t pid);
       });
  Log_manager.set_append_hook log (Some (fun () -> on_append t));
  Log_manager.set_flush_hook log (Some (fun () -> on_flush t));
  Metrics.incr m_armed;
  t

let disarm t =
  Disk.set_hooks t.disk None;
  Log_manager.set_append_hook t.log None;
  Log_manager.set_flush_hook t.log None

let materialize_crash t db =
  (* Halt the writer domains while the hooks are still armed: the sticky
     [power_off] makes any of their in-flight I/O raise instead of land.
     Only once every domain is dead is it safe to rewind the log below —
     otherwise a flusher racing this rewind could write back a page whose
     records the rewind discards (a disk page referencing an allocation no
     durable record made). *)
  Gist_core.Db.halt_domains db;
  disarm t;
  (* The crash unwound ops that were holding latches; the latches are
     volatile and die with the buffer pool, and so does the executing
     thread's held count. *)
  Gist_storage.Latch.reset_held ();
  (match t.ragged_keep with
  | Some keep -> Log_manager.crash_ragged ~keep_bytes:keep t.log
  | None -> ());
  t.ragged_keep <- None;
  Gist_core.Db.crash db
