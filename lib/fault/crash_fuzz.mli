(** Deterministic crash fuzzer.

    Runs a seeded single-domain workload — six mixed insert/delete/search
    transactions (one in five aborting) over a B-tree and an R-tree in one
    database, environment operations (flushes, checkpoints, vacuum, log
    truncation) between them, and a trailing loser — then fires one
    injected fault per run, crashes, recovers with
    [Recovery.restart_multi], and checks the full oracle:

    - both trees pass [Tree_check];
    - exactly the committed effects are visible (a commit in flight at the
      crash counts all-or-nothing, jointly across both trees), so
      uncommitted work is gone and logically deleted entries are never
      half-visible;
    - the post-recovery scans never read unallocated pages
      ([disk.read_unallocated] delta 0);
    - vacuum after recovery changes nothing visible;
    - a second restart, with no crash in between, is a no-op: nothing but
      checkpoint records is appended (its own end-of-restart pair, plus any
      pairs a background checkpointer slips in) and the contents are
      unchanged;
    - [latches_held_across_io] stays 0 through the whole fault run (C1
      holds even on crash paths);
    - MVCC snapshots (PROTOCOL.md §9) agree with locking reads: the
      workload scans both trees through a fresh snapshot after every
      commit (must equal the committed sets exactly), a snapshot begun
      after restart must match the post-recovery locked scans (commit
      timestamps are re-derived by analysis in LSN order), and — with
      [snapshot_reader] — a racing reader domain checks every concurrent
      snapshot against the prefix-of-commit-history contract, so no
      snapshot ever observes a half-visible transaction.

    The profiling pass counts the workload's disk-read / disk-write /
    WAL-append events with a never-firing plan; crash points are then
    spread evenly across that stream, so a sweep of N points covers the
    event space edge to edge. Everything derives from the seed —
    a failing point replays bit-identically.

    This is the executable evidence for claims C4 (ARIES restart from any
    crash point) and C5 (logical deletion + GC never expose half-done
    work); see OBSERVABILITY.md and EXPERIMENTS.md E12. *)

type mode =
  | Clean  (** Power loss before a disk read/write or WAL append. *)
  | Torn  (** A disk write lands mangled (prefix of new + old content),
              then power loss; restart repairs from a full-page image. *)
  | Ragged  (** Power loss mid-WAL-append: a garbage prefix of the lost
               record persists past the durable watermark. *)
  | Double  (** A clean crash, then a second crash in the middle of the
               first restart — recovery must be restartable. *)

val mode_name : mode -> string

type summary = {
  mode : mode;
  points : int;  (** Crash points exercised. *)
  crashes : int;  (** Runs in which the planned fault actually fired. *)
  events : int;  (** Injectable events in one profiled workload run. *)
  violations : string list;  (** Oracle violations — empty on success. *)
}

val run_mode :
  ?commit_mode:Gist_wal.Group_commit.mode ->
  ?bg_writer:bool ->
  ?snapshot_reader:bool ->
  seed:int -> points:int -> mode -> summary
(** Profile the seeded workload, then run [points] crash points spread
    across its event stream (disk reads, disk writes, WAL appends, and —
    new with group commit — durability requests, the window between a
    commit record's append and its flush) in the given mode.

    [commit_mode] (default [Sync]) selects the durability route the
    workload's commits take. Under [Group] the oracle is unchanged —
    commit still blocks until its LSN is durable. Under [Async] the oracle
    widens to the pipelined-durability contract: the recovered state must
    equal the state after {e some prefix} of the commit history (a commit
    that returned may be lost, but only together with every later commit
    — and always atomically; PROTOCOL.md §8).

    [bg_writer] (default false) runs the workload with the background
    writer + aggressive 200µs fuzzy checkpoints + range-scan prefetch
    enabled, and adds an oracle check: [bp.fg_writeback] must not grow
    during the workload while the writer is alive (waived when the
    injected fault killed the writer domain itself).

    [snapshot_reader] (default false) races a snapshot-reader domain
    against the workload until the crash: it loops lock-free MVCC scans of
    both trees and checks each against the writer's published commit
    history — the result must equal the state after {e some} prefix of
    commit order (the in-doubt batch accepted on top of the full history
    only), jointly across both trees. The reader exits on the injected
    crash (the power-off flag is sticky across domains) and is joined
    before recovery runs. Its I/O makes the fault-event stream
    nondeterministic, which only moves where the planned point lands. *)

val run_sweep :
  ?commit_mode:Gist_wal.Group_commit.mode ->
  ?bg_writer:bool ->
  ?snapshot_reader:bool ->
  seed:int -> points:int -> unit -> summary list
(** Split [points] across the four modes (2:1:1:1) with distinct seeds. *)

val pp_summary : Format.formatter -> summary -> unit
