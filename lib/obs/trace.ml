open Gist_util

type mode = S | X

type event =
  | Latch_acquire of { page : int; mode : mode }
  | Latch_wait of { page : int; mode : mode; wait_ns : int }
  | Rightlink of { from_page : int; to_page : int }
  | Nsn_mismatch of { page : int; memo : int64; nsn : int64 }
  | Node_split of { orig : int; right : int }
  | Root_grow of { root : int; child : int }
  | Nta_begin of { txn : Txn_id.t }
  | Nta_commit of { txn : Txn_id.t }
  | Wal_append of { lsn : int64; bytes : int }
  | Wal_force of { lsn : int64 }
  | Group_flush of { lsn : int64; group : int }
  | Fault_inject of { site : string; seq : int }
  | Lock_wait of { txn : Txn_id.t; name : string; mode : mode }
  | Deadlock_victim of { txn : Txn_id.t }
  | Pred_attach of { page : int; owner : Txn_id.t }
  | Pred_check of { page : int; conflicts : int }
  | Bp_hit of { page : int }
  | Bp_miss of { page : int }
  | Bp_evict of { page : int; dirty : bool }
  | Olc_restart of { page : int }
  | Olc_fallback of { page : int }
  | Bg_flush of { pages : int; scanned : int }
  | Fuzzy_checkpoint of { lsn : int64; dirty : int }
  | Snapshot_scan of { ts : int }

type entry = { ts : int; domain : int; seq : int; event : event }

(* Each domain's ring is private to that domain for writes; [dump]/[clear]
   read the rings of other (usually quiescent) domains. [slots] is an
   option array so a partially filled ring needs no sentinel entries. *)
type ring = { dom : int; slots : entry option array; mutable next : int }

let on = Atomic.make false

let capacity = Atomic.make 4096

let rings_mutex = Mutex.create ()

let rings : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          dom = (Domain.self () :> int);
          slots = Array.make (Atomic.get capacity) None;
          next = 0;
        }
      in
      Mutex.lock rings_mutex;
      rings := r :: !rings;
      Mutex.unlock rings_mutex;
      r)

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Atomic.set capacity n

let emit event =
  if Atomic.get on then begin
    let r = Domain.DLS.get ring_key in
    let cap = Array.length r.slots in
    r.slots.(r.next mod cap) <- Some { ts = Clock.now_ns (); domain = r.dom; seq = r.next; event };
    r.next <- r.next + 1
  end

let dump ?last () =
  Mutex.lock rings_mutex;
  let all = !rings in
  Mutex.unlock rings_mutex;
  let entries =
    List.concat_map
      (fun r -> Array.to_list r.slots |> List.filter_map (fun e -> e))
      all
    |> List.sort (fun a b ->
           match compare a.ts b.ts with
           | 0 -> ( match compare a.domain b.domain with 0 -> compare a.seq b.seq | c -> c)
           | c -> c)
  in
  match last with
  | None -> entries
  | Some n ->
    let len = List.length entries in
    if len <= n then entries else List.filteri (fun i _ -> i >= len - n) entries

let clear () =
  Mutex.lock rings_mutex;
  List.iter
    (fun r ->
      Array.fill r.slots 0 (Array.length r.slots) None;
      r.next <- 0)
    !rings;
  Mutex.unlock rings_mutex

let pp_mode ppf = function
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"

let pp_event ppf = function
  | Latch_acquire { page; mode } -> Format.fprintf ppf "latch.acquire P%d %a" page pp_mode mode
  | Latch_wait { page; mode; wait_ns } ->
    Format.fprintf ppf "latch.wait P%d %a %dns" page pp_mode mode wait_ns
  | Rightlink { from_page; to_page } -> Format.fprintf ppf "rightlink P%d->P%d" from_page to_page
  | Nsn_mismatch { page; memo; nsn } ->
    Format.fprintf ppf "nsn.mismatch P%d memo=%Ld nsn=%Ld" page memo nsn
  | Node_split { orig; right } -> Format.fprintf ppf "split P%d->P%d" orig right
  | Root_grow { root; child } -> Format.fprintf ppf "root.grow P%d->P%d" root child
  | Nta_begin { txn } -> Format.fprintf ppf "nta.begin %a" Txn_id.pp txn
  | Nta_commit { txn } -> Format.fprintf ppf "nta.commit %a" Txn_id.pp txn
  | Wal_append { lsn; bytes } -> Format.fprintf ppf "wal.append lsn=%Ld %dB" lsn bytes
  | Wal_force { lsn } -> Format.fprintf ppf "wal.force lsn=%Ld" lsn
  | Group_flush { lsn; group } -> Format.fprintf ppf "wal.group_flush lsn=%Ld group=%d" lsn group
  | Fault_inject { site; seq } -> Format.fprintf ppf "fault.inject site=%s seq=%d" site seq
  | Lock_wait { txn; name; mode } ->
    Format.fprintf ppf "lock.wait %a %s %a" Txn_id.pp txn name pp_mode mode
  | Deadlock_victim { txn } -> Format.fprintf ppf "deadlock.victim %a" Txn_id.pp txn
  | Pred_attach { page; owner } -> Format.fprintf ppf "pred.attach P%d %a" page Txn_id.pp owner
  | Pred_check { page; conflicts } -> Format.fprintf ppf "pred.check P%d conflicts=%d" page conflicts
  | Bp_hit { page } -> Format.fprintf ppf "bp.hit P%d" page
  | Bp_miss { page } -> Format.fprintf ppf "bp.miss P%d" page
  | Bp_evict { page; dirty } ->
    Format.fprintf ppf "bp.evict P%d%s" page (if dirty then " dirty" else "")
  | Olc_restart { page } -> Format.fprintf ppf "olc.restart P%d" page
  | Olc_fallback { page } -> Format.fprintf ppf "olc.fallback P%d" page
  | Bg_flush { pages; scanned } -> Format.fprintf ppf "bg.flush pages=%d scanned=%d" pages scanned
  | Fuzzy_checkpoint { lsn; dirty } ->
    Format.fprintf ppf "ckpt.fuzzy lsn=%Ld dirty=%d" lsn dirty
  | Snapshot_scan { ts } -> Format.fprintf ppf "mvcc.scan ts=%d" ts

let pp_entry ppf e = Format.fprintf ppf "%d d%d %a" e.ts e.domain pp_event e.event
