(** Process-wide metrics registry (the measurement half of the
    observability layer; the event half is {!Trace}).

    Every kernel subsystem registers named instruments here at module
    initialization time and bumps them on its hot paths:

    - {e counters} — monotonically increasing event counts backed by a
      single [Atomic.t] (safe to bump from any domain);
    - {e summaries} — [Stats.Summary] accumulators (count/mean/min/max)
      sharded per domain via [Domain.DLS], so the update path never
      synchronizes;
    - {e histograms} — log-bucketed [Stats.Histogram] latency recorders,
      also sharded per domain.

    [snapshot] merges the per-domain shards into one consistent-enough view
    (merging races benignly with concurrent updates: individual fields may
    be a few events stale, which is acceptable for observability) and can
    be rendered as an aligned text table or as a single JSON line suitable
    for appending to a benchmark trajectory file.

    Registration is idempotent: registering an existing name with the same
    instrument kind returns the existing instrument, so independent modules
    (or repeated test setups) can share an instrument by name. Registering
    an existing name as a different kind raises [Invalid_argument].

    The registry is global to the process, not per-[Db.t]: the kernel's
    per-object statistics (per-tree operation counters, per-pool hit
    ratios) remain where they were; this registry is the cross-cutting
    aggregate wired into every subsystem. Use [reset] between runs when a
    per-run view is needed. The catalog of every metric the kernel emits —
    with units, emission sites, and the mapping to the paper's claims
    C1–C6 — is documented in [OBSERVABILITY.md]. *)

type counter
(** A monotonically increasing integer instrument. *)

type summary
(** A per-domain-sharded count/mean/min/max accumulator. *)

type histogram
(** A per-domain-sharded log-bucketed latency histogram. *)

(** {1 Registration}

    [unit_] is a free-form unit label shown by the renderers ("ops", "ns",
    "bytes", …); [help] is a one-line description. Both default to
    sensible-but-empty values and are only informational. *)

val counter : ?unit_:string -> ?help:string -> string -> counter
(** Register (or look up) the counter called [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val summary : ?unit_:string -> ?help:string -> string -> summary
(** Register (or look up) the summary called [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

val histogram : ?unit_:string -> ?help:string -> string -> histogram
(** Register (or look up) the histogram called [name].
    @raise Invalid_argument if [name] exists with a different kind. *)

(** {1 Recording} *)

val incr : counter -> unit
(** Add one. A single [Atomic.incr]; safe on any domain. *)

val add : counter -> int -> unit
(** Add [n] (used for byte counts). *)

val value : counter -> int
(** Current value (reads the atomic directly; no snapshot needed). *)

val observe : summary -> float -> unit
(** Record one observation into the calling domain's shard. *)

val record : histogram -> float -> unit
(** Record one observation (typically a latency in nanoseconds) into the
    calling domain's shard. *)

val time_ns : histogram -> (unit -> 'a) -> 'a
(** [time_ns h f] runs [f ()] and records its wall-clock duration in
    nanoseconds into [h]. *)

(** {1 Snapshots and rendering} *)

(** One merged instrument value inside a snapshot. *)
type sample =
  | Counter of int
  | Summary of Gist_util.Stats.Summary.t
  | Histogram of Gist_util.Stats.Histogram.t

type snapshot

val snapshot : unit -> snapshot
(** Merge every per-domain shard of every registered instrument. The result
    is detached from the live registry (later updates do not affect it). *)

val find : snapshot -> string -> sample option
(** Look up one instrument's merged value by name. *)

val counter_value : snapshot -> string -> int
(** The value of counter [name] in the snapshot, or [0] if it does not
    exist (or is not a counter) — convenient for assertions. *)

val render_text : snapshot -> string
(** Aligned [name value unit] table, one instrument per line, sorted by
    name. Summaries and histograms render their [Stats] one-line form. *)

val render_json : snapshot -> string
(** The snapshot as a single-line JSON object keyed by metric name.
    Counters become integers; summaries become
    [{"count","mean","min","max","total"}]; histograms become
    [{"count","p50","p95","p99"}]. Keys are sorted, so output is
    deterministic for a given state. *)

val reset : unit -> unit
(** Zero every registered instrument, including all per-domain shards.
    Call only while no other domain is recording (between runs): resetting
    races unsynchronized with concurrent [observe]/[record]. *)
