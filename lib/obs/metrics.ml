open Gist_util

type meta = { m_name : string; m_unit : string; m_help : string }

type counter = { c_meta : meta; cell : int Atomic.t }

(* Summaries and histograms shard per domain through DLS: the recording
   path touches only the calling domain's private accumulator; the key's
   init function registers each fresh shard with the instrument so
   [snapshot] can merge shards of domains that have since terminated. *)
type summary = {
  s_meta : meta;
  s_key : Stats.Summary.t Domain.DLS.key;
  s_shards : Stats.Summary.t list ref;
}

type histogram = {
  h_meta : meta;
  h_key : Stats.Histogram.t Domain.DLS.key;
  h_shards : Stats.Histogram.t list ref;
}

type instrument = C of counter | S of summary | H of histogram

let mutex = Mutex.create ()

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let meta_of = function
  | C c -> c.c_meta
  | S s -> s.s_meta
  | H h -> h.h_meta

let with_registry f =
  Mutex.lock mutex;
  match f () with
  | v ->
    Mutex.unlock mutex;
    v
  | exception e ->
    Mutex.unlock mutex;
    raise e

let kind_name = function C _ -> "counter" | S _ -> "summary" | H _ -> "histogram"

let register name kind make select =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
        match select existing with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s, not a %s" name
               (kind_name existing) kind))
      | None ->
        let v, inst = make () in
        Hashtbl.replace registry name inst;
        v)

let counter ?(unit_ = "ops") ?(help = "") name =
  register name "counter"
    (fun () ->
      let c = { c_meta = { m_name = name; m_unit = unit_; m_help = help }; cell = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

(* The DLS init function runs on first [get] in each domain; it must take
   the registry mutex itself because it is not called under [register]. *)
let summary ?(unit_ = "") ?(help = "") name =
  register name "summary"
    (fun () ->
      let shards = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let sh = Stats.Summary.create () in
            Mutex.lock mutex;
            shards := sh :: !shards;
            Mutex.unlock mutex;
            sh)
      in
      let s =
        { s_meta = { m_name = name; m_unit = unit_; m_help = help }; s_key = key; s_shards = shards }
      in
      (s, S s))
    (function S s -> Some s | _ -> None)

let histogram ?(unit_ = "ns") ?(help = "") name =
  register name "histogram"
    (fun () ->
      let shards = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let sh = Stats.Histogram.create () in
            Mutex.lock mutex;
            shards := sh :: !shards;
            Mutex.unlock mutex;
            sh)
      in
      let h =
        { h_meta = { m_name = name; m_unit = unit_; m_help = help }; h_key = key; h_shards = shards }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let incr c = Atomic.incr c.cell

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let value c = Atomic.get c.cell

let observe s v = Stats.Summary.add (Domain.DLS.get s.s_key) v

let record h v = Stats.Histogram.add (Domain.DLS.get h.h_key) v

let time_ns h f =
  let t0 = Clock.now_ns () in
  match f () with
  | v ->
    record h (Float.of_int (Clock.now_ns () - t0));
    v
  | exception e ->
    record h (Float.of_int (Clock.now_ns () - t0));
    raise e

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type sample =
  | Counter of int
  | Summary of Stats.Summary.t
  | Histogram of Stats.Histogram.t

type snapshot = (meta * sample) list (* sorted by name *)

let snapshot () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun _name inst acc ->
          let sample =
            match inst with
            | C c -> Counter (Atomic.get c.cell)
            | S s ->
              Summary
                (List.fold_left Stats.Summary.merge (Stats.Summary.create ()) !(s.s_shards))
            | H h ->
              Histogram
                (List.fold_left Stats.Histogram.merge (Stats.Histogram.create ()) !(h.h_shards))
          in
          (meta_of inst, sample) :: acc)
        registry []
      |> List.sort (fun (a, _) (b, _) -> String.compare a.m_name b.m_name))

let find snap name =
  List.find_opt (fun (m, _) -> String.equal m.m_name name) snap |> Option.map snd

let counter_value snap name =
  match find snap name with Some (Counter n) -> n | _ -> 0

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ inst ->
          match inst with
          | C c -> Atomic.set c.cell 0
          | S s -> List.iter Stats.Summary.reset !(s.s_shards)
          | H h -> List.iter Stats.Histogram.reset !(h.h_shards))
        registry)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let sample_text = function
  | Counter n -> string_of_int n
  | Summary s -> Format.asprintf "%a" Stats.Summary.pp s
  | Histogram h -> Format.asprintf "%a" Stats.Histogram.pp h

let render_text snap =
  let rows = List.map (fun (m, s) -> (m.m_name, sample_text s, m.m_unit)) snap in
  let w1 = List.fold_left (fun w (n, _, _) -> max w (String.length n)) 6 rows in
  let w2 = List.fold_left (fun w (_, v, _) -> max w (String.length v)) 5 rows in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (n, v, u) ->
      Buffer.add_string buf (Printf.sprintf "%-*s  %-*s  %s\n" w1 n w2 v u))
    rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

let sample_json = function
  | Counter n -> string_of_int n
  | Summary s ->
    if Stats.Summary.count s = 0 then {|{"count":0,"mean":0,"min":0,"max":0,"total":0}|}
    else
      Printf.sprintf {|{"count":%d,"mean":%s,"min":%s,"max":%s,"total":%s}|}
        (Stats.Summary.count s)
        (json_float (Stats.Summary.mean s))
        (json_float (Stats.Summary.min s))
        (json_float (Stats.Summary.max s))
        (json_float (Stats.Summary.total s))
  | Histogram h ->
    Printf.sprintf {|{"count":%d,"p50":%s,"p95":%s,"p99":%s}|} (Stats.Histogram.count h)
      (json_float (Stats.Histogram.percentile h 0.50))
      (json_float (Stats.Histogram.percentile h 0.95))
      (json_float (Stats.Histogram.percentile h 0.99))

let render_json snap =
  let fields =
    List.map (fun (m, s) -> Printf.sprintf {|"%s":%s|} (json_escape m.m_name) (sample_json s)) snap
  in
  "{" ^ String.concat "," fields ^ "}"
