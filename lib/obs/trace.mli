(** Bounded per-domain event tracing (the event half of the observability
    layer; the measurement half is {!Metrics}).

    Each domain owns a fixed-capacity ring buffer of typed events. Emitting
    is wait-free with respect to other domains (one store into the calling
    domain's ring) and a no-op unless tracing has been switched on with
    [enable], so instrumentation points can stay in production hot paths.
    When a ring is full it overwrites its oldest entries — the tool is a
    flight recorder for debugging concurrency incidents after the fact, not
    a complete log.

    Typical use: [enable ()], reproduce a suspicious interleaving, then
    [dump ()] to obtain every surviving event of every domain merged in
    timestamp order (the shell exposes this as [trace on] / [trace dump]).

    Event vocabulary and the claims they evidence are catalogued in
    [OBSERVABILITY.md]. *)

(** Latch/lock mode carried by latching and locking events. *)
type mode = S | X

(** The typed event vocabulary of the kernel's instrumentation points.
    Page ids are carried as raw ints ([Page_id.to_int]) to keep this
    library free of upward dependencies. *)
type event =
  | Latch_acquire of { page : int; mode : mode }
      (** A page latch was granted (emitted only under tracing). *)
  | Latch_wait of { page : int; mode : mode; wait_ns : int }
      (** A latch acquisition had to block, and for how long. *)
  | Rightlink of { from_page : int; to_page : int }
      (** A traversal compensated for a missed split by following a
          rightlink (§3/§6). *)
  | Nsn_mismatch of { page : int; memo : int64; nsn : int64 }
      (** A node's NSN was newer than the traversal's memorized value — the
          trigger for the rightlink chase. *)
  | Node_split of { orig : int; right : int }
      (** [orig] split, moving entries to new right sibling [right]. *)
  | Root_grow of { root : int; child : int }
      (** The fixed-root split pushed the root's content into [child]. *)
  | Nta_begin of { txn : Gist_util.Txn_id.t }
      (** A nested top action opened (split, node delete, tree create). *)
  | Nta_commit of { txn : Gist_util.Txn_id.t }
      (** The dummy CLR sealing a nested top action was written. *)
  | Wal_append of { lsn : int64; bytes : int }
      (** A log record was appended. *)
  | Wal_force of { lsn : int64 }
      (** The log was forced durable up to [lsn]. *)
  | Group_flush of { lsn : int64; group : int }
      (** The group-commit writer flushed one window: a single device write
          made [lsn] durable on behalf of [group] coalesced requests. *)
  | Fault_inject of { site : string; seq : int }
      (** A fault-injection plan fired at hook [site] (e.g. ["disk.write"])
          on the [seq]-th event of that site since arming. *)
  | Lock_wait of { txn : Gist_util.Txn_id.t; name : string; mode : mode }
      (** A transaction blocked on a lock ([name] is the printed lock
          name, e.g. ["rec:…"] or ["txn:…"]). *)
  | Deadlock_victim of { txn : Gist_util.Txn_id.t }
      (** The deadlock detector chose [txn] as the victim. *)
  | Pred_attach of { page : int; owner : Gist_util.Txn_id.t }
      (** A predicate was attached to a node (§4.3/§10.3). *)
  | Pred_check of { page : int; conflicts : int }
      (** An insert ran its step-6 conflict check against the predicates
          attached to [page], finding [conflicts] conflicting ones. *)
  | Bp_hit of { page : int }  (** Buffer-pool hit. *)
  | Bp_miss of { page : int }  (** Buffer-pool miss (disk read follows). *)
  | Bp_evict of { page : int; dirty : bool }
      (** A frame was evicted; [dirty] means a write-back was needed. *)
  | Olc_restart of { page : int }
      (** An optimistic latch-free node visit failed version validation
          (or found the version word write-locked) and retried. *)
  | Olc_fallback of { page : int }
      (** An optimistic visit exhausted its retry budget and fell back to
          the S-latch path. *)
  | Bg_flush of { pages : int; scanned : int }
      (** The background writer completed one flush pass: [pages] dirty
          frames written back out of [scanned] frames examined. *)
  | Fuzzy_checkpoint of { lsn : int64; dirty : int }
      (** The checkpointer took a fuzzy checkpoint anchored at [lsn] with
          [dirty] pages in the logged dirty-page table (no page flushing). *)
  | Snapshot_scan of { ts : int }
      (** A read-only snapshot scan started at commit timestamp [ts] —
          the lock-free MVCC read path (PROTOCOL.md §9). *)

(** One recorded ring entry. *)
type entry = {
  ts : int;  (** Wall-clock nanoseconds ([Clock.now_ns]) at emission. *)
  domain : int;  (** Numeric id of the emitting domain. *)
  seq : int;  (** Per-domain sequence number (total emitted so far). *)
  event : event;
}

val enable : unit -> unit
(** Switch event recording on (process-wide). *)

val disable : unit -> unit
(** Switch event recording off. Rings keep their contents. *)

val enabled : unit -> bool
(** Whether tracing is on — check this before building an expensive event
    payload at an instrumentation point. *)

val set_capacity : int -> unit
(** Ring capacity (entries per domain) for rings created {e after} this
    call; existing rings are unaffected. Default 4096.
    @raise Invalid_argument if the capacity is not positive. *)

val emit : event -> unit
(** Record an event into the calling domain's ring; drops the oldest entry
    when full. No-op while tracing is disabled. *)

val dump : ?last:int -> unit -> entry list
(** Every surviving entry of every domain's ring, merged and sorted by
    timestamp (ties broken by domain and sequence). [last] keeps only the
    most recent [n] entries after merging. *)

val clear : unit -> unit
(** Empty every ring. Call while no other domain is emitting. *)

val pp_event : Format.formatter -> event -> unit
(** One-token rendering, e.g. [rightlink P3->P7] or [bp.miss P12]. *)

val pp_entry : Format.formatter -> entry -> unit
(** [<ts> d<domain> <event>] — the format [trace dump] prints. *)
