open Gist_util
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_acquires =
  Metrics.counter ~unit_:"ops"
    ~help:"lock acquisitions granted (including re-entrant bumps and try_lock successes)"
    "lock.acquire"

let m_waits = Metrics.counter ~unit_:"ops" ~help:"lock requests that had to block" "lock.wait"

let m_deadlocks =
  Metrics.counter ~unit_:"ops" ~help:"deadlock victims (requests aborted)" "lock.deadlock"

let h_wait_ns =
  Metrics.histogram ~unit_:"ns" ~help:"blocked time of granted lock waits" "lock.wait_ns"

exception Deadlock of Txn_id.t

type mode = S | X

type name =
  | Record of Gist_storage.Rid.t
  | Node of Gist_storage.Page_id.t
  | Txn of Txn_id.t

type holder = { h_txn : Txn_id.t; mutable h_mode : mode; mutable count : int }

type waiter = {
  w_txn : Txn_id.t;
  w_mode : mode;
  upgrade : bool;
  mutable granted : bool;
}

type head = { mutable holders : holder list; mutable queue : waiter list }

(* The table is sharded by name hash so the hot grant/release path contends
   only within a shard. Blocking (the rare path) goes through one global
   registry whose mutex is always taken *before* any shard mutex, keeping
   the lock order acyclic: detector: W -> shard; fast path: shard only. *)
type shard = {
  m : Mutex.t;
  c : Condition.t;
  table : (name, head) Hashtbl.t;
  by_txn : (Txn_id.t, (name, unit) Hashtbl.t) Hashtbl.t;
}

type t = {
  shards : shard array;
  w : Mutex.t;  (** Guards [waiting]; ordering: w before any shard mutex. *)
  waiting : (Txn_id.t, name) Hashtbl.t;
  blocked : int Atomic.t;
  deadlocks : int Atomic.t;
}

let n_shards = 64

let create () =
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            m = Mutex.create ();
            c = Condition.create ();
            table = Hashtbl.create 64;
            by_txn = Hashtbl.create 16;
          });
    w = Mutex.create ();
    waiting = Hashtbl.create 64;
    blocked = Atomic.make 0;
    deadlocks = Atomic.make 0;
  }

let shard t name = t.shards.(Hashtbl.hash name land (n_shards - 1))

let pp_mode ppf = function
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"

let pp_name ppf = function
  | Record rid -> Format.fprintf ppf "rec:%a" Gist_storage.Rid.pp rid
  | Node pid -> Format.fprintf ppf "node:%a" Gist_storage.Page_id.pp pid
  | Txn txn -> Format.fprintf ppf "txn:%a" Txn_id.pp txn

let trace_mode = function S -> Trace.S | X -> Trace.X

let compatible a b = match (a, b) with S, S -> true | _ -> false

let head_of s name =
  match Hashtbl.find_opt s.table name with
  | Some h -> h
  | None ->
    let h = { holders = []; queue = [] } in
    Hashtbl.replace s.table name h;
    h

let find_holder head txn = List.find_opt (fun h -> Txn_id.equal h.h_txn txn) head.holders

let note_held s txn name =
  let set =
    match Hashtbl.find_opt s.by_txn txn with
    | Some set -> set
    | None ->
      let set = Hashtbl.create 8 in
      Hashtbl.replace s.by_txn txn set;
      set
  in
  Hashtbl.replace set name ()

let note_released s txn name =
  match Hashtbl.find_opt s.by_txn txn with
  | Some set ->
    Hashtbl.remove set name;
    if Hashtbl.length set = 0 then Hashtbl.remove s.by_txn txn
  | None -> ()

(* Grant the longest grantable prefix of the FIFO queue. Upgrades sit at
   the queue front and become grantable once the requester is the only
   holder. Call with the shard mutex held. *)
let process_queue s name head =
  let granted_any = ref false in
  let rec loop () =
    match head.queue with
    | [] -> ()
    | wtr :: rest ->
      let grantable =
        if wtr.upgrade then
          match head.holders with
          | [ h ] when Txn_id.equal h.h_txn wtr.w_txn -> true
          | _ -> false
        else List.for_all (fun h -> compatible wtr.w_mode h.h_mode) head.holders
      in
      if grantable then begin
        head.queue <- rest;
        (if wtr.upgrade then (
           match find_holder head wtr.w_txn with
           | Some h ->
             h.h_mode <- X;
             h.count <- h.count + 1
           | None -> assert false)
         else begin
           head.holders <-
             { h_txn = wtr.w_txn; h_mode = wtr.w_mode; count = 1 } :: head.holders;
           note_held s wtr.w_txn name
         end);
        wtr.granted <- true;
        granted_any := true;
        loop ()
      end
  in
  loop ();
  if !granted_any then Condition.broadcast s.c

(* Transactions a waiter on [name] waits for: incompatible holders plus
   everyone ahead in the FIFO queue. Takes the shard mutex; call only with
   [t.w] held (w -> shard ordering). *)
let blockers t name for_txn =
  let s = shard t name in
  Mutex.lock s.m;
  let result =
    match Hashtbl.find_opt s.table name with
    | None -> []
    | Some head ->
      if not (List.exists (fun wtr -> Txn_id.equal wtr.w_txn for_txn) head.queue) then
        (* Granted (or gave up) since it registered: not actually waiting. *)
        []
      else begin
        let upgrading = Option.is_some (find_holder head for_txn) in
        let my_mode =
          match List.find_opt (fun wtr -> Txn_id.equal wtr.w_txn for_txn) head.queue with
          | Some wtr -> wtr.w_mode
          | None -> X
        in
        let from_holders =
          List.filter_map
            (fun h ->
              if Txn_id.equal h.h_txn for_txn then None
              else if upgrading then Some h.h_txn (* upgrade waits for every holder *)
              else if compatible my_mode h.h_mode then None
              else Some h.h_txn)
            head.holders
        in
        let rec ahead acc = function
          | [] -> acc
          | wtr :: _ when Txn_id.equal wtr.w_txn for_txn -> acc
          | wtr :: rest -> ahead (wtr.w_txn :: acc) rest
        in
        from_holders @ ahead [] head.queue
      end
  in
  Mutex.unlock s.m;
  result

(* Call with [t.w] held. *)
let would_deadlock t start =
  let visited = Hashtbl.create 16 in
  let rec visit txn =
    if Txn_id.equal txn start && Hashtbl.length visited > 0 then true
    else if Hashtbl.mem visited txn then false
    else begin
      Hashtbl.replace visited txn ();
      match Hashtbl.find_opt t.waiting txn with
      | None -> false
      | Some name -> List.exists visit (blockers t name txn)
    end
  in
  match Hashtbl.find_opt t.waiting start with
  | None -> false
  | Some name ->
    Hashtbl.replace visited start ();
    List.exists visit (blockers t name start)

let lock t txn name mode =
  let s = shard t name in
  Mutex.lock s.m;
  let head = head_of s name in
  match find_holder head txn with
  | Some h when (match (mode, h.h_mode) with X, S -> false | _ -> true) ->
    h.count <- h.count + 1;
    Mutex.unlock s.m;
    Metrics.incr m_acquires
  | existing -> (
    let upgrade = Option.is_some existing in
    let immediately_grantable =
      head.queue = []
      &&
      if upgrade then match head.holders with [ _ ] -> true | _ -> false
      else List.for_all (fun h -> compatible mode h.h_mode) head.holders
    in
    if immediately_grantable then begin
      (if upgrade then (
         match existing with
         | Some h ->
           h.h_mode <- X;
           h.count <- h.count + 1
         | None -> assert false)
       else begin
         head.holders <- { h_txn = txn; h_mode = mode; count = 1 } :: head.holders;
         note_held s txn name
       end);
      Mutex.unlock s.m;
      Metrics.incr m_acquires
    end
    else begin
      Atomic.incr t.blocked;
      Metrics.incr m_waits;
      if Trace.enabled () then
        Trace.emit
          (Trace.Lock_wait
             { txn; name = Format.asprintf "%a" pp_name name; mode = trace_mode mode });
      let wait_t0 = Clock.now_ns () in
      let wtr = { w_txn = txn; w_mode = mode; upgrade; granted = false } in
      (* Upgrades queue-jump: they already hold the resource. *)
      if upgrade then head.queue <- wtr :: head.queue else head.queue <- head.queue @ [ wtr ];
      Mutex.unlock s.m;
      (* Deadlock check under the global registry (w -> shard ordering). *)
      Mutex.lock t.w;
      Hashtbl.replace t.waiting txn name;
      let dead = would_deadlock t txn in
      if dead then begin
        Hashtbl.remove t.waiting txn;
        Atomic.incr t.deadlocks;
        Metrics.incr m_deadlocks;
        if Trace.enabled () then Trace.emit (Trace.Deadlock_victim { txn });
        Mutex.unlock t.w;
        Mutex.lock s.m;
        if not wtr.granted then begin
          head.queue <- List.filter (fun w' -> w' != wtr) head.queue;
          process_queue s name head;
          Mutex.unlock s.m;
          raise (Deadlock txn)
        end
        else begin
          (* Raced a grant: keep the lock, no deadlock after all. *)
          Mutex.unlock s.m;
          Metrics.incr m_acquires
        end
      end
      else begin
        Mutex.unlock t.w;
        Mutex.lock s.m;
        process_queue s name head;
        while not wtr.granted do
          Condition.wait s.c s.m
        done;
        Mutex.unlock s.m;
        Metrics.incr m_acquires;
        Metrics.record h_wait_ns (Float.of_int (Clock.now_ns () - wait_t0));
        Mutex.lock t.w;
        (* Only clear our own registration (we may have re-registered). *)
        (match Hashtbl.find_opt t.waiting txn with
        | Some n when n = name -> Hashtbl.remove t.waiting txn
        | _ -> ());
        Mutex.unlock t.w
      end
    end)

let try_lock t txn name mode =
  let s = shard t name in
  Mutex.lock s.m;
  let head = head_of s name in
  let ok =
    match find_holder head txn with
    | Some h when (match (mode, h.h_mode) with X, S -> false | _ -> true) ->
      h.count <- h.count + 1;
      true
    | Some h when head.queue = [] && List.length head.holders = 1 ->
      h.h_mode <- X;
      h.count <- h.count + 1;
      true
    | Some _ -> false
    | None ->
      if head.queue = [] && List.for_all (fun h -> compatible mode h.h_mode) head.holders
      then begin
        head.holders <- { h_txn = txn; h_mode = mode; count = 1 } :: head.holders;
        note_held s txn name;
        true
      end
      else false
  in
  Mutex.unlock s.m;
  if ok then Metrics.incr m_acquires;
  ok

(* Call with the shard mutex held. *)
let remove_holder s name head txn =
  head.holders <- List.filter (fun h -> not (Txn_id.equal h.h_txn txn)) head.holders;
  note_released s txn name;
  process_queue s name head;
  if head.holders = [] && head.queue = [] then Hashtbl.remove s.table name

let unlock t txn name =
  let s = shard t name in
  Mutex.lock s.m;
  (match Hashtbl.find_opt s.table name with
  | None -> ()
  | Some head -> (
    match find_holder head txn with
    | None -> ()
    | Some h ->
      h.count <- h.count - 1;
      if h.count <= 0 then remove_holder s name head txn));
  Mutex.unlock s.m

let release_in_shard s txn ~keep =
  Mutex.lock s.m;
  (match Hashtbl.find_opt s.by_txn txn with
  | None -> ()
  | Some set ->
    let names = Hashtbl.fold (fun n () acc -> n :: acc) set [] in
    List.iter
      (fun name ->
        if not (keep name) then
          match Hashtbl.find_opt s.table name with
          | Some head -> remove_holder s name head txn
          | None -> ())
      names);
  Mutex.unlock s.m

let release_all t txn = Array.iter (fun s -> release_in_shard s txn ~keep:(fun _ -> false)) t.shards

let release_all_except t txn ~keep = Array.iter (fun s -> release_in_shard s txn ~keep) t.shards

let copy_holders t ~src ~dst =
  (* Snapshot the source shard, then merge into the destination shard.
     A source holder releasing in between leaves a transient extra hold on
     [dst], which its end-of-transaction release_all cleans up — safe
     over-protection. *)
  let s_src = shard t src in
  Mutex.lock s_src.m;
  let snapshot =
    match Hashtbl.find_opt s_src.table src with
    | None -> []
    | Some head -> List.map (fun h -> (h.h_txn, h.h_mode, h.count)) head.holders
  in
  Mutex.unlock s_src.m;
  if snapshot <> [] then begin
    let s_dst = shard t dst in
    Mutex.lock s_dst.m;
    let head = head_of s_dst dst in
    List.iter
      (fun (h_txn, h_mode, count) ->
        match find_holder head h_txn with
        | Some existing ->
          existing.count <- existing.count + count;
          if h_mode = X then existing.h_mode <- X
        | None ->
          head.holders <- { h_txn; h_mode; count } :: head.holders;
          note_held s_dst h_txn dst)
      snapshot;
    Mutex.unlock s_dst.m
  end

let holders t name =
  let s = shard t name in
  Mutex.lock s.m;
  let r =
    match Hashtbl.find_opt s.table name with
    | None -> []
    | Some head -> List.map (fun h -> (h.h_txn, h.h_mode)) head.holders
  in
  Mutex.unlock s.m;
  r

let held t txn name =
  let s = shard t name in
  Mutex.lock s.m;
  let r =
    match Hashtbl.find_opt s.table name with
    | None -> false
    | Some head -> Option.is_some (find_holder head txn)
  in
  Mutex.unlock s.m;
  r

let held_names t txn =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         Mutex.lock s.m;
         let r =
           match Hashtbl.find_opt s.by_txn txn with
           | None -> []
           | Some set -> Hashtbl.fold (fun n () acc -> n :: acc) set []
         in
         Mutex.unlock s.m;
         r)

let blocked_count t = Atomic.get t.blocked

let deadlock_count t = Atomic.get t.deadlocks

let reset_stats t =
  Atomic.set t.blocked 0;
  Atomic.set t.deadlocks 0
