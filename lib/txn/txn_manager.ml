open Gist_util
module Lsn = Gist_wal.Lsn
module Log_record = Gist_wal.Log_record
module Log_manager = Gist_wal.Log_manager
module Group_commit = Gist_wal.Group_commit
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_begins = Metrics.counter ~unit_:"ops" ~help:"transactions started" "txn.begin"

let m_commits = Metrics.counter ~unit_:"ops" ~help:"transactions committed" "txn.commit"

let m_aborts = Metrics.counter ~unit_:"ops" ~help:"transactions rolled back" "txn.abort"

let m_ntas =
  Metrics.counter ~unit_:"ops" ~help:"nested top actions opened (splits, node deletes)" "txn.nta"

let m_force_elided =
  Metrics.counter ~unit_:"ops"
    ~help:"durability barriers dropped because the caller did not need one (rollback: an \
           un-forced abort is re-derived by restart, so the force bought nothing)"
    "wal.force_elided"

let h_commit_latency =
  Metrics.histogram ~unit_:"ns"
    ~help:"commit call latency: log the Commit record, obtain durability per the commit \
           mode, release locks" "wal.commit_latency_ns"

type txn = {
  tid : Txn_id.t;
  mutable last : Lsn.t;
  mutable begin_lsn : Lsn.t;
  mutable status : Log_record.status;
  mutable savepoints : (string * Lsn.t) list;
}

type snapshot = { snap_id : int; snap_ts : int }

let snapshot_ts s = s.snap_ts

(* The live and committed tables are sharded by transaction id, the same
   way the lock manager and buffer pool shard their tables — a global
   transaction-table mutex would otherwise sit on every begin/commit. *)
let n_shards = 64

type 'a shard = { sm : Mutex.t; stbl : (Txn_id.t, 'a) Hashtbl.t }

type t = {
  log : Log_manager.t;
  lock_mgr : Lock_manager.t;
  table : txn shard array;
  committed : int shard array;
      (* tid -> commit timestamp. Only grows during a run; restart builds a
         fresh one in log order, and tids older than the analysis window are
         simply absent — absent-from-both-tables reads as "committed at
         timestamp 0" (visible to every snapshot). *)
  next_id : int Atomic.t;
  next_cts : int Atomic.t;  (* next commit timestamp to reserve *)
  published_cts : int Atomic.t;
      (* highest commit timestamp whose tid->cts mapping is guaranteed
         visible in [committed]. Committers advance it strictly in
         timestamp order (reserve, insert, then spin until cts-1 is
         published), so a snapshot taken at [published_cts] can resolve
         every commit at or below its timestamp — no torn snapshots. *)
  snap_mutex : Mutex.t;
  snaps : (int, int) Hashtbl.t;  (* snapshot id -> snapshot timestamp *)
  mutable next_snap_id : int;
  mutable undo_handler : (txn -> Log_record.t -> unit) option;
  mutable end_hooks : (Txn_id.t -> unit) list;
  mutable commit_mode : Group_commit.mode;
  mutable group : Group_commit.t option;
}

let mk_shards () =
  Array.init n_shards (fun _ -> { sm = Mutex.create (); stbl = Hashtbl.create 8 })

let shard shards tid = shards.(Txn_id.to_int tid land (n_shards - 1))

let create ~log ~locks =
  {
    log;
    lock_mgr = locks;
    table = mk_shards ();
    committed = mk_shards ();
    next_id = Atomic.make 1;
    next_cts = Atomic.make 1;
    published_cts = Atomic.make 0;
    snap_mutex = Mutex.create ();
    snaps = Hashtbl.create 8;
    next_snap_id = 1;
    undo_handler = None;
    end_hooks = [];
    commit_mode = Group_commit.Sync;
    group = None;
  }

let set_undo_handler t f = t.undo_handler <- Some f

let set_durability t ~mode ~group =
  t.commit_mode <- mode;
  t.group <- group

let commit_mode t = t.commit_mode

let add_end_hook t f = t.end_hooks <- t.end_hooks @ [ f ]

let locks t = t.lock_mgr

let log t = t.log

let id txn = txn.tid

let last_lsn txn = txn.last

let find t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.find_opt sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let begin_txn t =
  Metrics.incr m_begins;
  let tid = Txn_id.of_int (Atomic.fetch_and_add t.next_id 1) in
  let lsn = Log_manager.append t.log ~txn:tid ~prev:Lsn.nil Log_record.Begin in
  let txn = { tid; last = lsn; begin_lsn = lsn; status = Log_record.Active; savepoints = [] } in
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl tid txn;
  Mutex.unlock sh.sm;
  Lock_manager.lock t.lock_mgr tid (Lock_manager.Txn tid) Lock_manager.X;
  txn

let log_update t txn ?(ext = "") payload =
  let lsn = Log_manager.append t.log ~txn:txn.tid ~prev:txn.last ~ext payload in
  txn.last <- lsn;
  lsn

let log_nta = log_update

let begin_nta _t txn =
  Metrics.incr m_ntas;
  if Trace.enabled () then Trace.emit (Trace.Nta_begin { txn = txn.tid });
  txn.last

let end_nta t txn pre_nta_lsn =
  ignore
    (log_update t txn
       (Log_record.Clr { action = Log_record.Act_none; undo_next = pre_nta_lsn }));
  if Trace.enabled () then Trace.emit (Trace.Nta_commit { txn = txn.tid })

let run_end_hooks t tid = List.iter (fun f -> f tid) t.end_hooks

let drop t txn =
  let sh = shard t.table txn.tid in
  Mutex.lock sh.sm;
  Hashtbl.remove sh.stbl txn.tid;
  Mutex.unlock sh.sm

(* Durability per commit mode. [Sync] is the classic path: this committer
   pays the physical flush itself. [Group] hands the LSN to the log-writer
   domain and blocks until its window flush covers it — same contract,
   one device write amortized over the window. [Async] enqueues and
   returns: locks and predicates release immediately and durability
   trails by one flush window (an async-committed transaction may roll
   back — atomically — after a crash; PROTOCOL.md §8). With no writer
   wired (plain [create], or the writer stopped), every mode degrades to
   a safe inline flush except [Async], which legitimately leaves the
   record volatile. *)
let commit_durability t lsn =
  match (t.commit_mode, t.group) with
  | Group_commit.Sync, _ | _, None -> Log_manager.force t.log lsn
  | Group_commit.Group, Some g -> Group_commit.submit ~wait:true g lsn
  | Group_commit.Async, Some g -> Group_commit.submit ~wait:false g lsn

(* Durability independent of the configured route: wait on the writer's
   window if one is wired, flush inline otherwise. *)
let forced_durability t lsn =
  match t.group with
  | Some g -> Group_commit.submit ~wait:true g lsn
  | None -> Log_manager.force t.log lsn

(* Assign [tid] the next commit timestamp and publish it in timestamp
   order: reserve, insert the mapping, then advance [published_cts] once
   every earlier timestamp is published. The in-order advance is what makes
   a snapshot at [published_cts] closed under commit order — it can never
   observe timestamp n+1's effects while n's mapping is still in flight.
   Idempotent: restart analysis may mark the same commit twice. *)
let assign_cts t tid =
  let sh = shard t.committed tid in
  Mutex.lock sh.sm;
  if Hashtbl.mem sh.stbl tid then Mutex.unlock sh.sm
  else begin
    let cts = Atomic.fetch_and_add t.next_cts 1 in
    Hashtbl.replace sh.stbl tid cts;
    Mutex.unlock sh.sm;
    while not (Atomic.compare_and_set t.published_cts (cts - 1) cts) do
      Domain.cpu_relax ()
    done
  end

let commit ?(durability = `Mode) t txn =
  Metrics.incr m_commits;
  Metrics.time_ns h_commit_latency (fun () ->
      let commit_rec = log_update t txn Log_record.Commit in
      (match durability with
      | `Mode -> commit_durability t commit_rec
      | `Force -> forced_durability t commit_rec);
      txn.status <- Log_record.Committed;
      assign_cts t txn.tid;
      run_end_hooks t txn.tid;
      ignore (log_update t txn Log_record.End);
      drop t txn;
      Lock_manager.release_all t.lock_mgr txn.tid)

(* Walk the backchain from [txn.last] down to (exclusive) [stop_at],
   invoking the undo handler on each undoable record and honoring CLR
   undo_next jumps so that an undo is never undone. *)
let undo_chain t txn ~stop_at =
  let handler =
    match t.undo_handler with
    | Some h -> h
    | None -> invalid_arg "Txn_manager: no undo handler installed"
  in
  let rec loop lsn =
    if Lsn.( <= ) lsn stop_at || Lsn.equal lsn Lsn.nil then ()
    else
      match Log_manager.read t.log lsn with
      | None ->
        (* Record lost in a crash before being forced: nothing it changed
           can have reached disk either (WAL rule), so skip past it. *)
        loop Lsn.nil
      | Some record -> (
        match record.Log_record.payload with
        | Log_record.Clr { undo_next; _ } -> loop undo_next
        | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.End
        | Log_record.Checkpoint_begin | Log_record.Checkpoint_end _ ->
          loop record.Log_record.prev
        | payload ->
          if Log_record.is_redo_only payload then loop record.Log_record.prev
          else begin
            handler txn record;
            loop record.Log_record.prev
          end)
  in
  loop txn.last

let abort t txn =
  Metrics.incr m_aborts;
  txn.status <- Log_record.Aborting;
  ignore (log_update t txn Log_record.Abort);
  undo_chain t txn ~stop_at:Lsn.nil;
  run_end_hooks t txn.tid;
  ignore (log_update t txn Log_record.End);
  (* No durability barrier: if the un-forced Abort/CLR tail is lost in a
     crash, restart re-derives the very same rollback from the prefix —
     forcing here bought nothing but a device write on the abort path. A
     later commit's flush will carry these records out. *)
  Metrics.incr m_force_elided;
  drop t txn;
  Lock_manager.release_all t.lock_mgr txn.tid

let savepoint _t txn name = txn.savepoints <- (name, txn.last) :: txn.savepoints

let rollback_to_savepoint t txn name =
  let lsn = List.assoc name txn.savepoints in
  undo_chain t txn ~stop_at:lsn;
  (* Later savepoints are gone; the named one stays reusable. *)
  let rec trim = function
    | [] -> []
    | (n, _) :: _ as l when n = name -> l
    | _ :: rest -> trim rest
  in
  txn.savepoints <- trim txn.savepoints

let is_committed t tid =
  let sh = shard t.committed tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.mem sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let is_active t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.mem sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let commit_ts_of t tid =
  let sh = shard t.committed tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.find_opt sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let published_cts t = Atomic.get t.published_cts

(* Snapshot-visibility core: did [tid] commit with a timestamp at or below
   [ts]? The committed table is consulted first — a committing transaction
   inserts its mapping before [drop] removes it from the live table, so
   checking in this order never sees a committed transaction as merely
   live. A tid in neither table is a commit from before the current
   analysis window (restart rebuilt the tables and its Commit record
   predates the scan): timestamp 0, visible to every snapshot.

   The None branch must not trust a single [is_active] look: between the
   first [commit_ts_of] and the [is_active] check the transaction can
   commit (insert its mapping, log End — a WAL append, so the window is
   wide) and drop from the live table, which would read as
   absent-from-both = historical and make a post-snapshot commit visible.
   The committed table only grows during a run, so re-checking it after
   [is_active] returns false is authoritative: [Some cts] now is an
   in-window commit to compare against [ts]; still [None] means the tid
   really predates the analysis window. *)
let committed_as_of t ~ts tid =
  (not (Txn_id.is_some tid))
  ||
  match commit_ts_of t tid with
  | Some cts -> cts <= ts
  | None ->
    (not (is_active t tid))
    && (match commit_ts_of t tid with Some cts -> cts <= ts | None -> true)

let begin_snapshot t =
  Mutex.lock t.snap_mutex;
  let snap_ts = Atomic.get t.published_cts in
  let snap_id = t.next_snap_id in
  t.next_snap_id <- snap_id + 1;
  Hashtbl.replace t.snaps snap_id snap_ts;
  Mutex.unlock t.snap_mutex;
  { snap_id; snap_ts }

let end_snapshot t snap =
  Mutex.lock t.snap_mutex;
  Hashtbl.remove t.snaps snap.snap_id;
  Mutex.unlock t.snap_mutex

let active_snapshots t =
  Mutex.lock t.snap_mutex;
  let n = Hashtbl.length t.snaps in
  Mutex.unlock t.snap_mutex;
  n

(* The oldest-active-snapshot watermark: version GC may reclaim an entry
   whose deleter committed at or below this. [max_int] when no snapshot is
   active (GC degenerates to the pre-MVCC rule). Registration and watermark
   reads serialize on [snap_mutex], so a snapshot can never slip under a
   watermark computed after its registration. *)
let oldest_snapshot_ts t =
  Mutex.lock t.snap_mutex;
  let r = Hashtbl.fold (fun _ ts acc -> min ts acc) t.snaps max_int in
  Mutex.unlock t.snap_mutex;
  r

let min_active_snap_id t =
  Mutex.lock t.snap_mutex;
  let r = Hashtbl.fold (fun id _ acc -> min id acc) t.snaps max_int in
  Mutex.unlock t.snap_mutex;
  r

let snapshot_barrier t =
  Mutex.lock t.snap_mutex;
  let r = t.next_snap_id in
  Mutex.unlock t.snap_mutex;
  r

let active_txns t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sm;
      let acc =
        Hashtbl.fold (fun tid txn acc -> (tid, txn.status, txn.last) :: acc) sh.stbl acc
      in
      Mutex.unlock sh.sm;
      acc)
    [] t.table

let commit_lsn t =
  (* Snapshot the log position before scanning the shards: a transaction
     that begins mid-scan (and is missed) appended its Begin record after
     this read, so its begin_lsn is >= the snapshot — the fold-with-limit
     stays a valid lower bound without a global table lock. *)
  let limit = Int64.add (Log_manager.last_lsn t.log) 1L in
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sm;
      let acc = Hashtbl.fold (fun _ txn acc -> Lsn.min acc txn.begin_lsn) sh.stbl acc in
      Mutex.unlock sh.sm;
      acc)
    limit t.table

let restore_txn t tid ~status ~last_lsn =
  let txn = { tid; last = last_lsn; begin_lsn = Lsn.nil; status; savepoints = [] } in
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl tid txn;
  Mutex.unlock sh.sm;
  (* CAS-max: ids issued after restart must clear every restored id. *)
  let want = Txn_id.to_int tid + 1 in
  let rec bump () =
    let cur = Atomic.get t.next_id in
    if cur < want && not (Atomic.compare_and_set t.next_id cur want) then bump ()
  in
  bump ();
  txn

(* Restart analysis replays Commit records in LSN order, so timestamps
   assigned here reproduce the pre-crash commit order over the analysis
   window — exactly what post-restart snapshots need. *)
let mark_committed t tid = assign_cts t tid

let forget_txn t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.remove sh.stbl tid;
  Mutex.unlock sh.sm

let finish_txn t txn =
  ignore (log_update t txn Log_record.End);
  drop t txn

let abort_for_restart t txn =
  txn.status <- Log_record.Aborting;
  undo_chain t txn ~stop_at:Lsn.nil;
  run_end_hooks t txn.tid;
  ignore (log_update t txn Log_record.End);
  drop t txn;
  Lock_manager.release_all t.lock_mgr txn.tid
