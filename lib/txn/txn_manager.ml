open Gist_util
module Lsn = Gist_wal.Lsn
module Log_record = Gist_wal.Log_record
module Log_manager = Gist_wal.Log_manager
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_begins = Metrics.counter ~unit_:"ops" ~help:"transactions started" "txn.begin"

let m_commits = Metrics.counter ~unit_:"ops" ~help:"transactions committed" "txn.commit"

let m_aborts = Metrics.counter ~unit_:"ops" ~help:"transactions rolled back" "txn.abort"

let m_ntas =
  Metrics.counter ~unit_:"ops" ~help:"nested top actions opened (splits, node deletes)" "txn.nta"

type txn = {
  tid : Txn_id.t;
  mutable last : Lsn.t;
  mutable begin_lsn : Lsn.t;
  mutable status : Log_record.status;
  mutable savepoints : (string * Lsn.t) list;
}

(* The live and committed tables are sharded by transaction id, the same
   way the lock manager and buffer pool shard their tables — a global
   transaction-table mutex would otherwise sit on every begin/commit. *)
let n_shards = 64

type 'a shard = { sm : Mutex.t; stbl : (Txn_id.t, 'a) Hashtbl.t }

type t = {
  log : Log_manager.t;
  lock_mgr : Lock_manager.t;
  table : txn shard array;
  committed : unit shard array;
  next_id : int Atomic.t;
  mutable undo_handler : (txn -> Log_record.t -> unit) option;
  mutable end_hooks : (Txn_id.t -> unit) list;
}

let mk_shards () =
  Array.init n_shards (fun _ -> { sm = Mutex.create (); stbl = Hashtbl.create 8 })

let shard shards tid = shards.(Txn_id.to_int tid land (n_shards - 1))

let create ~log ~locks =
  {
    log;
    lock_mgr = locks;
    table = mk_shards ();
    committed = mk_shards ();
    next_id = Atomic.make 1;
    undo_handler = None;
    end_hooks = [];
  }

let set_undo_handler t f = t.undo_handler <- Some f

let add_end_hook t f = t.end_hooks <- t.end_hooks @ [ f ]

let locks t = t.lock_mgr

let log t = t.log

let id txn = txn.tid

let last_lsn txn = txn.last

let find t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.find_opt sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let begin_txn t =
  Metrics.incr m_begins;
  let tid = Txn_id.of_int (Atomic.fetch_and_add t.next_id 1) in
  let lsn = Log_manager.append t.log ~txn:tid ~prev:Lsn.nil Log_record.Begin in
  let txn = { tid; last = lsn; begin_lsn = lsn; status = Log_record.Active; savepoints = [] } in
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl tid txn;
  Mutex.unlock sh.sm;
  Lock_manager.lock t.lock_mgr tid (Lock_manager.Txn tid) Lock_manager.X;
  txn

let log_update t txn ?(ext = "") payload =
  let lsn = Log_manager.append t.log ~txn:txn.tid ~prev:txn.last ~ext payload in
  txn.last <- lsn;
  lsn

let log_nta = log_update

let begin_nta _t txn =
  Metrics.incr m_ntas;
  if Trace.enabled () then Trace.emit (Trace.Nta_begin { txn = txn.tid });
  txn.last

let end_nta t txn pre_nta_lsn =
  ignore
    (log_update t txn
       (Log_record.Clr { action = Log_record.Act_none; undo_next = pre_nta_lsn }));
  if Trace.enabled () then Trace.emit (Trace.Nta_commit { txn = txn.tid })

let run_end_hooks t tid = List.iter (fun f -> f tid) t.end_hooks

let drop t txn =
  let sh = shard t.table txn.tid in
  Mutex.lock sh.sm;
  Hashtbl.remove sh.stbl txn.tid;
  Mutex.unlock sh.sm

let commit t txn =
  Metrics.incr m_commits;
  let commit_rec = log_update t txn Log_record.Commit in
  Log_manager.force t.log commit_rec;
  txn.status <- Log_record.Committed;
  let sh = shard t.committed txn.tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl txn.tid ();
  Mutex.unlock sh.sm;
  run_end_hooks t txn.tid;
  ignore (log_update t txn Log_record.End);
  drop t txn;
  Lock_manager.release_all t.lock_mgr txn.tid

(* Walk the backchain from [txn.last] down to (exclusive) [stop_at],
   invoking the undo handler on each undoable record and honoring CLR
   undo_next jumps so that an undo is never undone. *)
let undo_chain t txn ~stop_at =
  let handler =
    match t.undo_handler with
    | Some h -> h
    | None -> invalid_arg "Txn_manager: no undo handler installed"
  in
  let rec loop lsn =
    if Lsn.( <= ) lsn stop_at || Lsn.equal lsn Lsn.nil then ()
    else
      match Log_manager.read t.log lsn with
      | None ->
        (* Record lost in a crash before being forced: nothing it changed
           can have reached disk either (WAL rule), so skip past it. *)
        loop Lsn.nil
      | Some record -> (
        match record.Log_record.payload with
        | Log_record.Clr { undo_next; _ } -> loop undo_next
        | Log_record.Begin | Log_record.Commit | Log_record.Abort | Log_record.End
        | Log_record.Checkpoint_begin | Log_record.Checkpoint_end _ ->
          loop record.Log_record.prev
        | payload ->
          if Log_record.is_redo_only payload then loop record.Log_record.prev
          else begin
            handler txn record;
            loop record.Log_record.prev
          end)
  in
  loop txn.last

let abort t txn =
  Metrics.incr m_aborts;
  txn.status <- Log_record.Aborting;
  ignore (log_update t txn Log_record.Abort);
  undo_chain t txn ~stop_at:Lsn.nil;
  run_end_hooks t txn.tid;
  ignore (log_update t txn Log_record.End);
  Log_manager.force t.log txn.last;
  drop t txn;
  Lock_manager.release_all t.lock_mgr txn.tid

let savepoint _t txn name = txn.savepoints <- (name, txn.last) :: txn.savepoints

let rollback_to_savepoint t txn name =
  let lsn = List.assoc name txn.savepoints in
  undo_chain t txn ~stop_at:lsn;
  (* Later savepoints are gone; the named one stays reusable. *)
  let rec trim = function
    | [] -> []
    | (n, _) :: _ as l when n = name -> l
    | _ :: rest -> trim rest
  in
  txn.savepoints <- trim txn.savepoints

let is_committed t tid =
  let sh = shard t.committed tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.mem sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let is_active t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  let r = Hashtbl.mem sh.stbl tid in
  Mutex.unlock sh.sm;
  r

let active_txns t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sm;
      let acc =
        Hashtbl.fold (fun tid txn acc -> (tid, txn.status, txn.last) :: acc) sh.stbl acc
      in
      Mutex.unlock sh.sm;
      acc)
    [] t.table

let commit_lsn t =
  (* Snapshot the log position before scanning the shards: a transaction
     that begins mid-scan (and is missed) appended its Begin record after
     this read, so its begin_lsn is >= the snapshot — the fold-with-limit
     stays a valid lower bound without a global table lock. *)
  let limit = Int64.add (Log_manager.last_lsn t.log) 1L in
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.sm;
      let acc = Hashtbl.fold (fun _ txn acc -> Lsn.min acc txn.begin_lsn) sh.stbl acc in
      Mutex.unlock sh.sm;
      acc)
    limit t.table

let restore_txn t tid ~status ~last_lsn =
  let txn = { tid; last = last_lsn; begin_lsn = Lsn.nil; status; savepoints = [] } in
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl tid txn;
  Mutex.unlock sh.sm;
  (* CAS-max: ids issued after restart must clear every restored id. *)
  let want = Txn_id.to_int tid + 1 in
  let rec bump () =
    let cur = Atomic.get t.next_id in
    if cur < want && not (Atomic.compare_and_set t.next_id cur want) then bump ()
  in
  bump ();
  txn

let mark_committed t tid =
  let sh = shard t.committed tid in
  Mutex.lock sh.sm;
  Hashtbl.replace sh.stbl tid ();
  Mutex.unlock sh.sm

let forget_txn t tid =
  let sh = shard t.table tid in
  Mutex.lock sh.sm;
  Hashtbl.remove sh.stbl tid;
  Mutex.unlock sh.sm

let finish_txn t txn =
  ignore (log_update t txn Log_record.End);
  drop t txn

let abort_for_restart t txn =
  txn.status <- Log_record.Aborting;
  undo_chain t txn ~stop_at:Lsn.nil;
  run_end_hooks t txn.tid;
  ignore (log_update t txn Log_record.End);
  drop t txn;
  Lock_manager.release_all t.lock_mgr txn.tid
