(** Transaction manager.

    Owns the transaction table, assigns ids, writes Begin/Commit/Abort/End
    records, and drives rollback (total or to a savepoint) by walking the
    transaction's log backchain. The actual compensating page changes are
    performed by an *undo handler* injected by the index layer
    ([set_undo_handler]), which applies the inverse of a record, writes the
    CLR, and returns the CLR's LSN — keeping this module free of any GiST
    knowledge, as §9 prescribes.

    Every transaction X-locks its own id on start (released at end); the
    predicate manager uses that to let operations "block on a predicate"
    by S-locking the owner's id (§10.3).

    Commit obtains durability for the Commit record before releasing locks
    — inline ([Sync]), via the group-commit writer ([Group]), or not at
    all until the next flush window ([Async], pipelined durability) — then
    writes End; see [set_durability]. Abort deliberately takes {e no}
    durability barrier: a crash that loses the un-forced rollback tail
    just makes restart redo the same rollback ([wal.force_elided] counts
    the saved device writes). *)

type t

type txn

type snapshot
(** A registered read-only snapshot: a commit-timestamp horizon plus a
    registry entry that holds back version GC (the oldest-active-snapshot
    watermark) until [end_snapshot]. *)

val create : log:Gist_wal.Log_manager.t -> locks:Lock_manager.t -> t

val set_undo_handler : t -> (txn -> Gist_wal.Log_record.t -> unit) -> unit
(** [handler txn record] must apply the compensating action for [record]
    and log the CLR via [log_update]. Required before any abort. *)

val set_durability : t -> mode:Gist_wal.Group_commit.mode -> group:Gist_wal.Group_commit.t option -> unit
(** Route commit durability: [Sync] (the [create] default) forces the log
    inline; [Group] submits to [group]'s log-writer domain and waits;
    [Async] submits without waiting — locks release immediately and
    durability trails by one flush window (PROTOCOL.md §8). [Group]/
    [Async] degrade to the safe [Sync] behavior when [group] is [None]. *)

val commit_mode : t -> Gist_wal.Group_commit.mode
(** The durability route commits currently take. *)

val add_end_hook : t -> (Gist_util.Txn_id.t -> unit) -> unit
(** Called (in registration order) when a transaction commits or finishes
    aborting, before its locks are released — used to drop predicate
    attachments. *)

val locks : t -> Lock_manager.t
val log : t -> Gist_wal.Log_manager.t

val begin_txn : t -> txn
val id : txn -> Gist_util.Txn_id.t
val last_lsn : txn -> Gist_wal.Lsn.t
val find : t -> Gist_util.Txn_id.t -> txn option

val log_update : t -> txn -> ?ext:string -> Gist_wal.Log_record.payload -> Gist_wal.Lsn.t
(** Append a record owned by [txn] (backchained) and advance its last LSN.
    For CLRs, the [undo_next] inside the payload governs further undo.
    [ext] tags the record with its access method for recovery dispatch. *)

val log_nta : t -> txn -> ?ext:string -> Gist_wal.Log_record.payload -> Gist_wal.Lsn.t
(** Append a record that is part of a nested top action: owned by the
    transaction for undo-on-crash purposes, but skippable once the NTA is
    closed with [end_nta]. Identical to [log_update]; the distinction is
    documentation. *)

val begin_nta : t -> txn -> Gist_wal.Lsn.t
(** Remember the backchain position; pair with [end_nta]. *)

val end_nta : t -> txn -> Gist_wal.Lsn.t -> unit
(** Close a nested top action by writing a dummy CLR whose [undo_next]
    points at the pre-NTA position, making the enclosed records invisible
    to any later undo ("individually committed atomic unit of work"). *)

val commit : ?durability:[ `Mode | `Force ] -> t -> txn -> unit
(** Commit. [~durability:`Mode] (default) obtains durability per the
    configured commit mode; [`Force] waits for the commit record to be
    durable even under [Async] — for work whose loss cannot be expressed
    as transaction rollback, e.g. the system transaction that formats a
    new tree's root: were its records lost in a crash, the tree would
    not merely lose updates, it would never have existed. *)

val abort : t -> txn -> unit

val savepoint : t -> txn -> string -> unit
val rollback_to_savepoint : t -> txn -> string -> unit
(** Undo this transaction's updates back to the savepoint. Locks acquired
    since are retained (conservative; the paper only constrains signaling
    locks, §10.2). @raise Not_found if no such savepoint. *)

val is_committed : t -> Gist_util.Txn_id.t -> bool
val is_active : t -> Gist_util.Txn_id.t -> bool

val commit_ts_of : t -> Gist_util.Txn_id.t -> int option
(** The commit timestamp assigned to [tid], if it committed within the
    current table's window (since the last restart's analysis anchor). *)

val published_cts : t -> int
(** The highest commit timestamp whose tid->timestamp mapping is visible.
    Advanced strictly in timestamp order by committers, so every commit at
    or below it can be resolved by [commit_ts_of]. *)

val committed_as_of : t -> ts:int -> Gist_util.Txn_id.t -> bool
(** Whether [tid]'s effects are visible to a snapshot taken at commit
    timestamp [ts]: it committed with a timestamp [<= ts], or it is absent
    from both transaction tables (a commit from before the analysis
    window — timestamp 0). [Txn_id.none] is visible to every snapshot
    (bulk-loaded entries). *)

val begin_snapshot : t -> snapshot
(** Capture the current published commit timestamp and register it so the
    GC watermark ([oldest_snapshot_ts]) cannot advance past it. *)

val end_snapshot : t -> snapshot -> unit
(** Deregister; idempotent. *)

val snapshot_ts : snapshot -> int

val active_snapshots : t -> int
(** Number of registered snapshots. *)

val oldest_snapshot_ts : t -> int
(** The oldest-active-snapshot watermark: version GC may reclaim an entry
    only if its deleter committed at or below this. [max_int] when no
    snapshot is registered. *)

val min_active_snap_id : t -> int
(** Smallest registration id still active ([max_int] when none) — paired
    with [snapshot_barrier] to decide when a retired page's deferred free
    is safe (every snapshot that could hold a pointer into it has ended). *)

val snapshot_barrier : t -> int
(** The registration id the next [begin_snapshot] will receive. Snapshots
    with ids at or above a barrier taken now began after the present
    instant. *)

val active_txns : t -> (Gist_util.Txn_id.t * Gist_wal.Log_record.status * Gist_wal.Lsn.t) list
(** Snapshot for checkpointing. *)

val commit_lsn : t -> Gist_wal.Lsn.t
(** The Commit_LSN of [Moh90b]: a page whose LSN is below this belongs
    entirely to committed transactions, letting garbage collection skip
    per-entry committed checks. *)

val restore_txn :
  t -> Gist_util.Txn_id.t -> status:Gist_wal.Log_record.status -> last_lsn:Gist_wal.Lsn.t -> txn
(** Recreate a transaction-table entry during restart analysis. *)

val mark_committed : t -> Gist_util.Txn_id.t -> unit
(** Record a commit observed during restart analysis. *)

val finish_txn : t -> txn -> unit
(** Write End and drop the entry (restart undo uses this after rolling a
    loser back). *)

val forget_txn : t -> Gist_util.Txn_id.t -> unit
(** Drop a transaction-table entry without logging (analysis saw its End
    record). *)

val abort_for_restart : t -> txn -> unit
(** Roll back a loser transaction during restart: like [abort] but assumes
    the Abort record may already exist. *)
