module Metrics = Gist_obs.Metrics

let m_reads = Metrics.counter ~unit_:"ops" ~help:"page reads issued to the disk" "disk.read"

let m_writes = Metrics.counter ~unit_:"ops" ~help:"page writes issued to the disk" "disk.write"

let m_reads_unalloc =
  Metrics.counter ~unit_:"ops"
    ~help:"reads of never-written pages (served as zeros; suspicious outside redo)"
    "disk.read_unallocated"

let h_read_ns = Metrics.histogram ~unit_:"ns" ~help:"page read latency" "disk.read_ns"

let h_write_ns = Metrics.histogram ~unit_:"ns" ~help:"page write latency" "disk.write_ns"

type write_effect = Write_full | Write_torn of Bytes.t

type hooks = {
  before_read : Page_id.t -> unit;
  before_write : Page_id.t -> Bytes.t -> write_effect;
  after_write : Page_id.t -> unit;
}

type t = {
  mutex : Mutex.t;
  mutable pages : Bytes.t option array;
  mutable sums : int array; (* checksum of the *intended* image of each page *)
  mutable high : int;
  page_size : int;
  mutable io_delay_ns : int;
  reads : int Atomic.t;
  writes : int Atomic.t;
  reads_unallocated : int Atomic.t;
  mutable hooks : hooks option; (* fault injection; one branch per I/O when off *)
}

(* FNV-1a over the image: cheap, deterministic, good enough to detect a
   torn write (the sidecar plays the role of the per-page checksum a real
   pager embeds — keeping it beside the page avoids disturbing the node
   layout). *)
let checksum img =
  let h = ref 0x2f29ce484222325 in
  for i = 0 to Bytes.length img - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get img i)) * 0x100000001b3
  done;
  !h

let create ?(io_delay_ns = 0) ~page_size () =
  if page_size < 64 then invalid_arg "Disk.create: page_size too small";
  {
    mutex = Mutex.create ();
    pages = Array.make 64 None;
    sums = Array.make 64 0;
    high = 0;
    page_size;
    io_delay_ns;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    reads_unallocated = Atomic.make 0;
    hooks = None;
  }

let page_size t = t.page_size

let set_hooks t hooks = t.hooks <- hooks

(* The simulated latency *blocks* the calling domain (a sleeping syscall),
   exactly like a synchronous disk read: other domains keep the CPU. This
   is what lets a single-CPU host still demonstrate the paper's
   latches-not-held-across-I/O claim — protocols that overlap I/O waits
   scale with domains, protocols that hold a latch across the wait do
   not. *)
let spin ns = if ns > 0 then Unix.sleepf (Float.of_int ns /. 1e9)

let ensure t pid =
  let n = Array.length t.pages in
  if pid >= n then begin
    let ncap = max (pid + 1) (n * 2) in
    let npages = Array.make ncap None in
    Array.blit t.pages 0 npages 0 n;
    t.pages <- npages;
    let nsums = Array.make ncap 0 in
    Array.blit t.sums 0 nsums 0 n;
    t.sums <- nsums
  end;
  if pid >= t.high then t.high <- pid + 1

let read t pid =
  (match t.hooks with None -> () | Some h -> h.before_read pid);
  let pid = Page_id.to_int pid in
  Atomic.incr t.reads;
  Metrics.incr m_reads;
  Metrics.time_ns h_read_ns (fun () ->
      spin t.io_delay_ns;
      Mutex.lock t.mutex;
      let img =
        if pid < Array.length t.pages then
          match t.pages.(pid) with
          | Some b -> Some (Bytes.copy b)
          | None -> None
        else None
      in
      Mutex.unlock t.mutex;
      match img with
      | Some b -> b
      | None ->
        Atomic.incr t.reads_unallocated;
        Metrics.incr m_reads_unalloc;
        Bytes.make t.page_size '\000')

let write t pid img =
  if Bytes.length img <> t.page_size then
    invalid_arg
      (Printf.sprintf "Disk.write: image is %d bytes, page size is %d" (Bytes.length img)
         t.page_size);
  let effect = match t.hooks with None -> Write_full | Some h -> h.before_write pid img in
  let ipid = Page_id.to_int pid in
  Atomic.incr t.writes;
  Metrics.incr m_writes;
  Metrics.time_ns h_write_ns (fun () ->
      spin t.io_delay_ns;
      Mutex.lock t.mutex;
      ensure t ipid;
      (* The sidecar checksum always covers the *intended* image; a torn
         effect persists different bytes, so [verify] later fails — the
         simulated analogue of a page whose embedded checksum no longer
         matches its content. *)
      t.sums.(ipid) <- checksum img;
      (t.pages.(ipid) <-
        (match effect with
        | Write_full -> Some (Bytes.copy img)
        | Write_torn persisted -> Some (Bytes.copy persisted)));
      Mutex.unlock t.mutex);
  match t.hooks with None -> () | Some h -> h.after_write pid

let verify t pid =
  let pid = Page_id.to_int pid in
  Mutex.lock t.mutex;
  let ok =
    if pid < Array.length t.pages then
      match t.pages.(pid) with None -> true | Some b -> checksum b = t.sums.(pid)
    else true
  in
  Mutex.unlock t.mutex;
  ok

let page_count t =
  Mutex.lock t.mutex;
  let n = t.high in
  Mutex.unlock t.mutex;
  n

let reads t = Atomic.get t.reads

let writes t = Atomic.get t.writes

let reads_unallocated t = Atomic.get t.reads_unallocated

let reset_stats t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0;
  Atomic.set t.reads_unallocated 0

let set_io_delay_ns t ns = t.io_delay_ns <- ns
