module Metrics = Gist_obs.Metrics

let m_reads = Metrics.counter ~unit_:"ops" ~help:"page reads issued to the disk" "disk.read"

let m_writes = Metrics.counter ~unit_:"ops" ~help:"page writes issued to the disk" "disk.write"

let h_read_ns = Metrics.histogram ~unit_:"ns" ~help:"page read latency" "disk.read_ns"

let h_write_ns = Metrics.histogram ~unit_:"ns" ~help:"page write latency" "disk.write_ns"

type t = {
  mutex : Mutex.t;
  mutable pages : Bytes.t option array;
  mutable high : int;
  page_size : int;
  mutable io_delay_ns : int;
  reads : int Atomic.t;
  writes : int Atomic.t;
}

let create ?(io_delay_ns = 0) ~page_size () =
  if page_size < 64 then invalid_arg "Disk.create: page_size too small";
  {
    mutex = Mutex.create ();
    pages = Array.make 64 None;
    high = 0;
    page_size;
    io_delay_ns;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
  }

let page_size t = t.page_size

(* The simulated latency *blocks* the calling domain (a sleeping syscall),
   exactly like a synchronous disk read: other domains keep the CPU. This
   is what lets a single-CPU host still demonstrate the paper's
   latches-not-held-across-I/O claim — protocols that overlap I/O waits
   scale with domains, protocols that hold a latch across the wait do
   not. *)
let spin ns = if ns > 0 then Unix.sleepf (Float.of_int ns /. 1e9)

let ensure t pid =
  let n = Array.length t.pages in
  if pid >= n then begin
    let ncap = max (pid + 1) (n * 2) in
    let npages = Array.make ncap None in
    Array.blit t.pages 0 npages 0 n;
    t.pages <- npages
  end;
  if pid >= t.high then t.high <- pid + 1

let read t pid =
  let pid = Page_id.to_int pid in
  Atomic.incr t.reads;
  Metrics.incr m_reads;
  Metrics.time_ns h_read_ns (fun () ->
      spin t.io_delay_ns;
      Mutex.lock t.mutex;
      let img =
        if pid < Array.length t.pages then
          match t.pages.(pid) with
          | Some b -> Bytes.copy b
          | None -> Bytes.make t.page_size '\000'
        else Bytes.make t.page_size '\000'
      in
      Mutex.unlock t.mutex;
      img)

let write t pid img =
  let pid = Page_id.to_int pid in
  if Bytes.length img <> t.page_size then
    invalid_arg
      (Printf.sprintf "Disk.write: image is %d bytes, page size is %d" (Bytes.length img)
         t.page_size);
  Atomic.incr t.writes;
  Metrics.incr m_writes;
  Metrics.time_ns h_write_ns (fun () ->
      spin t.io_delay_ns;
      Mutex.lock t.mutex;
      ensure t pid;
      t.pages.(pid) <- Some (Bytes.copy img);
      Mutex.unlock t.mutex)

let page_count t =
  Mutex.lock t.mutex;
  let n = t.high in
  Mutex.unlock t.mutex;
  n

let reads t = Atomic.get t.reads

let writes t = Atomic.get t.writes

let reset_stats t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0

let set_io_delay_ns t ns = t.io_delay_ns <- ns
