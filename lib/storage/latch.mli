(** Reader–writer latches.

    Latches are the paper's short-duration physical synchronization
    primitive (§5, footnote 8): addressed physically, cheap to set, never
    checked for deadlock — holders must keep their usage pattern deadlock
    free. They protect buffer-pool frames; they are unrelated to the lock
    manager's transactional locks.

    Writer-preferring: a pending X request blocks new S admissions, so
    splits are not starved by scan streams.

    The module keeps a per-domain count of held latches so the buffer pool
    can verify (and the benchmarks can report) the paper's central claim
    that no latch is ever held across an I/O.

    Observability: every grant bumps the [latch.acquire] counter, and
    contended acquisitions additionally bump [latch.wait] and record their
    blocked time in the [latch.wait_ns] histogram (see OBSERVABILITY.md);
    with tracing enabled, [Latch_acquire]/[Latch_wait] events are emitted
    carrying the id set by {!set_id}. *)

type t

(** [S] shared (readers), [X] exclusive (one writer). *)
type mode = S | X

val create : unit -> t
(** A fresh, unheld latch. *)

val set_id : t -> int -> unit
(** Label the latch with the page id it protects, for trace events. The
    buffer pool calls this whenever it (re)binds a frame to a page. *)

val acquire : t -> mode -> unit
(** Block until the latch is grantable in [mode], then take it. *)

val release : t -> mode -> unit
(** Release a held latch; [mode] must match the grant. *)

val try_acquire : t -> mode -> bool
(** Non-blocking acquire; [true] on success. *)

val with_latch : t -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val held_by_self : unit -> int
(** Number of latches currently held by the calling domain (debug/stats). *)

val reset_held : unit -> unit
(** Crash simulation: zero the calling domain's held-latch count. A real
    power loss takes the executing threads with it; a simulated one
    unwinds them with an exception, and ops interrupted mid-latch leave
    this domain-local counter nonzero even though the latches themselves
    are volatile and discarded. [Gist_fault] calls this when it
    materializes a crash so post-restart [latches_held_across_io]
    accounting starts honest. *)

val pp_mode : Format.formatter -> mode -> unit
