(** Reader–writer latches.

    Latches are the paper's short-duration physical synchronization
    primitive (§5, footnote 8): addressed physically, cheap to set, never
    checked for deadlock — holders must keep their usage pattern deadlock
    free. They protect buffer-pool frames; they are unrelated to the lock
    manager's transactional locks.

    Writer-preferring: a pending X request blocks new S admissions, so
    splits are not starved by scan streams.

    Each latch also carries a {e version word} (a seqlock) so readers can
    skip latching entirely: even = no writer, odd = write-locked. Every X
    acquisition bumps it to odd before the grant returns and back to even
    on release; S traffic never touches it. An optimistic reader snapshots
    an even version, reads the protected data raw, and {!validate}s that
    the word is unchanged — success means no writer held (or entered) the
    latch anywhere inside the read window, so the data read is the same an
    S-latched reader would have seen. See PROTOCOL.md §7 for the traversal
    protocol built on top.

    The module keeps a per-domain count of held latches so the buffer pool
    can verify (and the benchmarks can report) the paper's central claim
    that no latch is ever held across an I/O.

    Observability: every grant bumps the [latch.acquire] counter, and
    contended acquisitions additionally bump [latch.wait] and record their
    blocked time in the [latch.wait_ns] histogram (see OBSERVABILITY.md);
    with tracing enabled, [Latch_acquire]/[Latch_wait] events are emitted
    carrying the id set by {!set_id}. *)

type t

(** [S] shared (readers), [X] exclusive (one writer). *)
type mode = S | X

val create : unit -> t
(** A fresh, unheld latch. *)

val set_id : t -> int -> unit
(** Label the latch with the page id it protects, for trace events. The
    buffer pool calls this whenever it (re)binds a frame to a page. *)

val acquire : t -> mode -> unit
(** Block until the latch is grantable in [mode], then take it. *)

val release : t -> mode -> unit
(** Release a held latch; [mode] must match the grant. *)

val try_acquire : t -> mode -> bool
(** Non-blocking acquire; [true] on success. *)

val with_latch : t -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

(** {1 Optimistic (latch-free) reads}

    The version-word lifecycle: starts at [0]; [acquire t X] (and a
    successful [try_acquire t X]) bumps it to odd; [release t X] bumps it
    back to even. A full optimistic read is therefore:

    {[
      match Latch.optimistic l with
      | None -> (* writer active; retry or fall back to acquire *)
      | Some v0 ->
        (* ... read protected data, tolerating torn values ... *)
        if Latch.validate l v0 then (* read is as-if S-latched *)
        else (* conflict: discard and retry *)
    ]}

    Between [optimistic] and a successful [validate] no X grant began or
    ended, hence no writer mutated the protected data during the window.
    Reads inside the window must tolerate garbage (they race with nothing
    on success, but the {e attempt} may race and observe torn state before
    failing validation) — in OCaml that means they may see stale values or
    raise, but never corrupt memory. *)

val version : t -> int
(** Current value of the version word (odd while an X holder is inside). *)

val optimistic : t -> int option
(** [Some v] with [v] even if no writer currently holds the latch — the
    snapshot to later {!validate} — or [None] while the word is odd. *)

val validate : t -> int -> bool
(** [validate t v0] is [true] iff the version word still equals [v0]: no X
    acquisition started or finished since the matching {!optimistic}. *)

val held_by_self : unit -> int
(** Number of latches currently held by the calling domain (debug/stats). *)

val reset_held : unit -> unit
(** Crash simulation: zero the calling domain's held-latch count. A real
    power loss takes the executing threads with it; a simulated one
    unwinds them with an exception, and ops interrupted mid-latch leave
    this domain-local counter nonzero even though the latches themselves
    are volatile and discarded. [Gist_fault] calls this when it
    materializes a crash so post-restart [latches_held_across_io]
    accounting starts honest. *)

val pp_mode : Format.formatter -> mode -> unit
