(** Buffer pool.

    Caches page images in fixed-capacity frames, each protected by a
    reader–writer {!Latch.t}. Implements the WAL constraint: before a dirty
    page is written to disk (eviction or checkpoint flush), the log is
    forced up to that page's LSN via the [force_log] callback.

    Page-image convention: bytes [0..7] of every page hold its page LSN
    (little-endian), written by whoever formats the page. The pool reads it
    when flushing and to maintain the dirty page table.

    Disk I/O (both the read on a miss and the write-back of an evicted
    dirty page) happens outside the pool's internal mutex and outside any
    frame latch held by the caller, which is what makes the paper's
    "no latches held during I/Os" property hold at this layer. The counter
    {!io_while_latched} records violations by callers (operations that pin
    a non-resident page while holding a latch) — the GiST protocol keeps it
    at zero; coarse baselines do not. *)

type t
(** A buffer pool: a fixed set of frames over a {!Disk.t}. *)

type frame
(** One resident page: image bytes, latch, pin count, dirty state. A
    [frame] handle is only valid while its page is pinned by the holder. *)

type policy = Lru | Two_q
(** Eviction policy. [Lru] recycles the least-recently-used unpinned
    frame. [Two_q] is scan-resistant: frames start in a probationary tier
    on first touch and are promoted to a protected tier on re-reference;
    victims come from the probationary tier first (so a one-pass scan or
    bulk load evicts only its own pages), then by CLOCK second chance over
    the protected tier. *)

val policy_of_string : string -> policy
(** ["lru"] or ["2q"]. @raise Invalid_argument otherwise. *)

val policy_to_string : policy -> string

val create :
  ?log_page_image:(Page_id.t -> Bytes.t -> int64) ->
  ?node_cache:bool ->
  ?policy:policy ->
  capacity:int ->
  disk:Disk.t ->
  force_log:(int64 -> unit) ->
  unit ->
  t
(** [create ~capacity ~disk ~force_log ()] makes a pool of [capacity]
    frames. [force_log lsn] must make the log durable up to [lsn]; the
    pool calls it before any dirty page write (the WAL constraint).
    [policy] (default [Two_q]) selects the eviction policy.

    [log_page_image pid image], when given, must append a full-page-image
    record to the log and return its LSN; the pool calls it each time a
    page transitions clean→dirty (Postgres-style full-page writes, the
    repair source for torn disk writes) and stamps the page header with
    the returned LSN so the WAL rule forces the image durable before the
    page can reach — and be torn on — the disk.

    [node_cache] (default [true]) enables the per-frame decoded-node
    cache ({!cached_node} and friends); when [false], installs are
    no-ops and every lookup misses — the knob behind [Db.config.node_cache]
    and experiment E13's on/off comparison. *)

val disk : t -> Disk.t
(** The underlying disk (for allocation bookkeeping and direct checks). *)

val pin : t -> Page_id.t -> frame
(** Fault the page in if needed and pin it. The frame cannot be evicted
    until unpinned. Blocks if all frames are pinned. *)

val pin_new : t -> Page_id.t -> frame
(** Pin a freshly allocated page without reading the disk (its image starts
    zeroed). Used right after page allocation. *)

val unpin : t -> frame -> unit
(** Release one pin; at zero pins the frame becomes an eviction candidate. *)

val latch : frame -> Latch.t
(** The frame's reader–writer latch (acquired by callers, not by the pool). *)

val frame_version : frame -> int option
(** Snapshot of the frame latch's seqlock word for an optimistic
    latch-free read ({!Latch.optimistic}): [Some v] if no writer currently
    holds the X latch, [None] otherwise. A pin alone is enough to use it —
    [pin] never latches, and a nonzero pin count already prevents the
    frame from being evicted or rebound to another page, so the
    pin-without-latch window is stable by construction. *)

val validate_frame : frame -> int -> bool
(** [validate_frame f v] is {!Latch.validate} on the frame latch: [true]
    iff no X acquisition intervened since {!frame_version} returned
    [Some v], i.e. everything read from the frame inside the window is
    what an S-latched reader would have seen. *)

val data : frame -> Bytes.t
(** The in-pool page image. Mutate only while holding the X latch. *)

val page_id : frame -> Page_id.t
(** The page currently bound to this frame. *)

val mark_dirty : t -> frame -> lsn:int64 -> unit
(** Record that the caller (holding the X latch) modified the page under a
    log record with sequence number [lsn]. Also stores [lsn] in the page
    header bytes. *)

val page_lsn : frame -> int64
(** The LSN in the page header. *)

val set_fpw : t -> bool -> unit
(** Mask (or unmask) full-page-image logging. Restart turns it off for the
    redo and undo passes: a fresh image logged mid-redo would stamp the
    page with an LSN beyond the records still to be replayed, making the
    conditional redo skip them. No effect when [log_page_image] was not
    supplied. *)

val with_page :
  t -> Page_id.t -> Latch.mode -> (frame -> 'a) -> 'a
(** [with_page t pid mode f]: pin, latch, run [f], unlatch, unpin. *)

val flush_page : t -> Page_id.t -> unit
(** Force the page to disk if resident and dirty (forcing the log first).
    The shard mutex is never held across the I/O; a concurrent
    re-dirtying of the page is detected and leaves the page dirty. *)

val flush_all : t -> unit
(** Flush every dirty resident page; used by clean shutdown and explicit
    sync points. The dirty set is snapshotted per shard and each frame is
    flushed with only a pin (plus a brief S latch for the image copy), so
    concurrent pinners never stall behind a full-pool flush. *)

(** {1 Background writer integration}

    A background flusher domain ({!Bg_writer}) keeps every shard stocked
    with clean eviction victims so demand evictions on the foreground path
    never pay a write-back. The pool only knows the writer through two
    closures: while [alive () = true], foreground evictions are clean-only
    — a pin that finds no clean victim calls [wake ()] and waits on the
    shard's condition instead of writing back a dirty page itself. *)

val set_bg_writer : t -> wake:(unit -> unit) -> alive:(unit -> bool) -> unit
(** Install the background writer's hooks (called by [Db.attach] after
    the writer domain starts). *)

val clear_bg_writer : t -> unit
(** Remove the hooks; foreground evictions revert to writing back dirty
    victims themselves. *)

val broadcast_waiters : t -> unit
(** Wake every pin blocked on a shard condition. The background writer
    calls this when it dies (fault injection, shutdown) so waiters recheck
    [alive] and fall back to foreground eviction instead of sleeping
    forever. *)

val bg_flush_pass : t -> reserve:int -> int
(** One background-writer pass: per shard, flush least-recently-used
    dirty unpinned frames (counted as [bp.bg_writeback]) until [reserve]
    clean unpinned victims exist, then broadcast the shard's condition.
    Returns the number of pages written. Must be called without latches
    held — normally from the writer domain. *)

val flush_aged : t -> before:int64 -> int
(** Flush every dirty frame (pinned ones included) whose [rec_lsn] is
    below [before], returning the number of pages written. The
    checkpointer calls this with the previous checkpoint's anchor before
    capturing the next one: hot pages are never eviction victims, so
    without this sweep the oldest dirty [rec_lsn] — and with it restart's
    redo span — would stay pinned to the start of the log no matter how
    often checkpoints fire. A frame re-dirtied mid-flush stays dirty with
    its old [rec_lsn] and is retried next interval. *)

val try_prefetch : t -> Page_id.t -> unit
(** Read the page into the pool ahead of demand if it is absent and a
    frame is available without a write-back (free slot or clean victim);
    otherwise do nothing. Never blocks on I/O another frame needs first
    and never runs under a latch. Counted in [bp.prefetch.issued]; a later
    demand pin of the page counts [bp.prefetch.hit]. *)

val dirty_page_table : t -> (Page_id.t * int64) list
(** [(pid, rec_lsn)] for every dirty resident page — the ARIES DPT recorded
    in checkpoints. [rec_lsn] is the LSN that first dirtied the page. *)

val drop_all : t -> unit
(** Crash simulation: discard every frame (and its cached decoded node)
    without flushing. *)

(** {1 Decoded-node cache}

    Each frame can hold one type-erased decoded node ([Obj.t], because
    the pool cannot name the tree's predicate type) stamped with the page
    LSN it reflects. A lookup only hits while the stamp still equals the
    page-header LSN, so any logged mutation ({!mark_dirty} stamps a new
    LSN) implicitly invalidates a cache the writer did not reinstall.
    Mutators of the raw image that do {e not} go through node encoding
    (redo image reinstall, page zero-fill) must call {!invalidate_cache}
    explicitly. All four functions assume the frame latch is held (S
    suffices for {!cached_node}; installs happen under X). *)

val cached_node : frame -> Obj.t option
(** The cached decoded node, or [None] if absent or stale (stamp differs
    from the current page-header LSN). *)

val cache_node : frame -> Obj.t -> unit
(** Install a decoded node stamped with the {e current} page-header LSN.
    Call after the image and header LSN are final (i.e. after
    {!mark_dirty}). No-op when the pool was created with
    [~node_cache:false]. *)

val cache_node_at : frame -> Obj.t -> lsn:int64 -> unit
(** Like {!cache_node} but stamps [lsn] instead of reading the header —
    for redo, where [mark_dirty ~lsn] runs after the node write and the
    header will end at exactly [lsn]. *)

val invalidate_cache : frame -> unit
(** Drop the frame's cached node (counted in [bp.node_cache.invalidate]).
    Required after raw-image mutations that bypass node encoding. *)

val invalidate_caches : t -> unit
(** Drop every frame's cached node. Restart calls this first: redo
    mutates raw images, and a pool surviving {!Recovery.restart_multi}
    (warm restart) must not serve pre-crash decodes. *)

(** {1 Statistics}

    Per-pool counters, mirrored into the global metrics registry
    ([bp.hit], [bp.miss], [bp.evict], [bp.writeback],
    [latches_held_across_io]) — see OBSERVABILITY.md. *)

val hits : t -> int
(** Pins satisfied without disk I/O. *)

val misses : t -> int
(** Pins that had to read the page from disk. *)

val evictions : t -> int
(** Frames recycled to make room (write-back first if dirty). *)

val fg_writebacks : t -> int
(** Dirty write-backs paid on the foreground (demand-eviction) path —
    [bp.fg_writeback]. Zero while a live background writer keeps up. *)

val bg_writebacks : t -> int
(** Dirty write-backs issued by the background writer and administrative
    flushes — [bp.bg_writeback]. *)

val io_while_latched : t -> int
(** Disk I/Os issued while the calling domain held any latch — the claim-C1
    invariant; the GiST protocol keeps this at zero. *)

val reset_stats : t -> unit
(** Zero the per-pool counters (not the global metrics registry). *)
