(** Background writer + checkpointer domain.

    One dedicated domain (Postgres's bgwriter/checkpointer split, fused)
    that keeps every buffer-pool shard stocked with clean eviction victims
    — so demand evictions on the foreground path never pay a write-back
    ([bp.fg_writeback] stays 0) — services range-scan prefetch requests,
    and periodically takes {e fuzzy} checkpoints (a dirty-page-table +
    transaction-table anchor through the recovery machinery, never a
    stop-the-world [flush_all]) so restart time is bounded by the
    checkpoint interval.

    Lifecycle mirrors {!Group_commit}: [create] then [start] spawn the
    domain; [stop] is the clean shutdown (sets the stop flag and joins);
    [halt] is the crash-simulation teardown. If the domain dies to an
    injected fault it marks itself {!crashed}, wakes every pin waiting on
    the pool (via [Buffer_pool.broadcast_waiters]) and the foreground
    reverts to evicting dirty victims itself — the writer is an
    accelerator, never a correctness dependency. *)

type t

val create :
  ?interval_us:int ->
  ?reserve:int ->
  ?checkpoint:(unit -> int64) ->
  ?checkpoint_interval_us:int ->
  Buffer_pool.t ->
  t
(** [create pool] makes a writer for [pool] (not yet running).
    [interval_us] (default 500) is the idle tick between flush passes;
    a [Buffer_pool] wake shortens it to ~50us. [reserve] (default 1) is
    the per-shard clean-victim target handed to
    {!Buffer_pool.bg_flush_pass}. [checkpoint], when given with a positive
    [checkpoint_interval_us], is invoked on the writer domain every
    interval to take a fuzzy checkpoint; it must return the checkpoint's
    anchor LSN (counted in [ckpt.fuzzy], traced as [Fuzzy_checkpoint]). *)

val start : t -> unit
(** Spawn the writer domain. @raise Invalid_argument if already started. *)

val running : t -> bool
(** [true] while the domain is alive and not stopping — the [alive] hook
    installed into the pool. *)

val crashed : t -> bool
(** The domain exited on an exception (injected fault) rather than a
    requested stop. Crash-fuzz uses this to exempt the
    [bp.fg_writeback = 0] assertion when the writer died mid-run. *)

val wake : t -> unit
(** Nudge the writer out of its idle wait (called by the pool when a
    foreground pin finds no clean victim). *)

val prefetch : t -> Page_id.t -> unit
(** Enqueue a page for read-ahead (bounded queue; dropped when full or
    the writer is not running). Serviced on the writer domain via
    {!Buffer_pool.try_prefetch}. *)

val set_checkpoint_enabled : t -> bool -> unit
(** Mask (or unmask) periodic checkpoints. Restart masks them: a fuzzy
    checkpoint logged mid-recovery would anchor analysis past records
    still being replayed. *)

val stop : t -> unit
(** Clean shutdown: request stop and join the domain. Idempotent. *)

val halt : t -> unit
(** Crash-simulation teardown: same join as [stop] (the domain must exit
    before the pool is dropped); kept separate for lifecycle symmetry
    with [Group_commit.halt]. *)
