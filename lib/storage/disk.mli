(** Simulated disk.

    A growable array of fixed-size pages holding raw bytes. This is the
    durable half of the failure model: a crash discards every in-memory
    structure but keeps the disk image (and the forced log prefix) intact.

    An optional per-operation blocking delay ([io_delay_ns]) models device
    latency: it suspends only the calling domain, like a synchronous disk
    read, so protocols that hold latches across I/O pay a measurable
    price while protocols that release them overlap the waits (claim C1
    in DESIGN.md) — even on a single-CPU host. Thread-safe.

    {b Fault injection} ([Gist_fault]): each I/O consults an optional
    {!hooks} record — a single [None] branch when injection is off. Hooks
    run {e outside} the internal mutex, so an injected exception (a
    simulated power loss) never leaves the disk — which survives the
    crash — in a locked state. A sidecar checksum of every {e intended}
    image makes torn writes (which persist different bytes) detectable via
    {!verify}, modelling a page whose embedded checksum no longer matches
    its content. *)

type t

(** What a write hook decides actually reaches the platter. *)
type write_effect =
  | Write_full  (** The intended image is persisted (the normal case). *)
  | Write_torn of Bytes.t
      (** These bytes are persisted instead (e.g. a prefix of the new image
          spliced onto the old content); the checksum still covers the
          intended image, so {!verify} will flag the page. *)

(** Fault-injection hook points. [before_read]/[before_write] run before
    the operation touches any shared state and may raise (crash, transient
    error) or sleep (latency spike); [after_write] runs once the image has
    landed (the place to crash {e after} a torn write persisted). *)
type hooks = {
  before_read : Page_id.t -> unit;
  before_write : Page_id.t -> Bytes.t -> write_effect;
  after_write : Page_id.t -> unit;
}

val create : ?io_delay_ns:int -> page_size:int -> unit -> t

val page_size : t -> int

val set_hooks : t -> hooks option -> unit
(** Install (or clear) the fault-injection hooks. *)

val read : t -> Page_id.t -> Bytes.t
(** Fresh copy of the page image. A page never written reads as zeros and
    bumps the [disk.read_unallocated] counter (see {!reads_unallocated}). *)

val write : t -> Page_id.t -> Bytes.t -> unit
(** [write t pid img] stores a copy of [img] (must be exactly [page_size]
    bytes). *)

val verify : t -> Page_id.t -> bool
(** Whether the stored image matches its sidecar checksum. [true] for
    never-written pages; [false] exactly when a torn write was injected
    and not yet overwritten — restart's media check scans this. *)

val page_count : t -> int
(** Number of pages with an id lower than the highest ever written. *)

val reads : t -> int
val writes : t -> int

val reads_unallocated : t -> int
(** Reads served from a never-written page (as zeros). Nonzero outside of
    restart redo — which legitimately probes pages that were formatted but
    never flushed — indicates broken page-allocation replay. *)

val reset_stats : t -> unit

val set_io_delay_ns : t -> int -> unit
(** Adjust the simulated latency at runtime (used by parameter sweeps). *)
