module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

type mode = S | X

type t = {
  mutex : Mutex.t;
  readable : Condition.t;
  writable : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
  mutable id : int; (* page id for observability; 0 when unknown *)
  version : int Atomic.t;
      (* Seqlock word for optimistic readers: even = no writer, odd =
         write-locked. Bumped to odd before an X grant returns and back to
         even on X release; S traffic never touches it. *)
}

let m_acquires = Metrics.counter ~unit_:"ops" ~help:"latch grants (S or X)" "latch.acquire"

let m_waits =
  Metrics.counter ~unit_:"ops" ~help:"latch acquisitions that had to block" "latch.wait"

let h_wait_ns =
  Metrics.histogram ~unit_:"ns" ~help:"blocked time of contended latch acquisitions"
    "latch.wait_ns"

let held_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let held () = Domain.DLS.get held_key

let held_by_self () = !(held ())

let reset_held () = held () := 0

let create () =
  {
    mutex = Mutex.create ();
    readable = Condition.create ();
    writable = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
    id = 0;
    version = Atomic.make 0;
  }

let set_id t id = t.id <- id

let trace_mode = function S -> Trace.S | X -> Trace.X

let acquire t mode =
  Mutex.lock t.mutex;
  (* Contention is decided at entry: if the latch is free now, the grant
     costs nothing extra; otherwise measure the blocked time. *)
  let contended =
    match mode with S -> t.writer || t.waiting_writers > 0 | X -> t.writer || t.readers > 0
  in
  let t0 = if contended then Gist_util.Clock.now_ns () else 0 in
  (match mode with
  | S ->
    while t.writer || t.waiting_writers > 0 do
      Condition.wait t.readable t.mutex
    done;
    t.readers <- t.readers + 1
  | X ->
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.writable t.mutex
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writer <- true;
    Atomic.incr t.version (* even -> odd: optimistic readers stand back *));
  Mutex.unlock t.mutex;
  Metrics.incr m_acquires;
  if contended then begin
    let wait_ns = Gist_util.Clock.now_ns () - t0 in
    Metrics.incr m_waits;
    Metrics.record h_wait_ns (Float.of_int wait_ns);
    if Trace.enabled () then
      Trace.emit (Trace.Latch_wait { page = t.id; mode = trace_mode mode; wait_ns })
  end;
  if Trace.enabled () then
    Trace.emit (Trace.Latch_acquire { page = t.id; mode = trace_mode mode });
  incr (held ())

let release t mode =
  Mutex.lock t.mutex;
  (match mode with
  | S ->
    t.readers <- t.readers - 1;
    if t.readers = 0 then
      if t.waiting_writers > 0 then Condition.signal t.writable
      else Condition.broadcast t.readable
  | X ->
    Atomic.incr t.version (* odd -> even: publish the writes *);
    t.writer <- false;
    if t.waiting_writers > 0 then Condition.signal t.writable
    else Condition.broadcast t.readable);
  Mutex.unlock t.mutex;
  decr (held ())

let try_acquire t mode =
  Mutex.lock t.mutex;
  let ok =
    match mode with
    | S ->
      if t.writer || t.waiting_writers > 0 then false
      else begin
        t.readers <- t.readers + 1;
        true
      end
    | X ->
      if t.writer || t.readers > 0 then false
      else begin
        t.writer <- true;
        Atomic.incr t.version;
        true
      end
  in
  Mutex.unlock t.mutex;
  if ok then begin
    Metrics.incr m_acquires;
    if Trace.enabled () then
      Trace.emit (Trace.Latch_acquire { page = t.id; mode = trace_mode mode });
    incr (held ())
  end;
  ok

let version t = Atomic.get t.version

let optimistic t =
  let v = Atomic.get t.version in
  if v land 1 = 0 then Some v else None

let validate t v = Atomic.get t.version = v

let with_latch t mode f =
  acquire t mode;
  match f () with
  | v ->
    release t mode;
    v
  | exception e ->
    release t mode;
    raise e

let pp_mode ppf = function
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"
