module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_hits = Metrics.counter ~unit_:"ops" ~help:"page pins satisfied from the pool" "bp.hit"

let m_misses = Metrics.counter ~unit_:"ops" ~help:"page pins that had to read the disk" "bp.miss"

let m_evictions = Metrics.counter ~unit_:"ops" ~help:"frames recycled for another page" "bp.evict"

let m_writebacks =
  Metrics.counter ~unit_:"ops" ~help:"dirty images written back (evictions + flushes)"
    "bp.writeback"

let m_fg_writebacks =
  Metrics.counter ~unit_:"ops"
    ~help:
      "dirty write-backs paid on the foreground path (demand eviction / overflow repayment); \
       0 while the background writer keeps a clean-victim reserve"
    "bp.fg_writeback"

let m_bg_writebacks =
  Metrics.counter ~unit_:"ops"
    ~help:
      "dirty write-backs issued off the foreground path: the background flusher plus \
       administrative flushes (checkpoint, shutdown)"
    "bp.bg_writeback"

let m_prefetch_issued =
  Metrics.counter ~unit_:"ops" ~help:"pages read into the pool ahead of demand (scan prefetch)"
    "bp.prefetch.issued"

let m_prefetch_hit =
  Metrics.counter ~unit_:"ops"
    ~help:"demand pins that found their page already resident from a prefetch"
    "bp.prefetch.hit"

let m_scan_saved =
  Metrics.counter ~unit_:"ops"
    ~help:
      "evictions where the scan-resistant policy recycled a probationary (first-touch) frame \
       although plain LRU would have evicted an older protected (re-referenced) one"
    "bp.scan_resist_saved"

let m_latched_io =
  Metrics.counter ~unit_:"ops"
    ~help:"disk I/Os issued while the calling domain held a latch (claim C1 invariant: 0)"
    "latches_held_across_io"

let m_cache_invalidate =
  Metrics.counter ~unit_:"ops"
    ~help:"decoded-node cache entries dropped (frame recycle, reset, raw image mutation)"
    "bp.node_cache.invalidate"

let m_overflow =
  Metrics.counter ~unit_:"ops"
    ~help:
      "frames allocated beyond capacity because a latched page allocation found only dirty \
       victims (evicting one would break the C1 no-I/O-under-latch invariant)"
    "bp.overflow_frame"

type policy = Lru | Two_q

let policy_of_string = function
  | "lru" -> Lru
  | "2q" -> Two_q
  | s -> invalid_arg (Printf.sprintf "Buffer_pool.policy_of_string: %S (expected lru|2q)" s)

let policy_to_string = function Lru -> "lru" | Two_q -> "2q"

(* Who pays for a dirty write-back. [Fg] is the demand path — a user
   operation that had to evict; [Bg] covers the background flusher and
   administrative flushes (checkpoints, shutdown). *)
type origin = Fg | Bg

type frame = {
  mutable pid : Page_id.t;
  mutable image : Bytes.t;
  mutable dirty : bool;
  mutable rec_lsn : int64; (* LSN that first dirtied the page; -1L if clean *)
  mutable dirty_epoch : int;
      (* bumped on every [mark_dirty] (under the shard mutex); a flusher
         compares epochs around its unlocked write so a concurrent
         re-dirtying is never marked clean away *)
  mutable pin_count : int;
  mutable loading : bool;
  mutable last_used : int;
  (* 2Q/CLOCK state: tier 0 = probationary (first touch), tier 1 =
     protected (re-referenced). [ref_bit] is the CLOCK second-chance bit
     over the protected tier. [prefetched] marks a page read ahead of
     demand; its first demand pin counts as the page's first real touch. *)
  mutable tier : int;
  mutable ref_bit : bool;
  mutable prefetched : bool;
  frame_latch : Latch.t;
  (* Decoded-node cache: the node last decoded from (or encoded into) this
     frame's image, type-erased because the pool is predicate-type-agnostic.
     Valid only while [cached_lsn] equals the page-header LSN: any logged
     mutation stamps a fresh LSN via [mark_dirty], so a stale entry can
     never be served. Read/written only under the frame latch. *)
  mutable cached : Obj.t option;
  mutable cached_lsn : int64;
  cache_on : bool;
}

(* Sharded by page id: pin/unpin contend only within a shard. Each shard
   owns capacity/n_shards frames; eviction is shard-local. *)
type shard = {
  mutex : Mutex.t;
  changed : Condition.t;
  table : (int, frame) Hashtbl.t;
  mutable frames : frame list;
  mutable n_frames : int; (* = List.length frames, kept so fault-in is O(1) *)
  capacity : int;
  (* 2Q A1out ghost list: ids of pages recently evicted from the
     probationary tier (no content, just identity). A fault that hits it
     is a re-reference the pool evicted too early — the page installs
     straight into the protected tier, which is what keeps a working set
     slightly too big for probation from cycling there forever. Bounded
     FIFO; generations invalidate stale queue entries. *)
  ghost_set : (int, int) Hashtbl.t; (* pid -> generation *)
  ghost_fifo : (int * int) Queue.t;
  mutable ghost_gen : int;
}

type t = {
  shards : shard array;
  disk : Disk.t;
  force_log : int64 -> unit;
  log_page_image : (Page_id.t -> Bytes.t -> int64) option;
  mutable fpw_on : bool; (* restart redo/undo masks full-page writes *)
  node_cache : bool;
  policy : policy;
  (* Hooks into the background writer, installed by [Db.attach] after the
     writer domain starts. [bg_wake] nudges it out of its idle sleep;
     [bg_alive] answers whether it is running (a dead writer must never be
     waited on). Plain closures, swapped only at attach/close. *)
  mutable bg_wake : unit -> unit;
  mutable bg_alive : unit -> bool;
  tick : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  fg_wb : int Atomic.t;
  bg_wb : int Atomic.t;
  io_latched : int Atomic.t;
}

let n_shards = 16

let create ?log_page_image ?(node_cache = true) ?(policy = Two_q) ~capacity ~disk ~force_log () =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity < 4";
  let per_shard = max 2 (capacity / n_shards) in
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            mutex = Mutex.create ();
            changed = Condition.create ();
            table = Hashtbl.create (2 * per_shard);
            frames = [];
            n_frames = 0;
            capacity = per_shard;
            ghost_set = Hashtbl.create (2 * per_shard);
            ghost_fifo = Queue.create ();
            ghost_gen = 0;
          });
    disk;
    force_log;
    log_page_image;
    fpw_on = true;
    node_cache;
    policy;
    bg_wake = (fun () -> ());
    bg_alive = (fun () -> false);
    tick = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    fg_wb = Atomic.make 0;
    bg_wb = Atomic.make 0;
    io_latched = Atomic.make 0;
  }

let shard t pid = t.shards.(Page_id.to_int pid land (n_shards - 1))

let disk t = t.disk

let latch f = f.frame_latch

(* Optimistic readers snapshot/validate the frame latch's version word
   while holding only a pin (which is what keeps the frame from being
   recycled under them). *)
let frame_version f = Latch.optimistic f.frame_latch

let validate_frame f v = Latch.validate f.frame_latch v

let data f = f.image

let page_id f = f.pid

let header_lsn image = Bytes.get_int64_le image 0

let page_lsn f = header_lsn f.image

let set_bg_writer t ~wake ~alive =
  t.bg_wake <- wake;
  t.bg_alive <- alive

let clear_bg_writer t =
  t.bg_wake <- (fun () -> ());
  t.bg_alive <- (fun () -> false)

let broadcast_waiters t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex)
    t.shards

(* Decoded-node cache. The stamp ties the cached value to one exact page
   state: a hit requires [cached_lsn = header_lsn image]. Callers hold the
   frame latch (S for reads, X for installs after a mutation). *)

let cached_node f =
  match f.cached with
  | Some _ as v when Int64.equal f.cached_lsn (header_lsn f.image) -> v
  | _ -> None

let cache_node_at f o ~lsn =
  if f.cache_on then begin
    f.cached <- Some o;
    f.cached_lsn <- lsn
  end

let cache_node f o = cache_node_at f o ~lsn:(header_lsn f.image)

let invalidate_cache f =
  match f.cached with
  | None -> ()
  | Some _ ->
    f.cached <- None;
    f.cached_lsn <- -1L;
    Metrics.incr m_cache_invalidate

let invalidate_caches t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      List.iter invalidate_cache s.frames;
      Mutex.unlock s.mutex)
    t.shards

let touch t f = f.last_used <- Atomic.fetch_and_add t.tick 1

(* Least-recently-used unpinned, non-loading frame of the shard. Shard
   mutex held. *)
let find_victim s =
  let best = ref None in
  List.iter
    (fun f ->
      if f.pin_count = 0 && not f.loading then
        match !best with
        | Some b when b.last_used <= f.last_used -> ()
        | _ -> best := Some f)
    s.frames;
  !best

(* Like [find_victim] but only clean frames: recycling one needs no
   write-back, so a caller holding latches can evict it without I/O. *)
let find_clean_victim s =
  let best = ref None in
  List.iter
    (fun f ->
      if f.pin_count = 0 && (not f.loading) && not f.dirty then
        match !best with
        | Some b when b.last_used <= f.last_used -> ()
        | _ -> best := Some f)
    s.frames;
  !best

(* 2Q/CLOCK victim. The probationary ring absorbs one-touch pages (bulk
   load, scan), but it is only drained FIRST while it holds more than its
   target share (the classic 2Q Kin ~ 25% rule). Below the target,
   victims come from the protected tier via CLOCK second chance
   (referenced-since-last-sweep frames are spared once) — without this,
   stale protected frames left by an earlier phase are immortal, and a
   small working set re-faulting through probation cycles forever: each
   probe's fault-ins evict the previous probe's pages before their second
   access can promote them. Shard mutex held. *)

(* A1out ghost bookkeeping (2Q only; shard mutex held). [ghost_add]
   remembers a page id just evicted from the probationary tier — identity
   only, no content. [ghost_take] answers whether a faulting page was
   recently there, and forgets it: the re-fault is the second reference 2Q
   wants, so the page installs straight into the protected tier. Without
   this, a working set slightly larger than probation cycles there forever
   (each re-fault evicts an earlier one before anything is promoted) while
   stale protected frames sit immortal. Bounded FIFO at one shard's frame
   capacity; generations invalidate stale queue entries. *)
let ghost_add s pid =
  let pid = Page_id.to_int pid in
  s.ghost_gen <- s.ghost_gen + 1;
  Hashtbl.replace s.ghost_set pid s.ghost_gen;
  Queue.push (pid, s.ghost_gen) s.ghost_fifo;
  while Queue.length s.ghost_fifo > s.capacity do
    let p, g = Queue.pop s.ghost_fifo in
    match Hashtbl.find_opt s.ghost_set p with
    | Some g' when g' = g -> Hashtbl.remove s.ghost_set p
    | _ -> ()
  done

let ghost_take s pid =
  let pid = Page_id.to_int pid in
  if Hashtbl.mem s.ghost_set pid then begin
    Hashtbl.remove s.ghost_set pid;
    true
  end
  else false

let find_victim_2q s ~clean_only =
  let ok f =
    f.pin_count = 0 && (not f.loading) && ((not clean_only) || not f.dirty)
  in
  let lru best f = match !best with Some b when b.last_used <= f.last_used -> () | _ -> best := Some f in
  let overall = ref None and prob = ref None and prot_clear = ref None and prot_any = ref None in
  List.iter
    (fun f ->
      if ok f then begin
        lru overall f;
        if f.tier = 0 then lru prob f
        else begin
          lru prot_any f;
          if not f.ref_bit then lru prot_clear f
        end
      end)
    s.frames;
  let from_probation () =
    match !prob with
    | Some p ->
      (* Plain LRU would have taken [!overall]; if that is an older
         protected frame, scan resistance just saved a hot page. *)
      (match !overall with
      | Some o when o != p && o.tier = 1 -> Metrics.incr m_scan_saved
      | _ -> ());
      Some p
    | None -> None
  in
  let from_protected () =
    match !prot_clear with
    | Some _ as v -> v
    | None ->
      (* Every eligible protected frame was referenced since the last
         sweep: spend their second chance and fall back to LRU over the
         tier. *)
      List.iter (fun f -> if f.tier = 1 then f.ref_bit <- false) s.frames;
      !prot_any
  in
  (* Probation first, always — that is the whole of scan resistance. The
     ghost list (above) is what keeps this from starving promotion. *)
  match from_probation () with Some _ as v -> v | None -> from_protected ()

let select_victim t s = match t.policy with Lru -> find_victim s | Two_q -> find_victim_2q s ~clean_only:false

let select_clean_victim t s =
  match t.policy with Lru -> find_clean_victim s | Two_q -> find_victim_2q s ~clean_only:true

let note_io t =
  if Latch.held_by_self () > 0 then begin
    Atomic.incr t.io_latched;
    Metrics.incr m_latched_io
  end

(* Write a dirty victim image back, honoring the WAL rule. Called without
   the shard mutex; the frame is protected by its [loading] flag (eviction)
   or a pin (flush). *)
let write_back t origin pid image =
  Metrics.incr m_writebacks;
  (match origin with
  | Fg ->
    Atomic.incr t.fg_wb;
    Metrics.incr m_fg_writebacks
  | Bg ->
    Atomic.incr t.bg_wb;
    Metrics.incr m_bg_writebacks);
  t.force_log (header_lsn image);
  Disk.write t.disk pid image

(* Fill a brand-new frame for [pid] (shard mutex held on entry; released
   around the disk read). May push the shard past capacity — the caller
   decides that (overflow for latched allocations). On an I/O exception
   (fault injection) the half-built frame is unregistered so concurrent
   pins of [pid] retry instead of waiting on [loading] forever. *)
let fault_in ?(prefetched = false) t s pid ~read_from_disk =
  (* A ghost hit is the page's second recent reference: install it
     protected. Prefetched pages never take this shortcut — a prefetch is
     the pool's guess, not the workload's reference. *)
  let promote = t.policy = Two_q && (not prefetched) && ghost_take s pid in
  let f =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      rec_lsn = -1L;
      dirty_epoch = 0;
      pin_count = 1;
      loading = true;
      last_used = 0;
      tier = (if promote then 1 else 0);
      ref_bit = promote;
      prefetched;
      frame_latch = Latch.create ();
      cached = None;
      cached_lsn = -1L;
      cache_on = t.node_cache;
    }
  in
  Latch.set_id f.frame_latch (Page_id.to_int pid);
  touch t f;
  s.frames <- f :: s.frames;
  s.n_frames <- s.n_frames + 1;
  Hashtbl.replace s.table (Page_id.to_int pid) f;
  Mutex.unlock s.mutex;
  (match
     if read_from_disk then begin
       note_io t;
       f.image <- Disk.read t.disk pid
     end
   with
  | () ->
    Mutex.lock s.mutex;
    f.loading <- false;
    Condition.broadcast s.changed;
    Mutex.unlock s.mutex
  | exception e ->
    Mutex.lock s.mutex;
    Hashtbl.remove s.table (Page_id.to_int pid);
    s.frames <- List.filter (fun g -> g != f) s.frames;
    s.n_frames <- s.n_frames - 1;
    Condition.broadcast s.changed;
    Mutex.unlock s.mutex;
    raise e);
  f

(* Recycle [victim] (unpinned, non-loading; shard mutex held on entry) to
   hold [pid], returning it pinned. Phase 1 writes the dirty old image back
   while the frame is still registered under its old id in [loading] state —
   a concurrent pin of the old page waits instead of re-reading stale disk
   content before the write-back lands. The new id is claimed immediately
   (same frame, also loading) so a racing pin of it cannot create a
   duplicate frame. On an I/O exception the frame is dropped wholesale:
   concurrent waiters retry and fault in from disk. *)
let recycle_victim t s victim pid ~read_from_disk ~origin =
  Atomic.incr t.evictions;
  Metrics.incr m_evictions;
  if Trace.enabled () then
    Trace.emit (Trace.Bp_evict { page = Page_id.to_int victim.pid; dirty = victim.dirty });
  let old_pid = victim.pid in
  let old_dirty = victim.dirty in
  let old_image = victim.image in
  (* A prefetched frame that dies before its demand touch leaves no ghost:
     its one "reference" was the pool's guess, not the workload's, and
     ghosting it would let a streaming scan promote its whole footprint
     through the evict-then-demand-fault path. *)
  if t.policy = Two_q && victim.tier = 0 && not victim.prefetched then ghost_add s old_pid;
  let promote = t.policy = Two_q && ghost_take s pid in
  victim.loading <- true;
  victim.pin_count <- 1;
  Hashtbl.replace s.table (Page_id.to_int pid) victim;
  Mutex.unlock s.mutex;
  let drop e =
    Mutex.lock s.mutex;
    (match Hashtbl.find_opt s.table (Page_id.to_int pid) with
    | Some f when f == victim -> Hashtbl.remove s.table (Page_id.to_int pid)
    | _ -> ());
    (match Hashtbl.find_opt s.table (Page_id.to_int old_pid) with
    | Some f when f == victim -> Hashtbl.remove s.table (Page_id.to_int old_pid)
    | _ -> ());
    s.frames <- List.filter (fun f -> f != victim) s.frames;
    s.n_frames <- s.n_frames - 1;
    Condition.broadcast s.changed;
    Mutex.unlock s.mutex;
    raise e
  in
  match
    if old_dirty then begin
      note_io t;
      write_back t origin old_pid old_image
    end;
    (* Phase 2: rebind the frame to the new page id. *)
    Mutex.lock s.mutex;
    Hashtbl.remove s.table (Page_id.to_int old_pid);
    victim.pid <- pid;
    Latch.set_id victim.frame_latch (Page_id.to_int pid);
    victim.dirty <- false;
    victim.rec_lsn <- -1L;
    victim.tier <- (if promote then 1 else 0);
    victim.ref_bit <- promote;
    victim.prefetched <- false;
    invalidate_cache victim;
    victim.image <- Bytes.make (Disk.page_size t.disk) '\000';
    touch t victim;
    Hashtbl.replace s.table (Page_id.to_int pid) victim;
    Condition.broadcast s.changed;
    Mutex.unlock s.mutex;
    if read_from_disk then begin
      note_io t;
      victim.image <- Disk.read t.disk pid
    end;
    Mutex.lock s.mutex;
    victim.loading <- false;
    Condition.broadcast s.changed;
    Mutex.unlock s.mutex
  with
  | () -> victim
  | exception e -> drop e

(* Pay back one overflow frame: evict-and-drop an unpinned victim so the
   shard shrinks toward capacity. Only called with no latches held. A live
   background writer makes this clean-only — when every victim is dirty
   the writer is woken instead of paying the write-back here. *)
let shrink_overflow t s =
  Mutex.lock s.mutex;
  if s.n_frames <= s.capacity then Mutex.unlock s.mutex
  else begin
    let bg_live = t.bg_alive () in
    let victim =
      match select_clean_victim t s with
      | Some _ as v -> v
      | None -> if bg_live then None else select_victim t s
    in
    match victim with
    | None ->
      Mutex.unlock s.mutex;
      if bg_live then t.bg_wake ()
    | Some victim ->
      Atomic.incr t.evictions;
      Metrics.incr m_evictions;
      if Trace.enabled () then
        Trace.emit (Trace.Bp_evict { page = Page_id.to_int victim.pid; dirty = victim.dirty });
      (* Same protocol as eviction phase 1: concurrent pins of this page
         wait on [loading] until the write-back lands, then retry, find no
         frame, and fault in from the now-current disk image. *)
      victim.loading <- true;
      victim.pin_count <- 1;
      let vpid = victim.pid and dirty = victim.dirty and image = victim.image in
      if t.policy = Two_q && victim.tier = 0 && not victim.prefetched then ghost_add s vpid;
      Mutex.unlock s.mutex;
      if dirty then write_back t Fg vpid image;
      Mutex.lock s.mutex;
      Hashtbl.remove s.table (Page_id.to_int vpid);
      s.frames <- List.filter (fun f -> f != victim) s.frames;
      s.n_frames <- s.n_frames - 1;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex
  end

let rec pin_general t pid ~read_from_disk =
  let s = shard t pid in
  (* Unsynchronized peek: stale reads only delay or duplicate the shrink
     attempt, and [shrink_overflow] rechecks under the mutex. *)
  if s.n_frames > s.capacity && Latch.held_by_self () = 0 then shrink_overflow t s;
  Mutex.lock s.mutex;
  match Hashtbl.find_opt s.table (Page_id.to_int pid) with
  | Some f when f.loading ->
    Condition.wait s.changed s.mutex;
    Mutex.unlock s.mutex;
    pin_general t pid ~read_from_disk
  | Some f ->
    f.pin_count <- f.pin_count + 1;
    let prev_used = f.last_used in
    touch t f;
    if f.prefetched then begin
      (* First demand touch of a prefetched page: count the hit, but the
         page stays probationary — a prefetch must not be able to promote
         pages the workload never re-references. *)
      f.prefetched <- false;
      Metrics.incr m_prefetch_hit
    end
    else begin
      (* Correlated-reference filter on promotion: the pin bursts of one
         logical visit (descend, read, re-pin under split retry — or a
         leaf absorbing a run of sequential inserts) are ONE access, not
         evidence of reuse. A probationary page earns the protected tier
         only when re-pinned after at least a shard's worth of pool
         activity; without the filter every page promotes within its
         first visit and probation is perpetually empty, which is just
         CLOCK over one tier wearing a 2Q costume. *)
      if f.tier = 0 then begin
        if f.last_used - prev_used > s.capacity then begin
          f.tier <- 1;
          f.ref_bit <- true
        end
      end
      else f.ref_bit <- true
    end;
    Mutex.unlock s.mutex;
    Atomic.incr t.hits;
    Metrics.incr m_hits;
    if Trace.enabled () then Trace.emit (Trace.Bp_hit { page = Page_id.to_int pid });
    f
  | None ->
    Atomic.incr t.misses;
    Metrics.incr m_misses;
    if Trace.enabled () then Trace.emit (Trace.Bp_miss { page = Page_id.to_int pid });
    if s.n_frames < s.capacity then fault_in t s pid ~read_from_disk
    else begin
      (* A latched caller allocating a fresh page (split/root-grow sibling)
         must not evict a dirty victim: the write-back would be an I/O
         under latch, exactly what claim C1 forbids. Prefer a clean victim
         (recycling is I/O-free since there is nothing to read either);
         failing that, overflow capacity — bounded at 2x without a
         background writer, so a client that never releases its latches
         (the coarse baseline) cannot balloon the pool — and let a later
         unlatched pin shrink the shard back. Past the bound, dirty
         eviction is the last resort and the I/O is counted against the
         invariant, as it should be. With a live writer the bound lifts:
         the latched caller overflows unconditionally (waking the writer
         to drain the debt) rather than ever paying a dirty write-back —
         the overflow is transient, repaid by [shrink_overflow] as soon as
         the writer has cleaned a victim.

         An unlatched caller with a live background writer is held to the
         same clean-only discipline: when the reserve runs dry it wakes the
         writer and waits, keeping write-back I/O off the foreground path
         entirely. Latched callers never wait on the writer — the writer
         S-latches frames to flush them, so waiting while holding a latch
         could deadlock against it. *)
      let latched = Latch.held_by_self () > 0 in
      let bg_alive = t.bg_alive () in
      let latched_alloc = (not read_from_disk) && latched in
      let overflow_ok = latched_alloc && (bg_alive || s.n_frames < 2 * s.capacity) in
      let bg_live = (not latched) && bg_alive in
      let victim =
        if latched_alloc then
          match select_clean_victim t s with
          | Some _ as v -> v
          | None -> if overflow_ok then None else select_victim t s
        else if bg_live then select_clean_victim t s
        else select_victim t s
      in
      match victim with
      | None when overflow_ok ->
        Metrics.incr m_overflow;
        if bg_alive then t.bg_wake ();
        fault_in t s pid ~read_from_disk
      | None ->
        if bg_live then t.bg_wake ();
        Condition.wait s.changed s.mutex;
        Mutex.unlock s.mutex;
        pin_general t pid ~read_from_disk
      | Some victim -> recycle_victim t s victim pid ~read_from_disk ~origin:Fg
    end

let pin t pid = pin_general t pid ~read_from_disk:true

let pin_new t pid = pin_general t pid ~read_from_disk:false

let unpin t f =
  let s = shard t f.pid in
  Mutex.lock s.mutex;
  assert (f.pin_count > 0);
  f.pin_count <- f.pin_count - 1;
  if f.pin_count = 0 then Condition.broadcast s.changed;
  Mutex.unlock s.mutex

let mark_dirty t f ~lsn =
  Bytes.set_int64_le f.image 0 lsn;
  let s = shard t f.pid in
  Mutex.lock s.mutex;
  let first = not f.dirty in
  if first then begin
    f.dirty <- true;
    f.rec_lsn <- lsn
  end;
  f.dirty_epoch <- f.dirty_epoch + 1;
  Mutex.unlock s.mutex;
  (* Full-page write (torn-write protection): the first time a page
     becomes dirty, log its complete post-modification image. Restart can
     then repair a page a torn disk write destroyed by reinstalling the
     image and redoing forward from it. The caller holds the page's X
     latch, so the image is stable; the image's header carries [lsn], and
     stamping the live header with the FPW record's own (higher) LSN means
     the WAL rule — write-back forces up to the header LSN — makes the
     image durable before any disk write of this dirty epoch can tear. *)
  if first && t.fpw_on then
    match t.log_page_image with
    | None -> ()
    | Some fpw -> Bytes.set_int64_le f.image 0 (fpw f.pid (Bytes.copy f.image))

let set_fpw t on = t.fpw_on <- on

let with_page t pid mode f =
  let frame = pin t pid in
  let finish v_or_exn =
    Latch.release frame.frame_latch mode;
    unpin t frame;
    match v_or_exn with Ok v -> v | Error e -> raise e
  in
  Latch.acquire frame.frame_latch mode;
  match f frame with v -> finish (Ok v) | exception e -> finish (Error e)

(* Flush one frame without holding the shard mutex — or any latch — across
   the I/O. The frame is pinned for the duration, so it cannot be recycled
   under the flush; the S latch is held only while copying the image. The
   dirty epoch read before the copy detects a concurrent re-dirtying: a
   frame modified after our snapshot stays dirty (the write we issued is a
   safe-but-stale older version; the newer epoch will be flushed later).
   Returns [true] if a write was issued. *)
let flush_frame_guarded t s f ~origin =
  Mutex.lock s.mutex;
  if f.loading || not f.dirty then begin
    Mutex.unlock s.mutex;
    false
  end
  else begin
    f.pin_count <- f.pin_count + 1;
    let epoch = f.dirty_epoch in
    let pid = f.pid in
    Mutex.unlock s.mutex;
    let unpin_locked () =
      f.pin_count <- f.pin_count - 1;
      if f.pin_count = 0 then Condition.broadcast s.changed
    in
    match
      Latch.acquire f.frame_latch S;
      let image = Bytes.copy f.image in
      Latch.release f.frame_latch S;
      write_back t origin pid image
    with
    | () ->
      Mutex.lock s.mutex;
      if f.dirty_epoch = epoch then begin
        f.dirty <- false;
        f.rec_lsn <- -1L
      end;
      unpin_locked ();
      Mutex.unlock s.mutex;
      true
    | exception e ->
      Mutex.lock s.mutex;
      unpin_locked ();
      Mutex.unlock s.mutex;
      raise e
  end

let flush_page t pid =
  let s = shard t pid in
  Mutex.lock s.mutex;
  let f = Hashtbl.find_opt s.table (Page_id.to_int pid) in
  Mutex.unlock s.mutex;
  match f with
  | Some f -> ignore (flush_frame_guarded t s f ~origin:Bg : bool)
  | None -> ()

let flush_all t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      let frames = s.frames in
      Mutex.unlock s.mutex;
      List.iter
        (fun f -> if f.dirty then ignore (flush_frame_guarded t s f ~origin:Bg : bool))
        frames)
    t.shards

(* Advance the recovery frontier: flush every dirty frame whose [rec_lsn]
   predates [before] (pinned ones included — the hot pages are exactly the
   ones that never become eviction victims and would otherwise anchor the
   redo span at the start of the log forever). The checkpointer calls this
   with the previous checkpoint's anchor before capturing the next one, so
   the captured dirty-page table never holds a rec_lsn older than one
   interval. A frame re-dirtied mid-flush keeps its old rec_lsn (the
   epoch check in [flush_frame_guarded]) and is retried next interval.
   Same no-mutex/no-latch-across-I/O discipline as every other flush. *)
let flush_aged t ~before =
  let flushed = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      let aged =
        List.filter
          (fun f -> f.dirty && (not f.loading) && f.rec_lsn >= 0L && f.rec_lsn < before)
          s.frames
      in
      Mutex.unlock s.mutex;
      List.iter (fun f -> if flush_frame_guarded t s f ~origin:Bg then incr flushed) aged)
    t.shards;
  !flushed

(* One background-writer pass: per shard, flush least-recently-used dirty
   unpinned frames until [reserve] clean unpinned victims exist, then wake
   any pin waiting for the reserve. Returns the number of pages written. *)
let bg_flush_pass t ~reserve =
  let flushed = ref 0 in
  let scanned = ref 0 in
  Array.iter
    (fun s ->
      let continue_ = ref true in
      while !continue_ do
        Mutex.lock s.mutex;
        scanned := !scanned + s.n_frames;
        let clean_unpinned = ref 0 in
        let cand = ref None in
        List.iter
          (fun f ->
            if (not f.loading) && f.pin_count = 0 then
              if not f.dirty then incr clean_unpinned
              else
                match !cand with
                | Some b when b.last_used <= f.last_used -> ()
                | _ -> cand := Some f)
          s.frames;
        match if !clean_unpinned >= reserve then None else !cand with
        | None ->
          Mutex.unlock s.mutex;
          continue_ := false
        | Some f ->
          Mutex.unlock s.mutex;
          if flush_frame_guarded t s f ~origin:Bg then incr flushed else continue_ := false
      done;
      Mutex.lock s.mutex;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex)
    t.shards;
  if Trace.enabled () && !flushed > 0 then
    Trace.emit (Trace.Bg_flush { pages = !flushed; scanned = !scanned });
  !flushed

(* Read [pid] into the pool ahead of demand, without ever paying a
   write-back or waiting for a frame: resident pages and dirty-only shards
   are left alone. Runs on the background-writer domain (the simulated disk
   is synchronous per-thread, so prefetching from the foreground would
   serialize with the demand reads it is supposed to hide). *)
let try_prefetch t pid =
  if Latch.held_by_self () = 0 && Page_id.to_int pid >= 0 && Page_id.to_int pid < Disk.page_count t.disk
  then begin
    let s = shard t pid in
    Mutex.lock s.mutex;
    match Hashtbl.find_opt s.table (Page_id.to_int pid) with
    | Some _ -> Mutex.unlock s.mutex
    | None ->
      if s.n_frames < s.capacity then begin
        Metrics.incr m_prefetch_issued;
        let f = fault_in ~prefetched:true t s pid ~read_from_disk:true in
        unpin t f
      end
      else begin
        match select_clean_victim t s with
        | None -> Mutex.unlock s.mutex
        | Some victim ->
          Metrics.incr m_prefetch_issued;
          let f = recycle_victim t s victim pid ~read_from_disk:true ~origin:Bg in
          Mutex.lock s.mutex;
          f.prefetched <- true;
          Mutex.unlock s.mutex;
          unpin t f
      end
  end

let dirty_page_table t =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         Mutex.lock s.mutex;
         let dpt =
           List.filter_map
             (fun f -> if f.dirty && not f.loading then Some (f.pid, f.rec_lsn) else None)
             s.frames
         in
         Mutex.unlock s.mutex;
         dpt)

let drop_all t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      List.iter invalidate_cache s.frames;
      Hashtbl.reset s.table;
      s.frames <- [];
      s.n_frames <- 0;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex)
    t.shards

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let evictions t = Atomic.get t.evictions

let fg_writebacks t = Atomic.get t.fg_wb

let bg_writebacks t = Atomic.get t.bg_wb

let io_while_latched t = Atomic.get t.io_latched

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.evictions 0;
  Atomic.set t.fg_wb 0;
  Atomic.set t.bg_wb 0;
  Atomic.set t.io_latched 0
