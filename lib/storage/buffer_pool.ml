module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_hits = Metrics.counter ~unit_:"ops" ~help:"page pins satisfied from the pool" "bp.hit"

let m_misses = Metrics.counter ~unit_:"ops" ~help:"page pins that had to read the disk" "bp.miss"

let m_evictions = Metrics.counter ~unit_:"ops" ~help:"frames recycled for another page" "bp.evict"

let m_writebacks =
  Metrics.counter ~unit_:"ops" ~help:"dirty images written back (evictions + flushes)"
    "bp.writeback"

let m_latched_io =
  Metrics.counter ~unit_:"ops"
    ~help:"disk I/Os issued while the calling domain held a latch (claim C1 invariant: 0)"
    "latches_held_across_io"

let m_cache_invalidate =
  Metrics.counter ~unit_:"ops"
    ~help:"decoded-node cache entries dropped (frame recycle, reset, raw image mutation)"
    "bp.node_cache.invalidate"

let m_overflow =
  Metrics.counter ~unit_:"ops"
    ~help:
      "frames allocated beyond capacity because a latched page allocation found only dirty \
       victims (evicting one would break the C1 no-I/O-under-latch invariant)"
    "bp.overflow_frame"

type frame = {
  mutable pid : Page_id.t;
  mutable image : Bytes.t;
  mutable dirty : bool;
  mutable rec_lsn : int64; (* LSN that first dirtied the page; -1L if clean *)
  mutable pin_count : int;
  mutable loading : bool;
  mutable last_used : int;
  frame_latch : Latch.t;
  (* Decoded-node cache: the node last decoded from (or encoded into) this
     frame's image, type-erased because the pool is predicate-type-agnostic.
     Valid only while [cached_lsn] equals the page-header LSN: any logged
     mutation stamps a fresh LSN via [mark_dirty], so a stale entry can
     never be served. Read/written only under the frame latch. *)
  mutable cached : Obj.t option;
  mutable cached_lsn : int64;
  cache_on : bool;
}

(* Sharded by page id: pin/unpin contend only within a shard. Each shard
   owns capacity/n_shards frames; eviction is shard-local. *)
type shard = {
  mutex : Mutex.t;
  changed : Condition.t;
  table : (int, frame) Hashtbl.t;
  mutable frames : frame list;
  mutable n_frames : int; (* = List.length frames, kept so fault-in is O(1) *)
  capacity : int;
}

type t = {
  shards : shard array;
  disk : Disk.t;
  force_log : int64 -> unit;
  log_page_image : (Page_id.t -> Bytes.t -> int64) option;
  mutable fpw_on : bool; (* restart redo/undo masks full-page writes *)
  node_cache : bool;
  tick : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  io_latched : int Atomic.t;
}

let n_shards = 16

let create ?log_page_image ?(node_cache = true) ~capacity ~disk ~force_log () =
  if capacity < 4 then invalid_arg "Buffer_pool.create: capacity < 4";
  let per_shard = max 2 (capacity / n_shards) in
  {
    shards =
      Array.init n_shards (fun _ ->
          {
            mutex = Mutex.create ();
            changed = Condition.create ();
            table = Hashtbl.create (2 * per_shard);
            frames = [];
            n_frames = 0;
            capacity = per_shard;
          });
    disk;
    force_log;
    log_page_image;
    fpw_on = true;
    node_cache;
    tick = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    io_latched = Atomic.make 0;
  }

let shard t pid = t.shards.(Page_id.to_int pid land (n_shards - 1))

let disk t = t.disk

let latch f = f.frame_latch

(* Optimistic readers snapshot/validate the frame latch's version word
   while holding only a pin (which is what keeps the frame from being
   recycled under them). *)
let frame_version f = Latch.optimistic f.frame_latch

let validate_frame f v = Latch.validate f.frame_latch v

let data f = f.image

let page_id f = f.pid

let header_lsn image = Bytes.get_int64_le image 0

let page_lsn f = header_lsn f.image

(* Decoded-node cache. The stamp ties the cached value to one exact page
   state: a hit requires [cached_lsn = header_lsn image]. Callers hold the
   frame latch (S for reads, X for installs after a mutation). *)

let cached_node f =
  match f.cached with
  | Some _ as v when Int64.equal f.cached_lsn (header_lsn f.image) -> v
  | _ -> None

let cache_node_at f o ~lsn =
  if f.cache_on then begin
    f.cached <- Some o;
    f.cached_lsn <- lsn
  end

let cache_node f o = cache_node_at f o ~lsn:(header_lsn f.image)

let invalidate_cache f =
  match f.cached with
  | None -> ()
  | Some _ ->
    f.cached <- None;
    f.cached_lsn <- -1L;
    Metrics.incr m_cache_invalidate

let invalidate_caches t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      List.iter invalidate_cache s.frames;
      Mutex.unlock s.mutex)
    t.shards

let touch t f = f.last_used <- Atomic.fetch_and_add t.tick 1

(* Least-recently-used unpinned, non-loading frame of the shard. Shard
   mutex held. *)
let find_victim s =
  let best = ref None in
  List.iter
    (fun f ->
      if f.pin_count = 0 && not f.loading then
        match !best with
        | Some b when b.last_used <= f.last_used -> ()
        | _ -> best := Some f)
    s.frames;
  !best

(* Like [find_victim] but only clean frames: recycling one needs no
   write-back, so a caller holding latches can evict it without I/O. *)
let find_clean_victim s =
  let best = ref None in
  List.iter
    (fun f ->
      if f.pin_count = 0 && (not f.loading) && not f.dirty then
        match !best with
        | Some b when b.last_used <= f.last_used -> ()
        | _ -> best := Some f)
    s.frames;
  !best

let note_io t =
  if Latch.held_by_self () > 0 then begin
    Atomic.incr t.io_latched;
    Metrics.incr m_latched_io
  end

(* Write a dirty victim image back, honoring the WAL rule. Called without
   the shard mutex; the frame is protected by its [loading] flag. *)
let write_back t pid image =
  Metrics.incr m_writebacks;
  t.force_log (header_lsn image);
  Disk.write t.disk pid image

(* Fill a brand-new frame for [pid] (shard mutex held on entry; released
   around the disk read). May push the shard past capacity — the caller
   decides that (overflow for latched allocations). *)
let fault_in t s pid ~read_from_disk =
  let f =
    {
      pid;
      image = Bytes.make (Disk.page_size t.disk) '\000';
      dirty = false;
      rec_lsn = -1L;
      pin_count = 1;
      loading = true;
      last_used = 0;
      frame_latch = Latch.create ();
      cached = None;
      cached_lsn = -1L;
      cache_on = t.node_cache;
    }
  in
  Latch.set_id f.frame_latch (Page_id.to_int pid);
  touch t f;
  s.frames <- f :: s.frames;
  s.n_frames <- s.n_frames + 1;
  Hashtbl.replace s.table (Page_id.to_int pid) f;
  Mutex.unlock s.mutex;
  if read_from_disk then begin
    note_io t;
    f.image <- Disk.read t.disk pid
  end;
  Mutex.lock s.mutex;
  f.loading <- false;
  Condition.broadcast s.changed;
  Mutex.unlock s.mutex;
  f

(* Pay back one overflow frame: evict-and-drop an unpinned victim so the
   shard shrinks toward capacity. Only called with no latches held, so the
   write-back is a legal I/O. *)
let shrink_overflow t s =
  Mutex.lock s.mutex;
  if s.n_frames <= s.capacity then Mutex.unlock s.mutex
  else
    match find_victim s with
    | None -> Mutex.unlock s.mutex
    | Some victim ->
      Atomic.incr t.evictions;
      Metrics.incr m_evictions;
      if Trace.enabled () then
        Trace.emit (Trace.Bp_evict { page = Page_id.to_int victim.pid; dirty = victim.dirty });
      (* Same protocol as eviction phase 1: concurrent pins of this page
         wait on [loading] until the write-back lands, then retry, find no
         frame, and fault in from the now-current disk image. *)
      victim.loading <- true;
      victim.pin_count <- 1;
      let vpid = victim.pid and dirty = victim.dirty and image = victim.image in
      Mutex.unlock s.mutex;
      if dirty then write_back t vpid image;
      Mutex.lock s.mutex;
      Hashtbl.remove s.table (Page_id.to_int vpid);
      s.frames <- List.filter (fun f -> f != victim) s.frames;
      s.n_frames <- s.n_frames - 1;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex

let rec pin_general t pid ~read_from_disk =
  let s = shard t pid in
  (* Unsynchronized peek: stale reads only delay or duplicate the shrink
     attempt, and [shrink_overflow] rechecks under the mutex. *)
  if s.n_frames > s.capacity && Latch.held_by_self () = 0 then shrink_overflow t s;
  Mutex.lock s.mutex;
  match Hashtbl.find_opt s.table (Page_id.to_int pid) with
  | Some f when f.loading ->
    Condition.wait s.changed s.mutex;
    Mutex.unlock s.mutex;
    pin_general t pid ~read_from_disk
  | Some f ->
    f.pin_count <- f.pin_count + 1;
    touch t f;
    Mutex.unlock s.mutex;
    Atomic.incr t.hits;
    Metrics.incr m_hits;
    if Trace.enabled () then Trace.emit (Trace.Bp_hit { page = Page_id.to_int pid });
    f
  | None ->
    Atomic.incr t.misses;
    Metrics.incr m_misses;
    if Trace.enabled () then Trace.emit (Trace.Bp_miss { page = Page_id.to_int pid });
    if s.n_frames < s.capacity then fault_in t s pid ~read_from_disk
    else begin
      (* A latched caller allocating a fresh page (split/root-grow sibling)
         must not evict a dirty victim: the write-back would be an I/O
         under latch, exactly what claim C1 forbids. Prefer a clean victim
         (recycling is I/O-free since there is nothing to read either);
         failing that, overflow capacity — bounded at 2x, so a client that
         never releases its latches (the coarse baseline) cannot balloon
         the pool — and let a later unlatched pin shrink the shard back.
         Past the bound, dirty eviction is the last resort and the I/O is
         counted against the invariant, as it should be. *)
      let latched_alloc = (not read_from_disk) && Latch.held_by_self () > 0 in
      let overflow_ok = latched_alloc && s.n_frames < 2 * s.capacity in
      let victim =
        if latched_alloc then
          match find_clean_victim s with
          | Some _ as v -> v
          | None -> if overflow_ok then None else find_victim s
        else find_victim s
      in
      match victim with
      | None when overflow_ok ->
        Metrics.incr m_overflow;
        fault_in t s pid ~read_from_disk
      | None ->
        Condition.wait s.changed s.mutex;
        Mutex.unlock s.mutex;
        pin_general t pid ~read_from_disk
      | Some victim ->
        Atomic.incr t.evictions;
        Metrics.incr m_evictions;
        if Trace.enabled () then
          Trace.emit
            (Trace.Bp_evict { page = Page_id.to_int victim.pid; dirty = victim.dirty });
        let old_pid = victim.pid in
        let old_dirty = victim.dirty in
        let old_image = victim.image in
        (* Phase 1: write the dirty image back while the frame is still
           registered under its old id in [loading] state — a concurrent
           pin of the old page waits instead of re-reading stale disk
           content before the write-back lands. The new id is claimed
           immediately (same frame, also loading) so a racing pin of it
           cannot create a duplicate frame. *)
        victim.loading <- true;
        victim.pin_count <- 1;
        Hashtbl.replace s.table (Page_id.to_int pid) victim;
        Mutex.unlock s.mutex;
        if old_dirty then begin
          note_io t;
          write_back t old_pid old_image
        end;
        (* Phase 2: rebind the frame to the new page id. *)
        Mutex.lock s.mutex;
        Hashtbl.remove s.table (Page_id.to_int old_pid);
        victim.pid <- pid;
        Latch.set_id victim.frame_latch (Page_id.to_int pid);
        victim.dirty <- false;
        victim.rec_lsn <- -1L;
        invalidate_cache victim;
        victim.image <- Bytes.make (Disk.page_size t.disk) '\000';
        touch t victim;
        Hashtbl.replace s.table (Page_id.to_int pid) victim;
        Condition.broadcast s.changed;
        Mutex.unlock s.mutex;
        if read_from_disk then begin
          note_io t;
          victim.image <- Disk.read t.disk pid
        end;
        Mutex.lock s.mutex;
        victim.loading <- false;
        Condition.broadcast s.changed;
        Mutex.unlock s.mutex;
        victim
    end

let pin t pid = pin_general t pid ~read_from_disk:true

let pin_new t pid = pin_general t pid ~read_from_disk:false

let unpin t f =
  let s = shard t f.pid in
  Mutex.lock s.mutex;
  assert (f.pin_count > 0);
  f.pin_count <- f.pin_count - 1;
  if f.pin_count = 0 then Condition.broadcast s.changed;
  Mutex.unlock s.mutex

let mark_dirty t f ~lsn =
  Bytes.set_int64_le f.image 0 lsn;
  let s = shard t f.pid in
  Mutex.lock s.mutex;
  let first = not f.dirty in
  if first then begin
    f.dirty <- true;
    f.rec_lsn <- lsn
  end;
  Mutex.unlock s.mutex;
  (* Full-page write (torn-write protection): the first time a page
     becomes dirty, log its complete post-modification image. Restart can
     then repair a page a torn disk write destroyed by reinstalling the
     image and redoing forward from it. The caller holds the page's X
     latch, so the image is stable; the image's header carries [lsn], and
     stamping the live header with the FPW record's own (higher) LSN means
     the WAL rule — write-back forces up to the header LSN — makes the
     image durable before any disk write of this dirty epoch can tear. *)
  if first && t.fpw_on then
    match t.log_page_image with
    | None -> ()
    | Some fpw -> Bytes.set_int64_le f.image 0 (fpw f.pid (Bytes.copy f.image))

let set_fpw t on = t.fpw_on <- on

let with_page t pid mode f =
  let frame = pin t pid in
  let finish v_or_exn =
    Latch.release frame.frame_latch mode;
    unpin t frame;
    match v_or_exn with Ok v -> v | Error e -> raise e
  in
  Latch.acquire frame.frame_latch mode;
  match f frame with v -> finish (Ok v) | exception e -> finish (Error e)

let flush_frame t s f =
  Latch.acquire f.frame_latch S;
  let need_write = f.dirty in
  let image = if need_write then Bytes.copy f.image else Bytes.empty in
  let pid = f.pid in
  if need_write then begin
    Mutex.lock s.mutex;
    f.dirty <- false;
    f.rec_lsn <- -1L;
    Mutex.unlock s.mutex
  end;
  Latch.release f.frame_latch S;
  if need_write then write_back t pid image

let flush_page t pid =
  let s = shard t pid in
  Mutex.lock s.mutex;
  let f = Hashtbl.find_opt s.table (Page_id.to_int pid) in
  Mutex.unlock s.mutex;
  match f with
  | Some f when not f.loading -> flush_frame t s f
  | _ -> ()

let flush_all t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      let frames = s.frames in
      Mutex.unlock s.mutex;
      List.iter (fun f -> if f.dirty && not f.loading then flush_frame t s f) frames)
    t.shards

let dirty_page_table t =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         Mutex.lock s.mutex;
         let dpt =
           List.filter_map
             (fun f -> if f.dirty && not f.loading then Some (f.pid, f.rec_lsn) else None)
             s.frames
         in
         Mutex.unlock s.mutex;
         dpt)

let drop_all t =
  Array.iter
    (fun s ->
      Mutex.lock s.mutex;
      List.iter invalidate_cache s.frames;
      Hashtbl.reset s.table;
      s.frames <- [];
      s.n_frames <- 0;
      Condition.broadcast s.changed;
      Mutex.unlock s.mutex)
    t.shards

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let evictions t = Atomic.get t.evictions

let io_while_latched t = Atomic.get t.io_latched

let reset_stats t =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.evictions 0;
  Atomic.set t.io_latched 0
