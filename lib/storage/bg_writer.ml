module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

let m_ckpt_fuzzy =
  Metrics.counter ~unit_:"ops"
    ~help:
      "fuzzy checkpoints taken by the background checkpointer (dirty-page-table + txn-table \
       anchor; pages dirtied before the previous anchor are flushed first, never the whole \
       pool)"
    "ckpt.fuzzy"

let m_passes =
  Metrics.counter ~unit_:"ops" ~help:"background-writer flush passes executed" "bg.pass"

type t = {
  pool : Buffer_pool.t;
  interval_us : int;
  reserve : int;
  (* Takes a fuzzy checkpoint through the recovery machinery and returns
     its anchor LSN. Runs on the writer domain. *)
  checkpoint : (unit -> int64) option;
  mutable checkpoint_interval_us : int;
  mutable ckpt_enabled : bool;
  mutex : Mutex.t;
  queue : Page_id.t Queue.t; (* prefetch requests, bounded *)
  mutable wakes : int;
  mutable stopping : bool;
  mutable running : bool;
  mutable crashed : bool;
  mutable domain : unit Domain.t option;
}

let queue_bound = 64

let create ?(interval_us = 500) ?(reserve = 1) ?checkpoint ?(checkpoint_interval_us = 0) pool =
  {
    pool;
    interval_us = max 1 interval_us;
    reserve = max 1 reserve;
    checkpoint;
    checkpoint_interval_us;
    ckpt_enabled = true;
    mutex = Mutex.create ();
    queue = Queue.create ();
    wakes = 0;
    stopping = false;
    running = false;
    crashed = false;
    domain = None;
  }

let running t = t.running && not t.stopping

let crashed t = t.crashed

let wake t =
  Mutex.lock t.mutex;
  t.wakes <- t.wakes + 1;
  Mutex.unlock t.mutex

let prefetch t pid =
  Mutex.lock t.mutex;
  if t.running && (not t.stopping) && Queue.length t.queue < queue_bound then
    Queue.add pid t.queue;
  Mutex.unlock t.mutex

let set_checkpoint_enabled t on =
  Mutex.lock t.mutex;
  t.ckpt_enabled <- on;
  Mutex.unlock t.mutex

(* The stdlib has no timed condition wait; poll in short slices so a
   [wake] from a starved foreground pin is honored within ~50us rather
   than a full idle interval. *)
let idle_wait t =
  let slice = 50e-6 in
  let budget = ref (float_of_int t.interval_us *. 1e-6) in
  let quiet () =
    Mutex.lock t.mutex;
    let q = (not t.stopping) && t.wakes = 0 && Queue.is_empty t.queue in
    Mutex.unlock t.mutex;
    q
  in
  while !budget > 0. && quiet () do
    Unix.sleepf (Float.min slice !budget);
    budget := !budget -. slice
  done

let run t =
  let last_ckpt = ref (Gist_util.Clock.now_ns ()) in
  let last_anchor = ref (-1L) in
  let rec go () =
    Mutex.lock t.mutex;
    t.wakes <- 0;
    let stopping = t.stopping in
    let ckpt_on = t.ckpt_enabled in
    let prefetches = ref [] in
    Queue.iter (fun pid -> prefetches := pid :: !prefetches) t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.mutex;
    List.iter (fun pid -> Buffer_pool.try_prefetch t.pool pid) (List.rev !prefetches);
    ignore (Buffer_pool.bg_flush_pass t.pool ~reserve:t.reserve : int);
    Metrics.incr m_passes;
    (match t.checkpoint with
    | Some ck when ckpt_on && (not stopping) && t.checkpoint_interval_us > 0 ->
      let now = Gist_util.Clock.now_ns () in
      if now - !last_ckpt >= t.checkpoint_interval_us * 1000 then begin
        last_ckpt := now;
        (* Flush pages dirtied before the previous anchor first, so the
           capture below holds no rec_lsn older than one interval — the
           incremental write-out that actually bounds the redo span
           (never flush_all; one interval's worth of aged pages each
           tick, pinned hot pages included). *)
        if !last_anchor >= 0L then
          ignore (Buffer_pool.flush_aged t.pool ~before:!last_anchor : int);
        let dirty = List.length (Buffer_pool.dirty_page_table t.pool) in
        let lsn = ck () in
        last_anchor := lsn;
        Metrics.incr m_ckpt_fuzzy;
        if Trace.enabled () then Trace.emit (Trace.Fuzzy_checkpoint { lsn; dirty })
      end
    | _ -> ());
    if not stopping then begin
      idle_wait t;
      go ()
    end
  in
  (match go () with
  | () -> ()
  | exception _e ->
    (* Fault injection (or any defect) killed the writer. Record it and
       fall through to the wake-up below: foreground pins waiting for the
       clean reserve must recheck [running] and evict for themselves. *)
    t.crashed <- true);
  t.running <- false;
  Buffer_pool.broadcast_waiters t.pool

let start t =
  if t.domain <> None then invalid_arg "Bg_writer.start: already started";
  t.running <- true;
  t.domain <- Some (Domain.spawn (fun () -> run t))

let join t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Mutex.unlock t.mutex;
  match t.domain with
  | None -> t.running <- false
  | Some d ->
    Domain.join d;
    t.domain <- None

let stop t = join t

let halt t = join t
