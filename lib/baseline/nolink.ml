open Gist_util
module Gist = Gist_core.Gist
module Node = Gist_core.Node
module Db = Gist_core.Db
module Buffer_pool = Gist_storage.Buffer_pool
module Latch = Gist_storage.Latch

let search_generic ~links t query =
  let ext = Gist.ext t in
  let db = Gist.db t in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let stack = ref [ (Gist.root t, Db.global_nsn db) ] in
  while !stack <> [] do
    let pid, memo = List.hd !stack in
    stack := List.tl !stack;
    Buffer_pool.with_page db.Db.pool pid Latch.S (fun frame ->
        match Node.get ext frame with
        | exception Codec.Corrupt _ -> () (* page was retired underneath us *)
        | node ->
          if
            links
            && Gist_wal.Lsn.( < ) memo node.Node.nsn
            && Gist_storage.Page_id.is_valid node.Node.rightlink
          then stack := (node.Node.rightlink, memo) :: !stack;
          if Node.is_leaf node then
            Dyn.iter
              (fun e ->
                if
                  ext.Gist_core.Ext.consistent query e.Node.le_key
                  && (not (Txn_id.is_some e.Node.le_deleter))
                  && not (Hashtbl.mem seen e.Node.le_rid)
                then begin
                  Hashtbl.replace seen e.Node.le_rid ();
                  results := (e.Node.le_key, e.Node.le_rid) :: !results
                end)
              (Node.leaf_entries node)
          else begin
            let child_memo = Buffer_pool.page_lsn frame in
            Dyn.iter
              (fun e ->
                if ext.Gist_core.Ext.consistent query e.Node.ie_bp then
                  stack := (e.Node.ie_child, child_memo) :: !stack)
              (Node.internal_entries node)
          end)
  done;
  !results

let search t query = search_generic ~links:false t query

let search_with_links t query = search_generic ~links:true t query
