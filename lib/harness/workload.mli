(** Workload generation for the experiments.

    Stateful per-worker generators with deterministic RNG streams. RIDs
    are made collision-free across workers by namespacing the slot with
    the worker id. *)

module Btree : sig
  type op =
    | Search of Gist_ams.Btree_ext.t
    | Insert of Gist_ams.Btree_ext.t * Gist_storage.Rid.t
    | Delete of Gist_ams.Btree_ext.t * Gist_storage.Rid.t

  val preload :
    Gist_core.Db.t ->
    Gist_ams.Btree_ext.t Gist_core.Gist.t ->
    n:int ->
    unit
  (** Insert keys [0, n) in one committed transaction (worker id 0). *)

  val rid_of_key : worker:int -> int -> Gist_storage.Rid.t

  val mixed :
    worker:int ->
    space:int ->
    read_pct:int ->
    scan_width:int ->
    theta:float ->
    Gist_util.Xoshiro.t ->
    op
  (** One operation: with probability [read_pct]% a range scan of
      [scan_width] starting at a (optionally Zipf-skewed) key, otherwise an
      insert of a fresh worker-local key or a delete of a previously
      inserted one. *)

  val scattered :
    worker:int ->
    space:int ->
    read_pct:int ->
    scan_width:int ->
    Gist_util.Xoshiro.t ->
    op list
  (** One transaction's actions. Reads are uniform range scans as in
      {!mixed}; a write is a delete+reinsert pair at two independent
      uniform keys, so write transactions fault (and dirty) cold leaves
      instead of appending to the worker's cached tail leaf. Used by the
      domain-scaling experiment, where write-side I/O is what a
      tree-global latch serializes. *)

  val apply :
    Gist_ams.Btree_ext.t Gist_core.Gist.t -> Gist_txn.Txn_manager.txn -> op -> unit
end

module Rtree : sig
  type op =
    | Search of Gist_ams.Rtree_ext.t
    | Insert of Gist_ams.Rtree_ext.t * Gist_storage.Rid.t

  val preload :
    Gist_core.Db.t ->
    Gist_ams.Rtree_ext.t Gist_core.Gist.t ->
    n:int ->
    extent:float ->
    seed:int ->
    unit

  val mixed :
    worker:int -> extent:float -> read_pct:int -> window:float -> Gist_util.Xoshiro.t -> op

  val apply :
    Gist_ams.Rtree_ext.t Gist_core.Gist.t -> Gist_txn.Txn_manager.txn -> op -> unit
end
