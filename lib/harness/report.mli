(** Aligned text tables for experiment output (and EXPERIMENTS.md). *)

val table : header:string list -> string list list -> unit
(** Print a column-aligned table with a rule under the header. *)

val section : string -> unit
(** Print an experiment heading. *)

val kv : string -> string -> unit
(** Print an aligned "key: value" line. *)

val f2 : float -> string
val f0 : float -> string
val i : int -> string

val metrics_json_line : unit -> string
(** One machine-parseable line, [{"metrics": {...}}], wrapping
    {!Gist_obs.Metrics.render_json} over a fresh snapshot. Experiment
    drivers print it after each run so per-run kernel counters land next
    to the timing table in captured output. *)
