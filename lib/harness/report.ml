let widths header rows =
  List.mapi
    (fun i h ->
      List.fold_left
        (fun w row -> max w (String.length (List.nth row i)))
        (String.length h) rows)
    header

let pad w s = s ^ String.make (max 0 (w - String.length s)) ' '

let table ~header rows =
  let ws = widths header rows in
  let line cells = String.concat "  " (List.map2 pad ws cells) in
  print_endline (line header);
  print_endline (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun row -> print_endline (line row)) rows

let section title =
  print_newline ();
  print_endline title;
  print_endline (String.make (String.length title) '=')

let kv k v = Printf.printf "%-28s %s\n" (k ^ ":") v

let f2 x = Printf.sprintf "%.2f" x

let f0 x = Printf.sprintf "%.0f" x

let i n = string_of_int n

let metrics_json_line () =
  Printf.sprintf {|{"metrics": %s}|}
    (Gist_obs.Metrics.render_json (Gist_obs.Metrics.snapshot ()))
