open Gist_util
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module Rid = Gist_storage.Rid
module Gist = Gist_core.Gist
module Txn = Gist_txn.Txn_manager

(* Worker-local insertion counters so generated keys/RIDs never collide
   across workers without coordination. *)
let counters = Array.init 64 (fun _ -> Atomic.make 0)

module Btree = struct
  type op = Search of B.t | Insert of B.t * Rid.t | Delete of B.t * Rid.t

  let rid_of_key ~worker k = Rid.make ~page:(100 + worker) ~slot:k

  let preload db t ~n =
    let txn = Txn.begin_txn db.Gist_core.Db.txns in
    for k = 0 to n - 1 do
      Gist.insert t txn ~key:(B.key k) ~rid:(rid_of_key ~worker:0 k)
    done;
    Txn.commit db.Gist_core.Db.txns txn

  let mixed ~worker ~space ~read_pct ~scan_width ~theta rng =
    let skewed_key () =
      if theta > 0.0 then Xoshiro.zipf rng ~n:space ~theta else Xoshiro.int rng space
    in
    let dice = Xoshiro.int rng 100 in
    if dice < read_pct then begin
      let lo = skewed_key () in
      Search (B.range lo (lo + scan_width))
    end
    else if Xoshiro.bool rng || Atomic.get counters.(worker land 63) = 0 then begin
      (* Fresh worker-namespaced key: space + worker stripe. *)
      let seq = Atomic.fetch_and_add counters.(worker land 63) 1 in
      let k = space + (worker * 10_000_000) + seq in
      Insert (B.key k, rid_of_key ~worker k)
    end
    else begin
      let seq = Xoshiro.int rng (Atomic.get counters.(worker land 63)) in
      let k = space + (worker * 10_000_000) + seq in
      Delete (B.key k, rid_of_key ~worker k)
    end

  (* Uniform cold-key writes. [mixed]'s inserts land on the worker's hot
     tail leaf, so write transactions do almost no I/O once that leaf is
     resident. Here a write transaction is a delete+reinsert pair at two
     independent uniformly random keys: every write faults cold leaves and
     dirties them, which is the I/O profile that separates a tree-global
     latch (the whole tree stalls for the write's disk waits) from the
     link protocol (other domains keep running). Deletes reuse the preload
     rid namespace (worker 0) so they hit real entries; reinserts take a
     fresh worker-namespaced rid above the preload slot range so a live
     rid is never duplicated. *)
  let scattered ~worker ~space ~read_pct ~scan_width rng =
    if Xoshiro.int rng 100 < read_pct then begin
      let lo = Xoshiro.int rng space in
      [ Search (B.range lo (lo + scan_width)) ]
    end
    else begin
      let k1 = Xoshiro.int rng space and k2 = Xoshiro.int rng space in
      let seq = Atomic.fetch_and_add counters.(worker land 63) 1 in
      [
        Delete (B.key k1, rid_of_key ~worker:0 k1);
        Insert (B.key k2, Rid.make ~page:(100 + worker) ~slot:(space + seq));
      ]
    end

  let apply t txn = function
    | Search q -> ignore (Gist.search t txn q)
    | Insert (k, rid) -> Gist.insert t txn ~key:k ~rid
    | Delete (k, rid) -> ignore (Gist.delete t txn ~key:k ~rid)
end

module Rtree = struct
  type op = Search of R.t | Insert of R.t * Rid.t

  let preload db t ~n ~extent ~seed =
    let rng = Xoshiro.create seed in
    let txn = Txn.begin_txn db.Gist_core.Db.txns in
    for i = 0 to n - 1 do
      let x = Xoshiro.float rng extent and y = Xoshiro.float rng extent in
      Gist.insert t txn ~key:(R.point x y) ~rid:(Rid.make ~page:100 ~slot:i)
    done;
    Txn.commit db.Gist_core.Db.txns txn

  let mixed ~worker ~extent ~read_pct ~window rng =
    if Xoshiro.int rng 100 < read_pct then begin
      let x = Xoshiro.float rng (extent -. window) in
      let y = Xoshiro.float rng (extent -. window) in
      Search (R.rect x y (x +. window) (y +. window))
    end
    else begin
      let seq = Atomic.fetch_and_add counters.(worker land 63) 1 in
      let x = Xoshiro.float rng extent and y = Xoshiro.float rng extent in
      Insert (R.point x y, Rid.make ~page:(200 + worker) ~slot:seq)
    end

  let apply t txn = function
    | Search q -> ignore (Gist.search t txn q)
    | Insert (k, rid) -> Gist.insert t txn ~key:k ~rid
end
