(* Bechamel micro-benchmarks — one Test.make per experiment (E1..E10, F5),
   each isolating the single-operation cost at the heart of that
   experiment's claim. The multi-domain sweeps that regenerate the full
   tables live in bin/experiments.ml (wall-clock measurement is the right
   tool there); these benches pin down the per-op costs with linear
   regression.

   Run:  dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module I = Gist_ams.Interval_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Xoshiro = Gist_util.Xoshiro

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 16; pool_capacity = 8192; page_size = 2048 }

(* One static B-tree with 20k keys shared by read-only benches. *)
let static_db, static_tree =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for k = 0 to 19_999 do
    Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
  done;
  Txn.commit db.Db.txns txn;
  (db, t)

(* A tree with 30% committed-deleted marks for the E7 scan bench. *)
let marked_db, marked_tree =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for k = 0 to 19_999 do
    Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  for k = 0 to 5_999 do
    ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k))
  done;
  Txn.commit db.Db.txns txn;
  (db, t)

(* Static R-tree for E3. *)
let rdb, rtree =
  let db = Db.create ~config () in
  let t = Gist.create db R.ext ~empty_bp:R.Empty () in
  let rng = Xoshiro.create 7 in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 0 to 9_999 do
    let x = Xoshiro.float rng 1000.0 and y = Xoshiro.float rng 1000.0 in
    Gist.insert t txn ~key:(R.point x y) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  (db, t)

let bench_rng = Xoshiro.create 99

(* E1: the cost of the link protocol itself on reads — NSN comparisons and
   (absent splits) zero extra hops. *)
let e1_read_nolink =
  Test.make ~name:"e1/read-nolink"
    (Staged.stage @@ fun () ->
     let lo = Xoshiro.int bench_rng 19_000 in
     ignore (Gist_baseline.Nolink.search static_tree (B.range lo (lo + 20))))

let e1_read_link =
  Test.make ~name:"e1/read-link"
    (Staged.stage @@ fun () ->
     let lo = Xoshiro.int bench_rng 19_000 in
     ignore (Gist_baseline.Nolink.search_with_links static_tree (B.range lo (lo + 20))))

(* E2: full transactional operation costs on the B-tree (Figure 3/4 code
   paths, including WAL, locks and predicates). *)
let e2_txn_search =
  Test.make ~name:"e2/txn-search-width10"
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn static_db.Db.txns in
     let lo = Xoshiro.int bench_rng 19_000 in
     ignore (Gist.search static_tree txn (B.range lo (lo + 10)));
     Txn.commit static_db.Db.txns txn)

let e2_insert_counter = ref 1_000_000

let e2_txn_insert =
  Test.make ~name:"e2/txn-insert"
    (Staged.stage @@ fun () ->
     incr e2_insert_counter;
     let k = !e2_insert_counter in
     let txn = Txn.begin_txn static_db.Db.txns in
     Gist.insert static_tree txn ~key:(B.key k) ~rid:(rid k);
     Txn.commit static_db.Db.txns txn)

let e2_txn_delete_insert =
  (* Delete + reinsert the same key: steady-state mixed op. *)
  Test.make ~name:"e2/txn-delete+insert"
    (Staged.stage @@ fun () ->
     let k = 5_000 + Xoshiro.int bench_rng 1000 in
     let txn = Txn.begin_txn static_db.Db.txns in
     if Gist.delete static_tree txn ~key:(B.key k) ~rid:(rid k) then
       Gist.insert static_tree txn ~key:(B.key k) ~rid:(rid k);
     Txn.commit static_db.Db.txns txn)

(* E3: R-tree window query (non-linear key space). *)
let e3_window_query =
  Test.make ~name:"e3/rtree-window-query"
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn rdb.Db.txns in
     let x = Xoshiro.float bench_rng 980.0 and y = Xoshiro.float bench_rng 980.0 in
     ignore (Gist.search rtree txn (R.rect x y (x +. 20.0) (y +. 20.0)));
     Txn.commit rdb.Db.txns txn)

(* E4: conflict-check cost, hybrid (leaf attachments) vs pure (global
   list), with 256 active scan predicates. *)
let e4_setup =
  lazy
    (let pure = Gist_baseline.Pure_predicate.create () in
     let pm = Gist.predicate_manager static_tree in
     let txns =
       List.init 256 (fun i ->
           let txn = Txn.begin_txn static_db.Db.txns in
           let q = B.range (i * 70) ((i * 70) + 10) in
           ignore (Gist.search static_tree txn q);
           Gist_baseline.Pure_predicate.register pure ~owner:(Txn.id txn) q;
           txn)
     in
     ignore txns;
     (pure, pm))

(* The leaf an insert of key 19_999 targets (min-penalty descent). *)
let e4_target_leaf =
  lazy
    (let rec descend pid =
       Gist_storage.Buffer_pool.with_page static_db.Db.pool pid Gist_storage.Latch.S
         (fun frame ->
           let node = Node.read B.ext frame in
           if Node.is_leaf node then `Leaf pid
           else
             `Child
               (Gist_util.Dyn.fold
                  (fun best e ->
                    match best with Some _ -> best | None -> Some e.Node.ie_child)
                  None (Node.internal_entries node)
               |> Option.get))
       |> function
       | `Leaf p -> p
       | `Child c -> descend c
     in
     descend (Gist.root static_tree))

let e4_hybrid_check =
  Test.make ~name:"e4/hybrid-check-256preds"
    (Staged.stage @@ fun () ->
     let _, pm = Lazy.force e4_setup in
     let leaf = Lazy.force e4_target_leaf in
     (* What the insert's step 6 does: filter the target leaf's list. *)
     ignore
       (List.filter
          (fun p -> B.ext.Ext.consistent (B.key 19_999) (Gist_pred.Predicate_manager.formula p))
          (Gist_pred.Predicate_manager.attached pm leaf)))

let e4_pure_check =
  Test.make ~name:"e4/pure-check-256preds"
    (Staged.stage @@ fun () ->
     let pure, _ = Lazy.force e4_setup in
     ignore
       (Gist_baseline.Pure_predicate.conflicting pure ~consistent:B.ext.Ext.consistent
          ~key:(B.key 19_999) ~exclude:Gist_util.Txn_id.none))

(* E6/T1: log record encode+append and full-catalog decode costs. *)
let e6_log_append =
  let log = Gist_wal.Log_manager.create () in
  Test.make ~name:"e6/log-append"
    (Staged.stage @@ fun () ->
     ignore
       (Gist_wal.Log_manager.append log ~txn:(Gist_util.Txn_id.of_int 1) ~prev:0L
          (Gist_wal.Log_record.Add_leaf_entry
             {
               page = Gist_storage.Page_id.of_int 7;
               nsn = 42L;
               entry = "0123456789abcdef";
               rid = rid 1;
             })))

(* E14: the sharded predicate-manager hot path — one register + attach +
   remove cycle, i.e. the per-operation §10.3 bookkeeping that used to sit
   behind one process-global mutex. *)
let e14_pred_attach =
  let module Pm = Gist_pred.Predicate_manager in
  let pm = Pm.create () in
  let i = ref 0 in
  Test.make ~name:"e14/pred-register-attach-remove"
    (Staged.stage @@ fun () ->
     incr i;
     let p = Pm.register pm ~owner:(Gist_util.Txn_id.of_int (!i land 1023)) ~kind:Pm.Scan () in
     Pm.attach pm p (Gist_storage.Page_id.of_int (!i land 4095));
     Pm.remove_pred pm p)

(* E7: the price of not-yet-collected marks. Both scans return ZERO
   results; the marked one wades through ~400 physical marked entries to
   find that out, the other through an equally-empty but mark-free range.
   Their difference is the pure overhead GC reclaims. *)
let e7_scan_with_marks =
  Test.make ~name:"e7/scan-0-results-over-400-marks"
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn marked_db.Db.txns in
     let lo = Xoshiro.int bench_rng 55 * 100 in
     ignore (Gist.search marked_tree txn (B.range lo (lo + 399)));
     Txn.commit marked_db.Db.txns txn)

let e7_scan_clean =
  Test.make ~name:"e7/scan-0-results-clean-range"
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn static_db.Db.txns in
     (* Beyond every stored key: same tree shape, no qualifying entries
        and no marks on the way. *)
     let lo = 40_000 + (Xoshiro.int bench_rng 55 * 100) in
     ignore (Gist.search static_tree txn (B.range lo (lo + 399)));
     Txn.commit static_db.Db.txns txn)

(* E8: the NSN/memo sources of §10.1. [last_lsn] here is an atomic mirror
   (cheap); [durable_lsn] stands in for a log manager whose counter read
   must synchronize — the design §10.1 warns becomes a bottleneck. *)
let e8_global_counter_read =
  Test.make ~name:"e8/nsn-read-log-lsn-atomic"
    (Staged.stage @@ fun () -> ignore (Gist_wal.Log_manager.last_lsn static_db.Db.log))

let e8_synchronized_counter_read =
  Test.make ~name:"e8/nsn-read-log-mutex"
    (Staged.stage @@ fun () -> ignore (Gist_wal.Log_manager.durable_lsn static_db.Db.log))

let e8_parent_lsn_read =
  Test.make ~name:"e8/nsn-read-parent-lsn"
    (Staged.stage @@ fun () ->
     Gist_storage.Buffer_pool.with_page static_db.Db.pool (Gist.root static_tree)
       Gist_storage.Latch.S (fun frame -> ignore (Gist_storage.Buffer_pool.page_lsn frame)))

(* E9: the signaling-lock acquire/release pair every traversal hop pays. *)
let e9_signaling_lock_pair =
  let tid = Gist_util.Txn_id.of_int 424242 in
  Test.make ~name:"e9/signaling-lock-pair"
    (Staged.stage @@ fun () ->
     Gist_txn.Lock_manager.lock static_db.Db.locks tid
       (Gist_txn.Lock_manager.Node (Gist_storage.Page_id.of_int 12345))
       Gist_txn.Lock_manager.S;
     Gist_txn.Lock_manager.unlock static_db.Db.locks tid
       (Gist_txn.Lock_manager.Node (Gist_storage.Page_id.of_int 12345)))

(* E10: the unique-insert probe (duplicate hit). *)
let e10_unique_db, e10_unique_tree =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~unique:true ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for k = 0 to 9_999 do
    Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
  done;
  Txn.commit db.Db.txns txn;
  (db, t)

let e10_duplicate_probe =
  Test.make ~name:"e10/unique-duplicate-probe"
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn e10_unique_db.Db.txns in
     let k = Xoshiro.int bench_rng 10_000 in
     (try Gist.insert e10_unique_tree txn ~key:(B.key k) ~rid:(rid (k + 500_000))
      with Gist.Duplicate_key -> ());
     Txn.commit e10_unique_db.Db.txns txn)

(* E13: the frame-attached decoded-node cache. Two identical static 20k-key
   B-trees at a realistic fanout (256 entries/node, 16 KiB pages — where
   decode cost is what it would be on disk pages), differing only in
   [node_cache]; the pool holds both trees entirely, so the off-tree's
   extra cost is pure re-decoding, exactly what the cache removes. *)
let e13_config =
  { Db.default_config with Db.max_entries = 256; pool_capacity = 8192; page_size = 16384 }

let e13_make_tree node_cache =
  let db = Db.create ~config:{ e13_config with Db.node_cache } () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for k = 0 to 19_999 do
    Gist.insert t txn ~key:(B.key k) ~rid:(rid k)
  done;
  Txn.commit db.Db.txns txn;
  (db, t)

let e13_on_db, e13_on_tree = e13_make_tree true

let e13_off_db, e13_off_tree = e13_make_tree false

(* Static-tree search (the e1 traversal: latches + link protocol, no txn
   machinery) — isolates what the read path pays per node visit, which is
   where the decode cost lived. *)
let e13_search t name =
  Test.make ~name
    (Staged.stage @@ fun () ->
     let lo = Xoshiro.int bench_rng 19_000 in
     ignore (Gist_baseline.Nolink.search_with_links t (B.range lo (lo + 10))))

let e13_search_cache_on = e13_search e13_on_tree "e13/search-cache-on"

let e13_search_cache_off = e13_search e13_off_tree "e13/search-cache-off"

(* Full transactional search on the same pair, for the end-to-end view. *)
let e13_txn_search db t name =
  Test.make ~name
    (Staged.stage @@ fun () ->
     let txn = Txn.begin_txn db.Db.txns in
     let lo = Xoshiro.int bench_rng 19_000 in
     ignore (Gist.search t txn (B.range lo (lo + 10)));
     Txn.commit db.Db.txns txn)

let e13_txn_search_cache_on = e13_txn_search e13_on_db e13_on_tree "e13/txn-search-cache-on"

let e13_txn_search_cache_off =
  e13_txn_search e13_off_db e13_off_tree "e13/txn-search-cache-off"

let e13_insert_counter = ref 2_000_000

let e13_insert db t name =
  Test.make ~name
    (Staged.stage @@ fun () ->
     incr e13_insert_counter;
     let k = !e13_insert_counter in
     let txn = Txn.begin_txn db.Db.txns in
     Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
     Txn.commit db.Db.txns txn)

let e13_insert_cache_on = e13_insert e13_on_db e13_on_tree "e13/insert-cache-on"

let e13_insert_cache_off = e13_insert e13_off_db e13_off_tree "e13/insert-cache-off"

(* F5 / node layout: page image encode+decode round trip. *)
let f5_node_codec =
  let node = Node.make_leaf ~id:(Gist_storage.Page_id.of_int 1) ~bp:(B.range 0 100) in
  let () =
    for i = 0 to 15 do
      Node.add_leaf_entry node
        {
          Node.le_key = B.key i;
          le_rid = rid i;
          le_creator = Gist_util.Txn_id.none;
          le_deleter = Gist_util.Txn_id.none;
        }
    done
  in
  let disk = Gist_storage.Disk.create ~page_size:2048 () in
  let pool = Gist_storage.Buffer_pool.create ~capacity:8 ~disk ~force_log:(fun _ -> ()) () in
  let frame = Gist_storage.Buffer_pool.pin_new pool (Gist_storage.Page_id.of_int 1) in
  Test.make ~name:"f5/node-encode+decode-16entries"
    (Staged.stage @@ fun () ->
     Node.write B.ext node frame;
     ignore (Node.read B.ext frame))

let tests =
  Test.make_grouped ~name:"gist" ~fmt:"%s %s"
    [
      e1_read_nolink;
      e1_read_link;
      e2_txn_search;
      e2_txn_insert;
      e2_txn_delete_insert;
      e3_window_query;
      e4_hybrid_check;
      e4_pure_check;
      e6_log_append;
      e7_scan_with_marks;
      e7_scan_clean;
      e8_global_counter_read;
      e8_synchronized_counter_read;
      e8_parent_lsn_read;
      e9_signaling_lock_pair;
      e10_duplicate_probe;
      e13_search_cache_on;
      e13_search_cache_off;
      e13_txn_search_cache_on;
      e13_txn_search_cache_off;
      e13_insert_cache_on;
      e13_insert_cache_off;
      e14_pred_attach;
      f5_node_codec;
    ]

let () =
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  (* BENCH_QUOTA_MS shrinks the per-bench measurement window; CI's smoke
     step uses it to prove the benches still run without paying for
     publication-grade numbers. *)
  let quota_s =
    match Sys.getenv_opt "BENCH_QUOTA_MS" with
    | Some v -> (
      match float_of_string_opt v with Some ms when ms > 0.0 -> ms /. 1000.0 | _ -> 0.5)
    | None -> 0.5
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] |> List.sort compare in
  Printf.printf "%-40s %14s %10s\n" "benchmark" "ns/op" "r^2";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun name ->
      let ols_result = Hashtbl.find results name in
      let est =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> Float.nan in
      Printf.printf "%-40s %14.1f %10.4f\n" name est r2)
    names;
  print_newline ();
  print_endline
    "Shapes to check (details in EXPERIMENTS.md): link read ~ nolink read (E1:\n\
     the protocol is latch-free overhead); pure-check >> hybrid-check (E4);\n\
     scan-with-marks > clean scan (E7); parent-LSN read avoids the log\n\
     manager's synchronization (E8).";
  print_newline ();
  (* Kernel counters accumulated across every bench iteration, one
     machine-parseable line (see OBSERVABILITY.md). *)
  print_endline (Gist_harness.Report.metrics_json_line ())
