lib/wal/log_manager.mli: Gist_util Log_record Lsn
