lib/wal/log_manager.ml: Atomic Buffer Bytes Codec Dyn Gist_util Int64 Log_record Lsn Mutex Option
