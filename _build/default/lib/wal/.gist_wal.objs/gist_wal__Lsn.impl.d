lib/wal/lsn.ml: Format Gist_util Int64 Stdlib
