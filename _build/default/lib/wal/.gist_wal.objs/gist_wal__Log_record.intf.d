lib/wal/log_record.mli: Buffer Format Gist_storage Gist_util Lsn
