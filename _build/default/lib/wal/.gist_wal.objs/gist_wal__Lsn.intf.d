lib/wal/lsn.mli: Buffer Format Gist_util
