lib/wal/log_record.ml: Codec Format Gist_storage Gist_util List Lsn Printf Txn_id
