(** Log sequence numbers.

    Monotonically increasing 64-bit values assigned by the log manager.
    Because NSNs are drawn from the same source (§10.1 of the paper), LSN
    comparisons drive split detection throughout the tree code. [nil] (0)
    orders below every real LSN. *)

type t = int64

val nil : t
val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
val encode : Buffer.t -> t -> unit
val decode : Gist_util.Codec.reader -> t
