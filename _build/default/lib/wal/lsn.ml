type t = int64

let nil = 0L

let equal = Int64.equal

let compare = Int64.compare

let ( < ) a b = Stdlib.( < ) (Int64.compare a b) 0

let ( <= ) a b = Stdlib.( <= ) (Int64.compare a b) 0

let max a b = if Stdlib.( >= ) (Int64.compare a b) 0 then a else b

let min a b = if Stdlib.( <= ) (Int64.compare a b) 0 then a else b

let pp ppf t = Format.fprintf ppf "L%Ld" t

let encode b t = Gist_util.Codec.put_i64 b t

let decode r = Gist_util.Codec.get_i64 r
