lib/harness/workload.mli: Gist_ams Gist_core Gist_storage Gist_txn Gist_util
