lib/harness/report.mli:
