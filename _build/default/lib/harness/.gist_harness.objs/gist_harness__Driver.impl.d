lib/harness/driver.ml: Array Clock Domain Float Gist_core Gist_txn Gist_util List Stats Xoshiro
