lib/harness/driver.mli: Gist_core Gist_txn Gist_util
