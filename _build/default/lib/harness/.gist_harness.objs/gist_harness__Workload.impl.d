lib/harness/workload.ml: Array Atomic Gist_ams Gist_core Gist_storage Gist_txn Gist_util Xoshiro
