(** Multi-domain workload driver.

    Spawns worker domains that repeatedly call an operation body until a
    wall-clock deadline, with per-worker deterministic RNG streams and
    deadlock-abort-retry handling, and aggregates throughput/latency. *)

type stats = {
  ops : int;
  aborts : int;
  elapsed_s : float;
  throughput : float;  (** Committed operations per second (all workers). *)
  latency : Gist_util.Stats.Histogram.t;  (** Per-operation seconds. *)
}

val run :
  domains:int ->
  duration_s:float ->
  seed:int ->
  (worker:int -> rng:Gist_util.Xoshiro.t -> unit) ->
  stats
(** [run ~domains ~duration_s ~seed body] calls [body] in a loop from each
    worker domain until the deadline. Each call is timed; exceptions from
    [body] abort the measurement. *)

val run_txn_ops :
  db:Gist_core.Db.t ->
  domains:int ->
  duration_s:float ->
  seed:int ->
  (worker:int -> rng:Gist_util.Xoshiro.t -> txn:Gist_txn.Txn_manager.txn -> unit) ->
  stats
(** Like {!run} but wraps each call in its own transaction, committing on
    success and aborting + retrying (counted) on deadlock. *)
