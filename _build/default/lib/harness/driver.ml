open Gist_util

type stats = {
  ops : int;
  aborts : int;
  elapsed_s : float;
  throughput : float;
  latency : Stats.Histogram.t;
}

type worker_acc = { mutable w_ops : int; mutable w_aborts : int; w_lat : Stats.Histogram.t }

let run_generic ~domains ~duration_s ~seed body =
  let master = Xoshiro.create seed in
  let streams = Array.init domains (fun _ -> Xoshiro.split master) in
  let start = Clock.now_ns () in
  let deadline_ns = start + int_of_float (duration_s *. 1e9) in
  let accs = Array.init domains (fun _ -> { w_ops = 0; w_aborts = 0; w_lat = Stats.Histogram.create () }) in
  let workers =
    List.init domains (fun w ->
        Domain.spawn (fun () ->
            let rng = streams.(w) in
            let acc = accs.(w) in
            while Clock.now_ns () < deadline_ns do
              let t0 = Clock.now_ns () in
              let aborts = body ~worker:w ~rng in
              acc.w_aborts <- acc.w_aborts + aborts;
              acc.w_ops <- acc.w_ops + 1;
              Stats.Histogram.add acc.w_lat (Float.of_int (Clock.now_ns () - t0) /. 1e9)
            done))
  in
  List.iter Domain.join workers;
  let elapsed_s = Clock.elapsed_s start in
  let ops = Array.fold_left (fun n a -> n + a.w_ops) 0 accs in
  let aborts = Array.fold_left (fun n a -> n + a.w_aborts) 0 accs in
  let latency =
    Array.fold_left (fun h a -> Stats.Histogram.merge h a.w_lat) (Stats.Histogram.create ()) accs
  in
  { ops; aborts; elapsed_s; throughput = Float.of_int ops /. elapsed_s; latency }

let run ~domains ~duration_s ~seed body =
  run_generic ~domains ~duration_s ~seed (fun ~worker ~rng ->
      body ~worker ~rng;
      0)

let run_txn_ops ~db ~domains ~duration_s ~seed body =
  let txns = db.Gist_core.Db.txns in
  run_generic ~domains ~duration_s ~seed (fun ~worker ~rng ->
      let rec attempt aborts =
        let txn = Gist_txn.Txn_manager.begin_txn txns in
        match body ~worker ~rng ~txn with
        | () ->
          Gist_txn.Txn_manager.commit txns txn;
          aborts
        | exception Gist_txn.Lock_manager.Deadlock _ ->
          Gist_txn.Txn_manager.abort txns txn;
          if aborts > 50 then aborts else attempt (aborts + 1)
      in
      attempt 0)
