open Gist_util

type 'p entry = { owner : Txn_id.t; formula : 'p }

type 'p t = { mutex : Mutex.t; mutable preds : 'p entry list }

let create () = { mutex = Mutex.create (); preds = [] }

let register t ~owner formula =
  Mutex.lock t.mutex;
  t.preds <- { owner; formula } :: t.preds;
  Mutex.unlock t.mutex

let conflicting t ~consistent ~key ~exclude =
  Mutex.lock t.mutex;
  let owners =
    List.filter_map
      (fun e ->
        if (not (Txn_id.equal e.owner exclude)) && consistent key e.formula then Some e.owner
        else None)
      t.preds
  in
  Mutex.unlock t.mutex;
  owners

let remove_txn t owner =
  Mutex.lock t.mutex;
  t.preds <- List.filter (fun e -> not (Txn_id.equal e.owner owner)) t.preds;
  Mutex.unlock t.mutex

let size t =
  Mutex.lock t.mutex;
  let n = List.length t.preds in
  Mutex.unlock t.mutex;
  n
