module Latch = Gist_storage.Latch
module Gist = Gist_core.Gist

type 'p t = { tree : 'p Gist.t; global : Latch.t }

let wrap tree = { tree; global = Latch.create () }

let tree t = t.tree

let search t txn q = Latch.with_latch t.global Latch.S (fun () -> Gist.search t.tree txn q)

let insert t txn ~key ~rid =
  Latch.with_latch t.global Latch.X (fun () -> Gist.insert t.tree txn ~key ~rid)

let delete t txn ~key ~rid =
  Latch.with_latch t.global Latch.X (fun () -> Gist.delete t.tree txn ~key ~rid)
