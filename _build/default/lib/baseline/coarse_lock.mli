(** Coarse (tree-global) locking baseline for experiment E2.

    The degenerate subtree-locking protocol of [BS77] with the subtree
    fixed at the root: every search takes a tree-wide S latch and every
    update a tree-wide X latch for the whole operation — including all its
    I/Os. Correct and simple, but with zero intra-tree concurrency; the
    link protocol's scaling claim (C1) is measured against this. *)

type 'p t

val wrap : 'p Gist_core.Gist.t -> 'p t
(** Same underlying tree; operations additionally serialize on a global
    reader-writer latch. *)

val tree : 'p t -> 'p Gist_core.Gist.t

val search :
  'p t -> Gist_txn.Txn_manager.txn -> 'p -> ('p * Gist_storage.Rid.t) list

val insert : 'p t -> Gist_txn.Txn_manager.txn -> key:'p -> rid:Gist_storage.Rid.t -> unit

val delete : 'p t -> Gist_txn.Txn_manager.txn -> key:'p -> rid:Gist_storage.Rid.t -> bool
