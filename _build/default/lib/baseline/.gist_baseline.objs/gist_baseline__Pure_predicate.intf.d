lib/baseline/pure_predicate.mli: Gist_util
