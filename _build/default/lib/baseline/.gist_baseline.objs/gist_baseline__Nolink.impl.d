lib/baseline/nolink.ml: Codec Dyn Gist_core Gist_storage Gist_util Gist_wal Hashtbl List Txn_id
