lib/baseline/pure_predicate.ml: Gist_util List Mutex Txn_id
