lib/baseline/coarse_lock.ml: Gist_core Gist_storage
