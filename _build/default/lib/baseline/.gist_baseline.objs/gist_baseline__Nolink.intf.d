lib/baseline/nolink.mli: Gist_core Gist_storage
