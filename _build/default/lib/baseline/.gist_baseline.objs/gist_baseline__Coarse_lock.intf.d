lib/baseline/coarse_lock.mli: Gist_core Gist_storage Gist_txn
