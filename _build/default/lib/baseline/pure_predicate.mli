(** Pure predicate locking baseline (§4.2, experiment E4).

    The mechanism the paper's hybrid improves on: every search registers
    its predicate in a single tree-global table before touching the index,
    and every insert/delete checks its key against the *entire* global
    list. The two §4.2 drawbacks are directly measurable:

    - a conflict check walks the whole table instead of one leaf's
      attachment list (O(all predicates) vs O(attached-at-leaf));
    - the whole search range is locked up-front, before any leaf is
      visited.

    This module provides the global table plus the check operation, so
    the benchmark can compare check costs against the hybrid predicate
    manager on identical predicate populations. *)

type 'p t

val create : unit -> 'p t

val register :
  'p t -> owner:Gist_util.Txn_id.t -> 'p -> unit
(** Add a search predicate to the global table (search start). *)

val conflicting :
  'p t -> consistent:('p -> 'p -> bool) -> key:'p -> exclude:Gist_util.Txn_id.t ->
  Gist_util.Txn_id.t list
(** Owners of every registered predicate consistent with [key] — the check
    an insert performs before proceeding. *)

val remove_txn : 'p t -> Gist_util.Txn_id.t -> unit
(** Drop a transaction's predicates (end of transaction). *)

val size : 'p t -> int
