(** Figure-1 strawman: traversal without split compensation.

    A read-only search over the same physical tree that ignores NSNs and
    never follows rightlinks — exactly the naive interleaving of Figure 1.
    Under concurrent splits it silently loses keys that moved to new right
    siblings between reading the parent and visiting the child. Takes no
    locks and attaches no predicates: it exists purely to demonstrate (and
    count, in experiment E1) what the paper's protocol prevents. *)

val search : 'p Gist_core.Gist.t -> 'p -> ('p * Gist_storage.Rid.t) list
(** Dirty-read traversal with per-node S latches but no link protocol. *)

val search_with_links : 'p Gist_core.Gist.t -> 'p -> ('p * Gist_storage.Rid.t) list
(** The same dirty-read traversal *with* NSN/rightlink split compensation —
    isolating exactly the link mechanism for the E1 comparison (no locks,
    no predicates, in either variant). *)
