lib/txn/lock_manager.mli: Format Gist_storage Gist_util
