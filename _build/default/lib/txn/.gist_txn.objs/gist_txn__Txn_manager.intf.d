lib/txn/txn_manager.mli: Gist_util Gist_wal Lock_manager
