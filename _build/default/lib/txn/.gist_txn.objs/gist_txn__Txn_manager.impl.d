lib/txn/txn_manager.ml: Gist_util Gist_wal Hashtbl Int64 List Lock_manager Mutex Txn_id
