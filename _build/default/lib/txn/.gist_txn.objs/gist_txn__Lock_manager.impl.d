lib/txn/lock_manager.ml: Array Atomic Condition Format Gist_storage Gist_util Hashtbl List Mutex Option Txn_id
