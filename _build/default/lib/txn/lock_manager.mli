(** Transactional lock manager.

    Long-duration locks, organized in a hash table by name, with S/X modes,
    FIFO queuing, S→X upgrade, and waits-for deadlock detection (the victim
    is the requester that closed the cycle; it receives {!Deadlock}).

    Three name spaces, per the paper's hybrid scheme:
    - [Record rid] — two-phase locks on data records (§4.3);
    - [Node pid] — *signaling* locks that protect nodes referenced from
      traversal stacks against deletion (§7.2). These are ordinary S locks:
      they do not restrict physical access to the page, only node
      deletion (which requests X);
    - [Txn id] — every transaction X-locks its own id at start; "blocking
      on a predicate" is an S request on the owner's id (§10.3).

    Locks are reentrant with counting, so an operation that pushes the same
    node onto its stack twice releases it twice. [copy_holders] implements
    the lock-manager extension of §10.3: a node split replicates the
    signaling locks of the original node onto the new right sibling. *)

exception Deadlock of Gist_util.Txn_id.t
(** Raised in the requester whose wait would close a waits-for cycle. *)

type mode = S | X

type name =
  | Record of Gist_storage.Rid.t
  | Node of Gist_storage.Page_id.t
  | Txn of Gist_util.Txn_id.t

type t

val create : unit -> t

val lock : t -> Gist_util.Txn_id.t -> name -> mode -> unit
(** Block until granted. Reentrant; an S holder requesting X upgrades.
    @raise Deadlock if waiting would create a cycle. *)

val try_lock : t -> Gist_util.Txn_id.t -> name -> mode -> bool
(** Instant-duration attempt; never blocks. *)

val unlock : t -> Gist_util.Txn_id.t -> name -> unit
(** Decrement this transaction's hold count; fully release at zero.
    No-op if not held (tolerates release-after-copy races). *)

val release_all : t -> Gist_util.Txn_id.t -> unit
(** Drop every lock of the transaction (end of transaction). *)

val release_all_except : t -> Gist_util.Txn_id.t -> keep:(name -> bool) -> unit
(** Like [release_all] but retains names satisfying [keep] (used by
    partial rollback, which must not release pre-savepoint locks). *)

val copy_holders : t -> src:name -> dst:name -> unit
(** Grant every current holder of [src] the same lock on [dst] (same mode
    and count). The §10.3 extension for signaling locks at splits. *)

val holders : t -> name -> (Gist_util.Txn_id.t * mode) list

val held : t -> Gist_util.Txn_id.t -> name -> bool

val held_names : t -> Gist_util.Txn_id.t -> name list

val pp_name : Format.formatter -> name -> unit
val pp_mode : Format.formatter -> mode -> unit

(** {1 Statistics} *)

val blocked_count : t -> int
(** Number of lock requests that had to wait (cumulative). *)

val deadlock_count : t -> int
val reset_stats : t -> unit
