exception Corrupt of string

type reader = { buf : Bytes.t; mutable off : int }

let reader ?(pos = 0) buf = { buf; off = pos }

let pos r = r.off

let remaining r = Bytes.length r.buf - r.off

let need r n =
  if r.off + n > Bytes.length r.buf then
    raise (Corrupt (Printf.sprintf "truncated read: need %d at %d/%d" n r.off (Bytes.length r.buf)))

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)

let put_u16 b v = Buffer.add_uint16_le b (v land 0xffff)

let put_i32 b v = Buffer.add_int32_le b (Int32.of_int v)

let put_i64 b v = Buffer.add_int64_le b v

let put_int b v = Buffer.add_int64_le b (Int64.of_int v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_float b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let put_string b s =
  put_i32 b (String.length s);
  Buffer.add_string b s

let put_bytes b s =
  put_i32 b (Bytes.length s);
  Buffer.add_bytes b s

let put_option enc b = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    enc b v

let put_list enc b l =
  put_i32 b (List.length l);
  List.iter (enc b) l

let get_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.off in
  r.off <- r.off + 1;
  v

let get_u16 r =
  need r 2;
  let v = Bytes.get_uint16_le r.buf r.off in
  r.off <- r.off + 2;
  v

let get_i32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.off) in
  r.off <- r.off + 4;
  v

let get_i64 r =
  need r 8;
  let v = Bytes.get_int64_le r.buf r.off in
  r.off <- r.off + 8;
  v

let get_int r = Int64.to_int (get_i64 r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "bad bool tag %d" n))

let get_float r = Int64.float_of_bits (get_i64 r)

let get_string r =
  let n = get_i32 r in
  if n < 0 then raise (Corrupt "negative string length");
  need r n;
  let s = Bytes.sub_string r.buf r.off n in
  r.off <- r.off + n;
  s

let get_bytes r =
  let n = get_i32 r in
  if n < 0 then raise (Corrupt "negative bytes length");
  need r n;
  let s = Bytes.sub r.buf r.off n in
  r.off <- r.off + n;
  s

let get_option dec r =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (dec r)
  | n -> raise (Corrupt (Printf.sprintf "bad option tag %d" n))

let get_list dec r =
  let n = get_i32 r in
  if n < 0 then raise (Corrupt "negative list length");
  List.init n (fun _ -> dec r)

let checksum b off len =
  (* 64-bit FNV offset basis, wrapped into OCaml's 63-bit int. *)
  let h = ref (0xcbf29ce484222325L |> Int64.to_int) in
  for i = off to off + len - 1 do
    h := (!h lxor Bytes.get_uint8 b i) * 0x100000001b3
  done;
  !h land max_int
