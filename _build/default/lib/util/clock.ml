let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let elapsed_s t0 = Float.of_int (now_ns () - t0) /. 1e9
