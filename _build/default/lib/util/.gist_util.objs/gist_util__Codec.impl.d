lib/util/codec.ml: Buffer Bytes Int32 Int64 List Printf String
