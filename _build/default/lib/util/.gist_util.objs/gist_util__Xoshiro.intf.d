lib/util/xoshiro.mli:
