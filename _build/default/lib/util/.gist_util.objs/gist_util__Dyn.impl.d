lib/util/dyn.ml: Array List Printf
