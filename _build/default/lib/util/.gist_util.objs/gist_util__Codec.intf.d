lib/util/codec.mli: Buffer Bytes
