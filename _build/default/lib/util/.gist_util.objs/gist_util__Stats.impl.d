lib/util/stats.ml: Array Atomic Float Format Stdlib
