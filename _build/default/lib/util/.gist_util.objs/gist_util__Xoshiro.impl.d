lib/util/xoshiro.ml: Array Float Int64
