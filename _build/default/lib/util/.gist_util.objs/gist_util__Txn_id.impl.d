lib/util/txn_id.ml: Codec Format Hashtbl Int
