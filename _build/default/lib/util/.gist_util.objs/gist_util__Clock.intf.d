lib/util/clock.mli:
