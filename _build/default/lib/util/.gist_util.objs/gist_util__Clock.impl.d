lib/util/clock.ml: Float Unix
