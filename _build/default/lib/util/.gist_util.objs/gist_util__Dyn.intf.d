lib/util/dyn.mli:
