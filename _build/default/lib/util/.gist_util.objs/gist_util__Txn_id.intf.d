lib/util/txn_id.mli: Buffer Codec Format
