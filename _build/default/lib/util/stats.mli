(** Lightweight measurement accumulators for the experiment harness. *)

(** Running counter with mean/min/max; not thread-safe (aggregate per-domain
    instances with [merge]). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(** Fixed-resolution latency histogram (log-spaced buckets) supporting
    approximate percentiles. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99] is an upper bound on the p99 sample. *)

  val merge : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

val atomic_counter : unit -> (unit -> unit) * (unit -> int)
(** [let incr, read = atomic_counter ()] builds a domain-safe counter. *)
