type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 expands the seed into four well-mixed state words; it is also
   used by [split] to fork streams. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (next64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  let v = Int64.to_int (next64 t) land max_int in
  v mod bound

let float t bound =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Xoshiro.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let zipf t ~n ~theta =
  if theta <= 0.0 then int t n
  else begin
    (* Gray et al. self-similar approximation of a Zipfian distribution. *)
    let zeta m =
      let acc = ref 0.0 in
      for i = 1 to m do
        acc := !acc +. (1.0 /. Float.of_int i ** theta)
      done;
      !acc
    in
    let zn = zeta (min n 10_000) *. Float.of_int n /. Float.of_int (min n 10_000) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. ((2.0 /. Float.of_int n) ** (1.0 -. theta)))
      /. (1.0 -. (zeta 2 /. zn))
    in
    let u = float t 1.0 in
    let uz = u *. zn in
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** theta) then 1
    else
      let r = Float.of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha) in
      min (n - 1) (max 0 (int_of_float r))
  end
