(** Deterministic, splittable pseudo-random numbers (xoshiro256** seeded by
    splitmix64).

    Every workload generator and property test in this repository derives its
    randomness from an explicit [Xoshiro.t] so experiments are reproducible
    from a single integer seed, including across domains: [split] yields an
    independent stream per worker. Not thread-safe; give each domain its own
    stream. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val next64 : t -> int64
(** Uniform 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipfian rank in [\[0, n)] with skew [theta] (0 = uniform). Uses the
    rejection-free approximation of Gray et al.; adequate for workload
    skew, not for statistical work. *)
