(** Binary encoding/decoding helpers for page images and log records.

    Encoders append to a [Buffer.t]; decoders read from a [reader] that
    tracks its own offset into a [Bytes.t]. All integers are little-endian
    fixed width; variable-length payloads are length-prefixed. Decoding
    failures raise [Corrupt], which recovery code treats as a torn or
    damaged page. *)

exception Corrupt of string

type reader

val reader : ?pos:int -> Bytes.t -> reader
val pos : reader -> int
val remaining : reader -> int

(** {1 Encoders} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_i32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int64 -> unit
val put_int : Buffer.t -> int -> unit
(** A native [int] carried as 64 bits. *)

val put_bool : Buffer.t -> bool -> unit
val put_float : Buffer.t -> float -> unit
val put_string : Buffer.t -> string -> unit
val put_bytes : Buffer.t -> Bytes.t -> unit
val put_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val put_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

(** {1 Decoders} *)

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_i32 : reader -> int
val get_i64 : reader -> int64
val get_int : reader -> int
val get_bool : reader -> bool
val get_float : reader -> float
val get_string : reader -> string
val get_bytes : reader -> Bytes.t
val get_option : (reader -> 'a) -> reader -> 'a option
val get_list : (reader -> 'a) -> reader -> 'a list

val checksum : Bytes.t -> int -> int -> int
(** [checksum b off len] is a FNV-1a hash of the range, used as a page and
    log-record integrity check (detects torn writes in crash tests). *)
