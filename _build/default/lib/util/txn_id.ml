type t = int

let none = 0

let of_int i =
  if i < 0 then invalid_arg "Txn_id.of_int: negative";
  i

let to_int t = t

let is_some t = t <> none

let equal = Int.equal

let compare = Int.compare

let hash = Hashtbl.hash

let pp ppf t = Format.fprintf ppf "T%d" t

let encode b t = Codec.put_i32 b t

let decode r = Codec.get_i32 r
