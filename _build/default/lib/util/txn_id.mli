(** Transaction identifiers.

    Plain integers assigned by the transaction manager. Id 0 is reserved to
    mean "no transaction" (log records written outside any transaction,
    e.g. checkpoints). *)

type t = private int

val none : t
val of_int : int -> t
val to_int : t -> int
val is_some : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val encode : Buffer.t -> t -> unit
val decode : Codec.reader -> t
