type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dyn: index %d out of bounds [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let ndata = Array.make ncap x in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dyn.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let remove t i =
  check t i;
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1

let clear t = t.len <- 0

let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let for_all p t = not (exists (fun x -> not (p x)) t)

let find_index p t =
  let rec loop i =
    if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1)
  in
  loop 0

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if p t.data.(i) then begin
      t.data.(!j) <- t.data.(i);
      incr j
    end
  done;
  t.len <- !j

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let copy t = { data = Array.copy t.data; len = t.len }

let append dst src = iter (push dst) src

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
