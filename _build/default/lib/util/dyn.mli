(** Resizable arrays.

    OCaml 5.1 does not ship [Stdlib.Dynarray]; this is a minimal, allocation
    conscious replacement used for node entry lists and harness buffers. Not
    thread-safe; callers synchronize externally (nodes are accessed under
    latches). *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a dynarray of length [n] filled with [x]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val remove : 'a t -> int -> unit
(** [remove t i] deletes index [i], shifting subsequent elements left. *)

val clear : 'a t -> unit
val is_empty : 'a t -> bool
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find_index : ('a -> bool) -> 'a t -> int option
val filter_in_place : ('a -> bool) -> 'a t -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val copy : 'a t -> 'a t
val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all elements of [src] onto [dst]. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
