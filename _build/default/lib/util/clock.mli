(** Wall-clock time in integer nanoseconds, used for spin delays and
    throughput measurement. Backed by [Unix.gettimeofday]; adequate for the
    microsecond-to-second ranges this repository measures. *)

val now_ns : unit -> int

val elapsed_s : int -> float
(** [elapsed_s t0] is seconds elapsed since [t0 = now_ns ()]. *)
