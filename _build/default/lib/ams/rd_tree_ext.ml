open Gist_util
module Ext = Gist_core.Ext

type t = Empty | Set of int array

let set elems = match List.sort_uniq compare elems with [] -> Empty | l -> Set (Array.of_list l)

let elements = function Empty -> [] | Set a -> Array.to_list a

let cardinal = function Empty -> 0 | Set a -> Array.length a

(* Linear merge over sorted arrays. *)
let overlaps a b =
  match (a, b) with
  | Empty, _ | _, Empty -> false
  | Set a, Set b ->
    let rec loop i j =
      i < Array.length a && j < Array.length b
      &&
      if a.(i) = b.(j) then true else if a.(i) < b.(j) then loop (i + 1) j else loop i (j + 1)
    in
    loop 0 0

let subset ~sub ~super =
  match (sub, super) with
  | Empty, _ -> true
  | _, Empty -> false
  | Set a, Set b ->
    let rec loop i j =
      if i >= Array.length a then true
      else if j >= Array.length b then false
      else if a.(i) = b.(j) then loop (i + 1) (j + 1)
      else if a.(i) > b.(j) then loop i (j + 1)
      else false
    in
    loop 0 0

let union2 a b =
  match (a, b) with
  | Empty, s | s, Empty -> s
  | Set a, Set b ->
    let out = Array.make (Array.length a + Array.length b) 0 in
    let rec merge i j k =
      if i >= Array.length a && j >= Array.length b then k
      else if j >= Array.length b || (i < Array.length a && a.(i) < b.(j)) then begin
        out.(k) <- a.(i);
        merge (i + 1) j (k + 1)
      end
      else if i >= Array.length a || b.(j) < a.(i) then begin
        out.(k) <- b.(j);
        merge i (j + 1) (k + 1)
      end
      else begin
        out.(k) <- a.(i);
        merge (i + 1) (j + 1) (k + 1)
      end
    in
    let k = merge 0 0 0 in
    Set (Array.sub out 0 k)

let union ps = List.fold_left union2 Empty ps

let consistent = overlaps

let inter_count a b =
  match (a, b) with
  | Empty, _ | _, Empty -> 0
  | Set a, Set b ->
    let rec loop i j n =
      if i >= Array.length a || j >= Array.length b then n
      else if a.(i) = b.(j) then loop (i + 1) (j + 1) (n + 1)
      else if a.(i) < b.(j) then loop (i + 1) j n
      else loop i (j + 1) n
    in
    loop 0 0 0

let penalty bp key = Float.of_int (cardinal (union2 bp key) - cardinal bp)

(* Jaccard distance between two sets; 1.0 for disjoint. *)
let distance a b =
  let inter = inter_count a b in
  let uni = cardinal a + cardinal b - inter in
  if uni = 0 then 0.0 else 1.0 -. (Float.of_int inter /. Float.of_int uni)

let pick_split ps =
  let n = Array.length ps in
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = distance ps.(i) ps.(j) in
      if d > !worst then begin
        worst := d;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let assignment = Array.make n false in
  assignment.(!seed_b) <- true;
  let grp_a = ref ps.(!seed_a) and grp_b = ref ps.(!seed_b) in
  for i = 0 to n - 1 do
    if i <> !seed_a && i <> !seed_b then begin
      let grow_a = penalty !grp_a ps.(i) and grow_b = penalty !grp_b ps.(i) in
      if grow_b < grow_a then begin
        assignment.(i) <- true;
        grp_b := union2 !grp_b ps.(i)
      end
      else grp_a := union2 !grp_a ps.(i)
    end
  done;
  assignment

let matches_exact a b =
  match (a, b) with
  | Empty, Empty -> true
  | Set a, Set b -> a = b
  | _ -> false

let encode b = function
  | Empty -> Codec.put_u8 b 0
  | Set a ->
    Codec.put_u8 b 1;
    Codec.put_i32 b (Array.length a);
    Array.iter (Codec.put_i32 b) a

let decode r =
  match Codec.get_u8 r with
  | 0 -> Empty
  | 1 ->
    let n = Codec.get_i32 r in
    if n < 0 then raise (Codec.Corrupt "Rd_tree_ext: negative set size");
    Set (Array.init n (fun _ -> Codec.get_i32 r))
  | n -> raise (Codec.Corrupt (Printf.sprintf "Rd_tree_ext: bad tag %d" n))

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Set a ->
    Format.fprintf ppf "{%s}"
      (String.concat "," (Array.to_list (Array.map string_of_int a)))

let ext =
  {
    Ext.name = "rd-tree";
    consistent;
    union;
    penalty;
    pick_split;
    matches_exact;
    encode;
    decode;
    pp;
  }
