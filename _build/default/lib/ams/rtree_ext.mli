(** R-tree as a GiST extension ([Gut84] via [HNP95] §4.2).

    Predicates are axis-aligned rectangles with float coordinates;
    [consistent] is rectangle overlap, [union] the bounding box, [penalty]
    the area enlargement, and [pick_split] Guttman's quadratic algorithm
    (seed pair maximizing dead area, then least-enlargement assignment with
    a minimum fill of one — adequate for a concurrency/recovery study).

    This is the canonical *non-linear, non-partitioning* key space the
    paper's protocol exists for: ranges overlap, nothing is ordered, and
    key-range locking is impossible. *)

type t = Empty | Rect of { x0 : float; y0 : float; x1 : float; y1 : float }

val rect : float -> float -> float -> float -> t
(** [rect x0 y0 x1 y1], normalized so [x0 <= x1] and [y0 <= y1]. *)

val point : float -> float -> t

val area : t -> float

val overlaps : t -> t -> bool

val contains : outer:t -> inner:t -> bool

val ext : t Gist_core.Ext.t

val str_sort : per_node:int -> (t * 'a) array -> unit
(** In-place Sort-Tile-Recursive ordering (Leutenegger et al.) for
    {!Gist_core.Gist.bulk_load}: entries are sliced into vertical runs of
    ~[per_node]·√(n/[per_node]) by center x, each run sorted by center y —
    consecutive entries then pack into spatially tight leaves. *)

val center : t -> float * float
