(** 1-D interval tree as a GiST extension.

    Keys are float intervals (e.g. temporal validity periods); queries are
    stabbing points or windows. Unlike the B-tree extension, stored keys
    themselves overlap — so even the leaf level has overlapping predicates,
    exercising the multi-path search behavior that distinguishes GiSTs
    from B-trees. Splits sort by midpoint. *)

type t = Empty | Iv of { lo : float; hi : float }

val iv : float -> float -> t
val stab : float -> t
(** Point query [\[x, x\]]. *)

val ext : t Gist_core.Ext.t
