lib/ams/interval_ext.mli: Gist_core
