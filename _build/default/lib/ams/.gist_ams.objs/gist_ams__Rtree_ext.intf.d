lib/ams/rtree_ext.mli: Gist_core
