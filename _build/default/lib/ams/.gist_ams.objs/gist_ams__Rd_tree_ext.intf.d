lib/ams/rd_tree_ext.mli: Gist_core
