lib/ams/btree_ext.mli: Gist_core
