lib/ams/rtree_ext.ml: Array Codec Float Format Gist_core Gist_util List Printf
