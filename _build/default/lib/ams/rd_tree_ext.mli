(** RD-tree ("Russian Doll" tree) as a GiST extension.

    Keys are finite sets of integers (e.g. keyword ids of a document);
    bounding predicates are set unions, so each ancestor's BP is a superset
    of everything below — the "russian doll" nesting. Queries are sets too,
    with overlap semantics: [consistent q p] iff [q ∩ p ≠ ∅].

    This is the canonical *non-spatial, non-ordered* GiST instantiation:
    there is no geometry and no sort order to exploit, so every piece of
    concurrency machinery must come from the kernel — which is the point.

    [penalty] is the number of elements the BP must absorb; [pick_split]
    seeds the two groups with the pair of most-dissimilar sets (by Jaccard
    distance) and assigns the rest by least growth. *)

type t = Empty | Set of int array  (** Sorted, duplicate-free. *)

val set : int list -> t
(** Build a key from an element list (sorted and deduplicated here). *)

val elements : t -> int list

val overlaps : t -> t -> bool
val subset : sub:t -> super:t -> bool
val cardinal : t -> int

val ext : t Gist_core.Ext.t
