open Gist_util
module Ext = Gist_core.Ext

type t = Empty | Rect of { x0 : float; y0 : float; x1 : float; y1 : float }

let rect a b c d =
  Rect { x0 = Float.min a c; y0 = Float.min b d; x1 = Float.max a c; y1 = Float.max b d }

let point x y = Rect { x0 = x; y0 = y; x1 = x; y1 = y }

let area = function Empty -> 0.0 | Rect r -> (r.x1 -. r.x0) *. (r.y1 -. r.y0)

let overlaps a b =
  match (a, b) with
  | Empty, _ | _, Empty -> false
  | Rect a, Rect b -> a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1

let contains ~outer ~inner =
  match (outer, inner) with
  | _, Empty -> true
  | Empty, _ -> false
  | Rect o, Rect i -> o.x0 <= i.x0 && o.y0 <= i.y0 && i.x1 <= o.x1 && i.y1 <= o.y1

let union2 a b =
  match (a, b) with
  | Empty, p | p, Empty -> p
  | Rect a, Rect b ->
    Rect
      {
        x0 = Float.min a.x0 b.x0;
        y0 = Float.min a.y0 b.y0;
        x1 = Float.max a.x1 b.x1;
        y1 = Float.max a.y1 b.y1;
      }

let union ps = List.fold_left union2 Empty ps

let consistent = overlaps

let penalty bp key = area (union2 bp key) -. area bp

(* Guttman's quadratic split: pick the two rectangles that would waste the
   most area together as seeds, then assign each remaining entry to the
   group whose bounding box grows least. *)
let pick_split ps =
  let n = Array.length ps in
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dead = area (union2 ps.(i) ps.(j)) -. area ps.(i) -. area ps.(j) in
      if dead > !worst then begin
        worst := dead;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let assignment = Array.make n false in
  assignment.(!seed_b) <- true;
  let box_a = ref ps.(!seed_a) and box_b = ref ps.(!seed_b) in
  let count_a = ref 1 and count_b = ref 1 in
  for i = 0 to n - 1 do
    if i <> !seed_a && i <> !seed_b then begin
      let grow_a = area (union2 !box_a ps.(i)) -. area !box_a in
      let grow_b = area (union2 !box_b ps.(i)) -. area !box_b in
      (* Keep both sides non-empty even for pathological inputs. *)
      let to_b =
        if !count_a + (n - i) <= 1 then false
        else if !count_b + (n - i) <= 1 then true
        else if grow_b < grow_a then true
        else if grow_a < grow_b then false
        else area !box_b < area !box_a
      in
      if to_b then begin
        assignment.(i) <- true;
        box_b := union2 !box_b ps.(i);
        incr count_b
      end
      else begin
        box_a := union2 !box_a ps.(i);
        incr count_a
      end
    end
  done;
  assignment

let matches_exact a b =
  match (a, b) with
  | Empty, Empty -> true
  | Rect a, Rect b -> a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1
  | _ -> false

let encode b = function
  | Empty -> Codec.put_u8 b 0
  | Rect r ->
    Codec.put_u8 b 1;
    Codec.put_float b r.x0;
    Codec.put_float b r.y0;
    Codec.put_float b r.x1;
    Codec.put_float b r.y1

let decode r =
  match Codec.get_u8 r with
  | 0 -> Empty
  | 1 ->
    let x0 = Codec.get_float r in
    let y0 = Codec.get_float r in
    let x1 = Codec.get_float r in
    let y1 = Codec.get_float r in
    Rect { x0; y0; x1; y1 }
  | n -> raise (Codec.Corrupt (Printf.sprintf "Rtree_ext: bad tag %d" n))

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "[]"
  | Rect r -> Format.fprintf ppf "[%g,%g;%g,%g]" r.x0 r.y0 r.x1 r.y1

let center = function
  | Empty -> (0.0, 0.0)
  | Rect r -> ((r.x0 +. r.x1) /. 2.0, (r.y0 +. r.y1) /. 2.0)

let str_sort ~per_node entries =
  let n = Array.length entries in
  if n > 1 && per_node > 0 then begin
    let cx (r, _) = fst (center r) and cy (r, _) = snd (center r) in
    Array.sort (fun a b -> compare (cx a) (cx b)) entries;
    let leaves = (n + per_node - 1) / per_node in
    let slabs = int_of_float (Float.ceil (Float.sqrt (Float.of_int leaves))) in
    let slab_size = max per_node ((n + slabs - 1) / slabs) in
    let i = ref 0 in
    while !i < n do
      let len = min slab_size (n - !i) in
      let slab = Array.sub entries !i len in
      Array.sort (fun a b -> compare (cy a) (cy b)) slab;
      Array.blit slab 0 entries !i len;
      i := !i + len
    done
  end

let ext =
  {
    Ext.name = "rtree";
    consistent;
    union;
    penalty;
    pick_split;
    matches_exact;
    encode;
    decode;
    pp;
  }
