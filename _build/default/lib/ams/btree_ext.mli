(** B-tree as a GiST extension ([HNP95] §4.1).

    Predicates are closed integer ranges; a key is the degenerate range
    [\[k, k\]]. [consistent] is range overlap, [union] the convex hull,
    [penalty] the hull growth, and [pick_split] sorts by lower bound and
    splits in the middle — which reproduces classic B-tree behavior
    (ordered, partitioned leaves) inside the unordered GiST framework.

    [Empty] is the bounding predicate of an empty (sub)tree: consistent
    with nothing, identity of [union]. *)

type t = Empty | Range of { lo : int; hi : int }

val key : int -> t
(** The key predicate [\[k, k\]]. *)

val range : int -> int -> t
(** [range lo hi] (inclusive); normalized so [lo <= hi]. *)

val key_value : t -> int
(** @raise Invalid_argument if not a point. *)

val ext : t Gist_core.Ext.t
