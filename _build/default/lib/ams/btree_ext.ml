open Gist_util
module Ext = Gist_core.Ext

type t = Empty | Range of { lo : int; hi : int }

let key k = Range { lo = k; hi = k }

let range a b = if a <= b then Range { lo = a; hi = b } else Range { lo = b; hi = a }

let key_value = function
  | Range { lo; hi } when lo = hi -> lo
  | _ -> invalid_arg "Btree_ext.key_value: not a point"

let consistent q p =
  match (q, p) with
  | Empty, _ | _, Empty -> false
  | Range a, Range b -> a.lo <= b.hi && b.lo <= a.hi

let union ps =
  List.fold_left
    (fun acc p ->
      match (acc, p) with
      | Empty, p -> p
      | p, Empty -> p
      | Range a, Range b -> Range { lo = min a.lo b.lo; hi = max a.hi b.hi })
    Empty ps

let width = function Empty -> 0 | Range { lo; hi } -> hi - lo

let penalty bp key =
  match (bp, key) with
  | Empty, _ -> 0.0
  | _, Empty -> 0.0
  | _ -> Float.of_int (width (union [ bp; key ]) - width bp)

let lower = function Empty -> min_int | Range { lo; _ } -> lo

(* Ordered split: sort by lower bound, send the upper half right. This is
   what makes the GiST behave exactly like a B-tree. *)
let pick_split ps =
  let n = Array.length ps in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (lower ps.(i)) (lower ps.(j))) order;
  let assignment = Array.make n false in
  Array.iteri (fun rank idx -> if rank >= n / 2 then assignment.(idx) <- true) order;
  assignment

let matches_exact a b =
  match (a, b) with
  | Empty, Empty -> true
  | Range a, Range b -> a.lo = b.lo && a.hi = b.hi
  | _ -> false

let encode b = function
  | Empty -> Codec.put_u8 b 0
  | Range { lo; hi } ->
    Codec.put_u8 b 1;
    Codec.put_int b lo;
    Codec.put_int b hi

let decode r =
  match Codec.get_u8 r with
  | 0 -> Empty
  | 1 ->
    let lo = Codec.get_int r in
    let hi = Codec.get_int r in
    Range { lo; hi }
  | n -> raise (Codec.Corrupt (Printf.sprintf "Btree_ext: bad tag %d" n))

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "[]"
  | Range { lo; hi } ->
    if lo = hi then Format.fprintf ppf "[%d]" lo else Format.fprintf ppf "[%d,%d]" lo hi

let ext =
  {
    Ext.name = "btree";
    consistent;
    union;
    penalty;
    pick_split;
    matches_exact;
    encode;
    decode;
    pp;
  }
