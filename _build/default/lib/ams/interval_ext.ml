open Gist_util
module Ext = Gist_core.Ext

type t = Empty | Iv of { lo : float; hi : float }

let iv a b = Iv { lo = Float.min a b; hi = Float.max a b }

let stab x = Iv { lo = x; hi = x }

let consistent q p =
  match (q, p) with
  | Empty, _ | _, Empty -> false
  | Iv a, Iv b -> a.lo <= b.hi && b.lo <= a.hi

let union2 a b =
  match (a, b) with
  | Empty, p | p, Empty -> p
  | Iv a, Iv b -> Iv { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let union ps = List.fold_left union2 Empty ps

let width = function Empty -> 0.0 | Iv { lo; hi } -> hi -. lo

let penalty bp key = width (union2 bp key) -. width bp

let mid = function Empty -> 0.0 | Iv { lo; hi } -> (lo +. hi) /. 2.0

let pick_split ps =
  let n = Array.length ps in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (mid ps.(i)) (mid ps.(j))) order;
  let assignment = Array.make n false in
  Array.iteri (fun rank idx -> if rank >= n / 2 then assignment.(idx) <- true) order;
  assignment

let matches_exact a b =
  match (a, b) with
  | Empty, Empty -> true
  | Iv a, Iv b -> a.lo = b.lo && a.hi = b.hi
  | _ -> false

let encode b = function
  | Empty -> Codec.put_u8 b 0
  | Iv { lo; hi } ->
    Codec.put_u8 b 1;
    Codec.put_float b lo;
    Codec.put_float b hi

let decode r =
  match Codec.get_u8 r with
  | 0 -> Empty
  | 1 ->
    let lo = Codec.get_float r in
    let hi = Codec.get_float r in
    Iv { lo; hi }
  | n -> raise (Codec.Corrupt (Printf.sprintf "Interval_ext: bad tag %d" n))

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "[]"
  | Iv { lo; hi } -> Format.fprintf ppf "[%g,%g]" lo hi

let ext =
  {
    Ext.name = "interval";
    consistent;
    union;
    penalty;
    pick_split;
    matches_exact;
    encode;
    decode;
    pp;
  }
