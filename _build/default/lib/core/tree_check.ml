open Gist_util
module Page_id = Gist_storage.Page_id
module Rid = Gist_storage.Rid
module Latch = Gist_storage.Latch
module Lsn = Gist_wal.Lsn

type report = { violations : string list; nodes : int; entries : int }

let ok r = r.violations = []

let pp ppf r =
  if ok r then Format.fprintf ppf "tree ok: %d nodes, %d leaf entries" r.nodes r.entries
  else begin
    Format.fprintf ppf "@[<v>tree check FAILED (%d nodes, %d entries):" r.nodes r.entries;
    List.iter (fun v -> Format.fprintf ppf "@,- %s" v) r.violations;
    Format.fprintf ppf "@]"
  end

let check t =
  let ext = Gist.ext t in
  let db = Gist.db t in
  let violations = ref [] in
  let nodes = ref 0 in
  let entries = ref 0 in
  let seen_rids : (Rid.t, Page_id.t) Hashtbl.t = Hashtbl.create 1024 in
  let bad fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let global = Db.global_nsn db in
  let read pid =
    Gist_storage.Buffer_pool.with_page db.Db.pool pid Latch.S (fun frame ->
        Node.read ext frame)
  in
  (* Returns all leaf keys in the subtree, checking as it goes. *)
  let rec walk pid ~expected_level ~expected_bp =
    let node = read pid in
    incr nodes;
    if node.Node.level <> expected_level then
      bad "%a: level %d, expected %d (unbalanced)" Page_id.pp pid node.Node.level expected_level;
    if Lsn.( < ) global node.Node.nsn then
      bad "%a: NSN %a exceeds global counter %a" Page_id.pp pid Lsn.pp node.Node.nsn Lsn.pp
        global;
    ignore expected_bp;
    if Page_id.is_valid node.Node.rightlink then begin
      match read node.Node.rightlink with
      | sibling ->
        if sibling.Node.level <> node.Node.level then
          bad "%a: rightlink %a crosses levels (%d -> %d)" Page_id.pp pid Page_id.pp
            node.Node.rightlink node.Node.level sibling.Node.level
      | exception Codec.Corrupt _ ->
        (* Dangling rightlink to a retired node: unreachable by protocol. *)
        ()
    end;
    match node.Node.entries with
    | Node.Leaf d ->
      Dyn.iter
        (fun e ->
          incr entries;
          (* Only live entries partition the RID set: a committed logical
             delete followed by reinsertion leaves a marked twin until GC. *)
          (if not (Gist_util.Txn_id.is_some e.Node.le_deleter) then
             match Hashtbl.find_opt seen_rids e.Node.le_rid with
             | Some other ->
               bad "%a: live RID %a already on leaf %a (leaves must partition RIDs)" Page_id.pp
                 pid Rid.pp e.Node.le_rid Page_id.pp other
             | None -> Hashtbl.replace seen_rids e.Node.le_rid pid);
          if not (ext.Ext.consistent e.Node.le_key node.Node.bp) then
            bad "%a: key %a not consistent with own BP %a" Page_id.pp pid ext.Ext.pp
              e.Node.le_key ext.Ext.pp node.Node.bp)
        d;
      Dyn.fold (fun acc e -> e.Node.le_key :: acc) [] d
    | Node.Internal d ->
      if Dyn.is_empty d then bad "%a: internal node with no entries" Page_id.pp pid;
      let keys =
        Dyn.fold
          (fun acc e ->
            let keys =
              walk e.Node.ie_child ~expected_level:(node.Node.level - 1)
                ~expected_bp:(Some e.Node.ie_bp)
            in
            List.iter
              (fun k ->
                if not (ext.Ext.consistent k e.Node.ie_bp) then
                  bad "%a: key %a under child %a escapes entry BP %a" Page_id.pp pid ext.Ext.pp
                    k Page_id.pp e.Node.ie_child ext.Ext.pp e.Node.ie_bp)
              keys;
            keys @ acc)
          [] d
      in
      List.iter
        (fun k ->
          if not (ext.Ext.consistent k node.Node.bp) then
            bad "%a: key %a under node escapes header BP %a" Page_id.pp pid ext.Ext.pp k
              ext.Ext.pp node.Node.bp)
        keys;
      keys
  in
  ignore (walk (Gist.root t) ~expected_level:(Gist.height t - 1) ~expected_bp:None);
  { violations = List.rev !violations; nodes = !nodes; entries = !entries }
