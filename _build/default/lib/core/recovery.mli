(** Restart recovery (§9).

    ARIES-style three-pass restart over the durable log:

    - {b Analysis}: from the last checkpoint anchor, rebuild the
      transaction table, the dirty page table, and the page allocator.
    - {b Redo}: repeat history from the earliest recovery LSN — every
      record (including CLRs) is re-applied page-oriented, conditional on
      the page LSN, so redo is idempotent across repeated crashes.
    - {b Undo}: roll back loser transactions through the installed undo
      handler, which performs logical undo for leaf records (rightlink
      relocation) and page-oriented undo for interrupted structure
      modifications, writing CLRs throughout. Per §9.2, no structure
      modifications are executed during restart undo.

    [redo_payload] is exposed for unit tests (T1: each Table 1 redo action
    is exercised in isolation) and for the undo handler's CLR actions. *)

val redo_payload :
  Db.t -> 'p Ext.t -> lsn:Gist_wal.Lsn.t -> Gist_wal.Log_record.payload -> unit
(** Apply one record's redo action, conditional on each touched page's LSN.
    Allocator effects (Get/Free-Page) are applied unconditionally (they are
    idempotent set operations on volatile state). *)

val install : Db.t -> unit
(** Register the undo handler on the environment's transaction manager; it
    dispatches each record through the {!Db.find_ext} registry. Called by
    [Gist.create]/[open_existing] and by restart. *)

val undo_record : Db.t -> 'p Ext.t -> Gist_txn.Txn_manager.txn -> Gist_wal.Log_record.t -> unit
(** Apply the compensating action for one record (logical for leaf
    entries, page-oriented for structure modifications), logging a CLR. *)

val restart_multi : Db.t -> Ext.packed list -> unit
(** Run full restart recovery on a freshly [Db.crash]ed environment
    containing trees of the given access methods. On return the trees are
    consistent and reflect exactly the committed transactions; a fresh
    checkpoint has been taken. *)

val restart : Db.t -> 'p Ext.t -> unit
(** [restart db ext] = [restart_multi db [Ext.Packed ext]] — the common
    single-access-method case. *)
