lib/core/recovery.mli: Db Ext Gist_txn Gist_wal
