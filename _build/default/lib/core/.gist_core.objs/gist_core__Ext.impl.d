lib/core/ext.ml: Array Buffer Bytes Format Gist_util Logs
