lib/core/node.ml: Buffer Bytes Codec Dyn Ext Format Gist_storage Gist_util Gist_wal Printf Txn_id
