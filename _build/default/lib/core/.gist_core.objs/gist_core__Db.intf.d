lib/core/db.mli: Atomic Ext Gist_storage Gist_txn Gist_wal Hashtbl Mutex
