lib/core/gist.ml: Array Atomic Bytes Codec Db Dyn Ext Float Format Gist_pred Gist_storage Gist_txn Gist_util Gist_wal Hashtbl List Node Option Printf Recovery String Txn_id
