lib/core/gist.mli: Db Ext Gist_pred Gist_storage Gist_txn
