lib/core/cursor.mli: Gist Gist_storage Gist_txn
