lib/core/cursor.ml: Codec Db Dyn Ext Gist Gist_pred Gist_storage Gist_txn Gist_util Gist_wal Hashtbl List Node Option Txn_id
