lib/core/recovery.ml: Bytes Db Ext Gist_storage Gist_txn Gist_util Gist_wal Hashtbl Int64 List Logs Node Printf Txn_id
