lib/core/ext.mli: Buffer Format Gist_util
