lib/core/tree_check.ml: Codec Db Dyn Ext Format Gist Gist_storage Gist_util Gist_wal Hashtbl List Node
