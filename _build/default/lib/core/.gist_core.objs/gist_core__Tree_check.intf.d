lib/core/tree_check.mli: Format Gist
