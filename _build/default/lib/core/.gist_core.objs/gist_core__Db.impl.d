lib/core/db.ml: Atomic Buffer Bytes Codec Ext Gist_storage Gist_txn Gist_util Gist_wal Hashtbl Int64 List Mutex Txn_id
