lib/core/node.mli: Ext Format Gist_storage Gist_util Gist_wal
