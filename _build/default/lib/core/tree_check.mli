(** Offline tree invariant checker.

    Used after stress runs and crash recovery to verify the structural
    invariants the paper's protocol must preserve:

    - every leaf key is consistent with the bounding predicate of every
      ancestor entry on its path (the GiST containment invariant);
    - every child's header BP equals its parent entry's BP;
    - levels decrease by exactly one per edge and all leaves sit at
      level 0 (balance);
    - NSNs never exceed the current global counter;
    - no RID appears on more than one leaf (leaves partition the RID set);
    - rightlinks at each level point to nodes of the same level (links to
      freed pages are tolerated and reported separately: they are
      unreachable by the protocol — see DESIGN.md on node deletion).

    Run single-threaded with the tree quiescent. *)

type report = { violations : string list; nodes : int; entries : int }

val check : 'p Gist.t -> report

val ok : report -> bool

val pp : Format.formatter -> report -> unit
