(** GiST extension methods.

    An access method specializes the GiST by supplying this record — the
    [consistent] / [union] / [penalty] / [pickSplit] quadruple of [HNP95]
    plus binary codecs (so nodes and log records can carry keys without the
    kernel understanding them) and the exact-match test that key deletion
    and unique indices need.

    A single type ['p] covers both leaf keys and internal bounding
    predicates, as in the paper (a key is just the most specific
    predicate). The contracts:

    - [consistent q p]: MUST return [true] whenever an entry matching the
      query predicate [q] can exist in a subtree bounded by [p] (false
      positives allowed, false negatives forbidden).
    - [union ps]: a predicate that bounds every member of [ps]. [ps] is
      never empty.
    - [penalty bp key]: domain-specific cost of enlarging [bp] to also
      cover [key]; lower is better. Need not be monotone.
    - [pick_split ps]: partition indices of [ps] (at least 2 elements) into
      two non-empty groups; [true] in slot [i] sends element [i] to the new
      right sibling.
    - [matches_exact k1 k2]: equality of keys, used for delete-by-key and
      the unique-index duplicate test.

    All functions must be pure (no shared mutable state) — they are called
    concurrently from many domains. *)

type 'p t = {
  name : string;
  consistent : 'p -> 'p -> bool;  (** [consistent query bp]. *)
  union : 'p list -> 'p;
  penalty : 'p -> 'p -> float;  (** [penalty bp key]. *)
  pick_split : 'p array -> bool array;
  matches_exact : 'p -> 'p -> bool;
  encode : Buffer.t -> 'p -> unit;
  decode : Gist_util.Codec.reader -> 'p;
  pp : Format.formatter -> 'p -> unit;
}

type packed = Packed : 'p t -> packed
(** Existential wrapper used by recovery to dispatch on the extension
    recorded in each log record (multi-tree databases). *)

val encode_to_string : 'p t -> 'p -> string
(** Convenience: the key's binary image as a string (for log records). *)

val decode_of_string : 'p t -> string -> 'p

val check_pick_split : 'p t -> 'p array -> bool array
(** Run [pick_split] and validate its contract (both sides non-empty,
    correct length); falls back to a half/half split on violation rather
    than corrupting the tree. *)
