type 'p t = {
  name : string;
  consistent : 'p -> 'p -> bool;
  union : 'p list -> 'p;
  penalty : 'p -> 'p -> float;
  pick_split : 'p array -> bool array;
  matches_exact : 'p -> 'p -> bool;
  encode : Buffer.t -> 'p -> unit;
  decode : Gist_util.Codec.reader -> 'p;
  pp : Format.formatter -> 'p -> unit;
}

type packed = Packed : 'p t -> packed

let encode_to_string ext p =
  let b = Buffer.create 32 in
  ext.encode b p;
  Buffer.contents b

let decode_of_string ext s =
  ext.decode (Gist_util.Codec.reader (Bytes.unsafe_of_string s))

let check_pick_split ext ps =
  let n = Array.length ps in
  assert (n >= 2);
  let assignment = ext.pick_split ps in
  let valid =
    Array.length assignment = n
    && Array.exists (fun b -> b) assignment
    && Array.exists (fun b -> not b) assignment
  in
  if valid then assignment
  else (
    Logs.warn (fun m -> m "%s: pick_split violated its contract; using half/half" ext.name);
    Array.init n (fun i -> i >= n / 2))
