lib/pred/predicate_manager.ml: Dyn Gist_storage Gist_util Hashtbl List Mutex Txn_id
