lib/pred/predicate_manager.mli: Gist_storage Gist_util
