type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let equal a b = a.page = b.page && a.slot = b.slot

let compare a b =
  match Int.compare a.page b.page with 0 -> Int.compare a.slot b.slot | c -> c

let hash t = Hashtbl.hash (t.page, t.slot)

let pp ppf t = Format.fprintf ppf "R%d.%d" t.page t.slot

let to_string t = Format.asprintf "%a" pp t

let encode b t =
  Gist_util.Codec.put_i32 b t.page;
  Gist_util.Codec.put_i32 b t.slot

let decode r =
  let page = Gist_util.Codec.get_i32 r in
  let slot = Gist_util.Codec.get_i32 r in
  { page; slot }
