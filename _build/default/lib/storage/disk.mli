(** Simulated disk.

    A growable array of fixed-size pages holding raw bytes. This is the
    durable half of the failure model: a crash discards every in-memory
    structure but keeps the disk image (and the forced log prefix) intact.

    An optional per-operation blocking delay ([io_delay_ns]) models device
    latency: it suspends only the calling domain, like a synchronous disk
    read, so protocols that hold latches across I/O pay a measurable
    price while protocols that release them overlap the waits (claim C1
    in DESIGN.md) — even on a single-CPU host. Thread-safe. *)

type t

val create : ?io_delay_ns:int -> page_size:int -> unit -> t

val page_size : t -> int

val read : t -> Page_id.t -> Bytes.t
(** Fresh copy of the page image. A page never written reads as zeros. *)

val write : t -> Page_id.t -> Bytes.t -> unit
(** [write t pid img] stores a copy of [img] (must be exactly [page_size]
    bytes). *)

val page_count : t -> int
(** Number of pages with an id lower than the highest ever written. *)

val reads : t -> int
val writes : t -> int
val reset_stats : t -> unit

val set_io_delay_ns : t -> int -> unit
(** Adjust the simulated latency at runtime (used by parameter sweeps). *)
