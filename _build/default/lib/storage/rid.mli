(** Record identifiers.

    A RID points at a data record on a (simulated) data page outside the
    index — the payload side of a leaf's [(key, RID)] pair and the unit of
    two-phase data record locking (the "data-only locking" approach of
    ARIES/IM the paper adopts). *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val encode : Buffer.t -> t -> unit
val decode : Gist_util.Codec.reader -> t
