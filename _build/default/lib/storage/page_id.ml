type t = int

let invalid = 0

let of_int i =
  if i < 0 then invalid_arg "Page_id.of_int: negative";
  i

let to_int t = t

let is_valid t = t <> invalid

let equal = Int.equal

let compare = Int.compare

let hash = Hashtbl.hash

let pp ppf t = Format.fprintf ppf "P%d" t

let encode b t = Gist_util.Codec.put_i32 b t

let decode r = Gist_util.Codec.get_i32 r
