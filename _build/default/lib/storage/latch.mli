(** Reader–writer latches.

    Latches are the paper's short-duration physical synchronization
    primitive (§5, footnote 8): addressed physically, cheap to set, never
    checked for deadlock — holders must keep their usage pattern deadlock
    free. They protect buffer-pool frames; they are unrelated to the lock
    manager's transactional locks.

    Writer-preferring: a pending X request blocks new S admissions, so
    splits are not starved by scan streams.

    The module keeps a per-domain count of held latches so the buffer pool
    can verify (and the benchmarks can report) the paper's central claim
    that no latch is ever held across an I/O. *)

type t

type mode = S | X

val create : unit -> t

val acquire : t -> mode -> unit
val release : t -> mode -> unit

val try_acquire : t -> mode -> bool
(** Non-blocking acquire; [true] on success. *)

val with_latch : t -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val held_by_self : unit -> int
(** Number of latches currently held by the calling domain (debug/stats). *)

val pp_mode : Format.formatter -> mode -> unit
