lib/storage/rid.ml: Format Gist_util Hashtbl Int
