lib/storage/disk.mli: Bytes Page_id
