lib/storage/latch.ml: Condition Domain Format Mutex
