lib/storage/page_id.mli: Buffer Format Gist_util
