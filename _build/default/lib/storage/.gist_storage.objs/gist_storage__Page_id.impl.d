lib/storage/page_id.ml: Format Gist_util Hashtbl Int
