lib/storage/latch.mli: Format
