lib/storage/disk.ml: Array Atomic Bytes Float Mutex Page_id Printf Unix
