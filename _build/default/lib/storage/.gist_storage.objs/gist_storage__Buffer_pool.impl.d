lib/storage/buffer_pool.ml: Array Atomic Bytes Condition Disk Hashtbl Latch List Mutex Page_id
