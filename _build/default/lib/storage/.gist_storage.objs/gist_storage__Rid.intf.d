lib/storage/rid.mli: Buffer Format Gist_util
