lib/storage/buffer_pool.mli: Bytes Disk Latch Page_id
