(** Page identifiers.

    A page id names a fixed-size page on the simulated disk. Id 0 is
    reserved as the invalid/null id (used, e.g., for "no rightlink"). *)

type t = private int

val invalid : t
val of_int : int -> t
val to_int : t -> int
val is_valid : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val encode : Buffer.t -> t -> unit
val decode : Gist_util.Codec.reader -> t
