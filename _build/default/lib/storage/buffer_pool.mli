(** Buffer pool.

    Caches page images in fixed-capacity frames, each protected by a
    reader–writer {!Latch.t}. Implements the WAL constraint: before a dirty
    page is written to disk (eviction or checkpoint flush), the log is
    forced up to that page's LSN via the [force_log] callback.

    Page-image convention: bytes [0..7] of every page hold its page LSN
    (little-endian), written by whoever formats the page. The pool reads it
    when flushing and to maintain the dirty page table.

    Disk I/O (both the read on a miss and the write-back of an evicted
    dirty page) happens outside the pool's internal mutex and outside any
    frame latch held by the caller, which is what makes the paper's
    "no latches held during I/Os" property hold at this layer. The counter
    {!io_while_latched} records violations by callers (operations that pin
    a non-resident page while holding a latch) — the GiST protocol keeps it
    at zero; coarse baselines do not. *)

type t

type frame

val create : capacity:int -> disk:Disk.t -> force_log:(int64 -> unit) -> t

val disk : t -> Disk.t

val pin : t -> Page_id.t -> frame
(** Fault the page in if needed and pin it. The frame cannot be evicted
    until unpinned. Blocks if all frames are pinned. *)

val pin_new : t -> Page_id.t -> frame
(** Pin a freshly allocated page without reading the disk (its image starts
    zeroed). Used right after page allocation. *)

val unpin : t -> frame -> unit

val latch : frame -> Latch.t
val data : frame -> Bytes.t
(** The in-pool page image. Mutate only while holding the X latch. *)

val page_id : frame -> Page_id.t

val mark_dirty : t -> frame -> lsn:int64 -> unit
(** Record that the caller (holding the X latch) modified the page under a
    log record with sequence number [lsn]. Also stores [lsn] in the page
    header bytes. *)

val page_lsn : frame -> int64
(** The LSN in the page header. *)

val with_page :
  t -> Page_id.t -> Latch.mode -> (frame -> 'a) -> 'a
(** [with_page t pid mode f]: pin, latch, run [f], unlatch, unpin. *)

val flush_page : t -> Page_id.t -> unit
(** Force the page to disk if resident and dirty (forcing the log first). *)

val flush_all : t -> unit
(** Flush every dirty resident page; used by checkpoints and clean
    shutdown. *)

val dirty_page_table : t -> (Page_id.t * int64) list
(** [(pid, rec_lsn)] for every dirty resident page — the ARIES DPT recorded
    in checkpoints. [rec_lsn] is the LSN that first dirtied the page. *)

val drop_all : t -> unit
(** Crash simulation: discard every frame without flushing. *)

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val io_while_latched : t -> int
val reset_stats : t -> unit
