type mode = S | X

type t = {
  mutex : Mutex.t;
  readable : Condition.t;
  writable : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let held_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let held () = Domain.DLS.get held_key

let held_by_self () = !(held ())

let create () =
  {
    mutex = Mutex.create ();
    readable = Condition.create ();
    writable = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let acquire t mode =
  Mutex.lock t.mutex;
  (match mode with
  | S ->
    while t.writer || t.waiting_writers > 0 do
      Condition.wait t.readable t.mutex
    done;
    t.readers <- t.readers + 1
  | X ->
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.writable t.mutex
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writer <- true);
  Mutex.unlock t.mutex;
  incr (held ())

let release t mode =
  Mutex.lock t.mutex;
  (match mode with
  | S ->
    t.readers <- t.readers - 1;
    if t.readers = 0 then
      if t.waiting_writers > 0 then Condition.signal t.writable
      else Condition.broadcast t.readable
  | X ->
    t.writer <- false;
    if t.waiting_writers > 0 then Condition.signal t.writable
    else Condition.broadcast t.readable);
  Mutex.unlock t.mutex;
  decr (held ())

let try_acquire t mode =
  Mutex.lock t.mutex;
  let ok =
    match mode with
    | S ->
      if t.writer || t.waiting_writers > 0 then false
      else begin
        t.readers <- t.readers + 1;
        true
      end
    | X ->
      if t.writer || t.readers > 0 then false
      else begin
        t.writer <- true;
        true
      end
  in
  Mutex.unlock t.mutex;
  if ok then incr (held ());
  ok

let with_latch t mode f =
  acquire t mode;
  match f () with
  | v ->
    release t mode;
    v
  | exception e ->
    release t mode;
    raise e

let pp_mode ppf = function
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"
