(* Unique indices (§8) and savepoint-aware cursors (§10.2).

   An account-number index must reject duplicates — repeatably — while an
   auditing cursor walks the table incrementally, surviving a partial
   rollback of its own transaction.

   Run:  dune exec examples/unique_and_cursors.exe *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1 ~slot:i

let () =
  let db = Db.create () in
  (* A UNIQUE index over account numbers. *)
  let accounts = Gist.create db B.ext ~unique:true ~empty_bp:B.Empty () in

  let txn = Txn.begin_txn db.Db.txns in
  for acct = 1000 to 1099 do
    Gist.insert accounts txn ~key:(B.key acct) ~rid:(rid acct)
  done;
  Txn.commit db.Db.txns txn;
  print_endline "opened 100 accounts (1000-1099)";

  (* Duplicate rejection, and its repeatability under repeatable read. *)
  let txn = Txn.begin_txn db.Db.txns in
  (try Gist.insert accounts txn ~key:(B.key 1042) ~rid:(rid 9042)
   with Gist.Duplicate_key -> print_endline "account 1042 already exists (rejected)");
  (try Gist.insert accounts txn ~key:(B.key 1042) ~rid:(rid 9042)
   with Gist.Duplicate_key ->
     print_endline "…and the error repeats within the transaction (S lock on the duplicate)");
  Txn.commit db.Db.txns txn;

  (* Two tellers race to open the same new account: §8 resolves via the
     probe predicates — exactly one wins. *)
  let outcome = Array.make 2 "?" in
  let teller i =
    Domain.spawn (fun () ->
        let rec attempt tries =
          if tries > 10 then ()
          else
            let txn = Txn.begin_txn db.Db.txns in
            match Gist.insert accounts txn ~key:(B.key 2000) ~rid:(rid (9000 + i)) with
            | () ->
              Txn.commit db.Db.txns txn;
              outcome.(i) <- "opened it"
            | exception Gist.Duplicate_key ->
              Txn.commit db.Db.txns txn;
              outcome.(i) <- "saw the duplicate"
            | exception Gist_txn.Lock_manager.Deadlock _ ->
              Txn.abort db.Db.txns txn;
              attempt (tries + 1)
        in
        attempt 0)
  in
  let d0 = teller 0 and d1 = teller 1 in
  Domain.join d0;
  Domain.join d1;
  Printf.printf "race for account 2000: teller A %s, teller B %s\n" outcome.(0) outcome.(1);

  (* An audit cursor walks the accounts incrementally. Mid-audit, the same
     transaction makes a correction, reconsiders, and rolls back to a
     savepoint — the cursor resumes from its saved position. *)
  let audit = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ accounts audit (B.range 1000 3000) in
  let seen = ref 0 in
  for _ = 1 to 40 do
    match Cursor.next cursor with Some _ -> incr seen | None -> ()
  done;
  Printf.printf "audited %d accounts, taking a savepoint…\n" !seen;
  Txn.savepoint db.Db.txns audit "mid-audit";
  let snap = Cursor.save cursor in
  (* Correction attempt... *)
  (try Gist.insert accounts audit ~key:(B.key 2100) ~rid:(rid 2100) with _ -> ());
  (* ...abandoned. *)
  Txn.rollback_to_savepoint db.Db.txns audit "mid-audit";
  Cursor.restore cursor snap;
  let rec drain n = match Cursor.next cursor with Some _ -> drain (n + 1) | None -> n in
  let rest = drain 0 in
  Printf.printf "resumed after rollback: %d more accounts; total %d (expected 101)\n" rest
    (!seen + rest);
  Cursor.close cursor;
  Txn.commit db.Db.txns audit;

  let report = Tree_check.check accounts in
  Format.printf "%a@." Tree_check.pp report
