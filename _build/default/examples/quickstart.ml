(* Quickstart: a transactional B-tree built on the GiST.

   Run:  dune exec examples/quickstart.exe *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1 ~slot:i

let () =
  (* A database environment bundles the simulated disk, buffer pool,
     write-ahead log, lock manager and transaction manager. *)
  let db = Db.create () in

  (* Specialize the GiST to a B-tree by passing its extension methods.
     [empty_bp] is the bounding predicate of an empty tree. *)
  let tree = Gist.create db B.ext ~empty_bp:B.Empty () in

  (* Everything runs inside transactions. *)
  let txn = Txn.begin_txn db.Db.txns in
  List.iter
    (fun (k, r) -> Gist.insert tree txn ~key:(B.key k) ~rid:(rid r))
    [ (30, 0); (10, 1); (50, 2); (20, 3); (40, 4) ];
  Txn.commit db.Db.txns txn;
  print_endline "inserted keys 10, 20, 30, 40, 50";

  (* Range search: all keys in [15, 45]. *)
  let txn = Txn.begin_txn db.Db.txns in
  let hits = Gist.search tree txn (B.range 15 45) in
  Printf.printf "range [15,45] -> %s\n"
    (hits
    |> List.map (fun (k, _) -> string_of_int (B.key_value k))
    |> List.sort compare |> String.concat ", ");
  Txn.commit db.Db.txns txn;

  (* Deletion is logical (the paper's §7): the entry is marked, kept
     physically until garbage collection so concurrent repeatable-read
     scans can still block on it. *)
  let txn = Txn.begin_txn db.Db.txns in
  assert (Gist.delete tree txn ~key:(B.key 30) ~rid:(rid 0));
  Txn.commit db.Db.txns txn;
  Printf.printf "after delete of 30: %d live keys, %d physical entries\n"
    (let txn = Txn.begin_txn db.Db.txns in
     let n = List.length (Gist.search tree txn (B.range 0 100)) in
     Txn.commit db.Db.txns txn;
     n)
    (Gist.entry_count tree);

  (* Vacuum runs §7.1 garbage collection and §7.2 node deletion. *)
  Gist.vacuum tree;
  Printf.printf "after vacuum: %d physical entries\n" (Gist.entry_count tree);

  (* Abort rolls back through the write-ahead log. *)
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert tree txn ~key:(B.key 99) ~rid:(rid 99);
  Txn.abort db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Printf.printf "key 99 after abort: %s\n"
    (if Gist.search tree txn (B.key 99) = [] then "absent (rolled back)" else "PRESENT?!");
  Txn.commit db.Db.txns txn;

  (* The tree checker verifies every invariant from DESIGN.md. *)
  let report = Tree_check.check tree in
  Format.printf "%a@." Tree_check.pp report
