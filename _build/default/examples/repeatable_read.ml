(* Repeatable read and phantom prevention (§4 of the paper).

   A reporting transaction scans a salary band twice; a concurrent insert
   into that band must wait for it, so both scans agree — the hybrid
   predicate/record locking at work.

   Run:  dune exec examples/repeatable_read.exe *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1 ~slot:i

let () =
  let db = Db.create () in
  let tree = Gist.create db B.ext ~empty_bp:B.Empty () in

  (* Salaries (in hundreds) of the current staff. *)
  let txn = Txn.begin_txn db.Db.txns in
  List.iteri
    (fun i salary -> Gist.insert tree txn ~key:(B.key salary) ~rid:(rid i))
    [ 450; 520; 610; 700; 880; 950; 1200 ];
  Txn.commit db.Db.txns txn;

  (* The reporting transaction scans the 500-900 band. *)
  let report_txn = Txn.begin_txn db.Db.txns in
  let band = B.range 500 900 in
  let first = Gist.search tree report_txn band in
  Printf.printf "report, first scan:  %d salaries in band\n" (List.length first);

  (* HR tries to insert a 750 salary concurrently. The scan's predicate is
     attached to the nodes it visited; the insert finds it on the target
     leaf and must wait for the reporting transaction to finish. *)
  let insert_done = Atomic.make false in
  let hr =
    Domain.spawn (fun () ->
        let txn = Txn.begin_txn db.Db.txns in
        Gist.insert tree txn ~key:(B.key 750) ~rid:(rid 100);
        Txn.commit db.Db.txns txn;
        Atomic.set insert_done true)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.2 do
    Thread.yield ()
  done;
  Printf.printf "HR insert of 750 while report runs: %s\n"
    (if Atomic.get insert_done then "SLIPPED THROUGH (phantom!)" else "blocked (good)");

  let second = Gist.search tree report_txn band in
  Printf.printf "report, second scan: %d salaries in band  ->  %s\n" (List.length second)
    (if List.length first = List.length second then "repeatable read holds"
     else "PHANTOM OBSERVED");

  Txn.commit db.Db.txns report_txn;
  Domain.join hr;
  Printf.printf "after report commits, HR insert completed: %b\n" (Atomic.get insert_done);

  let txn = Txn.begin_txn db.Db.txns in
  Printf.printf "final band population: %d\n" (List.length (Gist.search tree txn band));
  Txn.commit db.Db.txns txn
