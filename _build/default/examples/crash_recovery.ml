(* Crash recovery (§9 of the paper): write-ahead logging, nested top
   actions, and ARIES-style restart.

   A committed batch and an uncommitted batch are in flight when the
   system crashes (losing all volatile state and the unforced log tail).
   Restart must recover exactly the committed data — including rolling
   back the loser's half-done node splits.

   Run:  dune exec examples/crash_recovery.exe *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Log = Gist_wal.Log_manager

let rid i = Rid.make ~page:1 ~slot:i

let count tree db =
  let txn = Txn.begin_txn db.Db.txns in
  let n = List.length (Gist.search tree txn (B.range 0 10_000)) in
  Txn.commit db.Db.txns txn;
  n

let () =
  let db = Db.create () in
  let tree = Gist.create db B.ext ~empty_bp:B.Empty () in

  (* A committed batch of 500 keys. *)
  let txn = Txn.begin_txn db.Db.txns in
  for k = 1 to 500 do
    Gist.insert tree txn ~key:(B.key k) ~rid:(rid k)
  done;
  Txn.commit db.Db.txns txn;
  Db.checkpoint db;
  Printf.printf "committed 500 keys; checkpoint taken; log at %Ld records\n"
    (Log.last_lsn db.Db.log);

  (* A loser transaction: 300 more keys, never committed. Force the log so
     restart has real undo work (otherwise the records simply vanish with
     the crash). *)
  let loser = Txn.begin_txn db.Db.txns in
  for k = 501 to 800 do
    Gist.insert tree loser ~key:(B.key k) ~rid:(rid k)
  done;
  Log.force_all db.Db.log;
  Printf.printf "loser inserted 300 more (uncommitted); tree sees %d entries physically\n"
    (Gist.entry_count tree);

  (* CRASH: the buffer pool, lock tables and transaction table evaporate;
     only the disk image and the durable log prefix survive. *)
  let root = Gist.root tree in
  let db' = Db.crash db in
  print_endline "-- crash --";

  (* ARIES restart: analysis, redo (repeat history), undo (roll back the
     loser through CLRs, with logical undo relocating moved entries). *)
  let t0 = Gist_util.Clock.now_ns () in
  Recovery.restart db' B.ext;
  Printf.printf "restart completed in %.2f ms\n" (Gist_util.Clock.elapsed_s t0 *. 1000.0);

  let tree' = Gist.open_existing db' B.ext ~root () in
  Printf.printf "recovered: %d keys (expected 500)\n" (count tree' db');
  let report = Tree_check.check tree' in
  Format.printf "%a@." Tree_check.pp report;

  (* And the recovered tree is immediately writable. *)
  let txn = Txn.begin_txn db'.Db.txns in
  Gist.insert tree' txn ~key:(B.key 9_999) ~rid:(rid 9_999);
  Txn.commit db'.Db.txns txn;
  Printf.printf "post-recovery insert works: %d keys\n" (count tree' db')
