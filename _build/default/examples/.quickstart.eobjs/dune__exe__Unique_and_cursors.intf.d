examples/unique_and_cursors.mli:
