examples/quickstart.ml: Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn List Printf String Tree_check
