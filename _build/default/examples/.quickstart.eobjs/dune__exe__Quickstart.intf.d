examples/quickstart.mli:
