examples/repeatable_read.ml: Atomic Db Domain Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util List Printf Thread
