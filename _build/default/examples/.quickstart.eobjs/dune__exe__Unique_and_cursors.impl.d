examples/unique_and_cursors.ml: Array Cursor Db Domain Format Gist Gist_ams Gist_core Gist_storage Gist_txn Printf Tree_check
