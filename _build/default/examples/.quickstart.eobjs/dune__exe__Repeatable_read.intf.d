examples/repeatable_read.mli:
