examples/multi_index.ml: Array Db Ext Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal List Printf Recovery Tree_check
