examples/spatial_search.ml: Atomic Db Domain Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util List Printf Thread Tree_check
