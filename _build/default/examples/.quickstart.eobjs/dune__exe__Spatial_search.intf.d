examples/spatial_search.mli:
