examples/multi_index.mli:
