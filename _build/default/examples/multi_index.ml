(* One database, three access methods — the extensibility story of the
   paper's introduction: a B-tree over ids, an R-tree over locations, and
   an RD-tree over tag sets, all sharing one WAL, buffer pool, lock
   manager — and one ARIES restart.

   Run:  dune exec examples/multi_index.exe *)

open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module RD = Gist_ams.Rd_tree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let () =
  let db = Db.create () in
  let by_id = Gist.create db B.ext ~empty_bp:B.Empty () in
  let by_loc = Gist.create db R.ext ~empty_bp:R.Empty () in
  let by_tags = Gist.create db RD.ext ~empty_bp:RD.Empty () in

  (* A tiny "restaurants" table, indexed three ways. Each row is one
     transaction across all three indexes — atomically. *)
  let rng = Gist_util.Xoshiro.create 99 in
  let tags_pool = [| 1 (*pizza*); 2 (*sushi*); 3 (*vegan*); 4 (*late*); 5 (*cheap*) |] in
  for id = 1 to 2_000 do
    let txn = Txn.begin_txn db.Db.txns in
    let rid = Rid.make ~page:1 ~slot:id in
    let x = Gist_util.Xoshiro.float rng 100.0 and y = Gist_util.Xoshiro.float rng 100.0 in
    let tags =
      List.init
        (1 + Gist_util.Xoshiro.int rng 3)
        (fun _ -> tags_pool.(Gist_util.Xoshiro.int rng 5))
    in
    Gist.insert by_id txn ~key:(B.key id) ~rid;
    Gist.insert by_loc txn ~key:(R.point x y) ~rid;
    Gist.insert by_tags txn ~key:(RD.set tags) ~rid;
    Txn.commit db.Db.txns txn
  done;
  print_endline "2000 rows committed across three indexes";

  (* Query each its own way. *)
  let txn = Txn.begin_txn db.Db.txns in
  Printf.printf "ids 100-110:          %d rows\n"
    (List.length (Gist.search by_id txn (B.range 100 110)));
  Printf.printf "within [20,40]^2:     %d rows\n"
    (List.length (Gist.search by_loc txn (R.rect 20.0 20.0 40.0 40.0)));
  Printf.printf "tagged vegan|cheap:   %d rows\n"
    (List.length (Gist.search by_tags txn (RD.set [ 3; 5 ])));
  Txn.commit db.Db.txns txn;

  (* A multi-index update in flight when the system dies... *)
  let loser = Txn.begin_txn db.Db.txns in
  for id = 9_000 to 9_050 do
    let rid = Rid.make ~page:1 ~slot:id in
    Gist.insert by_id loser ~key:(B.key id) ~rid;
    Gist.insert by_loc loser ~key:(R.point 1.0 1.0) ~rid;
    Gist.insert by_tags loser ~key:(RD.set [ 1 ]) ~rid
  done;
  Gist_wal.Log_manager.force_all db.Db.log;
  let roots = (Gist.root by_id, Gist.root by_loc, Gist.root by_tags) in
  let db' = Db.crash db in
  print_endline "-- crash --";
  Recovery.restart_multi db' [ Ext.Packed B.ext; Ext.Packed R.ext; Ext.Packed RD.ext ];
  let r1, r2, r3 = roots in
  let by_id = Gist.open_existing db' B.ext ~root:r1 () in
  let by_loc = Gist.open_existing db' R.ext ~root:r2 () in
  let by_tags = Gist.open_existing db' RD.ext ~root:r3 () in
  let txn = Txn.begin_txn db'.Db.txns in
  Printf.printf "after restart: ids=%d, locations=%d, tag-rows=%d (all 2000, loser gone)\n"
    (List.length (Gist.search by_id txn (B.range 1 10_000)))
    (List.length (Gist.search by_loc txn (R.rect (-1.0) (-1.0) 101.0 101.0)))
    (List.length (Gist.search by_tags txn (RD.set [ 1; 2; 3; 4; 5 ])));
  Txn.commit db'.Db.txns txn;
  List.iter
    (fun report -> Format.printf "%a@." Tree_check.pp report)
    [ Tree_check.check by_id; Tree_check.check by_loc; Tree_check.check by_tags ]
