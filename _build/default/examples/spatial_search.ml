(* Spatial search: the R-tree specialization, with concurrent queries.

   The scenario the paper's introduction motivates: non-traditional data
   (here, 2-D points of interest) indexed by an access method that gets
   concurrency, isolation and recovery from the GiST kernel for free.

   Run:  dune exec examples/spatial_search.exe *)

open Gist_core
module R = Gist_ams.Rtree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Xoshiro = Gist_util.Xoshiro

let () =
  let db = Db.create () in
  let tree = Gist.create db R.ext ~empty_bp:R.Empty () in

  (* Load 20,000 points of interest in a 1000x1000 city grid. *)
  let rng = Xoshiro.create 2026 in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 0 to 19_999 do
    let x = Xoshiro.float rng 1000.0 and y = Xoshiro.float rng 1000.0 in
    Gist.insert tree txn ~key:(R.point x y) ~rid:(Rid.make ~page:1 ~slot:i)
  done;
  Txn.commit db.Db.txns txn;
  Printf.printf "loaded 20000 points; tree height %d, %d leaves\n" (Gist.height tree)
    (Gist.leaf_count tree);

  (* Window query. *)
  let txn = Txn.begin_txn db.Db.txns in
  let window = R.rect 100.0 100.0 150.0 150.0 in
  let hits = Gist.search tree txn window in
  Printf.printf "window [100,150]^2 -> %d points\n" (List.length hits);
  Txn.commit db.Db.txns txn;

  (* Concurrent readers and writers: four query domains scan windows while
     a writer keeps inserting. The link protocol (NSN + rightlinks) keeps
     every scan correct across concurrent node splits. *)
  let stop = Atomic.make false in
  let queries = Atomic.make 0 in
  let readers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let rng = Xoshiro.create (77 + d) in
            while not (Atomic.get stop) do
              let txn = Txn.begin_txn db.Db.txns in
              let x = Xoshiro.float rng 950.0 and y = Xoshiro.float rng 950.0 in
              ignore (Gist.search tree txn (R.rect x y (x +. 25.0) (y +. 25.0)));
              Txn.commit db.Db.txns txn;
              Atomic.incr queries
            done))
  in
  let writer =
    Domain.spawn (fun () ->
        let rng = Xoshiro.create 5150 in
        let i = ref 20_000 in
        while not (Atomic.get stop) do
          let txn = Txn.begin_txn db.Db.txns in
          let x = Xoshiro.float rng 1000.0 and y = Xoshiro.float rng 1000.0 in
          Gist.insert tree txn ~key:(R.point x y) ~rid:(Rid.make ~page:1 ~slot:!i);
          incr i;
          Txn.commit db.Db.txns txn
        done)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 1.0 do
    Thread.yield ()
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Domain.join writer;
  Printf.printf "1s of concurrent load: %d window queries alongside live inserts\n"
    (Atomic.get queries);

  let report = Tree_check.check tree in
  Format.printf "%a@." Tree_check.pp report
