(* Edge cases and robustness: oversized keys, deep trees, empty-range
   scans, crash during vacuum's node-deletion NTA, pool exhaustion, and
   log-record fuzzing. *)

open Gist_core
module B = Gist_ams.Btree_ext
module RD = Gist_ams.Rd_tree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Log = Gist_wal.Log_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let check t = Alcotest.(check bool) "tree consistent" true (Tree_check.ok (Tree_check.check t))

let test_oversized_key_rejected () =
  (* An RD-tree key too large for a page must be rejected up front, not
     spin in the split loop. *)
  let db = Db.create ~config:{ config with Db.page_size = 256; max_entries = 64 } () in
  let t = Gist.create db RD.ext ~empty_bp:RD.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  let huge = RD.set (List.init 200 (fun i -> i)) in
  Alcotest.(check bool) "rejected with Invalid_argument" true
    (match Gist.insert t txn ~key:huge ~rid:(rid 1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* The transaction remains usable. *)
  Gist.insert t txn ~key:(RD.set [ 1; 2 ]) ~rid:(rid 2);
  Txn.commit db.Db.txns txn;
  check t

let test_deep_tree_operations () =
  (* Minimal fanout forces a tall tree; everything must keep working. *)
  let deep_config = { config with Db.max_entries = 4; pool_capacity = 512 } in
  let db = Db.create ~config:deep_config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 3_000 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) (Printf.sprintf "tall tree (height %d)" (Gist.height t)) true
    (Gist.height t >= 6);
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "point query at depth" 1 (List.length (Gist.search t txn (B.key 1500)));
  for i = 1 to 1_500 do
    ignore (Gist.delete t txn ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns txn;
  Gist.vacuum t;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "half remain" 1_500 (List.length (Gist.search t txn (B.range 1 5_000)));
  Txn.commit db.Db.txns txn;
  check t;
  (* And it recovers. *)
  Gist_wal.Log_manager.force_all db.Db.log;
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "deep recovery" 1_500 (List.length (Gist.search t' txn (B.range 1 5_000)));
  Txn.commit db'.Db.txns txn;
  check t'

let test_empty_and_degenerate_queries () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 50 do
    Gist.insert t txn ~key:(B.key (i * 10)) ~rid:(rid i)
  done;
  (* Empty predicate: consistent with nothing. *)
  Alcotest.(check int) "empty query" 0 (List.length (Gist.search t txn B.Empty));
  (* Range between keys. *)
  Alcotest.(check int) "gap range" 0 (List.length (Gist.search t txn (B.range 11 19)));
  (* Range covering everything and more. *)
  Alcotest.(check int) "universe" 50
    (List.length (Gist.search t txn (B.range min_int max_int)));
  (* Inverted bounds are normalized by the constructor. *)
  Alcotest.(check int) "inverted bounds" 50 (List.length (Gist.search t txn (B.range 500 10)));
  Txn.commit db.Db.txns txn

let test_crash_during_vacuum_nta () =
  (* Cut the durable prefix inside a node-deletion NTA (after the parent
     entry removal, before the NTA closes): restart must roll the deletion
     back and leave a consistent tree. *)
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 200 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 150 do
    ignore (Gist.delete t txn ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns txn;
  let delete_lsn = ref Gist_wal.Lsn.nil in
  Gist.set_hook t (fun ev ->
      if
        String.length ev > 12
        && String.sub ev 0 12 = "node-delete:"
        && Gist_wal.Lsn.equal !delete_lsn Gist_wal.Lsn.nil
      then delete_lsn := Log.last_lsn db.Db.log);
  Gist.vacuum t;
  Gist.set_hook t ignore;
  Alcotest.(check bool) "a node deletion happened" true
    (not (Gist_wal.Lsn.equal !delete_lsn Gist_wal.Lsn.nil));
  (* The hook fired just before the NTA's records; cut shortly after so the
     deletion is half-durable. *)
  Log.force db.Db.log (Int64.add !delete_lsn 2L);
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "survivors exact" 50
    (List.length (Gist.search t' txn (B.range 1 1000)));
  Txn.commit db'.Db.txns txn;
  check t'

let test_pool_smaller_than_everything () =
  (* Minimum-size pool: every operation thrashes; correctness must hold. *)
  let tiny = { config with Db.pool_capacity = 4 } in
  let db = Db.create ~config:tiny () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 300 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "all present under thrash" 300
    (List.length (Gist.search t txn (B.range 1 300)));
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "heavy eviction happened" true
    (Gist_storage.Buffer_pool.evictions db.Db.pool > 100);
  check t

let test_many_duplicate_keys_across_splits () =
  (* 500 entries with the same key must spread over many leaves and all be
     retrievable; deleting one specific RID leaves the other 499. *)
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 500 do
    Gist.insert t txn ~key:(B.key 7) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "spread over leaves" true (Gist.leaf_count t > 10);
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "all 500" 500 (List.length (Gist.search t txn (B.key 7)));
  Alcotest.(check bool) "delete one rid" true (Gist.delete t txn ~key:(B.key 7) ~rid:(rid 250));
  Alcotest.(check int) "499 left" 499 (List.length (Gist.search t txn (B.key 7)));
  Txn.commit db.Db.txns txn;
  check t

let test_log_record_fuzz_roundtrip () =
  (* Randomized payloads (beyond the fixed catalog) must round-trip. *)
  let rng = Gist_util.Xoshiro.create 123 in
  let rand_string () =
    String.init (Gist_util.Xoshiro.int rng 40) (fun _ ->
        Char.chr (Gist_util.Xoshiro.int rng 256))
  in
  let rand_pid () = Gist_storage.Page_id.of_int (Gist_util.Xoshiro.int rng 10_000) in
  let rand_rid () =
    Rid.make ~page:(Gist_util.Xoshiro.int rng 1_000) ~slot:(Gist_util.Xoshiro.int rng 100_000)
  in
  let rand_lsn () = Int64.of_int (Gist_util.Xoshiro.int rng 1_000_000) in
  let module LR = Gist_wal.Log_record in
  for i = 1 to 500 do
    let payload =
      match Gist_util.Xoshiro.int rng 7 with
      | 0 ->
        LR.Split
          {
            orig = rand_pid ();
            right = rand_pid ();
            moved = List.init (Gist_util.Xoshiro.int rng 10) (fun _ -> rand_string ());
            orig_old_nsn = rand_lsn ();
            orig_new_nsn = rand_lsn ();
            orig_old_rightlink = rand_pid ();
            level = Gist_util.Xoshiro.int rng 10;
          }
      | 1 -> LR.Add_leaf_entry { page = rand_pid (); nsn = rand_lsn (); entry = rand_string (); rid = rand_rid () }
      | 2 -> LR.Garbage_collection { page = rand_pid (); rids = List.init (Gist_util.Xoshiro.int rng 20) (fun _ -> rand_rid ()) }
      | 3 ->
        LR.Clr
          {
            action = LR.Act_apply (LR.Unmark_leaf_entry { page = rand_pid (); rid = rand_rid () });
            undo_next = rand_lsn ();
          }
      | 4 ->
        LR.Checkpoint_end
          {
            dirty_pages = List.init (Gist_util.Xoshiro.int rng 15) (fun _ -> (rand_pid (), rand_lsn ()));
            active_txns = [];
            allocator = rand_string ();
          }
      | 5 -> LR.Parent_entry_update { parent = rand_pid (); child = rand_pid (); new_bp = rand_string () }
      | _ -> LR.Format_node { page = rand_pid (); level = Gist_util.Xoshiro.int rng 5; bp = rand_string () }
    in
    let record =
      {
        LR.lsn = rand_lsn ();
        txn = Gist_util.Txn_id.of_int (Gist_util.Xoshiro.int rng 1_000);
        prev = rand_lsn ();
        ext = rand_string ();
        payload;
      }
    in
    let b = Buffer.create 128 in
    LR.encode b record;
    let decoded = LR.decode (Gist_util.Codec.reader (Buffer.to_bytes b)) in
    Alcotest.(check bool) (Printf.sprintf "fuzz %d roundtrips" i) true (decoded = record)
  done

let test_decode_garbage_is_corrupt () =
  (* Decoding arbitrary bytes must raise Codec.Corrupt (or produce a value),
     never crash — log and page readers depend on it after torn writes. *)
  let rng = Gist_util.Xoshiro.create 777 in
  let survived = ref 0 in
  for _ = 1 to 2_000 do
    let len = Gist_util.Xoshiro.int rng 120 in
    let garbage =
      Bytes.init len (fun _ -> Char.chr (Gist_util.Xoshiro.int rng 256))
    in
    (match Gist_wal.Log_record.decode (Gist_util.Codec.reader garbage) with
    | _ -> incr survived
    | exception Gist_util.Codec.Corrupt _ -> ()
    | exception _ -> Alcotest.fail "non-Corrupt exception from log decode");
    (match B.ext.Gist_core.Ext.decode (Gist_util.Codec.reader garbage) with
    | _ -> ()
    | exception Gist_util.Codec.Corrupt _ -> ()
    | exception _ -> Alcotest.fail "non-Corrupt exception from key decode")
  done;
  (* Some random byte strings can legitimately parse; just don't crash. *)
  Alcotest.(check bool) "ran" true (!survived >= 0)

let test_rc_scan_under_splits () =
  (* Read-committed scans run the same link protocol: no lost committed
     keys across concurrent splits. *)
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let setup = Txn.begin_txn db.Db.txns in
  for i = 1 to 500 do
    Gist.insert t setup ~key:(B.key (i * 10)) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns setup;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Gist_util.Xoshiro.create 31 in
        let seq = ref 0 in
        while not (Atomic.get stop) do
          incr seq;
          let k = (Gist_util.Xoshiro.int rng 4_990 * 1) + 1 in
          let txn = Txn.begin_txn db.Db.txns in
          Gist.insert t txn ~key:(B.key k) ~rid:(Rid.make ~page:2 ~slot:!seq);
          Txn.commit db.Db.txns txn
        done)
  in
  let lossy = ref 0 in
  for _ = 1 to 30 do
    let txn = Txn.begin_txn db.Db.txns in
    let found =
      Gist.search ~isolation:`Read_committed t txn (B.range 1 5_000)
      |> List.filter (fun (k, _) -> B.key_value k mod 10 = 0)
      |> List.length
    in
    Txn.commit db.Db.txns txn;
    if found < 500 then incr lossy
  done;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check int) "no committed keys lost by RC scans" 0 !lossy

let test_multitree_truncation () =
  (* Truncation in a multi-extension environment must leave both trees
     recoverable. *)
  let db = Db.create ~config:{ config with Db.page_size = 2048 } () in
  let a = Gist.create db B.ext ~empty_bp:B.Empty () in
  let b = Gist.create db Gist_ams.Rtree_ext.ext ~empty_bp:Gist_ams.Rtree_ext.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert a txn ~key:(B.key i) ~rid:(rid i);
    Gist.insert b txn
      ~key:(Gist_ams.Rtree_ext.point (Float.of_int i) 1.0)
      ~rid:(Rid.make ~page:2 ~slot:i)
  done;
  Txn.commit db.Db.txns txn;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  Db.checkpoint db;
  Alcotest.(check bool) "truncated" true (Db.truncate_log db > 100);
  let txn = Txn.begin_txn db.Db.txns in
  for i = 101 to 150 do
    Gist.insert a txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let ra = Gist.root a and rb = Gist.root b in
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext; Ext.Packed Gist_ams.Rtree_ext.ext ];
  let a' = Gist.open_existing db' B.ext ~root:ra () in
  let b' = Gist.open_existing db' Gist_ams.Rtree_ext.ext ~root:rb () in
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "btree recovered past truncation" 150
    (List.length (Gist.search a' txn (B.range 1 1000)));
  Alcotest.(check int) "rtree recovered past truncation" 100
    (List.length
       (Gist.search b' txn (Gist_ams.Rtree_ext.rect 0.0 0.0 1000.0 1000.0)));
  Txn.commit db'.Db.txns txn;
  check a';
  check b'

let suite =
  [
    Alcotest.test_case "oversized key rejected" `Quick test_oversized_key_rejected;
    Alcotest.test_case "deep tree operations" `Quick test_deep_tree_operations;
    Alcotest.test_case "empty/degenerate queries" `Quick test_empty_and_degenerate_queries;
    Alcotest.test_case "crash during vacuum NTA" `Quick test_crash_during_vacuum_nta;
    Alcotest.test_case "minimum-size pool" `Quick test_pool_smaller_than_everything;
    Alcotest.test_case "duplicate keys across splits" `Quick
      test_many_duplicate_keys_across_splits;
    Alcotest.test_case "log record fuzz roundtrip" `Quick test_log_record_fuzz_roundtrip;
    Alcotest.test_case "garbage decode raises Corrupt" `Quick test_decode_garbage_is_corrupt;
    Alcotest.test_case "RC scan under splits" `Quick test_rc_scan_under_splits;
    Alcotest.test_case "multi-tree truncation" `Quick test_multitree_truncation;
  ]
