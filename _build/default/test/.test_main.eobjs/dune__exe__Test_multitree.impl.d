test/test_multitree.ml: Alcotest Db Domain Ext Float Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal List Recovery Tree_check
