test/test_util.ml: Alcotest Array Buffer Bytes Codec Dyn Float Gist_util List Printf Stats Txn_id Xoshiro
