test/test_props.ml: Array Cursor Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal Hashtbl Int64 List Printf QCheck QCheck_alcotest Recovery Tree_check
