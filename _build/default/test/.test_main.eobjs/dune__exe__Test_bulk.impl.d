test/test_bulk.ml: Alcotest Array Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal Int64 List Node Printf Recovery Tree_check
