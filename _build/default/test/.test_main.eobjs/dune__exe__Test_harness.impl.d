test/test_harness.ml: Alcotest Array Atomic Db Driver Float Gist Gist_ams Gist_core Gist_harness Gist_txn Gist_util Hashtbl List Tree_check Workload
