test/test_baseline.ml: Alcotest Atomic Db Domain Gist Gist_ams Gist_baseline Gist_core Gist_storage Gist_txn Gist_util List Printf Tree_check
