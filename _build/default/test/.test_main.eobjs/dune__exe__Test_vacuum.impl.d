test/test_vacuum.ml: Alcotest Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_wal List Printf Recovery Tree_check
