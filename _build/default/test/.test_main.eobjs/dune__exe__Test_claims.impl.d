test/test_claims.ml: Alcotest Atomic Db Domain Gist Gist_ams Gist_baseline Gist_core Gist_storage Gist_txn Gist_util Gist_wal Hashtbl List Recovery Tree_check
