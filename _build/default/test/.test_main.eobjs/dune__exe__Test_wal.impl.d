test/test_wal.ml: Alcotest Buffer Domain Format Gist_storage Gist_util Gist_wal Int64 List Log_manager Log_record
