test/test_txn.ml: Alcotest Gist_storage Gist_txn Gist_util Gist_wal List Lock_manager Txn_manager
