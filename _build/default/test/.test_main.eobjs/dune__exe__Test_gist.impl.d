test/test_gist.ml: Alcotest Array Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Hashtbl List Tree_check
