test/test_pred.ml: Alcotest Domain Gist_pred Gist_storage Gist_util List Predicate_manager
