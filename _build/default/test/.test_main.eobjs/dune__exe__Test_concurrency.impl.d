test/test_concurrency.ml: Alcotest Array Atomic Db Domain Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal Hashtbl List Printf Recovery Semaphore String Tree_check
