test/test_edge.ml: Alcotest Atomic Buffer Bytes Char Db Domain Ext Float Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal Int64 List Printf Recovery String Tree_check
