test/test_storage.ml: Alcotest Atomic Buffer Buffer_pool Bytes Disk Domain Gist_storage Gist_util Latch List Page_id Rid Thread
