test/test_ams.ml: Alcotest Array Buffer Float Gist_ams Gist_core Gist_storage Gist_txn Gist_util List
