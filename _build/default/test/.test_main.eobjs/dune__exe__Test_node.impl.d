test/test_node.ml: Alcotest Gist_ams Gist_core Gist_storage Gist_util Node
