test/test_cursor.ml: Alcotest Atomic Cursor Db Domain Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util List Printf Thread Tree_check
