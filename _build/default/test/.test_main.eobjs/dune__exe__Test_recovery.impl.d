test/test_recovery.ml: Alcotest Db Format Gist Gist_ams Gist_core Gist_storage Gist_txn Gist_util Gist_wal Hashtbl Int64 List Printf Recovery Tree_check
