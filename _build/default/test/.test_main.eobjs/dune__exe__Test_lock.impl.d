test/test_lock.ml: Alcotest Atomic Domain Gist_storage Gist_txn Gist_util List Lock_manager Thread
