test/test_isolation.ml: Alcotest Atomic Db Domain Float Gist Gist_ams Gist_core Gist_pred Gist_storage Gist_txn Gist_util List Thread
