(* Property-based tests (qcheck): extension-method laws, codec round-trips,
   tree-vs-model equivalence, and crash-recovery soundness under random
   schedules. *)

open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Ext = Gist_core.Ext

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

(* --- generators --- *)

let gen_brange =
  QCheck.Gen.(
    map2
      (fun a b -> B.range a b)
      (int_range (-1000) 1000)
      (int_range (-1000) 1000))

let gen_bpred = QCheck.Gen.(frequency [ (9, gen_brange); (1, return B.Empty) ])

let arb_bpred = QCheck.make ~print:(Format.asprintf "%a" B.ext.Ext.pp) gen_bpred

let gen_rdset =
  QCheck.Gen.(
    map (fun l -> Gist_ams.Rd_tree_ext.set l) (list_size (int_range 0 12) (int_range 0 100)))

let arb_rdset =
  QCheck.make ~print:(Format.asprintf "%a" Gist_ams.Rd_tree_ext.ext.Ext.pp) gen_rdset

let gen_rect =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> R.rect a b c d)
      (quad (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)
         (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))

let arb_rect = QCheck.make ~print:(Format.asprintf "%a" R.ext.Ext.pp) gen_rect

(* --- extension laws --- *)

let prop_union_covers ext arb =
  QCheck.Test.make ~name:(ext.Ext.name ^ ": union covers members") ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 12) arb)
    (fun ps ->
      let u = ext.Ext.union ps in
      List.for_all
        (fun p ->
          (* Empty members are vacuously covered. *)
          (not (ext.Ext.consistent p p)) || ext.Ext.consistent p u)
        ps)

let prop_union_monotone ext arb =
  QCheck.Test.make ~name:(ext.Ext.name ^ ": union is monotone for queries") ~count:300
    (QCheck.pair arb (QCheck.list_of_size (QCheck.Gen.int_range 1 8) arb))
    (fun (q, ps) ->
      let u = ext.Ext.union ps in
      (* If q is consistent with any member, it is consistent with the union. *)
      (not (List.exists (fun p -> ext.Ext.consistent q p) ps)) || ext.Ext.consistent q u)

let prop_pick_split_contract ext arb =
  QCheck.Test.make ~name:(ext.Ext.name ^ ": pick_split partitions") ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 2 40) arb)
    (fun ps ->
      let arr = Array.of_list ps in
      let a = ext.Ext.pick_split arr in
      Array.length a = Array.length arr
      && Array.exists (fun b -> b) a
      && Array.exists (fun b -> not b) a)

let prop_codec_roundtrip ext arb =
  QCheck.Test.make ~name:(ext.Ext.name ^ ": codec roundtrip") ~count:500 arb (fun p ->
      let s = Ext.encode_to_string ext p in
      ext.Ext.matches_exact p (Ext.decode_of_string ext s))

let prop_penalty_nonneg =
  QCheck.Test.make ~name:"btree: penalty non-negative" ~count:300
    (QCheck.pair arb_bpred arb_bpred)
    (fun (bp, key) -> B.ext.Ext.penalty bp key >= 0.0)

(* --- xoshiro --- *)

let prop_xoshiro_bounds =
  QCheck.Test.make ~name:"xoshiro: int within bounds" ~count:500
    (QCheck.pair QCheck.small_int QCheck.pos_int)
    (fun (seed, bound) ->
      let bound = 1 + (bound mod 10_000) in
      let r = Gist_util.Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Gist_util.Xoshiro.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* --- tree vs model --- *)

type op = Insert of int | Delete of int | Vacuum | Reopen

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> Insert k) (int_range 0 400));
        (3, map (fun k -> Delete k) (int_range 0 400));
        (1, return Vacuum);
        (1, return Reopen);
      ])

let print_op = function
  | Insert k -> Printf.sprintf "Insert %d" k
  | Delete k -> Printf.sprintf "Delete %d" k
  | Vacuum -> "Vacuum"
  | Reopen -> "Reopen"

let arb_ops = QCheck.make ~print:QCheck.Print.(list print_op) QCheck.Gen.(list_size (int_range 1 120) gen_op)

let prop_tree_matches_model =
  QCheck.Test.make ~name:"gist: random committed ops match a model" ~count:40 arb_ops
    (fun ops ->
      let db = ref (Db.create ~config ()) in
      let t = ref (Gist.create !db B.ext ~empty_bp:B.Empty ()) in
      let model : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Insert k ->
            if not (Hashtbl.mem model k) then begin
              let txn = Txn.begin_txn !db.Db.txns in
              Gist.insert !t txn ~key:(B.key k) ~rid:(rid k);
              Txn.commit !db.Db.txns txn;
              Hashtbl.replace model k ()
            end
          | Delete k ->
            if Hashtbl.mem model k then begin
              let txn = Txn.begin_txn !db.Db.txns in
              ignore (Gist.delete !t txn ~key:(B.key k) ~rid:(rid k));
              Txn.commit !db.Db.txns txn;
              Hashtbl.remove model k
            end
          | Vacuum -> Gist.vacuum !t
          | Reopen ->
            (* Crash with everything durable: a clean restart. *)
            Gist_wal.Log_manager.force_all !db.Db.log;
            let root = Gist.root !t in
            let db' = Db.crash !db in
            Recovery.restart db' B.ext;
            db := db';
            t := Gist.open_existing db' B.ext ~root ())
        ops;
      let txn = Txn.begin_txn !db.Db.txns in
      let got =
        Gist.search !t txn (B.range (-10) 1000)
        |> List.map (fun (k, _) -> B.key_value k)
        |> List.sort compare
      in
      Txn.commit !db.Db.txns txn;
      let expected = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
      got = expected && Tree_check.ok (Tree_check.check !t))

let prop_crash_recovery_sound =
  QCheck.Test.make ~name:"gist: crash at random point preserves committed set" ~count:25
    (QCheck.pair QCheck.small_int arb_ops)
    (fun (seed, ops) ->
      let rng = Gist_util.Xoshiro.create (seed + 1) in
      let db = Db.create ~config () in
      let t = Gist.create db B.ext ~empty_bp:B.Empty () in
      let model : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Insert k ->
            if not (Hashtbl.mem model k) then begin
              let txn = Txn.begin_txn db.Db.txns in
              Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
              Txn.commit db.Db.txns txn;
              Hashtbl.replace model k ()
            end
          | Delete k ->
            if Hashtbl.mem model k then begin
              let txn = Txn.begin_txn db.Db.txns in
              ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k));
              Txn.commit db.Db.txns txn;
              Hashtbl.remove model k
            end
          | Vacuum -> Gist.vacuum t
          | Reopen -> ())
        ops;
      (* One loser in flight, then crash at a random durable point. *)
      let loser = Txn.begin_txn db.Db.txns in
      for i = 500 to 520 do
        Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
      done;
      let durable = Int64.to_int (Gist_wal.Log_manager.durable_lsn db.Db.log) in
      let high = Int64.to_int (Gist_wal.Log_manager.last_lsn db.Db.log) in
      let cut = durable + Gist_util.Xoshiro.int rng (high - durable + 1) in
      Gist_wal.Log_manager.force db.Db.log (Int64.of_int cut);
      let root = Gist.root t in
      let db' = Db.crash db in
      Recovery.restart db' B.ext;
      let t' = Gist.open_existing db' B.ext ~root () in
      let txn = Txn.begin_txn db'.Db.txns in
      let got =
        Gist.search t' txn (B.range (-10) 1000)
        |> List.map (fun (k, _) -> B.key_value k)
        |> List.sort compare
      in
      Txn.commit db'.Db.txns txn;
      let expected = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
      got = expected && Tree_check.ok (Tree_check.check t'))

let prop_cursor_matches_search =
  QCheck.Test.make ~name:"cursor: drain equals search" ~count:30
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 150) (QCheck.int_range 0 500))
       (QCheck.pair (QCheck.int_range 0 500) (QCheck.int_range 0 200)))
    (fun (keys, (lo, width)) ->
      let db = Db.create ~config () in
      let t = Gist.create db B.ext ~empty_bp:B.Empty () in
      let txn = Txn.begin_txn db.Db.txns in
      List.iteri
        (fun i k ->
          if Gist.search t txn (B.key k) = [] then Gist.insert t txn ~key:(B.key k) ~rid:(rid i))
        keys;
      let q = B.range lo (lo + width) in
      let via_search =
        Gist.search t txn q |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare
      in
      let cursor = Cursor.open_ t txn q in
      let rec drain acc =
        match Cursor.next cursor with
        | Some (k, _) -> drain (B.key_value k :: acc)
        | None -> List.sort compare acc
      in
      let via_cursor = drain [] in
      Cursor.close cursor;
      Txn.commit db.Db.txns txn;
      via_search = via_cursor)

let prop_bulk_matches_incremental =
  QCheck.Test.make ~name:"bulk_load: equals incremental insertion" ~count:25
    (QCheck.list_of_size (QCheck.Gen.int_range 0 300) (QCheck.int_range 0 2_000))
    (fun keys ->
      let uniq = List.sort_uniq compare keys in
      let entries = Array.of_list (List.mapi (fun i k -> (B.key k, rid i)) uniq) in
      let db = Db.create ~config () in
      let bulk = Gist.bulk_load db B.ext ~empty_bp:B.Empty entries in
      let txn = Txn.begin_txn db.Db.txns in
      let got =
        Gist.search bulk txn (B.range (-1) 3_000)
        |> List.map (fun (k, _) -> B.key_value k)
        |> List.sort compare
      in
      Txn.commit db.Db.txns txn;
      got = uniq && Tree_check.ok (Tree_check.check bulk))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_covers B.ext arb_bpred;
      prop_union_covers R.ext arb_rect;
      prop_union_covers Gist_ams.Rd_tree_ext.ext arb_rdset;
      prop_union_monotone B.ext arb_bpred;
      prop_union_monotone R.ext arb_rect;
      prop_union_monotone Gist_ams.Rd_tree_ext.ext arb_rdset;
      prop_pick_split_contract B.ext arb_bpred;
      prop_pick_split_contract R.ext arb_rect;
      prop_pick_split_contract Gist_ams.Rd_tree_ext.ext arb_rdset;
      prop_codec_roundtrip B.ext arb_bpred;
      prop_codec_roundtrip R.ext arb_rect;
      prop_codec_roundtrip Gist_ams.Rd_tree_ext.ext arb_rdset;
      prop_penalty_nonneg;
      prop_xoshiro_bounds;
      prop_tree_matches_model;
      prop_crash_recovery_sound;
      prop_cursor_matches_search;
      prop_bulk_matches_incremental;
    ]
