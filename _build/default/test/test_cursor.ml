(* Cursor tests: incremental scans, isolation, savepoint save/restore
   (§10.2). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let make ?(n = 0) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  if n > 0 then begin
    let txn = Txn.begin_txn db.Db.txns in
    for i = 1 to n do
      Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
    done;
    Txn.commit db.Db.txns txn
  end;
  (db, t)

let drain cursor =
  let rec loop acc =
    match Cursor.next cursor with
    | Some (k, _) -> loop (B.key_value k :: acc)
    | None -> List.sort compare acc
  in
  loop []

let take n cursor =
  let rec loop n acc =
    if n = 0 then List.rev acc
    else
      match Cursor.next cursor with
      | Some (k, _) -> loop (n - 1) (B.key_value k :: acc)
      | None -> List.rev acc
  in
  loop n []

let test_full_scan_matches_search () =
  let db, t = make ~n:200 () in
  let txn = Txn.begin_txn db.Db.txns in
  let expected =
    Gist.search t txn (B.range 50 150)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  let cursor = Cursor.open_ t txn (B.range 50 150) in
  Alcotest.(check (list int)) "cursor = search" expected (drain cursor);
  Cursor.close cursor;
  Txn.commit db.Db.txns txn

let test_no_duplicates_no_misses () =
  let db, t = make ~n:500 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 500) in
  let results = drain cursor in
  Alcotest.(check int) "500 results" 500 (List.length results);
  Alcotest.(check (list int)) "each exactly once" (List.init 500 (fun i -> i + 1)) results;
  Cursor.close cursor;
  Txn.commit db.Db.txns txn

let test_exhausted_cursor_stays_none () =
  let db, t = make ~n:5 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 5) in
  ignore (drain cursor);
  Alcotest.(check bool) "still none" true (Cursor.next cursor = None);
  Cursor.close cursor;
  Alcotest.(check bool) "none after close" true (Cursor.next cursor = None);
  Txn.commit db.Db.txns txn

let test_cursor_skips_marked () =
  let db, t = make ~n:20 () in
  let del = Txn.begin_txn db.Db.txns in
  for i = 1 to 10 do
    ignore (Gist.delete t del ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns del;
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 20) in
  Alcotest.(check (list int)) "only live keys" (List.init 10 (fun i -> i + 11)) (drain cursor);
  Cursor.close cursor;
  Txn.commit db.Db.txns txn

let test_cursor_blocks_phantom_insert () =
  (* An insert into the cursor's range must wait for the cursor's
     transaction even before the cursor reaches that region. *)
  let db, t = make ~n:50 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 50) in
  ignore (take 5 cursor);
  let done_flag = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let w = Txn.begin_txn db.Db.txns in
        Gist.insert t w ~key:(B.key 25) ~rid:(rid 925);
        Txn.commit db.Db.txns w;
        Atomic.set done_flag true)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.1 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "insert blocked by cursor predicate" false (Atomic.get done_flag);
  (* The cursor still sees a stable world. *)
  Alcotest.(check int) "remaining results stable" 45 (List.length (take 50 cursor));
  Cursor.close cursor;
  Txn.commit db.Db.txns txn;
  let t1 = Gist_util.Clock.now_ns () in
  while (not (Atomic.get done_flag)) && Gist_util.Clock.elapsed_s t1 < 5.0 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "insert proceeds after commit" true (Atomic.get done_flag);
  Domain.join d

let test_save_restore () =
  let db, t = make ~n:100 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 100) in
  let first_ten = take 10 cursor in
  let snap = Cursor.save cursor in
  let after_snap = take 20 cursor in
  Cursor.restore cursor snap;
  let replay = take 20 cursor in
  Alcotest.(check (list int)) "restored cursor replays the same results" after_snap replay;
  (* Nothing returned before the snapshot is returned again. *)
  let rest = drain cursor in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "key %d not re-delivered" k) false
        (List.mem k rest))
    (first_ten @ replay);
  Alcotest.(check int) "total coverage exactly once" 100
    (List.length first_ten + List.length replay + List.length rest);
  Cursor.close cursor;
  Txn.commit db.Db.txns txn

let test_save_restore_with_partial_rollback () =
  (* The §10.2 scenario: savepoint + cursor snapshot, more reads, own
     inserts, then rollback to the savepoint and cursor restore. *)
  let db, t = make ~n:60 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 1000) in
  let before = take 10 cursor in
  Txn.savepoint db.Db.txns txn "sp";
  let snap = Cursor.save cursor in
  let seen_after = take 10 cursor in
  (* Transaction work after the savepoint... *)
  Gist.insert t txn ~key:(B.key 500) ~rid:(rid 500);
  (* ...rolled back. *)
  Txn.rollback_to_savepoint db.Db.txns txn "sp";
  Cursor.restore cursor snap;
  let replay = take 10 cursor in
  Alcotest.(check (list int)) "replay matches (rolled-back insert invisible)" seen_after replay;
  let rest = drain cursor in
  Alcotest.(check int) "every original key exactly once" 60
    (List.length before + List.length replay + List.length rest);
  Alcotest.(check bool) "rolled-back key not delivered" false
    (List.mem 500 (before @ replay @ rest));
  Cursor.close cursor;
  Txn.commit db.Db.txns txn

let test_cursor_across_concurrent_splits () =
  (* Start a cursor, let writers split nodes elsewhere, finish the scan:
     no preloaded key may be lost or duplicated. *)
  let db, t = make ~n:300 () in
  let txn = Txn.begin_txn db.Db.txns in
  let cursor = Cursor.open_ t txn (B.range 1 300) in
  let first = take 50 cursor in
  let writers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 150 do
              let k = 1000 + (w * 1000) + i in
              let wtxn = Txn.begin_txn db.Db.txns in
              Gist.insert t wtxn ~key:(B.key k) ~rid:(rid k);
              Txn.commit db.Db.txns wtxn
            done))
  in
  List.iter Domain.join writers;
  let rest = drain cursor in
  Alcotest.(check (list int)) "no losses, no duplicates"
    (List.init 300 (fun i -> i + 1))
    (List.sort compare (first @ rest));
  Cursor.close cursor;
  Txn.commit db.Db.txns txn;
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent" true (Tree_check.ok report)

let suite =
  [
    Alcotest.test_case "full scan matches search" `Quick test_full_scan_matches_search;
    Alcotest.test_case "no duplicates, no misses" `Quick test_no_duplicates_no_misses;
    Alcotest.test_case "exhausted stays none" `Quick test_exhausted_cursor_stays_none;
    Alcotest.test_case "skips marked entries" `Quick test_cursor_skips_marked;
    Alcotest.test_case "blocks phantom insert" `Quick test_cursor_blocks_phantom_insert;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "save/restore with partial rollback" `Quick
      test_save_restore_with_partial_rollback;
    Alcotest.test_case "survives concurrent splits" `Quick test_cursor_across_concurrent_splits;
  ]
