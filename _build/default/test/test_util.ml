(* Unit tests for gist_util: dynarrays, RNG, codecs, stats. *)

open Gist_util

let test_dyn_basic () =
  let d = Dyn.create () in
  Alcotest.(check bool) "empty" true (Dyn.is_empty d);
  for i = 0 to 99 do
    Dyn.push d i
  done;
  Alcotest.(check int) "length" 100 (Dyn.length d);
  Alcotest.(check int) "get" 42 (Dyn.get d 42);
  Dyn.set d 42 1000;
  Alcotest.(check int) "set" 1000 (Dyn.get d 42);
  Alcotest.(check int) "pop" 99 (Dyn.pop d);
  Alcotest.(check int) "length after pop" 99 (Dyn.length d);
  Dyn.remove d 0;
  Alcotest.(check int) "shift after remove" 1 (Dyn.get d 0);
  Alcotest.check_raises "oob" (Invalid_argument "Dyn: index 98 out of bounds [0,98)")
    (fun () -> ignore (Dyn.get d 98))

let test_dyn_iteration () =
  let d = Dyn.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 4; 1; 5 ] (Dyn.to_list d);
  Alcotest.(check int) "fold sum" 14 (Dyn.fold ( + ) 0 d);
  Alcotest.(check bool) "exists" true (Dyn.exists (fun x -> x = 4) d);
  Alcotest.(check bool) "for_all" false (Dyn.for_all (fun x -> x < 5) d);
  Alcotest.(check (option int)) "find_index" (Some 2) (Dyn.find_index (fun x -> x = 4) d);
  Dyn.filter_in_place (fun x -> x <> 1) d;
  Alcotest.(check (list int)) "filter" [ 3; 4; 5 ] (Dyn.to_list d);
  Dyn.sort compare d;
  Alcotest.(check (list int)) "sort" [ 3; 4; 5 ] (Dyn.to_list d);
  let d2 = Dyn.copy d in
  Dyn.push d2 9;
  Alcotest.(check int) "copy independent" 3 (Dyn.length d)

let test_xoshiro_determinism () =
  let a = Xoshiro.create 7 and b = Xoshiro.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next64 a) (Xoshiro.next64 b)
  done;
  let c = Xoshiro.create 8 in
  Alcotest.(check bool) "different seed differs" true
    (Xoshiro.next64 a <> Xoshiro.next64 c)

let test_xoshiro_bounds () =
  let r = Xoshiro.create 99 in
  for _ = 1 to 10_000 do
    let v = Xoshiro.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1_000 do
    let f = Xoshiro.float r 2.5 in
    Alcotest.(check bool) "float bound" true (f >= 0.0 && f < 2.5)
  done;
  for _ = 1 to 1_000 do
    let z = Xoshiro.zipf r ~n:100 ~theta:0.9 in
    Alcotest.(check bool) "zipf in range" true (z >= 0 && z < 100)
  done

let test_xoshiro_split () =
  let parent = Xoshiro.create 5 in
  let child1 = Xoshiro.split parent in
  let child2 = Xoshiro.split parent in
  Alcotest.(check bool) "split streams differ" true
    (Xoshiro.next64 child1 <> Xoshiro.next64 child2)

let test_shuffle_permutes () =
  let r = Xoshiro.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Xoshiro.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_codec_roundtrip () =
  let b = Buffer.create 64 in
  Codec.put_u8 b 200;
  Codec.put_u16 b 60000;
  Codec.put_i32 b (-12345);
  Codec.put_i64 b 0x1234_5678_9abc_def0L;
  Codec.put_int b (-987654321);
  Codec.put_bool b true;
  Codec.put_float b 3.14159;
  Codec.put_string b "hello GiST";
  Codec.put_option Codec.put_i32 b (Some 7);
  Codec.put_option Codec.put_i32 b None;
  Codec.put_list Codec.put_i32 b [ 1; 2; 3 ];
  let r = Codec.reader (Buffer.to_bytes b) in
  Alcotest.(check int) "u8" 200 (Codec.get_u8 r);
  Alcotest.(check int) "u16" 60000 (Codec.get_u16 r);
  Alcotest.(check int) "i32" (-12345) (Codec.get_i32 r);
  Alcotest.(check int64) "i64" 0x1234_5678_9abc_def0L (Codec.get_i64 r);
  Alcotest.(check int) "int" (-987654321) (Codec.get_int r);
  Alcotest.(check bool) "bool" true (Codec.get_bool r);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (Codec.get_float r);
  Alcotest.(check string) "string" "hello GiST" (Codec.get_string r);
  Alcotest.(check (option int)) "some" (Some 7) (Codec.get_option Codec.get_i32 r);
  Alcotest.(check (option int)) "none" None (Codec.get_option Codec.get_i32 r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.get_list Codec.get_i32 r);
  Alcotest.(check int) "fully consumed" 0 (Codec.remaining r)

let test_codec_truncation () =
  let b = Buffer.create 8 in
  Codec.put_i32 b 1;
  let r = Codec.reader (Buffer.to_bytes b) in
  ignore (Codec.get_i32 r);
  Alcotest.(check bool) "truncated read raises" true
    (match Codec.get_i64 r with _ -> false | exception Codec.Corrupt _ -> true)

let test_checksum () =
  let b1 = Bytes.of_string "the quick brown fox" in
  let b2 = Bytes.of_string "the quick brown foy" in
  Alcotest.(check bool) "different data, different sum" true
    (Codec.checksum b1 0 (Bytes.length b1) <> Codec.checksum b2 0 (Bytes.length b2));
  Alcotest.(check int) "deterministic" (Codec.checksum b1 0 5) (Codec.checksum b1 0 5)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  let s2 = Stats.Summary.create () in
  Stats.Summary.add s2 10.0;
  let m = Stats.Summary.merge s s2 in
  Alcotest.(check int) "merged count" 5 (Stats.Summary.count m);
  Alcotest.(check (float 1e-9)) "merged max" 10.0 (Stats.Summary.max m)

let test_histogram () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (Float.of_int i)
  done;
  let p50 = Stats.Histogram.percentile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 ~ 500 (got %g)" p50)
    true
    (p50 > 350.0 && p50 < 700.0);
  let p99 = Stats.Histogram.percentile h 0.99 in
  Alcotest.(check bool) (Printf.sprintf "p99 ~ 990 (got %g)" p99) true (p99 > 800.0)

let test_txn_id () =
  Alcotest.(check bool) "none is not some" false (Txn_id.is_some Txn_id.none);
  let t = Txn_id.of_int 42 in
  Alcotest.(check bool) "42 is some" true (Txn_id.is_some t);
  Alcotest.(check int) "roundtrip" 42 (Txn_id.to_int t);
  let b = Buffer.create 8 in
  Txn_id.encode b t;
  Alcotest.(check bool) "codec roundtrip" true
    (Txn_id.equal t (Txn_id.decode (Codec.reader (Buffer.to_bytes b))))

let suite =
  [
    Alcotest.test_case "dyn basic" `Quick test_dyn_basic;
    Alcotest.test_case "dyn iteration" `Quick test_dyn_iteration;
    Alcotest.test_case "xoshiro determinism" `Quick test_xoshiro_determinism;
    Alcotest.test_case "xoshiro bounds" `Quick test_xoshiro_bounds;
    Alcotest.test_case "xoshiro split" `Quick test_xoshiro_split;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "checksum" `Quick test_checksum;
    Alcotest.test_case "summary stats" `Quick test_summary;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram;
    Alcotest.test_case "txn ids" `Quick test_txn_id;
  ]
