(* Bulk loading tests: equivalence with incremental loading, crash safety
   of the minimal-logging path, packing quality, and STR ordering. *)

open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 512; page_size = 1024 }

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

let keys_of db t =
  let txn = Txn.begin_txn db.Db.txns in
  let r =
    Gist.search t txn (B.range min_int max_int)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db.Db.txns txn;
  r

let test_bulk_matches_incremental () =
  let n = 1_000 in
  let entries = Array.init n (fun i -> (B.key i, rid i)) in
  let db = Db.create ~config () in
  let t = Gist.bulk_load db B.ext ~empty_bp:B.Empty entries in
  Alcotest.(check (list int)) "all keys present" (List.init n (fun i -> i)) (keys_of db t);
  check_tree t;
  (* Spot range queries. *)
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "range query" 11 (List.length (Gist.search t txn (B.range 500 510)));
  Txn.commit db.Db.txns txn

let test_bulk_sizes () =
  List.iter
    (fun n ->
      let entries = Array.init n (fun i -> (B.key i, rid i)) in
      let db = Db.create ~config () in
      let t = Gist.bulk_load db B.ext ~empty_bp:B.Empty entries in
      Alcotest.(check int) (Printf.sprintf "n=%d count" n) n (List.length (keys_of db t));
      check_tree t)
    [ 0; 1; 5; 8; 9; 64; 65; 100 ]

let test_bulk_packing_quality () =
  (* Bulk loading at fill=0.85 must use far fewer leaves than random-order
     incremental inserts (which average ~50-70% occupancy after splits). *)
  let n = 2_000 in
  let db1 = Db.create ~config () in
  let bulk =
    Gist.bulk_load db1 B.ext ~fill:0.9 ~empty_bp:B.Empty
      (Array.init n (fun i -> (B.key i, rid i)))
  in
  let db2 = Db.create ~config () in
  let incr = Gist.create db2 B.ext ~empty_bp:B.Empty () in
  let rng = Gist_util.Xoshiro.create 13 in
  let order = Array.init n (fun i -> i) in
  Gist_util.Xoshiro.shuffle rng order;
  let txn = Txn.begin_txn db2.Db.txns in
  Array.iter (fun i -> Gist.insert incr txn ~key:(B.key i) ~rid:(rid i)) order;
  Txn.commit db2.Db.txns txn;
  let bl = Gist.leaf_count bulk and il = Gist.leaf_count incr in
  (* fill=0.9 of max_entries=8 ⇒ 7 entries per leaf ⇒ ⌈2000/7⌉ = 286. *)
  Alcotest.(check bool)
    (Printf.sprintf "bulk hits its packing target (%d leaves)" bl)
    true (bl <= 290);
  Alcotest.(check bool)
    (Printf.sprintf "and beats incremental loading (%d vs %d leaves)" bl il)
    true (bl < il);
  check_tree bulk

let test_bulk_crash_safety () =
  (* The minimal-logging contract: after bulk_load returns, a crash (even
     with no further forcing) must preserve the whole tree. *)
  let n = 500 in
  let db = Db.create ~config () in
  let t = Gist.bulk_load db B.ext ~empty_bp:B.Empty (Array.init n (fun i -> (B.key i, rid i))) in
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  Alcotest.(check int) "all keys survive" n (List.length (keys_of db' t'));
  check_tree t';
  (* And the allocator was re-anchored: new inserts get fresh pages. *)
  let txn = Txn.begin_txn db'.Db.txns in
  for i = n to n + 200 do
    Gist.insert t' txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db'.Db.txns txn;
  Alcotest.(check int) "post-recovery growth" (n + 201) (List.length (keys_of db' t'));
  check_tree t'

let test_bulk_then_full_workload () =
  let n = 800 in
  let db = Db.create ~config () in
  let t = Gist.bulk_load db B.ext ~empty_bp:B.Empty (Array.init n (fun i -> (B.key i, rid i))) in
  (* Deletes, vacuums and aborts on a bulk-loaded tree. *)
  let txn = Txn.begin_txn db.Db.txns in
  for i = 0 to 399 do
    ignore (Gist.delete t txn ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns txn;
  Gist.vacuum t;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 2_000 to 2_050 do
    Gist.insert t loser ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.abort db.Db.txns loser;
  Alcotest.(check int) "400 live after delete+vacuum+abort" 400
    (List.length (keys_of db t));
  check_tree t

let test_str_sort_quality () =
  (* STR-ordered bulk loading must produce dramatically less leaf overlap
     than insertion-ordered loading of random points. *)
  let n = 2_000 in
  let rng = Gist_util.Xoshiro.create 6 in
  let pts =
    Array.init n (fun i ->
        (R.point (Gist_util.Xoshiro.float rng 1000.0) (Gist_util.Xoshiro.float rng 1000.0), rid i))
  in
  let rconfig = { config with Db.page_size = 2048 } in
  (* Unsorted bulk load: consecutive random points -> huge leaf boxes. *)
  let db1 = Db.create ~config:rconfig () in
  let messy = Gist.bulk_load db1 R.ext ~empty_bp:R.Empty (Array.copy pts) in
  (* STR-ordered. *)
  let sorted = Array.copy pts in
  R.str_sort ~per_node:7 sorted;
  let db2 = Db.create ~config:rconfig () in
  let tidy = Gist.bulk_load db2 R.ext ~empty_bp:R.Empty sorted in
  (* Compare total leaf-BP area (proxy for query page touches). *)
  let leaf_area t db =
    ignore db;
    let total = ref 0.0 in
    let rec walk pid =
      Gist_storage.Buffer_pool.with_page (Gist.db t).Db.pool pid Gist_storage.Latch.S
        (fun frame ->
          let node = Node.read R.ext frame in
          if Node.is_leaf node then `Leaf node.Node.bp
          else
            `Kids (Gist_util.Dyn.fold (fun l e -> e.Node.ie_child :: l) [] (Node.internal_entries node)))
      |> function
      | `Leaf bp -> total := !total +. R.area bp
      | `Kids kids -> List.iter walk kids
    in
    walk (Gist.root t);
    !total
  in
  let messy_area = leaf_area messy db1 and tidy_area = leaf_area tidy db2 in
  Alcotest.(check bool)
    (Printf.sprintf "STR leaves are tighter (%.0f vs %.0f area)" tidy_area messy_area)
    true
    (tidy_area < 0.5 *. messy_area);
  check_tree tidy;
  check_tree messy;
  (* Same result set either way. *)
  let q = R.rect 100.0 100.0 200.0 200.0 in
  let run db t =
    let txn = Txn.begin_txn db.Db.txns in
    let r =
      Gist.search t txn q |> List.map (fun (_, r) -> r.Rid.slot) |> List.sort compare
    in
    Txn.commit db.Db.txns txn;
    r
  in
  Alcotest.(check (list int)) "same query answers" (run db1 messy) (run db2 tidy)

let test_crash_mid_bulk_load () =
  (* Cut the durable prefix inside the bulk load's NTA: the half-built tree
     must be reclaimed (its Get-Page records undone) and the environment
     left fully usable. *)
  let db = Db.create ~config () in
  (* Run a committed baseline first so there is an anchor-free log. *)
  let t0 = Gist.create db B.ext ~empty_bp:B.Empty () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 20 do
    Gist.insert t0 txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let before = Gist_wal.Log_manager.last_lsn db.Db.log in
  let _bulk =
    Gist.bulk_load db B.ext ~empty_bp:B.Empty (Array.init 400 (fun i -> (B.key (1000 + i), rid (1000 + i))))
  in
  (* Crash with only part of the bulk NTA durable. *)
  let after = Gist_wal.Log_manager.last_lsn db.Db.log in
  let mid = Int64.add before (Int64.div (Int64.sub after before) 2L) in
  Gist_wal.Log_manager.force db.Db.log mid;
  let root0 = Gist.root t0 in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t0' = Gist.open_existing db' B.ext ~root:root0 () in
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "baseline intact" 20 (List.length (Gist.search t0' txn (B.range 1 100)));
  Txn.commit db'.Db.txns txn;
  check_tree t0';
  (* The environment still builds new trees fine. *)
  let t2 =
    Gist.bulk_load db' B.ext ~empty_bp:B.Empty (Array.init 100 (fun i -> (B.key i, rid (5000 + i))))
  in
  Alcotest.(check int) "fresh bulk load on recovered env" 100 (Gist.entry_count t2);
  check_tree t2

let suite =
  [
    Alcotest.test_case "bulk matches incremental" `Quick test_bulk_matches_incremental;
    Alcotest.test_case "bulk sizes incl. edge cases" `Quick test_bulk_sizes;
    Alcotest.test_case "bulk packing quality" `Quick test_bulk_packing_quality;
    Alcotest.test_case "bulk crash safety" `Quick test_bulk_crash_safety;
    Alcotest.test_case "bulk then full workload" `Quick test_bulk_then_full_workload;
    Alcotest.test_case "STR sort quality" `Quick test_str_sort_quality;
    Alcotest.test_case "crash mid bulk load" `Quick test_crash_mid_bulk_load;
  ]
