(* Unit tests for the transaction manager: logging discipline, undo
   dispatch order, savepoints, NTAs, commit-LSN. *)

open Gist_txn
module Log_manager = Gist_wal.Log_manager
module Log_record = Gist_wal.Log_record
module Page_id = Gist_storage.Page_id
module Txn_id = Gist_util.Txn_id

let make () =
  let log = Log_manager.create () in
  let locks = Lock_manager.create () in
  let txns = Txn_manager.create ~log ~locks in
  (log, locks, txns)

let test_begin_commit_records () =
  let log, _, txns = make () in
  let t = Txn_manager.begin_txn txns in
  Txn_manager.commit txns t;
  let payloads = ref [] in
  Log_manager.iter_from log 1L (fun r -> payloads := r.Log_record.payload :: !payloads);
  Alcotest.(check bool) "begin/commit/end sequence" true
    (List.rev !payloads = [ Log_record.Begin; Log_record.Commit; Log_record.End ]);
  (* Commit forces the log through the commit record. *)
  Alcotest.(check bool) "commit durable" true (Log_manager.durable_lsn log >= 2L)

let test_own_txn_lock () =
  let _, locks, txns = make () in
  let t = Txn_manager.begin_txn txns in
  let tid = Txn_manager.id t in
  (* Every transaction X-locks its own id (predicate blocking target). *)
  Alcotest.(check bool) "own id locked" false
    (Lock_manager.try_lock locks (Txn_id.of_int 999) (Lock_manager.Txn tid) Lock_manager.S);
  Txn_manager.commit txns t;
  Alcotest.(check bool) "released at end" true
    (Lock_manager.try_lock locks (Txn_id.of_int 999) (Lock_manager.Txn tid) Lock_manager.S)

let test_abort_undoes_in_reverse () =
  let _, _, txns = make () in
  let undone = ref [] in
  Txn_manager.set_undo_handler txns (fun txn record ->
      (match record.Log_record.payload with
      | Log_record.Get_page { page } -> undone := Page_id.to_int page :: !undone
      | _ -> ());
      (* A real handler logs a CLR; mimic that so undo_next chains hold. *)
      ignore
        (Txn_manager.log_update txns txn
           (Log_record.Clr { action = Log_record.Act_none; undo_next = record.Log_record.prev })));
  let t = Txn_manager.begin_txn txns in
  List.iter
    (fun i ->
      ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int i })))
    [ 1; 2; 3 ];
  Txn_manager.abort txns t;
  Alcotest.(check (list int)) "reverse order" [ 1; 2; 3 ] !undone
(* undone collects by prepending: 3 then 2 then 1 => list [1;2;3] *)

let test_nta_skipped_by_undo () =
  let _, _, txns = make () in
  let undone = ref [] in
  Txn_manager.set_undo_handler txns (fun txn record ->
      (match record.Log_record.payload with
      | Log_record.Get_page { page } -> undone := Page_id.to_int page :: !undone
      | _ -> ());
      ignore
        (Txn_manager.log_update txns txn
           (Log_record.Clr { action = Log_record.Act_none; undo_next = record.Log_record.prev })));
  let t = Txn_manager.begin_txn txns in
  ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int 1 }));
  (* Structure modification inside an NTA: must NOT be undone. *)
  let nta = Txn_manager.begin_nta txns t in
  ignore (Txn_manager.log_nta txns t (Log_record.Get_page { page = Page_id.of_int 100 }));
  ignore (Txn_manager.log_nta txns t (Log_record.Get_page { page = Page_id.of_int 101 }));
  Txn_manager.end_nta txns t nta;
  ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int 2 }));
  Txn_manager.abort txns t;
  Alcotest.(check (list int)) "NTA contents skipped" [ 1; 2 ] !undone

let test_savepoint_partial_undo () =
  let _, _, txns = make () in
  let undone = ref [] in
  Txn_manager.set_undo_handler txns (fun txn record ->
      (match record.Log_record.payload with
      | Log_record.Get_page { page } -> undone := Page_id.to_int page :: !undone
      | _ -> ());
      ignore
        (Txn_manager.log_update txns txn
           (Log_record.Clr { action = Log_record.Act_none; undo_next = record.Log_record.prev })));
  let t = Txn_manager.begin_txn txns in
  ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int 1 }));
  Txn_manager.savepoint txns t "sp";
  ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int 2 }));
  ignore (Txn_manager.log_update txns t (Log_record.Get_page { page = Page_id.of_int 3 }));
  Txn_manager.rollback_to_savepoint txns t "sp";
  Alcotest.(check (list int)) "only post-savepoint undone" [ 2; 3 ] !undone;
  (* A later full abort undoes the rest, skipping already-compensated work. *)
  undone := [];
  Txn_manager.abort txns t;
  Alcotest.(check (list int)) "only pre-savepoint remains" [ 1 ] !undone

let test_missing_savepoint () =
  let _, _, txns = make () in
  let t = Txn_manager.begin_txn txns in
  Alcotest.check_raises "unknown savepoint" Not_found (fun () ->
      Txn_manager.rollback_to_savepoint txns t "nope");
  Txn_manager.commit txns t

let test_commit_lsn () =
  let log, _, txns = make () in
  let no_active = Txn_manager.commit_lsn txns in
  Alcotest.(check bool) "beyond log when idle" true (no_active > Log_manager.last_lsn log);
  let t1 = Txn_manager.begin_txn txns in
  let t2 = Txn_manager.begin_txn txns in
  Alcotest.(check int64) "oldest active begin" (Txn_manager.last_lsn t1)
    (Txn_manager.commit_lsn txns);
  Txn_manager.commit txns t1;
  Alcotest.(check int64) "advances as txns end" (Txn_manager.last_lsn t2)
    (Txn_manager.commit_lsn txns);
  Txn_manager.commit txns t2

let test_end_hooks () =
  let _, _, txns = make () in
  let ended = ref [] in
  Txn_manager.add_end_hook txns (fun tid -> ended := Txn_id.to_int tid :: !ended);
  let t1 = Txn_manager.begin_txn txns in
  let t2 = Txn_manager.begin_txn txns in
  Txn_manager.set_undo_handler txns (fun _ _ -> ());
  Txn_manager.commit txns t1;
  Txn_manager.abort txns t2;
  Alcotest.(check (list int)) "hooks on commit and abort"
    [ Txn_id.to_int (Txn_manager.id t2); Txn_id.to_int (Txn_manager.id t1) ]
    !ended

let test_is_committed_is_active () =
  let _, _, txns = make () in
  let t1 = Txn_manager.begin_txn txns in
  let tid1 = Txn_manager.id t1 in
  Alcotest.(check bool) "active" true (Txn_manager.is_active txns tid1);
  Alcotest.(check bool) "not yet committed" false (Txn_manager.is_committed txns tid1);
  Txn_manager.commit txns t1;
  Alcotest.(check bool) "not active" false (Txn_manager.is_active txns tid1);
  Alcotest.(check bool) "committed" true (Txn_manager.is_committed txns tid1)

let suite =
  [
    Alcotest.test_case "begin/commit record sequence" `Quick test_begin_commit_records;
    Alcotest.test_case "own txn-id lock" `Quick test_own_txn_lock;
    Alcotest.test_case "abort undoes in reverse" `Quick test_abort_undoes_in_reverse;
    Alcotest.test_case "NTA skipped by undo" `Quick test_nta_skipped_by_undo;
    Alcotest.test_case "savepoint partial undo" `Quick test_savepoint_partial_undo;
    Alcotest.test_case "missing savepoint" `Quick test_missing_savepoint;
    Alcotest.test_case "commit-LSN tracking" `Quick test_commit_lsn;
    Alcotest.test_case "end hooks" `Quick test_end_hooks;
    Alcotest.test_case "is_committed / is_active" `Quick test_is_committed_is_active;
  ]
