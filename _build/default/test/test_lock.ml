(* Unit tests for the lock manager: compatibility, queuing, upgrades,
   deadlock detection, and the signaling-lock copy extension. *)

open Gist_txn
module Rid = Gist_storage.Rid
module Page_id = Gist_storage.Page_id
module Txn_id = Gist_util.Txn_id

let tid = Txn_id.of_int

let rec_name i = Lock_manager.Record (Rid.make ~page:1 ~slot:i)

let node_name i = Lock_manager.Node (Page_id.of_int i)

let test_compatibility () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 1) Lock_manager.S;
  Alcotest.(check bool) "S/S compatible" true
    (Lock_manager.try_lock lm (tid 2) (rec_name 1) Lock_manager.S);
  Alcotest.(check bool) "S/X conflict" false
    (Lock_manager.try_lock lm (tid 3) (rec_name 1) Lock_manager.X);
  Lock_manager.release_all lm (tid 1);
  Lock_manager.release_all lm (tid 2);
  Alcotest.(check bool) "X after releases" true
    (Lock_manager.try_lock lm (tid 3) (rec_name 1) Lock_manager.X);
  Alcotest.(check bool) "X/S conflict" false
    (Lock_manager.try_lock lm (tid 4) (rec_name 1) Lock_manager.S)

let test_reentrancy_counting () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (node_name 5) Lock_manager.S;
  Lock_manager.lock lm (tid 1) (node_name 5) Lock_manager.S;
  Lock_manager.unlock lm (tid 1) (node_name 5);
  (* Still held once. *)
  Alcotest.(check bool) "still held" true (Lock_manager.held lm (tid 1) (node_name 5));
  Alcotest.(check bool) "X still blocked" false
    (Lock_manager.try_lock lm (tid 2) (node_name 5) Lock_manager.X);
  Lock_manager.unlock lm (tid 1) (node_name 5);
  Alcotest.(check bool) "released" false (Lock_manager.held lm (tid 1) (node_name 5));
  Alcotest.(check bool) "X now granted" true
    (Lock_manager.try_lock lm (tid 2) (node_name 5) Lock_manager.X)

let test_blocking_grant () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 2) Lock_manager.X;
  let granted = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Lock_manager.lock lm (tid 2) (rec_name 2) Lock_manager.S;
        Atomic.set granted true)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.05 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "waiter blocked" false (Atomic.get granted);
  Lock_manager.unlock lm (tid 1) (rec_name 2);
  Domain.join d;
  Alcotest.(check bool) "granted after release" true (Atomic.get granted)

let test_upgrade () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 3) Lock_manager.S;
  (* Sole S holder upgrades instantly. *)
  Lock_manager.lock lm (tid 1) (rec_name 3) Lock_manager.X;
  Alcotest.(check bool) "exclusive now" false
    (Lock_manager.try_lock lm (tid 2) (rec_name 3) Lock_manager.S);
  (* Count is 2: S + upgrade. *)
  Lock_manager.unlock lm (tid 1) (rec_name 3);
  Lock_manager.unlock lm (tid 1) (rec_name 3);
  Alcotest.(check bool) "fully released" true
    (Lock_manager.try_lock lm (tid 2) (rec_name 3) Lock_manager.S)

let test_upgrade_waits_for_other_readers () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 4) Lock_manager.S;
  Lock_manager.lock lm (tid 2) (rec_name 4) Lock_manager.S;
  let upgraded = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Lock_manager.lock lm (tid 1) (rec_name 4) Lock_manager.X;
        Atomic.set upgraded true)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.05 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "upgrade waits" false (Atomic.get upgraded);
  Lock_manager.unlock lm (tid 2) (rec_name 4);
  Domain.join d;
  Alcotest.(check bool) "upgrade granted" true (Atomic.get upgraded)

let test_deadlock_two_txns () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 10) Lock_manager.X;
  Lock_manager.lock lm (tid 2) (rec_name 11) Lock_manager.X;
  let d =
    Domain.spawn (fun () ->
        (* T2 waits for T1's lock. *)
        Lock_manager.lock lm (tid 2) (rec_name 10) Lock_manager.S;
        Lock_manager.release_all lm (tid 2))
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Lock_manager.blocked_count lm = 0 && Gist_util.Clock.elapsed_s t0 < 5.0 do
    Thread.yield ()
  done;
  (* T1 requesting T2's lock closes the cycle: T1 must be the victim. *)
  Alcotest.(check bool) "deadlock raised at requester" true
    (match Lock_manager.lock lm (tid 1) (rec_name 11) Lock_manager.S with
    | () -> false
    | exception Lock_manager.Deadlock v -> Txn_id.equal v (tid 1));
  Lock_manager.release_all lm (tid 1);
  Domain.join d;
  Alcotest.(check int) "one deadlock counted" 1 (Lock_manager.deadlock_count lm)

let test_deadlock_three_txns () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 20) Lock_manager.X;
  Lock_manager.lock lm (tid 2) (rec_name 21) Lock_manager.X;
  Lock_manager.lock lm (tid 3) (rec_name 22) Lock_manager.X;
  let d2 =
    Domain.spawn (fun () ->
        try
          Lock_manager.lock lm (tid 2) (rec_name 20) Lock_manager.S;
          Lock_manager.release_all lm (tid 2)
        with Lock_manager.Deadlock _ -> Lock_manager.release_all lm (tid 2))
  in
  let d3 =
    Domain.spawn (fun () ->
        try
          Lock_manager.lock lm (tid 3) (rec_name 21) Lock_manager.S;
          Lock_manager.release_all lm (tid 3)
        with Lock_manager.Deadlock _ -> Lock_manager.release_all lm (tid 3))
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Lock_manager.blocked_count lm < 2 && Gist_util.Clock.elapsed_s t0 < 5.0 do
    Thread.yield ()
  done;
  (* T1 → T3 closes a three-party cycle. *)
  Alcotest.(check bool) "3-cycle detected" true
    (match Lock_manager.lock lm (tid 1) (rec_name 22) Lock_manager.S with
    | () -> false
    | exception Lock_manager.Deadlock _ -> true);
  Lock_manager.release_all lm (tid 1);
  Domain.join d2;
  Domain.join d3

let test_copy_holders () =
  (* §10.3: a split copies the original node's signaling locks to the new
     sibling, including hold counts. *)
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (node_name 1) Lock_manager.S;
  Lock_manager.lock lm (tid 1) (node_name 1) Lock_manager.S;
  Lock_manager.lock lm (tid 2) (node_name 1) Lock_manager.S;
  Lock_manager.copy_holders lm ~src:(node_name 1) ~dst:(node_name 2);
  Alcotest.(check int) "both holders copied" 2
    (List.length (Lock_manager.holders lm (node_name 2)));
  (* Deleter's conditional X on the sibling must fail. *)
  Alcotest.(check bool) "sibling protected" false
    (Lock_manager.try_lock lm (tid 9) (node_name 2) Lock_manager.X);
  (* Counts copied: two unlocks needed for t1. *)
  Lock_manager.unlock lm (tid 1) (node_name 2);
  Alcotest.(check bool) "t1 still holds after one unlock" true
    (Lock_manager.held lm (tid 1) (node_name 2));
  Lock_manager.unlock lm (tid 1) (node_name 2);
  Lock_manager.unlock lm (tid 2) (node_name 2);
  Alcotest.(check bool) "sibling free" true
    (Lock_manager.try_lock lm (tid 9) (node_name 2) Lock_manager.X)

let test_release_all_except () =
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (node_name 1) Lock_manager.S;
  Lock_manager.lock lm (tid 1) (node_name 2) Lock_manager.S;
  Lock_manager.lock lm (tid 1) (rec_name 1) Lock_manager.X;
  Lock_manager.release_all_except lm (tid 1) ~keep:(function
    | Lock_manager.Node _ -> true
    | _ -> false);
  Alcotest.(check bool) "node locks kept" true (Lock_manager.held lm (tid 1) (node_name 1));
  Alcotest.(check bool) "record lock dropped" false (Lock_manager.held lm (tid 1) (rec_name 1));
  Lock_manager.release_all lm (tid 1);
  Alcotest.(check int) "nothing left" 0 (List.length (Lock_manager.held_names lm (tid 1)))

let test_fifo_fairness () =
  (* A queued X waiter must not be overtaken by later S requests. *)
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 30) Lock_manager.S;
  let x_granted = Atomic.make false in
  let dx =
    Domain.spawn (fun () ->
        Lock_manager.lock lm (tid 2) (rec_name 30) Lock_manager.X;
        Atomic.set x_granted true;
        Lock_manager.release_all lm (tid 2))
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Lock_manager.blocked_count lm = 0 && Gist_util.Clock.elapsed_s t0 < 5.0 do
    Thread.yield ()
  done;
  (* Late S must queue behind the X waiter, not sneak past it. *)
  Alcotest.(check bool) "late S not granted instantly" false
    (Lock_manager.try_lock lm (tid 3) (rec_name 30) Lock_manager.S);
  Lock_manager.unlock lm (tid 1) (rec_name 30);
  Domain.join dx;
  Alcotest.(check bool) "X got its turn" true (Atomic.get x_granted)

let test_stress_no_lost_grants () =
  let lm = Lock_manager.create () in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let me = tid (100 + d) in
            for _ = 1 to 2500 do
              Lock_manager.lock lm me (rec_name 50) Lock_manager.X;
              counter := !counter + 1;
              Lock_manager.unlock lm me (rec_name 50)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "X lock mutual exclusion" 10_000 !counter

let test_upgrade_deadlock () =
  (* Two S holders both upgrading: a guaranteed cycle the detector must
     break (classic conversion deadlock). *)
  let lm = Lock_manager.create () in
  Lock_manager.lock lm (tid 1) (rec_name 40) Lock_manager.S;
  Lock_manager.lock lm (tid 2) (rec_name 40) Lock_manager.S;
  let d =
    Domain.spawn (fun () ->
        match Lock_manager.lock lm (tid 2) (rec_name 40) Lock_manager.X with
        | () -> `Upgraded
        | exception Lock_manager.Deadlock _ ->
          Lock_manager.release_all lm (tid 2);
          `Victim)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Lock_manager.blocked_count lm = 0 && Gist_util.Clock.elapsed_s t0 < 5.0 do
    Thread.yield ()
  done;
  let mine =
    match Lock_manager.lock lm (tid 1) (rec_name 40) Lock_manager.X with
    | () -> `Upgraded
    | exception Lock_manager.Deadlock _ ->
      Lock_manager.release_all lm (tid 1);
      `Victim
  in
  let theirs = Domain.join d in
  Alcotest.(check bool) "exactly one upgrade wins" true
    ((mine = `Upgraded && theirs = `Victim) || (mine = `Victim && theirs = `Upgraded));
  Lock_manager.release_all lm (tid 1);
  Lock_manager.release_all lm (tid 2)

let suite =
  [
    Alcotest.test_case "compatibility matrix" `Quick test_compatibility;
    Alcotest.test_case "reentrancy counting" `Quick test_reentrancy_counting;
    Alcotest.test_case "blocking grant" `Quick test_blocking_grant;
    Alcotest.test_case "upgrade S->X" `Quick test_upgrade;
    Alcotest.test_case "upgrade waits for readers" `Quick test_upgrade_waits_for_other_readers;
    Alcotest.test_case "deadlock: 2 txns" `Quick test_deadlock_two_txns;
    Alcotest.test_case "deadlock: 3 txns" `Quick test_deadlock_three_txns;
    Alcotest.test_case "copy holders (signaling locks)" `Quick test_copy_holders;
    Alcotest.test_case "release all except" `Quick test_release_all_except;
    Alcotest.test_case "FIFO fairness" `Quick test_fifo_fairness;
    Alcotest.test_case "stress: no lost grants" `Quick test_stress_no_lost_grants;
    Alcotest.test_case "upgrade deadlock (conversion)" `Quick test_upgrade_deadlock;
  ]
