(* Repeatable read / phantom-prevention tests (§4, experiment E5).

   Each scenario runs the blocked party in its own domain and asserts on
   observable ordering: a conflicting operation must not complete while the
   transaction it conflicts with is still active, and must complete once
   that transaction ends. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let keys results = results |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare

(* Wait (bounded) until [p ()]; true if it became true. *)
let eventually ?(timeout_s = 5.0) p =
  let t0 = Gist_util.Clock.now_ns () in
  let rec loop () =
    if p () then true
    else if Gist_util.Clock.elapsed_s t0 > timeout_s then false
    else begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()

(* Spawn [work] in a domain; returns a flag that flips when it finishes and
   the join handle. *)
let spawn_tracked work =
  let done_flag = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        work ();
        Atomic.set done_flag true)
  in
  (done_flag, d)

let assert_still_blocked ~ms flag label =
  (* Give the domain a real chance to finish if it wrongly could. *)
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < Float.of_int ms /. 1000.0 do
    Thread.yield ()
  done;
  Alcotest.(check bool) label false (Atomic.get flag)

let test_phantom_insert_blocked () =
  (* T1 scans [100, 200] (empty). T2's insert of 150 must block until T1
     ends; T1's re-scan must still be empty. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i)) [ 1; 50; 300; 400 ];
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "first scan empty" [] (keys (Gist.search t t1 (B.range 100 200)));
  let flag, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        Gist.insert t t2 ~key:(B.key 150) ~rid:(rid 150);
        Txn.commit db.Db.txns t2)
  in
  assert_still_blocked ~ms:100 flag "phantom insert blocked while scanner active";
  Alcotest.(check (list int)) "repeatable: rescan still empty" []
    (keys (Gist.search t t1 (B.range 100 200)));
  Txn.commit db.Db.txns t1;
  Alcotest.(check bool) "insert completes after scanner commits" true
    (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  let t3 = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "insert landed" [ 150 ] (keys (Gist.search t t3 (B.range 100 200)));
  Txn.commit db.Db.txns t3

let test_no_phantom_without_conflict () =
  (* An insert outside the scanned range must NOT block. *)
  let db, t = make () in
  let t1 = Txn.begin_txn db.Db.txns in
  ignore (Gist.search t t1 (B.range 100 200));
  let flag, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        Gist.insert t t2 ~key:(B.key 500) ~rid:(rid 500);
        Txn.commit db.Db.txns t2)
  in
  Alcotest.(check bool) "disjoint insert proceeds" true (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  Txn.commit db.Db.txns t1

let test_scan_blocks_on_uncommitted_insert () =
  (* T2 inserted 150 (uncommitted). T1's scan over the range must block on
     the record lock until T2 ends; commit ⇒ T1 sees it. *)
  let db, t = make () in
  let t2 = Txn.begin_txn db.Db.txns in
  Gist.insert t t2 ~key:(B.key 150) ~rid:(rid 150);
  let result = ref [] in
  let flag, d =
    spawn_tracked (fun () ->
        let t1 = Txn.begin_txn db.Db.txns in
        result := keys (Gist.search t t1 (B.range 100 200));
        Txn.commit db.Db.txns t1)
  in
  assert_still_blocked ~ms:100 flag "scan blocked on uncommitted insert";
  Txn.commit db.Db.txns t2;
  Alcotest.(check bool) "scan completes" true (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  Alcotest.(check (list int)) "scan saw committed insert" [ 150 ] !result

let test_scan_blocks_on_uncommitted_delete () =
  (* Logical deletion (§7): the marked entry keeps scans blocked until the
     deleter ends. Abort ⇒ the scan sees the key (rollback phantom
     avoided). *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  Gist.insert t setup ~key:(B.key 150) ~rid:(rid 150);
  Txn.commit db.Db.txns setup;
  let deleter = Txn.begin_txn db.Db.txns in
  Alcotest.(check bool) "deleted" true (Gist.delete t deleter ~key:(B.key 150) ~rid:(rid 150));
  let result = ref [] in
  let flag, d =
    spawn_tracked (fun () ->
        let t1 = Txn.begin_txn db.Db.txns in
        result := keys (Gist.search t t1 (B.range 100 200));
        Txn.commit db.Db.txns t1)
  in
  assert_still_blocked ~ms:100 flag "scan blocked on uncommitted delete";
  Txn.abort db.Db.txns deleter;
  Alcotest.(check bool) "scan completes after abort" true
    (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  Alcotest.(check (list int)) "rolled-back delete still visible" [ 150 ] !result

let test_delete_blocks_on_returned_record () =
  (* T1 returned record 150; T2's delete must wait for T1 (no lost
     repeatability of T1's reads). *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  Gist.insert t setup ~key:(B.key 150) ~rid:(rid 150);
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "T1 read the record" [ 150 ]
    (keys (Gist.search t t1 (B.range 100 200)));
  let flag, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        ignore (Gist.delete t t2 ~key:(B.key 150) ~rid:(rid 150));
        Txn.commit db.Db.txns t2)
  in
  assert_still_blocked ~ms:100 flag "delete blocked by reader's S lock";
  Alcotest.(check (list int)) "repeatable read" [ 150 ]
    (keys (Gist.search t t1 (B.range 100 200)));
  Txn.commit db.Db.txns t1;
  Alcotest.(check bool) "delete completes" true (eventually (fun () -> Atomic.get flag));
  Domain.join d

let test_predicates_released_at_end () =
  (* Predicate attachments must disappear at end of transaction so later
     inserts are not blocked by ghosts. *)
  let db, t = make () in
  let t1 = Txn.begin_txn db.Db.txns in
  ignore (Gist.search t t1 (B.range 0 1000));
  Alcotest.(check bool) "predicates attached" true
    (Gist_pred.Predicate_manager.total_predicates (Gist.predicate_manager t) > 0);
  Txn.commit db.Db.txns t1;
  Alcotest.(check int) "predicates gone after commit" 0
    (Gist_pred.Predicate_manager.total_predicates (Gist.predicate_manager t));
  (* And an insert into the previously scanned range proceeds immediately. *)
  let t2 = Txn.begin_txn db.Db.txns in
  Gist.insert t t2 ~key:(B.key 500) ~rid:(rid 500);
  Txn.commit db.Db.txns t2

let test_percolation_blocks_pruned_scan_phantom () =
  (* The subtle §4.3 case: T1 scans a range that today maps to a pruned
     subtree (no leaf visit); T2 inserts a key in that range, which expands
     BPs along the path. The percolated predicate must make T2 block. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  (* Two distinct clusters so the tree prunes between them. *)
  for i = 1 to 40 do
    Gist.insert t setup ~key:(B.key i) ~rid:(rid i)
  done;
  for i = 200 to 240 do
    Gist.insert t setup ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  (* Scan the gap: consistent with the root but with no leaf cluster. *)
  Alcotest.(check (list int)) "gap scan empty" [] (keys (Gist.search t t1 (B.range 100 150)));
  let flag, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        Gist.insert t t2 ~key:(B.key 120) ~rid:(rid 120);
        Txn.commit db.Db.txns t2)
  in
  assert_still_blocked ~ms:150 flag "gap insert blocked via percolated predicate";
  Alcotest.(check (list int)) "gap rescan still empty" []
    (keys (Gist.search t t1 (B.range 100 150)));
  Txn.commit db.Db.txns t1;
  Alcotest.(check bool) "gap insert completes" true (eventually (fun () -> Atomic.get flag));
  Domain.join d

let test_scan_insert_deadlock_resolved () =
  (* T1 scans, T2 inserts into the range and blocks on T1's predicate; if
     T1 then re-scans it hits T2's record lock — a genuine cycle the lock
     manager must break by victimizing one side. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i)) [ 10; 20; 30 ];
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  ignore (Gist.search t t1 (B.range 0 100));
  let t2_outcome = ref `Pending in
  let _, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        match Gist.insert t t2 ~key:(B.key 15) ~rid:(rid 15) with
        | () ->
          Txn.commit db.Db.txns t2;
          t2_outcome := `Committed
        | exception Gist_txn.Lock_manager.Deadlock _ ->
          Txn.abort db.Db.txns t2;
          t2_outcome := `Aborted)
  in
  (* Give T2 time to insert the entry and block on T1's predicate. *)
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.1 do
    Thread.yield ()
  done;
  let t1_outcome =
    match keys (Gist.search t t1 (B.range 0 100)) with
    | ks -> `Completed ks
    | exception Gist_txn.Lock_manager.Deadlock _ -> `Deadlocked
  in
  (match t1_outcome with
  | `Deadlocked -> Txn.abort db.Db.txns t1
  | `Completed _ -> Txn.commit db.Db.txns t1);
  Domain.join d;
  (* Nothing may hang, and the outcome must be one of the two sound
     resolutions: the FIFO rule lets T1's rescan skip T2's queued insert
     (repeatable read preserved, T2 commits after T1), or the lock manager
     victimizes one side of the cycle. *)
  let resolved =
    match (t1_outcome, !t2_outcome) with
    | `Completed ks, `Committed ->
      (* FIFO skip: T1's rescan must equal its first scan. *)
      ks = [ 10; 20; 30 ]
    | `Deadlocked, `Committed | `Completed _, `Aborted | `Deadlocked, `Aborted -> true
    | _, `Pending -> false
  in
  Alcotest.(check bool) "cycle resolved soundly" true resolved

let test_read_committed_no_phantom_protection () =
  (* Degree 2: a scan takes no predicates; a concurrent insert into the
     scanned range proceeds immediately and the rescan observes it. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i)) [ 10; 20 ];
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  let first = keys (Gist.search ~isolation:`Read_committed t t1 (B.range 0 100)) in
  Alcotest.(check int) "no predicates attached" 0
    (Gist_pred.Predicate_manager.total_predicates (Gist.predicate_manager t));
  let flag, d =
    spawn_tracked (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        Gist.insert t t2 ~key:(B.key 15) ~rid:(rid 15);
        Txn.commit db.Db.txns t2)
  in
  Alcotest.(check bool) "insert proceeds against RC scan" true
    (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  let second = keys (Gist.search ~isolation:`Read_committed t t1 (B.range 0 100)) in
  Alcotest.(check (list int)) "first scan" [ 10; 20 ] first;
  Alcotest.(check (list int)) "phantom visible at degree 2" [ 10; 15; 20 ] second;
  Txn.commit db.Db.txns t1

let test_read_committed_never_reads_uncommitted () =
  (* Degree 2 still blocks on in-flight writers rather than reading dirty
     data. *)
  let db, t = make () in
  let writer = Txn.begin_txn db.Db.txns in
  Gist.insert t writer ~key:(B.key 5) ~rid:(rid 5);
  let result = ref [] in
  let flag, d =
    spawn_tracked (fun () ->
        let t1 = Txn.begin_txn db.Db.txns in
        result := keys (Gist.search ~isolation:`Read_committed t t1 (B.range 0 100));
        Txn.commit db.Db.txns t1)
  in
  assert_still_blocked ~ms:100 flag "RC scan blocked on uncommitted insert";
  Txn.commit db.Db.txns writer;
  Alcotest.(check bool) "completes after commit" true (eventually (fun () -> Atomic.get flag));
  Domain.join d;
  Alcotest.(check (list int)) "sees only committed data" [ 5 ] !result

let suite =
  [
    Alcotest.test_case "phantom insert blocked" `Quick test_phantom_insert_blocked;
    Alcotest.test_case "disjoint insert not blocked" `Quick test_no_phantom_without_conflict;
    Alcotest.test_case "scan blocks on uncommitted insert" `Quick
      test_scan_blocks_on_uncommitted_insert;
    Alcotest.test_case "scan blocks on uncommitted delete" `Quick
      test_scan_blocks_on_uncommitted_delete;
    Alcotest.test_case "delete blocks on returned record" `Quick
      test_delete_blocks_on_returned_record;
    Alcotest.test_case "predicates released at end" `Quick test_predicates_released_at_end;
    Alcotest.test_case "percolation blocks pruned-scan phantom" `Quick
      test_percolation_blocks_pruned_scan_phantom;
    Alcotest.test_case "scan/insert deadlock resolved" `Quick
      test_scan_insert_deadlock_resolved;
    Alcotest.test_case "read committed: phantoms possible" `Quick
      test_read_committed_no_phantom_protection;
    Alcotest.test_case "read committed: no dirty reads" `Quick
      test_read_committed_never_reads_uncommitted;
  ]
