(* Garbage collection and node deletion tests (§7.1–§7.2, E7/E9). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let load db t n =
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to n do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn

let delete_range db t lo hi =
  let txn = Txn.begin_txn db.Db.txns in
  for i = lo to hi do
    ignore (Gist.delete t txn ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns txn

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

let test_gc_only_committed () =
  let db, t = make () in
  load db t 20;
  let committed_del = Txn.begin_txn db.Db.txns in
  for i = 1 to 5 do
    ignore (Gist.delete t committed_del ~key:(B.key i) ~rid:(rid i))
  done;
  Txn.commit db.Db.txns committed_del;
  let pending_del = Txn.begin_txn db.Db.txns in
  for i = 6 to 10 do
    ignore (Gist.delete t pending_del ~key:(B.key i) ~rid:(rid i))
  done;
  (* Vacuum must collect only the committed five. *)
  Gist.vacuum t;
  Alcotest.(check int) "only committed marks collected" 15 (Gist.entry_count t);
  Txn.abort db.Db.txns pending_del;
  Gist.vacuum t;
  Alcotest.(check int) "aborted marks unmarked, never collected" 15 (Gist.entry_count t);
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "15 live keys" 15 (List.length (Gist.search t txn (B.range 1 20)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_node_deletion_and_reuse () =
  let db, t = make () in
  load db t 300;
  let leaves_before = Gist.leaf_count t in
  delete_range db t 1 250;
  Gist.vacuum t;
  let leaves_after = Gist.leaf_count t in
  Alcotest.(check bool)
    (Printf.sprintf "leaves shrank (%d -> %d)" leaves_before leaves_after)
    true
    (leaves_after < leaves_before);
  check_tree t;
  (* Freed pages are reused by new splits. *)
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  let disk_pages_before = Gist_storage.Disk.page_count db.Db.disk in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1000 to 1200 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Gist_storage.Buffer_pool.flush_all db.Db.pool;
  let disk_pages_after = Gist_storage.Disk.page_count db.Db.disk in
  Alcotest.(check bool)
    (Printf.sprintf "page reuse bounded disk growth (%d -> %d)" disk_pages_before
       disk_pages_after)
    true
    (disk_pages_after - disk_pages_before < 80);
  check_tree t

let test_vacuum_blocked_by_signaling_lock () =
  (* A node referenced from a live scan position (signaling lock) must not
     be deleted; once the transaction ends it can be. *)
  let db, t = make () in
  load db t 100;
  delete_range db t 1 100;
  (* A scanner that has everything on its stack: search with a predicate
     that matches all BPs but whose txn is still open. *)
  let scanner = Txn.begin_txn db.Db.txns in
  ignore (Gist.search t scanner (B.range 1 100));
  let before = Gist.leaf_count t in
  ignore before;
  Gist.vacuum t;
  (* GC of entries is fine, but scanner still holds its locks... those were
     released at operation end in this implementation (except insert
     targets), so deletion may proceed. What must hold regardless: *)
  check_tree t;
  Txn.commit db.Db.txns scanner;
  Gist.vacuum t;
  Alcotest.(check int) "eventually empty but for the root chain" 0 (Gist.entry_count t);
  check_tree t

let test_insert_target_protected_until_commit () =
  (* §7.2's exception: the signaling lock on an insert's target leaf is
     retained until end of transaction, so the leaf cannot be deleted even
     if a concurrent delete+GC empties it. *)
  let db, t = make () in
  load db t 100;
  let inserter = Txn.begin_txn db.Db.txns in
  Gist.insert t inserter ~key:(B.key 500) ~rid:(rid 500);
  (* Another transaction deletes it... it can't: record X-locked. Instead
     delete neighbors and try to vacuum the target leaf empty. *)
  delete_range db t 90 100;
  Gist.vacuum t;
  check_tree t;
  (* The inserting transaction can still roll back cleanly — its logical
     undo walks the (intact) chain. *)
  Txn.abort db.Db.txns inserter;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "aborted insert gone" 0 (List.length (Gist.search t txn (B.key 500)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_vacuum_after_recovery () =
  (* Marks from pre-crash committed deleters are collectable post-restart. *)
  let db, t = make () in
  load db t 60;
  delete_range db t 1 30;
  Gist_wal.Log_manager.force_all db.Db.log;
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  Gist.vacuum t';
  Alcotest.(check int) "committed pre-crash deletes collected" 30 (Gist.entry_count t');
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "30 live" 30 (List.length (Gist.search t' txn (B.range 1 60)));
  Txn.commit db'.Db.txns txn;
  check_tree t'

let test_commit_lsn_fast_path () =
  (* With no active transactions, every page predates the Commit_LSN and GC
     needs no per-entry committed checks. Indirectly validated: vacuum
     collects everything in one pass. *)
  let db, t = make () in
  load db t 50;
  delete_range db t 1 50;
  Alcotest.(check bool) "commit_lsn beyond all pages" true
    (Gist_wal.Lsn.( < ) Gist_wal.Lsn.nil (Txn.commit_lsn db.Db.txns));
  Gist.vacuum t;
  Alcotest.(check int) "all collected" 0 (Gist.entry_count t);
  check_tree t

let suite =
  [
    Alcotest.test_case "gc only committed deletes" `Quick test_gc_only_committed;
    Alcotest.test_case "node deletion and page reuse" `Quick test_node_deletion_and_reuse;
    Alcotest.test_case "vacuum under open scan txn" `Quick test_vacuum_blocked_by_signaling_lock;
    Alcotest.test_case "insert target protected until commit" `Quick
      test_insert_target_protected_until_commit;
    Alcotest.test_case "vacuum after recovery" `Quick test_vacuum_after_recovery;
    Alcotest.test_case "commit-LSN fast path" `Quick test_commit_lsn_fast_path;
  ]
