(* Unit tests for the experiment baselines. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Coarse = Gist_baseline.Coarse_lock
module Nolink = Gist_baseline.Nolink
module Pure = Gist_baseline.Pure_predicate

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let make ?(n = 0) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  if n > 0 then begin
    let txn = Txn.begin_txn db.Db.txns in
    for i = 1 to n do
      Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
    done;
    Txn.commit db.Db.txns txn
  end;
  (db, t)

let test_coarse_semantics () =
  (* The coarse wrapper must be functionally identical to the tree. *)
  let db, t = make ~n:100 () in
  let c = Coarse.wrap t in
  let txn = Txn.begin_txn db.Db.txns in
  Coarse.insert c txn ~key:(B.key 500) ~rid:(rid 500);
  Alcotest.(check int) "insert visible" 1 (List.length (Coarse.search c txn (B.key 500)));
  Alcotest.(check bool) "delete works" true (Coarse.delete c txn ~key:(B.key 500) ~rid:(rid 500));
  Alcotest.(check int) "full scan" 100 (List.length (Coarse.search c txn (B.range 1 100)));
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "same underlying tree" true (Coarse.tree c == t)

let test_coarse_mutual_exclusion () =
  (* Writers through the wrapper serialize on the global latch. *)
  let db, t = make () in
  let c = Coarse.wrap t in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              let k = (d * 1000) + i in
              let txn = Txn.begin_txn db.Db.txns in
              Coarse.insert c txn ~key:(B.key k) ~rid:(rid k);
              Txn.commit db.Db.txns txn
            done))
  in
  List.iter Domain.join domains;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "all inserts landed" 400 (List.length (Coarse.search c txn (B.range 0 5000)));
  Txn.commit db.Db.txns txn;
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent" true (Tree_check.ok report)

let test_nolink_quiescent_equivalence () =
  (* With no concurrency, both dirty-read variants agree with the real
     search. *)
  let db, t = make ~n:200 () in
  let txn = Txn.begin_txn db.Db.txns in
  let reference =
    Gist.search t txn (B.range 50 150) |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db.Db.txns txn;
  let sort l = l |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare in
  Alcotest.(check (list int)) "nolink agrees when quiescent" reference
    (sort (Nolink.search t (B.range 50 150)));
  Alcotest.(check (list int)) "link variant agrees" reference
    (sort (Nolink.search_with_links t (B.range 50 150)))

let test_nolink_skips_uncommitted_marks () =
  let db, t = make ~n:10 () in
  let del = Txn.begin_txn db.Db.txns in
  ignore (Gist.delete t del ~key:(B.key 5) ~rid:(rid 5));
  (* Dirty reads skip marked entries without blocking. *)
  Alcotest.(check int) "marked entry skipped" 9
    (List.length (Nolink.search_with_links t (B.range 1 10)));
  Txn.abort db.Db.txns del

let test_pure_predicate_table () =
  let pure = Pure.create () in
  let t1 = Gist_util.Txn_id.of_int 1 and t2 = Gist_util.Txn_id.of_int 2 in
  Pure.register pure ~owner:t1 (B.range 0 10);
  Pure.register pure ~owner:t2 (B.range 20 30);
  Alcotest.(check int) "size" 2 (Pure.size pure);
  Alcotest.(check (list int)) "conflict owners" [ 1 ]
    (List.map Gist_util.Txn_id.to_int
       (Pure.conflicting pure ~consistent:B.ext.Gist_core.Ext.consistent ~key:(B.key 5)
          ~exclude:Gist_util.Txn_id.none));
  Alcotest.(check int) "self excluded" 0
    (List.length
       (Pure.conflicting pure ~consistent:B.ext.Gist_core.Ext.consistent ~key:(B.key 5)
          ~exclude:t1));
  Pure.remove_txn pure t1;
  Alcotest.(check int) "removed" 1 (Pure.size pure);
  Alcotest.(check int) "no conflicts left for 5" 0
    (List.length
       (Pure.conflicting pure ~consistent:B.ext.Gist_core.Ext.consistent ~key:(B.key 5)
          ~exclude:Gist_util.Txn_id.none))

let test_nolink_loses_keys_under_splits () =
  (* The Figure-1 phenomenon itself, deterministically: pause a no-link
     scan before it visits the target leaf, split that leaf, resume — the
     moved keys are lost. (The hook-driven twin of this test with the link
     protocol in test_concurrency.ml finds all keys.) *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  List.iter
    (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i))
    [ 1; 2; 3; 4; 5; 6; 7; 9; 11; 13; 15; 17; 19 ];
  Txn.commit db.Db.txns setup;
  (* No-link search is synchronous; emulate the pause by splitting between
     two runs against a stale stack — here simply: capture result before
     and after heavy splits; the *final* no-link scan on a quiescent tree
     is complete, so instead assert the racing behavior statistically. *)
  let lost = ref false in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Gist_util.Xoshiro.create 9 in
        let seq = ref 0 in
        while not (Atomic.get stop) do
          incr seq;
          let k = 100 + Gist_util.Xoshiro.int rng 10_000 in
          let txn = Txn.begin_txn db.Db.txns in
          Gist.insert t txn ~key:(B.key k) ~rid:(Rid.make ~page:7 ~slot:!seq);
          Txn.commit db.Db.txns txn
        done)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while (not !lost) && Gist_util.Clock.elapsed_s t0 < 3.0 do
    let found =
      Nolink.search t (B.range 1 19)
      |> List.filter (fun (k, _) -> B.key_value k < 100)
      |> List.length
    in
    if found < 13 then lost := true
  done;
  Atomic.set stop true;
  Domain.join writer;
  (* This is probabilistic; on a loaded machine the window may not hit in
     time. Only assert the invariant that matters unconditionally: *)
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree stays consistent regardless" true (Tree_check.ok report);
  if not !lost then
    Printf.printf "  (note: Figure-1 race window not hit in 3s on this run)\n"

let suite =
  [
    Alcotest.test_case "coarse wrapper semantics" `Quick test_coarse_semantics;
    Alcotest.test_case "coarse mutual exclusion" `Quick test_coarse_mutual_exclusion;
    Alcotest.test_case "nolink quiescent equivalence" `Quick test_nolink_quiescent_equivalence;
    Alcotest.test_case "nolink skips uncommitted marks" `Quick
      test_nolink_skips_uncommitted_marks;
    Alcotest.test_case "pure predicate table" `Quick test_pure_predicate_table;
    Alcotest.test_case "nolink under splits" `Quick test_nolink_loses_keys_under_splits;
  ]
