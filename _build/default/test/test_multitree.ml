(* Multiple GiSTs — of different access methods — in one database
   environment: shared WAL, buffer pool, lock and transaction managers;
   cross-tree transactions; and multi-extension restart recovery. *)

open Gist_core
module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module RD = Gist_ams.Rd_tree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid ~ns i = Rid.make ~page:ns ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 256; page_size = 2048 }

let check t = Alcotest.(check bool) "tree consistent" true (Tree_check.ok (Tree_check.check t))

let test_two_trees_one_txn () =
  let db = Db.create ~config () in
  let names = Gist.create db B.ext ~empty_bp:B.Empty () in
  let places = Gist.create db R.ext ~empty_bp:R.Empty () in
  (* One transaction updates both indexes atomically. *)
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert names txn ~key:(B.key i) ~rid:(rid ~ns:1 i);
    Gist.insert places txn
      ~key:(R.point (Float.of_int i) (Float.of_int (i * 2)))
      ~rid:(rid ~ns:2 i)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "btree rows" 100 (List.length (Gist.search names txn (B.range 1 100)));
  Alcotest.(check int) "rtree rows" 100
    (List.length (Gist.search places txn (R.rect 0.0 0.0 200.0 400.0)));
  Txn.commit db.Db.txns txn;
  check names;
  check places

let test_cross_tree_abort () =
  (* An abort must undo updates in BOTH trees, dispatching each record's
     undo through the right extension. *)
  let db = Db.create ~config () in
  let names = Gist.create db B.ext ~empty_bp:B.Empty () in
  let places = Gist.create db R.ext ~empty_bp:R.Empty () in
  let setup = Txn.begin_txn db.Db.txns in
  for i = 1 to 30 do
    Gist.insert names setup ~key:(B.key i) ~rid:(rid ~ns:1 i);
    Gist.insert places setup ~key:(R.point (Float.of_int i) 0.0) ~rid:(rid ~ns:2 i)
  done;
  Txn.commit db.Db.txns setup;
  let loser = Txn.begin_txn db.Db.txns in
  for i = 31 to 90 do
    Gist.insert names loser ~key:(B.key i) ~rid:(rid ~ns:1 i);
    Gist.insert places loser ~key:(R.point (Float.of_int i) 5.0) ~rid:(rid ~ns:2 i)
  done;
  ignore (Gist.delete names loser ~key:(B.key 3) ~rid:(rid ~ns:1 3));
  Txn.abort db.Db.txns loser;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "btree rolled back" 30
    (List.length (Gist.search names txn (B.range 1 1000)));
  Alcotest.(check int) "rtree rolled back" 30
    (List.length (Gist.search places txn (R.rect (-1.0) (-1.0) 1000.0 1000.0)));
  Txn.commit db.Db.txns txn;
  check names;
  check places

let test_multitree_crash_recovery () =
  let db = Db.create ~config () in
  let names = Gist.create db B.ext ~empty_bp:B.Empty () in
  let places = Gist.create db R.ext ~empty_bp:R.Empty () in
  let docs = Gist.create db RD.ext ~empty_bp:RD.Empty () in
  let committed = Txn.begin_txn db.Db.txns in
  for i = 1 to 60 do
    Gist.insert names committed ~key:(B.key i) ~rid:(rid ~ns:1 i);
    Gist.insert places committed
      ~key:(R.point (Float.of_int i) (Float.of_int i))
      ~rid:(rid ~ns:2 i);
    Gist.insert docs committed ~key:(RD.set [ i; i + 100; i mod 7 ]) ~rid:(rid ~ns:3 i)
  done;
  Txn.commit db.Db.txns committed;
  (* Losers across all three trees, then crash. *)
  let loser = Txn.begin_txn db.Db.txns in
  for i = 61 to 120 do
    Gist.insert names loser ~key:(B.key i) ~rid:(rid ~ns:1 i);
    Gist.insert places loser ~key:(R.point 0.5 (Float.of_int i)) ~rid:(rid ~ns:2 i);
    Gist.insert docs loser ~key:(RD.set [ i ]) ~rid:(rid ~ns:3 i)
  done;
  Gist_wal.Log_manager.force_all db.Db.log;
  let roots = (Gist.root names, Gist.root places, Gist.root docs) in
  let db' = Db.crash db in
  Recovery.restart_multi db' [ Ext.Packed B.ext; Ext.Packed R.ext; Ext.Packed RD.ext ];
  let r1, r2, r3 = roots in
  let names' = Gist.open_existing db' B.ext ~root:r1 () in
  let places' = Gist.open_existing db' R.ext ~root:r2 () in
  let docs' = Gist.open_existing db' RD.ext ~root:r3 () in
  let txn = Txn.begin_txn db'.Db.txns in
  Alcotest.(check int) "btree recovered exactly committed" 60
    (List.length (Gist.search names' txn (B.range 1 1000)));
  Alcotest.(check int) "rtree recovered exactly committed" 60
    (List.length (Gist.search places' txn (R.rect (-1.0) (-1.0) 1000.0 1000.0)));
  (* The RD overlap query [0..6] matches every doc whose i mod 7 is set. *)
  Alcotest.(check int) "rd-tree recovered exactly committed" 60
    (List.length (Gist.search docs' txn (RD.set [ 0; 1; 2; 3; 4; 5; 6 ])));
  Txn.commit db'.Db.txns txn;
  check names';
  check places';
  check docs'

let test_concurrent_trees () =
  (* Domains hammer different trees in the same environment: shared
     substrate, disjoint data. *)
  let db = Db.create ~config () in
  let names = Gist.create db B.ext ~empty_bp:B.Empty () in
  let places = Gist.create db R.ext ~empty_bp:R.Empty () in
  let worker_b =
    Domain.spawn (fun () ->
        for i = 1 to 400 do
          let txn = Txn.begin_txn db.Db.txns in
          Gist.insert names txn ~key:(B.key i) ~rid:(rid ~ns:1 i);
          Txn.commit db.Db.txns txn
        done)
  in
  let worker_r =
    Domain.spawn (fun () ->
        let rng = Gist_util.Xoshiro.create 44 in
        for i = 1 to 400 do
          let txn = Txn.begin_txn db.Db.txns in
          Gist.insert places txn
            ~key:(R.point (Gist_util.Xoshiro.float rng 100.0) (Gist_util.Xoshiro.float rng 100.0))
            ~rid:(rid ~ns:2 i);
          Txn.commit db.Db.txns txn
        done)
  in
  Domain.join worker_b;
  Domain.join worker_r;
  Alcotest.(check int) "btree complete" 400 (Gist.entry_count names);
  Alcotest.(check int) "rtree complete" 400 (Gist.entry_count places);
  check names;
  check places

let suite =
  [
    Alcotest.test_case "two trees, one transaction" `Quick test_two_trees_one_txn;
    Alcotest.test_case "cross-tree abort" `Quick test_cross_tree_abort;
    Alcotest.test_case "multi-tree crash recovery" `Quick test_multitree_crash_recovery;
    Alcotest.test_case "concurrent trees" `Quick test_concurrent_trees;
  ]
