(* Tests for the experiment harness itself: the driver's accounting, the
   workload generators' contracts, and the table formatter. *)

open Gist_core
open Gist_harness
module B = Gist_ams.Btree_ext
module Txn = Gist_txn.Txn_manager

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let test_driver_counts_and_duration () =
  let counter = Atomic.make 0 in
  let stats =
    Driver.run ~domains:2 ~duration_s:0.2 ~seed:1 (fun ~worker:_ ~rng:_ ->
        Atomic.incr counter)
  in
  Alcotest.(check int) "driver ops = body invocations" (Atomic.get counter) stats.Driver.ops;
  Alcotest.(check bool) "respected the deadline (within slack)" true
    (stats.Driver.elapsed_s >= 0.2 && stats.Driver.elapsed_s < 2.0);
  Alcotest.(check bool) "throughput consistent" true
    (Float.abs (stats.Driver.throughput -. (Float.of_int stats.Driver.ops /. stats.Driver.elapsed_s))
    < 1.0);
  Alcotest.(check int) "latency samples = ops" stats.Driver.ops
    (Gist_util.Stats.Histogram.count stats.Driver.latency)

let test_driver_rng_streams_deterministic () =
  (* Same seed -> same per-worker streams (first value recorded). *)
  let capture () =
    let seen = Array.make 2 0L in
    let once = Array.make 2 false in
    ignore
      (Driver.run ~domains:2 ~duration_s:0.05 ~seed:42 (fun ~worker ~rng ->
           if not once.(worker) then begin
             once.(worker) <- true;
             seen.(worker) <- Gist_util.Xoshiro.next64 rng
           end));
    seen
  in
  let a = capture () and b = capture () in
  Alcotest.(check bool) "per-worker streams reproducible" true (a = b);
  Alcotest.(check bool) "workers get distinct streams" true (a.(0) <> a.(1))

let test_driver_txn_retry () =
  (* The transactional driver commits each successful body; deliberately
     conflicting bodies must retry, not crash. *)
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  Workload.Btree.preload db t ~n:50;
  let stats =
    Driver.run_txn_ops ~db ~domains:2 ~duration_s:0.2 ~seed:9 (fun ~worker:_ ~rng ~txn ->
        (* Everyone reads and rewrites the same hot keys. *)
        let k = Gist_util.Xoshiro.int rng 10 in
        ignore (Gist.search t txn (B.range k (k + 3)));
        if Gist.delete t txn ~key:(B.key k) ~rid:(Workload.Btree.rid_of_key ~worker:0 k) then
          Gist.insert t txn ~key:(B.key k) ~rid:(Workload.Btree.rid_of_key ~worker:0 k))
  in
  Alcotest.(check bool) "made progress" true (stats.Driver.ops > 0);
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent after contention" true (Tree_check.ok report);
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "no lost keys" 50 (List.length (Gist.search t txn (B.range 0 49)));
  Txn.commit db.Db.txns txn

let test_workload_generator_contracts () =
  let rng = Gist_util.Xoshiro.create 5 in
  let searches = ref 0 and inserts = ref 0 and deletes = ref 0 in
  let seen_rids = Hashtbl.create 64 in
  for _ = 1 to 2_000 do
    match Workload.Btree.mixed ~worker:3 ~space:1_000 ~read_pct:50 ~scan_width:10 ~theta:0.0 rng with
    | Workload.Btree.Search (B.Range { lo; hi }) ->
      incr searches;
      Alcotest.(check bool) "scan bounds ordered" true (lo <= hi)
    | Workload.Btree.Search _ -> incr searches
    | Workload.Btree.Insert (_, rid) ->
      incr inserts;
      Alcotest.(check bool) "fresh rid per insert" false (Hashtbl.mem seen_rids rid);
      Hashtbl.replace seen_rids rid ()
    | Workload.Btree.Delete _ -> incr deletes
  done;
  Alcotest.(check bool) "read share near 50%" true (!searches > 800 && !searches < 1_200);
  Alcotest.(check bool) "some deletes generated" true (!deletes > 0)

let test_workload_apply_runs () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  Workload.Btree.preload db t ~n:100;
  let rng = Gist_util.Xoshiro.create 77 in
  let txn = Txn.begin_txn db.Db.txns in
  for _ = 1 to 300 do
    Workload.Btree.apply t txn
      (Workload.Btree.mixed ~worker:1 ~space:100 ~read_pct:30 ~scan_width:5 ~theta:0.5 rng)
  done;
  Txn.commit db.Db.txns txn;
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent after applied workload" true (Tree_check.ok report)

let test_rtree_workload () =
  let db = Db.create ~config:{ config with Db.page_size = 2048 } () in
  let t = Gist.create db Gist_ams.Rtree_ext.ext ~empty_bp:Gist_ams.Rtree_ext.Empty () in
  Workload.Rtree.preload db t ~n:500 ~extent:100.0 ~seed:3;
  Alcotest.(check int) "preloaded" 500 (Gist.entry_count t);
  let rng = Gist_util.Xoshiro.create 4 in
  let txn = Txn.begin_txn db.Db.txns in
  for _ = 1 to 200 do
    Workload.Rtree.apply t txn (Workload.Rtree.mixed ~worker:2 ~extent:100.0 ~read_pct:50 ~window:5.0 rng)
  done;
  Txn.commit db.Db.txns txn;
  let report = Tree_check.check t in
  Alcotest.(check bool) "rtree consistent" true (Tree_check.ok report)

let suite =
  [
    Alcotest.test_case "driver counts and duration" `Quick test_driver_counts_and_duration;
    Alcotest.test_case "driver rng determinism" `Quick test_driver_rng_streams_deterministic;
    Alcotest.test_case "driver txn retry under contention" `Quick test_driver_txn_retry;
    Alcotest.test_case "workload generator contracts" `Quick test_workload_generator_contracts;
    Alcotest.test_case "workload apply" `Quick test_workload_apply_runs;
    Alcotest.test_case "rtree workload" `Quick test_rtree_workload;
  ]
