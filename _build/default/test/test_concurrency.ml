(* Multicore concurrency tests (experiments E1/E2 correctness side).

   - A deterministic replay of Figures 1 and 2: a search is paused between
     reading the parent and visiting the target leaf while an insert splits
     that leaf; with the NSN/rightlink protocol the search must still find
     every key.
   - Multi-domain stress runs over disjoint and overlapping key ranges,
     with deadlock-abort-retry, followed by full invariant checks. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 512; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

(* --- Figure 1 / Figure 2 deterministic interleaving --- *)

let test_search_survives_concurrent_split () =
  let db, t = make () in
  (* Build a 2-level tree: root with two leaves; leaf B holds the upper
     keys including 7, and is one key away from splitting. *)
  let setup = Txn.begin_txn db.Db.txns in
  List.iter
    (fun i -> Gist.insert t setup ~key:(B.key i) ~rid:(rid i))
    [ 1; 2; 3; 4; 5; 6; 7; 9; 11; 13; 15; 17; 19 ];
  Txn.commit db.Db.txns setup;
  Alcotest.(check bool) "two levels" true (Gist.height t >= 2);
  (* Find the leaf holding key 7. *)
  let searcher_paused = Semaphore.Binary.make false in
  let split_done = Semaphore.Binary.make false in
  let in_searcher = Atomic.make false in
  let paused_once = Atomic.make false in
  Gist.set_hook t (fun ev ->
      if
        Atomic.get in_searcher
        && String.length ev > 13
        && String.sub ev 0 13 = "search:visit:"
        && (not (String.equal ev "search:visit:P1"))
        && not (Atomic.get paused_once)
      then begin
        (* Pause before visiting the first non-root node: the classic
           Figure 1 window. *)
        Atomic.set paused_once true;
        Semaphore.Binary.release searcher_paused;
        Semaphore.Binary.acquire split_done
      end);
  let result = ref [] in
  let searcher =
    Domain.spawn (fun () ->
        Atomic.set in_searcher true;
        let txn = Txn.begin_txn db.Db.txns in
        let r = Gist.search t txn (B.range 1 30) in
        Txn.commit db.Db.txns txn;
        Atomic.set in_searcher false;
        result := List.map (fun (k, _) -> B.key_value k) r)
  in
  (* Wait until the searcher is inside the Figure-1 window, then force
     splits by filling the rightmost leaf. The inserted keys lie *outside*
     the scan range so the inserter does not block on the paused scan's
     predicate (the §4.3 behavior the paper documents) — but the splits
     still relocate scanned keys to new right siblings. *)
  Semaphore.Binary.acquire searcher_paused;
  let inserter = Txn.begin_txn db.Db.txns in
  List.iter
    (fun i -> Gist.insert t inserter ~key:(B.key i) ~rid:(rid i))
    [ 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41; 42; 43; 44; 45 ];
  Txn.commit db.Db.txns inserter;
  Semaphore.Binary.release split_done;
  Domain.join searcher;
  (* The paused search must still see every pre-existing key: the split
     moved some of them right, and the NSN/rightlink protocol compensates
     (Figure 2). The new inserts may or may not be visible — they
     committed mid-scan — but none of the old keys may be lost. *)
  let got = List.sort compare !result in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d not lost across split" k)
        true (List.mem k got))
    [ 1; 2; 3; 4; 5; 6; 7; 9; 11; 13; 15; 17; 19 ];
  check_tree t

(* --- multi-domain stress --- *)

let run_domains n f =
  let domains = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join domains

(* Run [work txn] in a fresh transaction, aborting and retrying on
   deadlock. *)
let rec with_retry db work =
  let txn = Txn.begin_txn db.Db.txns in
  match work txn with
  | v ->
    Txn.commit db.Db.txns txn;
    v
  | exception Lock_manager.Deadlock _ ->
    Txn.abort db.Db.txns txn;
    with_retry db work

let test_parallel_disjoint_inserts () =
  let db, t = make () in
  let n_domains = 4 and per_domain = 400 in
  run_domains n_domains (fun d ->
      for i = 0 to per_domain - 1 do
        let k = (d * 10_000) + i in
        with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k))
      done);
  let txn = Txn.begin_txn db.Db.txns in
  let found = Gist.search t txn (B.range 0 100_000) in
  Txn.commit db.Db.txns txn;
  Alcotest.(check int) "no lost inserts" (n_domains * per_domain) (List.length found);
  check_tree t

let test_parallel_mixed_ops () =
  let db, t = make () in
  (* Preload. *)
  let setup = Txn.begin_txn db.Db.txns in
  for i = 0 to 999 do
    Gist.insert t setup ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns setup;
  (* Each domain owns a disjoint slice and randomly inserts/deletes/scans
     within it; scans over the whole range run concurrently. *)
  let n_domains = 4 in
  let live = Array.init n_domains (fun _ -> Hashtbl.create 64) in
  run_domains n_domains (fun d ->
      let rng = Gist_util.Xoshiro.create (1000 + d) in
      let lo = d * 250 and hi = ((d + 1) * 250) - 1 in
      for k = lo to hi do
        Hashtbl.replace live.(d) k ()
      done;
      for _ = 1 to 200 do
        let k = lo + Gist_util.Xoshiro.int rng 250 in
        match Gist_util.Xoshiro.int rng 3 with
        | 0 ->
          if not (Hashtbl.mem live.(d) k) then begin
            with_retry db (fun txn -> Gist.insert t txn ~key:(B.key k) ~rid:(rid k));
            Hashtbl.replace live.(d) k ()
          end
        | 1 ->
          if Hashtbl.mem live.(d) k then begin
            ignore
              (with_retry db (fun txn -> Gist.delete t txn ~key:(B.key k) ~rid:(rid k)));
            Hashtbl.remove live.(d) k
          end
        | _ ->
          ignore
            (with_retry db (fun txn -> Gist.search t txn (B.range lo (lo + 20))))
      done);
  let expected =
    Array.to_list live
    |> List.concat_map (fun h -> Hashtbl.fold (fun k () acc -> k :: acc) h [])
    |> List.sort compare
  in
  let txn = Txn.begin_txn db.Db.txns in
  let got =
    Gist.search t txn (B.range 0 2000) |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db.Db.txns txn;
  Alcotest.(check (list int)) "final state matches per-domain journals" expected got;
  check_tree t

let test_parallel_with_vacuum () =
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  for i = 0 to 499 do
    Gist.insert t setup ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns setup;
  let stop = Atomic.make false in
  let vacuumer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Gist.vacuum t;
          Domain.cpu_relax ()
        done)
  in
  run_domains 3 (fun d ->
      let lo = d * 160 in
      for k = lo to lo + 150 do
        ignore (with_retry db (fun txn -> Gist.delete t txn ~key:(B.key k) ~rid:(rid k)))
      done;
      for k = lo to lo + 150 do
        with_retry db (fun txn -> Gist.insert t txn ~key:(B.key (1000 + k)) ~rid:(rid (1000 + k)))
      done);
  Atomic.set stop true;
  Domain.join vacuumer;
  Gist.vacuum t;
  let txn = Txn.begin_txn db.Db.txns in
  let got = Gist.search t txn (B.range 0 3000) |> List.length in
  Txn.commit db.Db.txns txn;
  (* 500 preloaded - 3*151 deleted (ranges 0..150,160..310,320..470 all within 0..479) + 3*151 inserted *)
  Alcotest.(check int) "counts add up" 500 got;
  check_tree t

let test_concurrent_searches_consistent () =
  (* Readers running against a static tree must all see the same answer,
     from many domains at once. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  for i = 0 to 299 do
    Gist.insert t setup ~key:(B.key (2 * i)) ~rid:(rid (2 * i))
  done;
  Txn.commit db.Db.txns setup;
  let failures = Atomic.make 0 in
  run_domains 6 (fun _ ->
      for _ = 1 to 50 do
        let txn = Txn.begin_txn db.Db.txns in
        let n = List.length (Gist.search t txn (B.range 0 598)) in
        Txn.commit db.Db.txns txn;
        if n <> 300 then Atomic.incr failures
      done);
  Alcotest.(check int) "every scan saw all 300 keys" 0 (Atomic.get failures);
  check_tree t

let test_soak_chaos () =
  (* A longer adversarial soak: domains mix searches, inserts, deletes and
     aborts over overlapping ranges while a vacuum domain runs; then crash
     mid-flight and recover. Committed state is tracked per domain in
     disjoint stripes so the final check is exact. *)
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  let n_domains = 4 in
  let committed = Array.init n_domains (fun _ -> Hashtbl.create 128) in
  let stop = Atomic.make false in
  let vacuumer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Gist.vacuum t;
          Domain.cpu_relax ()
        done)
  in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Gist_util.Xoshiro.create (7_000 + d) in
            let stripe = d * 100_000 in
            for _ = 1 to 60 do
              let txn = Txn.begin_txn db.Db.txns in
              let journal = ref [] in
              (try
                 for _ = 1 to 8 do
                   let k = stripe + Gist_util.Xoshiro.int rng 500 in
                   match Gist_util.Xoshiro.int rng 3 with
                   | 0 ->
                     if not (Hashtbl.mem committed.(d) k || List.mem_assoc k !journal) then begin
                       Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
                       journal := (k, `Ins) :: !journal
                     end
                   | 1 ->
                     if Hashtbl.mem committed.(d) k && not (List.mem_assoc k !journal) then
                       if Gist.delete t txn ~key:(B.key k) ~rid:(rid k) then
                         journal := (k, `Del) :: !journal
                   | _ ->
                     ignore (Gist.search t txn (B.range stripe (stripe + 50)))
                 done;
                 if Gist_util.Xoshiro.int rng 5 = 0 then begin
                   Txn.abort db.Db.txns txn
                   (* journal discarded *)
                 end
                 else begin
                   Txn.commit db.Db.txns txn;
                   List.iter
                     (fun (k, op) ->
                       match op with
                       | `Ins -> Hashtbl.replace committed.(d) k ()
                       | `Del -> Hashtbl.remove committed.(d) k)
                     !journal
                 end
               with Gist_txn.Lock_manager.Deadlock _ -> Txn.abort db.Db.txns txn)
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join vacuumer;
  (* Crash with everything durable, restart, verify the union of the
     committed stripes. *)
  Gist_wal.Log_manager.force_all db.Db.log;
  let root = Gist.root t in
  let db' = Db.crash db in
  Recovery.restart db' B.ext;
  let t' = Gist.open_existing db' B.ext ~root () in
  let expected =
    Array.to_list committed
    |> List.concat_map (fun h -> Hashtbl.fold (fun k () acc -> k :: acc) h [])
    |> List.sort compare
  in
  let txn = Txn.begin_txn db'.Db.txns in
  let got =
    Gist.search t' txn (B.range 0 10_000_000)
    |> List.map (fun (k, _) -> B.key_value k)
    |> List.sort compare
  in
  Txn.commit db'.Db.txns txn;
  Alcotest.(check (list int)) "soak: recovered state = committed journals" expected got;
  check_tree t'

let suite =
  [
    Alcotest.test_case "figure 1/2: search survives concurrent split" `Quick
      test_search_survives_concurrent_split;
    Alcotest.test_case "parallel disjoint inserts" `Quick test_parallel_disjoint_inserts;
    Alcotest.test_case "parallel mixed ops" `Quick test_parallel_mixed_ops;
    Alcotest.test_case "parallel ops with concurrent vacuum" `Quick test_parallel_with_vacuum;
    Alcotest.test_case "concurrent searches consistent" `Quick
      test_concurrent_searches_consistent;
    Alcotest.test_case "soak: chaos + crash + recovery" `Slow test_soak_chaos;
  ]
