(* Unique index tests (§8, experiment E10). *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Lock_manager = Gist_txn.Lock_manager

let rid i = Rid.make ~page:1000 ~slot:i

let config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 128; page_size = 1024 }

let make () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~unique:true ~empty_bp:B.Empty () in
  (db, t)

let test_basic_unique () =
  let db, t = make () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 50 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Alcotest.check_raises "duplicate rejected" Gist.Duplicate_key (fun () ->
      Gist.insert t txn ~key:(B.key 25) ~rid:(rid 1025));
  Txn.commit db.Db.txns txn

let test_duplicate_error_repeatable () =
  (* §8: a duplicate error leaves an S lock on the existing record so the
     error repeats — a concurrent delete of that record must block. *)
  let db, t = make () in
  let setup = Txn.begin_txn db.Db.txns in
  Gist.insert t setup ~key:(B.key 7) ~rid:(rid 7);
  Txn.commit db.Db.txns setup;
  let t1 = Txn.begin_txn db.Db.txns in
  Alcotest.check_raises "first duplicate error" Gist.Duplicate_key (fun () ->
      Gist.insert t t1 ~key:(B.key 7) ~rid:(rid 1007));
  let deleter_done = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        ignore (Gist.delete t t2 ~key:(B.key 7) ~rid:(rid 7));
        Txn.commit db.Db.txns t2;
        Atomic.set deleter_done true)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.1 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "delete blocked by duplicate-error S lock" false
    (Atomic.get deleter_done);
  (* The error repeats within the same transaction. *)
  Alcotest.check_raises "error is repeatable" Gist.Duplicate_key (fun () ->
      Gist.insert t t1 ~key:(B.key 7) ~rid:(rid 1007));
  Txn.commit db.Db.txns t1;
  Domain.join d;
  Alcotest.(check bool) "delete completed after" true (Atomic.get deleter_done)

let test_reinsert_after_committed_delete () =
  let db, t = make () in
  let t1 = Txn.begin_txn db.Db.txns in
  Gist.insert t t1 ~key:(B.key 3) ~rid:(rid 3);
  Txn.commit db.Db.txns t1;
  let t2 = Txn.begin_txn db.Db.txns in
  Alcotest.(check bool) "delete" true (Gist.delete t t2 ~key:(B.key 3) ~rid:(rid 3));
  Txn.commit db.Db.txns t2;
  let t3 = Txn.begin_txn db.Db.txns in
  Gist.insert t t3 ~key:(B.key 3) ~rid:(rid 1003);
  Txn.commit db.Db.txns t3;
  let t4 = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "one live entry" 1 (List.length (Gist.search t t4 (B.key 3)));
  Txn.commit db.Db.txns t4

let test_uncommitted_duplicate_blocks_then_errors () =
  (* T1 inserted key 9 (uncommitted). T2's unique insert of 9 blocks on the
     record lock; after T1 commits, T2 gets the duplicate error. *)
  let db, t = make () in
  let t1 = Txn.begin_txn db.Db.txns in
  Gist.insert t t1 ~key:(B.key 9) ~rid:(rid 9);
  let outcome = ref `Pending in
  let d =
    Domain.spawn (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        (match Gist.insert t t2 ~key:(B.key 9) ~rid:(rid 1009) with
        | () -> outcome := `Inserted
        | exception Gist.Duplicate_key -> outcome := `Duplicate
        | exception Lock_manager.Deadlock _ -> outcome := `Deadlock);
        Txn.commit db.Db.txns t2)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.1 do
    Thread.yield ()
  done;
  Alcotest.(check bool) "blocked while first insert uncommitted" true (!outcome = `Pending);
  Txn.commit db.Db.txns t1;
  Domain.join d;
  Alcotest.(check bool) "duplicate after commit" true (!outcome = `Duplicate)

let test_uncommitted_duplicate_then_abort_allows () =
  let db, t = make () in
  let t1 = Txn.begin_txn db.Db.txns in
  Gist.insert t t1 ~key:(B.key 9) ~rid:(rid 9);
  let outcome = ref `Pending in
  let d =
    Domain.spawn (fun () ->
        let t2 = Txn.begin_txn db.Db.txns in
        (match Gist.insert t t2 ~key:(B.key 9) ~rid:(rid 1009) with
        | () -> outcome := `Inserted
        | exception Gist.Duplicate_key -> outcome := `Duplicate
        | exception Lock_manager.Deadlock _ -> outcome := `Deadlock);
        Txn.commit db.Db.txns t2)
  in
  let t0 = Gist_util.Clock.now_ns () in
  while Gist_util.Clock.elapsed_s t0 < 0.1 do
    Thread.yield ()
  done;
  Txn.abort db.Db.txns t1;
  Domain.join d;
  Alcotest.(check bool) "insert allowed after abort" true (!outcome = `Inserted);
  let t3 = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "exactly one entry" 1 (List.length (Gist.search t t3 (B.key 9)));
  Txn.commit db.Db.txns t3

let test_racing_duplicate_inserts () =
  (* The §8 race: two transactions inserting the same (new) value whose
     probe phases both miss. The "= key" probe predicates force a deadlock;
     exactly one insert survives. Repeated across keys and with domains. *)
  let db, t = make () in
  let winners = Atomic.make 0 in
  let losers = Atomic.make 0 in
  let run_one key me =
    let rec attempt tries =
      if tries > 20 then ()
      else begin
        let txn = Txn.begin_txn db.Db.txns in
        match Gist.insert t txn ~key:(B.key key) ~rid:(rid ((me * 10_000) + key)) with
        | () ->
          Txn.commit db.Db.txns txn;
          Atomic.incr winners
        | exception Gist.Duplicate_key ->
          Txn.commit db.Db.txns txn;
          Atomic.incr losers
        | exception Lock_manager.Deadlock _ ->
          Txn.abort db.Db.txns txn;
          attempt (tries + 1)
      end
    in
    attempt 0
  in
  let keys = List.init 20 (fun i -> 100 + i) in
  let d1 = Domain.spawn (fun () -> List.iter (fun k -> run_one k 1) keys) in
  let d2 = Domain.spawn (fun () -> List.iter (fun k -> run_one k 2) keys) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "every key decided" 40 (Atomic.get winners + Atomic.get losers);
  Alcotest.(check int) "exactly one winner per key" 20 (Atomic.get winners);
  let txn = Txn.begin_txn db.Db.txns in
  List.iter
    (fun k ->
      Alcotest.(check int)
        (Printf.sprintf "key %d unique" k)
        1
        (List.length (Gist.search t txn (B.key k))))
    keys;
  Txn.commit db.Db.txns txn;
  let report = Tree_check.check t in
  Alcotest.(check bool) "tree consistent" true (Tree_check.ok report)

let suite =
  [
    Alcotest.test_case "basic unique rejection" `Quick test_basic_unique;
    Alcotest.test_case "duplicate error repeatable" `Quick test_duplicate_error_repeatable;
    Alcotest.test_case "reinsert after committed delete" `Quick
      test_reinsert_after_committed_delete;
    Alcotest.test_case "uncommitted duplicate blocks then errors" `Quick
      test_uncommitted_duplicate_blocks_then_errors;
    Alcotest.test_case "uncommitted duplicate then abort allows" `Quick
      test_uncommitted_duplicate_then_abort_allows;
    Alcotest.test_case "racing duplicate inserts" `Quick test_racing_duplicate_inserts;
  ]
