(* Unit tests for the access-method extensions: B-tree, R-tree, interval. *)

module B = Gist_ams.Btree_ext
module R = Gist_ams.Rtree_ext
module I = Gist_ams.Interval_ext
module RD = Gist_ams.Rd_tree_ext
module Ext = Gist_core.Ext

(* --- B-tree --- *)

let test_btree_consistent () =
  Alcotest.(check bool) "point in range" true (B.ext.Ext.consistent (B.key 5) (B.range 1 10));
  Alcotest.(check bool) "point out of range" false
    (B.ext.Ext.consistent (B.key 50) (B.range 1 10));
  Alcotest.(check bool) "ranges overlap" true
    (B.ext.Ext.consistent (B.range 5 15) (B.range 10 20));
  Alcotest.(check bool) "ranges touch" true (B.ext.Ext.consistent (B.range 1 10) (B.range 10 20));
  Alcotest.(check bool) "disjoint" false (B.ext.Ext.consistent (B.range 1 9) (B.range 10 20));
  Alcotest.(check bool) "empty never consistent" false
    (B.ext.Ext.consistent (B.key 5) B.Empty);
  Alcotest.(check bool) "query empty never consistent" false
    (B.ext.Ext.consistent B.Empty (B.range 0 100))

let test_btree_union_penalty () =
  Alcotest.(check bool) "union hull" true
    (B.ext.Ext.matches_exact (B.ext.Ext.union [ B.range 1 5; B.range 10 12 ]) (B.range 1 12));
  Alcotest.(check bool) "union with empty" true
    (B.ext.Ext.matches_exact (B.ext.Ext.union [ B.Empty; B.key 7 ]) (B.key 7));
  Alcotest.(check (float 1e-9)) "no growth no penalty" 0.0
    (B.ext.Ext.penalty (B.range 1 10) (B.key 5));
  Alcotest.(check bool) "growth penalized" true
    (B.ext.Ext.penalty (B.range 1 10) (B.key 100) > 0.0);
  Alcotest.(check bool) "closer is cheaper" true
    (B.ext.Ext.penalty (B.range 1 10) (B.key 12) < B.ext.Ext.penalty (B.range 1 10) (B.key 100))

let test_btree_pick_split_ordered () =
  (* The split must separate by order: max(left) < min(right). *)
  let keys = [| 9; 1; 7; 3; 5; 8; 2; 6 |] in
  let ps = Array.map B.key keys in
  let assignment = B.ext.Ext.pick_split ps in
  let left = ref [] and right = ref [] in
  Array.iteri (fun i k -> if assignment.(i) then right := k :: !right else left := k :: !left)
    keys;
  Alcotest.(check bool) "both non-empty" true (!left <> [] && !right <> []);
  Alcotest.(check bool) "ordered partition" true
    (List.fold_left max min_int !left < List.fold_left min max_int !right)

let test_btree_codec () =
  List.iter
    (fun p ->
      let b = Buffer.create 16 in
      B.ext.Ext.encode b p;
      let p' = B.ext.Ext.decode (Gist_util.Codec.reader (Buffer.to_bytes b)) in
      Alcotest.(check bool) "roundtrip" true (B.ext.Ext.matches_exact p p'))
    [ B.Empty; B.key 0; B.key (-5); B.range (-100) 100; B.key max_int ]

let test_btree_key_value () =
  Alcotest.(check int) "point value" 42 (B.key_value (B.key 42));
  Alcotest.check_raises "range is not a point"
    (Invalid_argument "Btree_ext.key_value: not a point") (fun () ->
      ignore (B.key_value (B.range 1 2)))

(* --- R-tree --- *)

let test_rtree_geometry () =
  let r1 = R.rect 0.0 0.0 10.0 10.0 in
  let r2 = R.rect 5.0 5.0 15.0 15.0 in
  let r3 = R.rect 20.0 20.0 30.0 30.0 in
  Alcotest.(check bool) "overlap" true (R.overlaps r1 r2);
  Alcotest.(check bool) "disjoint" false (R.overlaps r1 r3);
  Alcotest.(check (float 1e-9)) "area" 100.0 (R.area r1);
  Alcotest.(check bool) "contains" true
    (R.contains ~outer:(R.rect 0.0 0.0 20.0 20.0) ~inner:r1);
  Alcotest.(check bool) "not contains" false (R.contains ~outer:r1 ~inner:r2);
  Alcotest.(check bool) "normalized corners" true
    (R.ext.Ext.matches_exact (R.rect 10.0 10.0 0.0 0.0) r1)

let test_rtree_union_penalty () =
  let u = R.ext.Ext.union [ R.rect 0.0 0.0 1.0 1.0; R.rect 9.0 9.0 10.0 10.0 ] in
  Alcotest.(check bool) "bounding box" true
    (R.ext.Ext.matches_exact u (R.rect 0.0 0.0 10.0 10.0));
  Alcotest.(check (float 1e-9)) "no enlargement" 0.0
    (R.ext.Ext.penalty (R.rect 0.0 0.0 10.0 10.0) (R.point 5.0 5.0));
  Alcotest.(check bool) "enlargement penalized" true
    (R.ext.Ext.penalty (R.rect 0.0 0.0 1.0 1.0) (R.point 10.0 10.0) > 0.0)

let test_rtree_quadratic_split () =
  (* Two spatial clusters must end up in different groups. *)
  let rng = Gist_util.Xoshiro.create 3 in
  let cluster cx cy =
    Array.init 10 (fun _ ->
        let x = cx +. Gist_util.Xoshiro.float rng 1.0 in
        let y = cy +. Gist_util.Xoshiro.float rng 1.0 in
        R.point x y)
  in
  let ps = Array.append (cluster 0.0 0.0) (cluster 100.0 100.0) in
  let assignment = R.ext.Ext.pick_split ps in
  let side i = assignment.(i) in
  (* All of cluster A on one side, all of cluster B on the other. *)
  let a_side = side 0 in
  let coherent = ref true in
  for i = 1 to 9 do
    if side i <> a_side then coherent := false
  done;
  for i = 10 to 19 do
    if side i = a_side then coherent := false
  done;
  Alcotest.(check bool) "clusters separated" true !coherent

let test_rtree_split_contract_random () =
  let rng = Gist_util.Xoshiro.create 17 in
  for _ = 1 to 50 do
    let n = 2 + Gist_util.Xoshiro.int rng 30 in
    let ps =
      Array.init n (fun _ ->
          R.rect
            (Gist_util.Xoshiro.float rng 100.0)
            (Gist_util.Xoshiro.float rng 100.0)
            (Gist_util.Xoshiro.float rng 100.0)
            (Gist_util.Xoshiro.float rng 100.0))
    in
    let a = R.ext.Ext.pick_split ps in
    Alcotest.(check int) "length" n (Array.length a);
    Alcotest.(check bool) "both sides non-empty" true
      (Array.exists (fun b -> b) a && Array.exists (fun b -> not b) a)
  done

let test_rtree_codec () =
  List.iter
    (fun p ->
      let b = Buffer.create 16 in
      R.ext.Ext.encode b p;
      let p' = R.ext.Ext.decode (Gist_util.Codec.reader (Buffer.to_bytes b)) in
      Alcotest.(check bool) "roundtrip" true (R.ext.Ext.matches_exact p p'))
    [ R.Empty; R.point 1.5 (-2.5); R.rect (-1.0) (-1.0) 1.0 1.0 ]

(* --- Interval --- *)

let test_interval_semantics () =
  Alcotest.(check bool) "stab hit" true (I.ext.Ext.consistent (I.stab 5.0) (I.iv 1.0 10.0));
  Alcotest.(check bool) "stab miss" false (I.ext.Ext.consistent (I.stab 15.0) (I.iv 1.0 10.0));
  Alcotest.(check bool) "window overlap" true
    (I.ext.Ext.consistent (I.iv 8.0 12.0) (I.iv 1.0 10.0));
  let u = I.ext.Ext.union [ I.iv 1.0 3.0; I.iv 7.0 9.0 ] in
  Alcotest.(check bool) "union hull" true (I.ext.Ext.matches_exact u (I.iv 1.0 9.0));
  Alcotest.(check bool) "penalty grows" true
    (I.ext.Ext.penalty (I.iv 0.0 1.0) (I.iv 5.0 6.0) > 0.0);
  let ps = Array.init 10 (fun i -> I.iv (Float.of_int i) (Float.of_int i +. 0.5)) in
  let a = I.ext.Ext.pick_split ps in
  Alcotest.(check bool) "split contract" true
    (Array.exists (fun b -> b) a && Array.exists (fun b -> not b) a)

(* --- RD-tree --- *)

let test_rd_set_ops () =
  let a = RD.set [ 3; 1; 2; 3 ] and b = RD.set [ 3; 4 ] and c = RD.set [ 9 ] in
  Alcotest.(check (list int)) "dedup+sort" [ 1; 2; 3 ] (RD.elements a);
  Alcotest.(check bool) "overlap" true (RD.overlaps a b);
  Alcotest.(check bool) "disjoint" false (RD.overlaps a c);
  Alcotest.(check bool) "subset" true (RD.subset ~sub:(RD.set [ 1; 3 ]) ~super:a);
  Alcotest.(check bool) "not subset" false (RD.subset ~sub:b ~super:a);
  Alcotest.(check (list int)) "union nests" [ 1; 2; 3; 4 ]
    (RD.elements (RD.ext.Ext.union [ a; b ]));
  Alcotest.(check bool) "empty set" true (RD.set [] = RD.Empty);
  Alcotest.(check (float 1e-9)) "penalty counts new elements" 1.0
    (RD.ext.Ext.penalty a b);
  Alcotest.(check bool) "matches_exact" true
    (RD.ext.Ext.matches_exact (RD.set [ 2; 1 ]) (RD.set [ 1; 2 ]))

let test_rd_codec_and_split () =
  List.iter
    (fun s ->
      let b = Buffer.create 32 in
      RD.ext.Ext.encode b s;
      Alcotest.(check bool) "codec" true
        (RD.ext.Ext.matches_exact s
           (RD.ext.Ext.decode (Gist_util.Codec.reader (Buffer.to_bytes b)))))
    [ RD.Empty; RD.set [ 5 ]; RD.set (List.init 40 (fun i -> i * 3)) ];
  (* Two vocabulary clusters must separate. *)
  let doc base = RD.set (List.init 5 (fun i -> base + i)) in
  let ps = Array.init 12 (fun i -> if i < 6 then doc 0 else doc 1000) in
  let a = RD.ext.Ext.pick_split ps in
  let side0 = a.(0) in
  Alcotest.(check bool) "clusters separated" true
    (Array.for_all (fun x -> x = side0) (Array.sub a 0 6)
    && Array.for_all (fun x -> x <> side0) (Array.sub a 6 6))

let test_rd_gist_end_to_end () =
  (* Documents tagged with keyword sets; queries = keyword overlap. *)
  let config =
    { Gist_core.Db.default_config with Gist_core.Db.max_entries = 8; page_size = 4096 }
  in
  let db = Gist_core.Db.create ~config () in
  let t = Gist_core.Gist.create db RD.ext ~empty_bp:RD.Empty () in
  let rng = Gist_util.Xoshiro.create 31 in
  let docs =
    List.init 300 (fun i ->
        let tags =
          List.init (1 + Gist_util.Xoshiro.int rng 6) (fun _ -> Gist_util.Xoshiro.int rng 200)
        in
        (i, RD.set tags))
  in
  let txn = Gist_txn.Txn_manager.begin_txn db.Gist_core.Db.txns in
  List.iter
    (fun (i, tags) ->
      Gist_core.Gist.insert t txn ~key:tags ~rid:(Gist_storage.Rid.make ~page:1 ~slot:i))
    docs;
  let q = RD.set [ 17; 42 ] in
  let expected =
    List.filter (fun (_, tags) -> RD.overlaps q tags) docs
    |> List.map fst |> List.sort compare
  in
  let got =
    Gist_core.Gist.search t txn q
    |> List.map (fun (_, r) -> r.Gist_storage.Rid.slot)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "overlap query matches brute force" expected got;
  Gist_txn.Txn_manager.commit db.Gist_core.Db.txns txn;
  let report = Gist_core.Tree_check.check t in
  Alcotest.(check bool) "rd-tree invariants" true (Gist_core.Tree_check.ok report)

(* --- End-to-end sanity on the other two access methods --- *)

let test_rtree_gist_end_to_end () =
  let config =
    { Gist_core.Db.default_config with Gist_core.Db.max_entries = 8; page_size = 2048 }
  in
  let db = Gist_core.Db.create ~config () in
  let t = Gist_core.Gist.create db R.ext ~empty_bp:R.Empty () in
  let txn = Gist_txn.Txn_manager.begin_txn db.Gist_core.Db.txns in
  let rng = Gist_util.Xoshiro.create 5 in
  let pts =
    List.init 300 (fun i ->
        let x = Gist_util.Xoshiro.float rng 1000.0 in
        let y = Gist_util.Xoshiro.float rng 1000.0 in
        (i, x, y))
  in
  List.iter
    (fun (i, x, y) ->
      Gist_core.Gist.insert t txn ~key:(R.point x y)
        ~rid:(Gist_storage.Rid.make ~page:1 ~slot:i))
    pts;
  (* Window query vs brute force. *)
  let window = R.rect 200.0 200.0 600.0 600.0 in
  let expected =
    List.filter (fun (_, x, y) -> R.overlaps (R.point x y) window) pts
    |> List.map (fun (i, _, _) -> i)
    |> List.sort compare
  in
  let got =
    Gist_core.Gist.search t txn window
    |> List.map (fun (_, r) -> r.Gist_storage.Rid.slot)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "window query matches brute force" expected got;
  Gist_txn.Txn_manager.commit db.Gist_core.Db.txns txn;
  let report = Gist_core.Tree_check.check t in
  Alcotest.(check bool) "rtree invariants" true (Gist_core.Tree_check.ok report)

let test_interval_gist_end_to_end () =
  let config =
    { Gist_core.Db.default_config with Gist_core.Db.max_entries = 8; page_size = 2048 }
  in
  let db = Gist_core.Db.create ~config () in
  let t = Gist_core.Gist.create db I.ext ~empty_bp:I.Empty () in
  let txn = Gist_txn.Txn_manager.begin_txn db.Gist_core.Db.txns in
  let ivs = List.init 200 (fun i -> (i, Float.of_int (i * 3), Float.of_int ((i * 3) + 10))) in
  List.iter
    (fun (i, lo, hi) ->
      Gist_core.Gist.insert t txn ~key:(I.iv lo hi)
        ~rid:(Gist_storage.Rid.make ~page:1 ~slot:i))
    ivs;
  let q = I.stab 100.0 in
  let expected =
    List.filter (fun (_, lo, hi) -> lo <= 100.0 && 100.0 <= hi) ivs
    |> List.map (fun (i, _, _) -> i)
    |> List.sort compare
  in
  let got =
    Gist_core.Gist.search t txn q
    |> List.map (fun (_, r) -> r.Gist_storage.Rid.slot)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "stabbing query matches brute force" expected got;
  Gist_txn.Txn_manager.commit db.Gist_core.Db.txns txn;
  let report = Gist_core.Tree_check.check t in
  Alcotest.(check bool) "interval tree invariants" true (Gist_core.Tree_check.ok report)

let suite =
  [
    Alcotest.test_case "btree consistent" `Quick test_btree_consistent;
    Alcotest.test_case "btree union/penalty" `Quick test_btree_union_penalty;
    Alcotest.test_case "btree ordered split" `Quick test_btree_pick_split_ordered;
    Alcotest.test_case "btree codec" `Quick test_btree_codec;
    Alcotest.test_case "btree key_value" `Quick test_btree_key_value;
    Alcotest.test_case "rtree geometry" `Quick test_rtree_geometry;
    Alcotest.test_case "rtree union/penalty" `Quick test_rtree_union_penalty;
    Alcotest.test_case "rtree quadratic split clusters" `Quick test_rtree_quadratic_split;
    Alcotest.test_case "rtree split contract (random)" `Quick test_rtree_split_contract_random;
    Alcotest.test_case "rtree codec" `Quick test_rtree_codec;
    Alcotest.test_case "interval semantics" `Quick test_interval_semantics;
    Alcotest.test_case "rd-tree set ops" `Quick test_rd_set_ops;
    Alcotest.test_case "rd-tree codec+split" `Quick test_rd_codec_and_split;
    Alcotest.test_case "rd-tree end-to-end" `Quick test_rd_gist_end_to_end;
    Alcotest.test_case "rtree end-to-end" `Quick test_rtree_gist_end_to_end;
    Alcotest.test_case "interval end-to-end" `Quick test_interval_gist_end_to_end;
  ]
