(* Single-threaded end-to-end tests of the GiST operations on the B-tree
   extension: insert/search/delete, splits, BP expansion, logical deletion
   semantics, abort rollback, and tree invariants after bulk loads. *)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager

let rid i = Rid.make ~page:1000 ~slot:i

let small_config =
  { Db.default_config with Db.max_entries = 8; pool_capacity = 64; page_size = 1024 }

let make_tree ?(config = small_config) () =
  let db = Db.create ~config () in
  let t = Gist.create db B.ext ~empty_bp:B.Empty () in
  (db, t)

let sorted_keys results =
  results |> List.map (fun (k, _) -> B.key_value k) |> List.sort compare

let check_tree t =
  let report = Tree_check.check t in
  Alcotest.(check bool) (Format.asprintf "%a" Tree_check.pp report) true (Tree_check.ok report)

let test_empty_search () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list (pair int int)))
    "empty tree returns nothing" []
    (Gist.search t txn (B.range 0 100) |> List.map (fun (k, r) -> (B.key_value k, r.Rid.slot)));
  Txn.commit db.Db.txns txn

let test_insert_search () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t txn ~key:(B.key i) ~rid:(rid i)) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (list int)) "all keys" [ 1; 3; 5; 7; 9 ]
    (sorted_keys (Gist.search t txn (B.range 0 100)));
  Alcotest.(check (list int)) "range [3,7]" [ 3; 5; 7 ]
    (sorted_keys (Gist.search t txn (B.range 3 7)));
  Alcotest.(check (list int)) "point query" [ 7 ] (sorted_keys (Gist.search t txn (B.key 7)));
  Alcotest.(check (list int)) "miss" [] (sorted_keys (Gist.search t txn (B.key 4)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_bulk_insert_splits () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 500 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  Alcotest.(check bool) "tree grew" true (Gist.height t > 1);
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "all 500 present" 500
    (List.length (Gist.search t txn (B.range 1 500)));
  Alcotest.(check (list int)) "spot range" [ 250; 251; 252 ]
    (sorted_keys (Gist.search t txn (B.range 250 252)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_reverse_and_random_order () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  let rng = Gist_util.Xoshiro.create 42 in
  let keys = Array.init 300 (fun i -> i + 1) in
  Gist_util.Xoshiro.shuffle rng keys;
  Array.iter (fun i -> Gist.insert t txn ~key:(B.key i) ~rid:(rid i)) keys;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "300 keys" 300 (List.length (Gist.search t txn (B.range 1 300)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_delete_basic () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t txn ~key:(B.key i) ~rid:(rid i)) [ 1; 2; 3 ];
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check bool) "delete 2" true (Gist.delete t txn ~key:(B.key 2) ~rid:(rid 2));
  Alcotest.(check bool) "delete missing" false (Gist.delete t txn ~key:(B.key 42) ~rid:(rid 42));
  (* Logical deletion: the deleter itself no longer sees the key. *)
  Alcotest.(check (list int)) "deleter's view" [ 1; 3 ]
    (sorted_keys (Gist.search t txn (B.range 0 10)));
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "after commit" [ 1; 3 ]
    (sorted_keys (Gist.search t txn (B.range 0 10)));
  Txn.commit db.Db.txns txn;
  (* The entry is still physically present until GC. *)
  Alcotest.(check int) "physical entries" 3 (Gist.entry_count t);
  Gist.vacuum t;
  Alcotest.(check int) "after vacuum" 2 (Gist.entry_count t);
  check_tree t

let test_abort_insert () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t txn ~key:(B.key i) ~rid:(rid i)) [ 1; 2; 3 ];
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert t txn ~key:(B.key 99) ~rid:(rid 99);
  Txn.abort db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "aborted insert gone" [ 1; 2; 3 ]
    (sorted_keys (Gist.search t txn (B.range 0 200)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_abort_delete () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  List.iter (fun i -> Gist.insert t txn ~key:(B.key i) ~rid:(rid i)) [ 1; 2; 3 ];
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  ignore (Gist.delete t txn ~key:(B.key 2) ~rid:(rid 2));
  Txn.abort db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "rolled-back delete visible again" [ 1; 2; 3 ]
    (sorted_keys (Gist.search t txn (B.range 0 10)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_abort_with_splits () =
  (* An abort whose inserts caused splits must remove the entries but keep
     the (individually committed) structure intact. *)
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 50 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  for i = 51 to 200 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  Txn.abort db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check int) "only committed keys" 50
    (List.length (Gist.search t txn (B.range 1 1000)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_duplicate_keys_nonunique () =
  (* A non-unique index stores equal keys with distinct RIDs. *)
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 20 do
    Gist.insert t txn ~key:(B.key 7) ~rid:(rid i)
  done;
  Alcotest.(check int) "20 duplicates" 20 (List.length (Gist.search t txn (B.key 7)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_savepoint_partial_rollback () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  Gist.insert t txn ~key:(B.key 1) ~rid:(rid 1);
  Txn.savepoint db.Db.txns txn "sp1";
  Gist.insert t txn ~key:(B.key 2) ~rid:(rid 2);
  Gist.insert t txn ~key:(B.key 3) ~rid:(rid 3);
  Txn.rollback_to_savepoint db.Db.txns txn "sp1";
  Alcotest.(check (list int)) "only pre-savepoint insert" [ 1 ]
    (sorted_keys (Gist.search t txn (B.range 0 10)));
  Gist.insert t txn ~key:(B.key 4) ~rid:(rid 4);
  Txn.commit db.Db.txns txn;
  let txn = Txn.begin_txn db.Db.txns in
  Alcotest.(check (list int)) "post-commit" [ 1; 4 ]
    (sorted_keys (Gist.search t txn (B.range 0 10)));
  Txn.commit db.Db.txns txn;
  check_tree t

let test_mixed_workload_invariants () =
  let db, t = make_tree () in
  let rng = Gist_util.Xoshiro.create 7 in
  let live = Hashtbl.create 64 in
  for round = 1 to 20 do
    let txn = Txn.begin_txn db.Db.txns in
    for _ = 1 to 50 do
      let k = Gist_util.Xoshiro.int rng 1000 in
      if Gist_util.Xoshiro.bool rng then begin
        if not (Hashtbl.mem live k) then begin
          Gist.insert t txn ~key:(B.key k) ~rid:(rid k);
          Hashtbl.replace live k ()
        end
      end
      else if Hashtbl.mem live k then begin
        ignore (Gist.delete t txn ~key:(B.key k) ~rid:(rid k));
        Hashtbl.remove live k
      end
    done;
    Txn.commit db.Db.txns txn;
    if round mod 5 = 0 then Gist.vacuum t
  done;
  let txn = Txn.begin_txn db.Db.txns in
  let found = sorted_keys (Gist.search t txn (B.range 0 1000)) in
  let expected = Hashtbl.fold (fun k () acc -> k :: acc) live [] |> List.sort compare in
  Alcotest.(check (list int)) "live set matches" expected found;
  Txn.commit db.Db.txns txn;
  check_tree t

let test_stats_counters () =
  let db, t = make_tree () in
  let txn = Txn.begin_txn db.Db.txns in
  for i = 1 to 100 do
    Gist.insert t txn ~key:(B.key i) ~rid:(rid i)
  done;
  ignore (Gist.search t txn (B.range 1 50));
  ignore (Gist.delete t txn ~key:(B.key 7) ~rid:(rid 7));
  Txn.commit db.Db.txns txn;
  Gist.vacuum t;
  let st = Gist.stats t in
  Alcotest.(check int) "inserts counted" 100 st.Gist.inserts;
  Alcotest.(check int) "searches counted" 1 st.Gist.searches;
  Alcotest.(check int) "deletes counted" 1 st.Gist.deletes;
  Alcotest.(check bool) "splits happened" true (st.Gist.splits > 0);
  Alcotest.(check bool) "root grew" true (st.Gist.root_grows >= 1);
  Alcotest.(check bool) "bp updates happened" true (st.Gist.bp_updates > 0);
  Alcotest.(check int) "gc reclaimed the mark" 1 st.Gist.gc_entries;
  Gist.reset_stats t;
  Alcotest.(check int) "reset" 0 (Gist.stats t).Gist.inserts

let suite =
  [
    Alcotest.test_case "empty search" `Quick test_empty_search;
    Alcotest.test_case "insert+search" `Quick test_insert_search;
    Alcotest.test_case "bulk insert splits" `Quick test_bulk_insert_splits;
    Alcotest.test_case "random order insert" `Quick test_reverse_and_random_order;
    Alcotest.test_case "delete basic" `Quick test_delete_basic;
    Alcotest.test_case "abort insert" `Quick test_abort_insert;
    Alcotest.test_case "abort delete" `Quick test_abort_delete;
    Alcotest.test_case "abort with splits" `Quick test_abort_with_splits;
    Alcotest.test_case "duplicate keys (non-unique)" `Quick test_duplicate_keys_nonunique;
    Alcotest.test_case "savepoint partial rollback" `Quick test_savepoint_partial_rollback;
    Alcotest.test_case "mixed workload invariants" `Quick test_mixed_workload_invariants;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
  ]
