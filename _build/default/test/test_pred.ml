(* Unit tests for the predicate manager (§10.3 data structures). *)

open Gist_pred
module Pm = Predicate_manager
module Page_id = Gist_storage.Page_id
module Txn_id = Gist_util.Txn_id

let tid = Txn_id.of_int

let pid = Page_id.of_int

let test_register_attach () =
  let pm = Pm.create () in
  let p = Pm.register pm ~owner:(tid 1) ~kind:Pm.Scan (10, 20) in
  Alcotest.(check bool) "owner" true (Txn_id.equal (tid 1) (Pm.owner p));
  Alcotest.(check bool) "formula" true (Pm.formula p = (10, 20));
  Pm.attach pm p (pid 5);
  Alcotest.(check bool) "attached" true (Pm.is_attached pm p (pid 5));
  Alcotest.(check int) "listed" 1 (List.length (Pm.attached pm (pid 5)));
  (* Idempotent. *)
  Pm.attach pm p (pid 5);
  Alcotest.(check int) "idempotent attach" 1 (List.length (Pm.attached pm (pid 5)));
  Alcotest.(check int) "attachment count" 1 (Pm.total_attachments pm)

let test_fifo_order () =
  let pm = Pm.create () in
  let p1 = Pm.register pm ~owner:(tid 1) ~kind:Pm.Scan 1 in
  let p2 = Pm.register pm ~owner:(tid 2) ~kind:Pm.Insert 2 in
  let p3 = Pm.register pm ~owner:(tid 3) ~kind:Pm.Probe 3 in
  Pm.attach pm p2 (pid 1);
  Pm.attach pm p1 (pid 1);
  Pm.attach pm p3 (pid 1);
  Alcotest.(check (list int)) "FIFO attachment order" [ 2; 1; 3 ]
    (List.map Pm.formula (Pm.attached pm (pid 1)))

let test_remove_txn () =
  let pm = Pm.create () in
  let p1 = Pm.register pm ~owner:(tid 1) ~kind:Pm.Scan 1 in
  let p2 = Pm.register pm ~owner:(tid 2) ~kind:Pm.Scan 2 in
  Pm.attach pm p1 (pid 1);
  Pm.attach pm p1 (pid 2);
  Pm.attach pm p2 (pid 1);
  Pm.remove_txn pm (tid 1);
  Alcotest.(check (list int)) "only t2 remains" [ 2 ]
    (List.map Pm.formula (Pm.attached pm (pid 1)));
  Alcotest.(check int) "page 2 empty" 0 (List.length (Pm.attached pm (pid 2)));
  Alcotest.(check int) "t1 predicates gone" 0 (List.length (Pm.predicates_of pm (tid 1)));
  (* Removing again is a no-op. *)
  Pm.remove_txn pm (tid 1)

let test_remove_pred () =
  let pm = Pm.create () in
  let p = Pm.register pm ~owner:(tid 1) ~kind:Pm.Probe 9 in
  Pm.attach pm p (pid 1);
  Pm.attach pm p (pid 2);
  Pm.remove_pred pm p;
  Alcotest.(check int) "gone from page 1" 0 (List.length (Pm.attached pm (pid 1)));
  Alcotest.(check int) "gone from page 2" 0 (List.length (Pm.attached pm (pid 2)));
  Alcotest.(check int) "not in txn list" 0 (List.length (Pm.predicates_of pm (tid 1)))

let test_replicate () =
  let pm = Pm.create () in
  let p1 = Pm.register pm ~owner:(tid 1) ~kind:Pm.Scan 10 in
  let p2 = Pm.register pm ~owner:(tid 2) ~kind:Pm.Scan 99 in
  Pm.attach pm p1 (pid 1);
  Pm.attach pm p2 (pid 1);
  (* Split: replicate only predicates consistent with the sibling's BP. *)
  Pm.replicate pm ~src:(pid 1) ~dst:(pid 2) ~keep:(fun p -> Pm.formula p < 50);
  Alcotest.(check (list int)) "filtered replication" [ 10 ]
    (List.map Pm.formula (Pm.attached pm (pid 2)));
  (* Replication is idempotent per-predicate. *)
  Pm.replicate pm ~src:(pid 1) ~dst:(pid 2) ~keep:(fun _ -> true);
  Alcotest.(check (list int)) "no duplicates" [ 10; 99 ]
    (List.map Pm.formula (Pm.attached pm (pid 2)))

let test_concurrent_usage () =
  let pm = Pm.create () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 500 do
              let p = Pm.register pm ~owner:(tid (d + 1)) ~kind:Pm.Scan i in
              Pm.attach pm p (pid (i mod 7));
              if i mod 3 = 0 then Pm.remove_pred pm p
            done;
            Pm.remove_txn pm (tid (d + 1))))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all cleaned up" 0 (Pm.total_predicates pm);
  Alcotest.(check int) "no attachments leak" 0 (Pm.total_attachments pm)

let suite =
  [
    Alcotest.test_case "register and attach" `Quick test_register_attach;
    Alcotest.test_case "FIFO order" `Quick test_fifo_order;
    Alcotest.test_case "remove txn" `Quick test_remove_txn;
    Alcotest.test_case "remove pred" `Quick test_remove_pred;
    Alcotest.test_case "replicate" `Quick test_replicate;
    Alcotest.test_case "concurrent usage" `Quick test_concurrent_usage;
  ]
