(* gist_shell — an interactive (or piped) shell over the transactional
   B-tree GiST, exposing the paper's machinery end to end: transactions,
   savepoints, logical deletion, vacuum, checkpoints, crash + ARIES
   restart, and the invariant checker.

   Run:   dune exec bin/shell.exe
   Pipe:  printf 'insert 1\ninsert 2\nsearch 0 10\nquit\n' | dune exec bin/shell.exe
*)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Log = Gist_wal.Log_manager
module Buffer_pool = Gist_storage.Buffer_pool
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace

type session = {
  mutable db : Db.t;
  mutable tree : B.t Gist.t;
  mutable txn : Txn.txn option; (* explicit transaction, if one is open *)
  mutable autocommit_count : int;
}

let help () =
  print_string
    {|commands:
  insert <k>          insert key k (RID derived from k)
  delete <k>          logically delete key k
  search <lo> <hi>    range scan [lo, hi]
  count               number of live keys
  begin               open an explicit transaction
  commit / abort      end the explicit transaction
  savepoint <name>    set a savepoint in the open transaction
  rollback <name>     partial rollback to a savepoint
  vacuum              garbage-collect marks, retire empty nodes
  checkpoint          fuzzy checkpoint (bounds restart cost)
  flush               flush all dirty pages (background writer)
  crash               lose volatile state + unforced log tail, then restart
  stats               pool/log/lock/tree statistics + metrics registry
  stats json          the metrics registry as one JSON object
  trace on|off        enable/disable kernel event tracing
  trace dump [n]      print the trace ring (last n events)
  trace clear         drop all buffered trace events
  check               run the tree invariant checker
  help                this text
  quit                exit
|}

let with_txn s f =
  match s.txn with
  | Some txn -> f txn
  | None ->
    (* Autocommit: wrap the single operation. *)
    let txn = Txn.begin_txn s.db.Db.txns in
    (match f txn with
    | () -> Txn.commit s.db.Db.txns txn
    | exception e ->
      Txn.abort s.db.Db.txns txn;
      raise e);
    s.autocommit_count <- s.autocommit_count + 1

let cmd_stats s =
  let db = s.db in
  Printf.printf "tree   : height %d, %d leaves, %d physical entries\n" (Gist.height s.tree)
    (Gist.leaf_count s.tree) (Gist.entry_count s.tree);
  Printf.printf "pool   : %d hits, %d misses, %d evictions, %d I/Os under latches\n"
    (Buffer_pool.hits db.Db.pool) (Buffer_pool.misses db.Db.pool)
    (Buffer_pool.evictions db.Db.pool)
    (Buffer_pool.io_while_latched db.Db.pool);
  Printf.printf "log    : %d records (%d bytes), durable to %Ld, %d forces\n"
    (Log.appended db.Db.log) (Log.bytes_written db.Db.log) (Log.durable_lsn db.Db.log)
    (Log.forces db.Db.log);
  Printf.printf "locks  : %d waits, %d deadlocks\n"
    (Gist_txn.Lock_manager.blocked_count db.Db.locks)
    (Gist_txn.Lock_manager.deadlock_count db.Db.locks);
  Printf.printf "preds  : %d live predicates, %d attachments\n"
    (Gist_pred.Predicate_manager.total_predicates (Gist.predicate_manager s.tree))
    (Gist_pred.Predicate_manager.total_attachments (Gist.predicate_manager s.tree));
  let st = Gist.stats s.tree in
  Printf.printf
    "ops    : %d searches, %d inserts, %d deletes; %d splits, %d root grows,\n\
    \         %d BP updates, %d rightlink follows, %d GC'd entries,\n\
    \         %d node deletes, %d predicate blocks\n"
    st.Gist.searches st.Gist.inserts st.Gist.deletes st.Gist.splits st.Gist.root_grows
    st.Gist.bp_updates st.Gist.rightlink_follows st.Gist.gc_entries st.Gist.node_deletes
    st.Gist.pred_blocks;
  print_endline "metrics:";
  print_string (Metrics.render_text (Metrics.snapshot ()))

let cmd_trace_dump n =
  let entries = Trace.dump ?last:n () in
  List.iter (fun e -> Format.printf "%a@." Trace.pp_entry e) entries;
  Printf.printf "(%d events%s)\n" (List.length entries)
    (if Trace.enabled () then "" else "; tracing is off — 'trace on' to record")

let dispatch s line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> ()
  | [ "help" ] -> help ()
  | [ "insert"; k ] ->
    let k = int_of_string k in
    with_txn s (fun txn -> Gist.insert s.tree txn ~key:(B.key k) ~rid:(Rid.make ~page:1 ~slot:k));
    Printf.printf "inserted %d\n" k
  | [ "delete"; k ] ->
    let k = int_of_string k in
    let found = ref false in
    with_txn s (fun txn ->
        found := Gist.delete s.tree txn ~key:(B.key k) ~rid:(Rid.make ~page:1 ~slot:k));
    Printf.printf "%s\n" (if !found then "deleted (logically)" else "not found")
  | [ "search"; lo; hi ] ->
    let lo = int_of_string lo and hi = int_of_string hi in
    let out = ref [] in
    with_txn s (fun txn ->
        out :=
          Gist.search s.tree txn (B.range lo hi)
          |> List.map (fun (k, _) -> B.key_value k)
          |> List.sort compare);
    Printf.printf "[%s] (%d keys)\n"
      (String.concat " " (List.map string_of_int !out))
      (List.length !out)
  | [ "count" ] ->
    let n = ref 0 in
    with_txn s (fun txn ->
        n := List.length (Gist.search s.tree txn (B.range min_int max_int)));
    Printf.printf "%d live keys\n" !n
  | [ "begin" ] -> (
    match s.txn with
    | Some _ -> print_endline "a transaction is already open"
    | None ->
      s.txn <- Some (Txn.begin_txn s.db.Db.txns);
      print_endline "transaction open")
  | [ "commit" ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn ->
      Txn.commit s.db.Db.txns txn;
      s.txn <- None;
      print_endline "committed")
  | [ "abort" ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn ->
      Txn.abort s.db.Db.txns txn;
      s.txn <- None;
      print_endline "aborted (rolled back via the log)")
  | [ "savepoint"; name ] -> (
    match s.txn with
    | None -> print_endline "savepoints need an open transaction"
    | Some txn ->
      Txn.savepoint s.db.Db.txns txn name;
      Printf.printf "savepoint %s set\n" name)
  | [ "rollback"; name ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn -> (
      match Txn.rollback_to_savepoint s.db.Db.txns txn name with
      | () -> Printf.printf "rolled back to %s\n" name
      | exception Not_found -> Printf.printf "unknown savepoint %s\n" name))
  | [ "vacuum" ] ->
    let before = Gist.entry_count s.tree in
    Gist.vacuum s.tree;
    Printf.printf "vacuum: %d -> %d physical entries, %d leaves\n" before
      (Gist.entry_count s.tree) (Gist.leaf_count s.tree)
  | [ "checkpoint" ] ->
    Db.checkpoint s.db;
    Printf.printf "checkpoint at LSN %Ld\n" (Log.anchor s.db.Db.log)
  | [ "flush" ] ->
    Buffer_pool.flush_all s.db.Db.pool;
    print_endline "all dirty pages flushed"
  | [ "crash" ] ->
    (match s.txn with
    | Some _ ->
      s.txn <- None;
      print_endline "(open transaction lost in the crash — it will be a loser)"
    | None -> ());
    let root = Gist.root s.tree in
    let db' = Db.crash s.db in
    let t0 = Gist_util.Clock.now_ns () in
    Recovery.restart db' B.ext;
    s.db <- db';
    s.tree <- Gist.open_existing db' B.ext ~root ();
    Printf.printf "crashed and restarted in %.2f ms\n" (Gist_util.Clock.elapsed_s t0 *. 1000.0)
  | [ "stats" ] -> cmd_stats s
  | [ "stats"; "json" ] -> print_endline (Metrics.render_json (Metrics.snapshot ()))
  | [ "trace"; "on" ] ->
    Trace.enable ();
    print_endline "tracing on"
  | [ "trace"; "off" ] ->
    Trace.disable ();
    print_endline "tracing off"
  | [ "trace"; "dump" ] -> cmd_trace_dump None
  | [ "trace"; "dump"; n ] -> cmd_trace_dump (Some (int_of_string n))
  | [ "trace"; "clear" ] ->
    Trace.clear ();
    print_endline "trace buffer cleared"
  | [ "check" ] ->
    let report = Tree_check.check s.tree in
    Format.printf "%a@." Tree_check.pp report
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | words -> Printf.printf "unknown command %S (try 'help')\n" (String.concat " " words)

let () =
  let db = Db.create () in
  let tree = Gist.create db B.ext ~empty_bp:B.Empty () in
  let s = { db; tree; txn = None; autocommit_count = 0 } in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "gist_shell — a transactional, recoverable B-tree GiST (type 'help')";
    print_string "> "
  end;
  (try
     while true do
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line ->
         (try dispatch s line with
         | Exit -> raise Exit
         | Gist_txn.Lock_manager.Deadlock _ -> print_endline "deadlock: operation aborted"
         | Failure m | Invalid_argument m -> Printf.printf "error: %s\n" m);
         if interactive then print_string "> "
     done
   with Exit -> ());
  (match s.txn with Some txn -> Txn.abort s.db.Db.txns txn | None -> ());
  if interactive then print_endline "bye"
