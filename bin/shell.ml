(* gist_shell — an interactive (or piped) shell over the transactional
   B-tree GiST, exposing the paper's machinery end to end: transactions,
   savepoints, logical deletion, vacuum, checkpoints, crash + ARIES
   restart, and the invariant checker.

   Run:   dune exec bin/shell.exe
   Pipe:  printf 'insert 1\ninsert 2\nsearch 0 10\nquit\n' | dune exec bin/shell.exe
*)

open Gist_core
module B = Gist_ams.Btree_ext
module Rid = Gist_storage.Rid
module Txn = Gist_txn.Txn_manager
module Log = Gist_wal.Log_manager
module Buffer_pool = Gist_storage.Buffer_pool
module Metrics = Gist_obs.Metrics
module Trace = Gist_obs.Trace
module Fault = Gist_fault.Fault
module Crash_fuzz = Gist_fault.Crash_fuzz

type session = {
  mutable db : Db.t;
  mutable tree : B.t Gist.t;
  mutable txn : Txn.txn option; (* explicit transaction, if one is open *)
  mutable autocommit_count : int;
  mutable fault : Fault.t option; (* armed fault-injection plan, if any *)
}

let help () =
  print_string
    {|commands:
  insert <k>          insert key k (RID derived from k)
  delete <k>          logically delete key k
  search <lo> <hi>    range scan [lo, hi]
  count               number of live keys
  begin               open an explicit transaction
  commit / abort      end the explicit transaction
  savepoint <name>    set a savepoint in the open transaction
  rollback <name>     partial rollback to a savepoint
  vacuum              garbage-collect marks, retire empty nodes
  checkpoint          fuzzy checkpoint (bounds restart cost)
  flush               flush all dirty pages (background writer)
  crash               lose volatile state + unforced log tail, then restart
  fault arm <site> <n>  power loss at the n-th event of site (read|write|append)
  fault torn <n> [keep]   torn page write at the n-th disk write, then power loss
  fault ragged <n> [keep] power loss mid-append: n-th append leaves a ragged tail
  fault ioerr <site> <n>  transient I/O error at the n-th event of site
  fault delay <site> <n> <ms>  latency spike at the n-th event of site
  fault status        events counted / points fired since arming
  fault disarm        remove the armed plan
  fault fuzz [points] [seed]  crash-fuzz sweep on fresh DBs (default 40 points)
  stats               pool/log/lock/tree statistics + metrics registry
  stats json          the metrics registry as one JSON object
  trace on|off        enable/disable kernel event tracing
  trace dump [n]      print the trace ring (last n events)
  trace clear         drop all buffered trace events
  check               run the tree invariant checker
  help                this text
  quit                exit
|}

let with_txn s f =
  match s.txn with
  | Some txn -> f txn
  | None ->
    (* Autocommit: wrap the single operation. *)
    let txn = Txn.begin_txn s.db.Db.txns in
    (match f txn with
    | () -> Txn.commit s.db.Db.txns txn
    | exception Fault.Crash ->
      (* Power is gone: there is nobody left to run the abort. The
         transaction becomes a loser for restart to undo. *)
      raise Fault.Crash
    | exception e ->
      Txn.abort s.db.Db.txns txn;
      raise e);
    s.autocommit_count <- s.autocommit_count + 1

let cmd_stats s =
  let db = s.db in
  Printf.printf "tree   : height %d, %d leaves, %d physical entries\n" (Gist.height s.tree)
    (Gist.leaf_count s.tree) (Gist.entry_count s.tree);
  Printf.printf "pool   : %d hits, %d misses, %d evictions, %d I/Os under latches\n"
    (Buffer_pool.hits db.Db.pool) (Buffer_pool.misses db.Db.pool)
    (Buffer_pool.evictions db.Db.pool)
    (Buffer_pool.io_while_latched db.Db.pool);
  Printf.printf "log    : %d records (%d bytes), durable to %Ld, %d forces\n"
    (Log.appended db.Db.log) (Log.bytes_written db.Db.log) (Log.durable_lsn db.Db.log)
    (Log.forces db.Db.log);
  Printf.printf "locks  : %d waits, %d deadlocks\n"
    (Gist_txn.Lock_manager.blocked_count db.Db.locks)
    (Gist_txn.Lock_manager.deadlock_count db.Db.locks);
  Printf.printf "preds  : %d live predicates, %d attachments\n"
    (Gist_pred.Predicate_manager.total_predicates (Gist.predicate_manager s.tree))
    (Gist_pred.Predicate_manager.total_attachments (Gist.predicate_manager s.tree));
  let st = Gist.stats s.tree in
  Printf.printf
    "ops    : %d searches, %d inserts, %d deletes; %d splits, %d root grows,\n\
    \         %d BP updates, %d rightlink follows, %d GC'd entries,\n\
    \         %d node deletes, %d predicate blocks\n"
    st.Gist.searches st.Gist.inserts st.Gist.deletes st.Gist.splits st.Gist.root_grows
    st.Gist.bp_updates st.Gist.rightlink_follows st.Gist.gc_entries st.Gist.node_deletes
    st.Gist.pred_blocks;
  print_endline "metrics:";
  print_string (Metrics.render_text (Metrics.snapshot ()))

let cmd_trace_dump n =
  let entries = Trace.dump ?last:n () in
  List.iter (fun e -> Format.printf "%a@." Trace.pp_entry e) entries;
  Printf.printf "(%d events%s)\n" (List.length entries)
    (if Trace.enabled () then "" else "; tracing is off — 'trace on' to record")

(* Lose volatile state, run ARIES restart, re-open the tree. [db'] is the
   post-crash environment ([Db.crash] or [Fault.materialize_crash]). *)
let restart_session s db' =
  (match s.txn with
  | Some _ ->
    s.txn <- None;
    print_endline "(open transaction lost in the crash — it will be a loser)"
  | None -> ());
  let root = Gist.root s.tree in
  let t0 = Gist_util.Clock.now_ns () in
  Recovery.restart db' B.ext;
  s.db <- db';
  s.tree <- Gist.open_existing db' B.ext ~root ();
  Printf.printf "crashed and restarted in %.2f ms\n" (Gist_util.Clock.elapsed_s t0 *. 1000.0)

(* A fault point raised [Fault.Crash] out of a hook: materialize the power
   loss (keeping any ragged WAL tail the plan produced) and recover. *)
let crash_and_recover s =
  let db' =
    match s.fault with
    | Some ctl ->
      s.fault <- None;
      List.iter
        (fun (site, seq) -> Printf.printf "fault: %s event #%d fired — power loss\n" site seq)
        (Fault.fired ctl);
      Fault.materialize_crash ctl s.db
    | None -> Db.crash s.db
  in
  restart_session s db'

let site_of_string = function
  | "read" -> Some Fault.Disk_read
  | "write" -> Some Fault.Disk_write
  | "append" -> Some Fault.Wal_append
  | _ -> None

let arm_plan s plan desc =
  (match s.fault with
  | Some old ->
    Fault.disarm old;
    print_endline "(previous plan disarmed)"
  | None -> ());
  s.fault <- Some (Fault.arm ~disk:s.db.Db.disk ~log:s.db.Db.log plan);
  Printf.printf "armed: %s\n" desc

let with_site site k =
  match site_of_string site with
  | Some st -> k st
  | None -> Printf.printf "unknown site %S (read|write|append)\n" site

let cmd_fault_fuzz ~points ~seed =
  Printf.printf "crash-fuzz sweep: %d points, seed %d (fresh DBs; the session is untouched)\n"
    points seed;
  let summaries = Crash_fuzz.run_sweep ~seed ~points () in
  List.iter (fun sum -> Format.printf "%a@." Crash_fuzz.pp_summary sum) summaries;
  let bad = List.exists (fun sum -> sum.Crash_fuzz.violations <> []) summaries in
  print_endline (if bad then "ORACLE VIOLATIONS FOUND" else "all crash points recovered cleanly")

let dispatch s line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> ()
  | [ "help" ] -> help ()
  | [ "insert"; k ] ->
    let k = int_of_string k in
    with_txn s (fun txn -> Gist.insert s.tree txn ~key:(B.key k) ~rid:(Rid.make ~page:1 ~slot:k));
    Printf.printf "inserted %d\n" k
  | [ "delete"; k ] ->
    let k = int_of_string k in
    let found = ref false in
    with_txn s (fun txn ->
        found := Gist.delete s.tree txn ~key:(B.key k) ~rid:(Rid.make ~page:1 ~slot:k));
    Printf.printf "%s\n" (if !found then "deleted (logically)" else "not found")
  | [ "search"; lo; hi ] ->
    let lo = int_of_string lo and hi = int_of_string hi in
    let out = ref [] in
    with_txn s (fun txn ->
        out :=
          Gist.search s.tree txn (B.range lo hi)
          |> List.map (fun (k, _) -> B.key_value k)
          |> List.sort compare);
    Printf.printf "[%s] (%d keys)\n"
      (String.concat " " (List.map string_of_int !out))
      (List.length !out)
  | [ "count" ] ->
    let n = ref 0 in
    with_txn s (fun txn ->
        n := List.length (Gist.search s.tree txn (B.range min_int max_int)));
    Printf.printf "%d live keys\n" !n
  | [ "begin" ] -> (
    match s.txn with
    | Some _ -> print_endline "a transaction is already open"
    | None ->
      s.txn <- Some (Txn.begin_txn s.db.Db.txns);
      print_endline "transaction open")
  | [ "commit" ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn ->
      Txn.commit s.db.Db.txns txn;
      s.txn <- None;
      print_endline "committed")
  | [ "abort" ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn ->
      Txn.abort s.db.Db.txns txn;
      s.txn <- None;
      print_endline "aborted (rolled back via the log)")
  | [ "savepoint"; name ] -> (
    match s.txn with
    | None -> print_endline "savepoints need an open transaction"
    | Some txn ->
      Txn.savepoint s.db.Db.txns txn name;
      Printf.printf "savepoint %s set\n" name)
  | [ "rollback"; name ] -> (
    match s.txn with
    | None -> print_endline "no open transaction"
    | Some txn -> (
      match Txn.rollback_to_savepoint s.db.Db.txns txn name with
      | () -> Printf.printf "rolled back to %s\n" name
      | exception Not_found -> Printf.printf "unknown savepoint %s\n" name))
  | [ "vacuum" ] ->
    let before = Gist.entry_count s.tree in
    Gist.vacuum s.tree;
    Printf.printf "vacuum: %d -> %d physical entries, %d leaves\n" before
      (Gist.entry_count s.tree) (Gist.leaf_count s.tree)
  | [ "checkpoint" ] ->
    Db.checkpoint s.db;
    Printf.printf "checkpoint at LSN %Ld\n" (Log.anchor s.db.Db.log)
  | [ "flush" ] ->
    Buffer_pool.flush_all s.db.Db.pool;
    print_endline "all dirty pages flushed"
  | [ "crash" ] ->
    (match s.fault with
    | Some ctl ->
      Fault.disarm ctl;
      s.fault <- None;
      print_endline "(armed fault plan disarmed by the crash)"
    | None -> ());
    restart_session s (Db.crash s.db)
  | [ "fault"; "arm"; site; n ] ->
    with_site site (fun st ->
        let n = int_of_string n in
        arm_plan s (Fault.crash_after st n)
          (Printf.sprintf "power loss at %s event #%d" (Fault.site_name st) n))
  | [ "fault"; "torn"; n ] ->
    let n = int_of_string n in
    let keep = s.db.Db.config.Db.page_size / 2 in
    arm_plan s (Fault.torn_write_at n ~keep)
      (Printf.sprintf "torn write at disk.write event #%d (keep %d bytes), then power loss" n keep)
  | [ "fault"; "torn"; n; keep ] ->
    let n = int_of_string n and keep = int_of_string keep in
    arm_plan s (Fault.torn_write_at n ~keep)
      (Printf.sprintf "torn write at disk.write event #%d (keep %d bytes), then power loss" n keep)
  | [ "fault"; "ragged"; n ] ->
    let n = int_of_string n in
    arm_plan s (Fault.ragged_append_at n ~keep:9)
      (Printf.sprintf "power loss mid-append at wal.append event #%d (9-byte ragged tail)" n)
  | [ "fault"; "ragged"; n; keep ] ->
    let n = int_of_string n and keep = int_of_string keep in
    arm_plan s (Fault.ragged_append_at n ~keep)
      (Printf.sprintf "power loss mid-append at wal.append event #%d (%d-byte ragged tail)" n keep)
  | [ "fault"; "ioerr"; site; n ] ->
    with_site site (fun st ->
        let n = int_of_string n in
        arm_plan s [ { Fault.site = st; at = n; act = Fault.Io_error_once } ]
          (Printf.sprintf "transient I/O error at %s event #%d" (Fault.site_name st) n))
  | [ "fault"; "delay"; site; n; ms ] ->
    with_site site (fun st ->
        let n = int_of_string n and ms = int_of_string ms in
        arm_plan s [ { Fault.site = st; at = n; act = Fault.Delay_ns (ms * 1_000_000) } ]
          (Printf.sprintf "%dms latency spike at %s event #%d" ms (Fault.site_name st) n))
  | [ "fault"; "status" ] -> (
    match s.fault with
    | None -> print_endline "no fault plan armed"
    | Some ctl ->
      Printf.printf "events since arming: %d disk reads, %d disk writes, %d WAL appends\n"
        (Fault.events_seen ctl Fault.Disk_read)
        (Fault.events_seen ctl Fault.Disk_write)
        (Fault.events_seen ctl Fault.Wal_append);
      (match Fault.fired ctl with
      | [] -> print_endline "no point has fired yet"
      | fired ->
        List.iter (fun (site, seq) -> Printf.printf "fired: %s event #%d\n" site seq) fired))
  | [ "fault"; "disarm" ] -> (
    match s.fault with
    | None -> print_endline "no fault plan armed"
    | Some ctl ->
      Fault.disarm ctl;
      s.fault <- None;
      print_endline "disarmed")
  | [ "fault"; "fuzz" ] -> cmd_fault_fuzz ~points:40 ~seed:1
  | [ "fault"; "fuzz"; points ] -> cmd_fault_fuzz ~points:(int_of_string points) ~seed:1
  | [ "fault"; "fuzz"; points; seed ] ->
    cmd_fault_fuzz ~points:(int_of_string points) ~seed:(int_of_string seed)
  | [ "stats" ] -> cmd_stats s
  | [ "stats"; "json" ] -> print_endline (Metrics.render_json (Metrics.snapshot ()))
  | [ "trace"; "on" ] ->
    Trace.enable ();
    print_endline "tracing on"
  | [ "trace"; "off" ] ->
    Trace.disable ();
    print_endline "tracing off"
  | [ "trace"; "dump" ] -> cmd_trace_dump None
  | [ "trace"; "dump"; n ] -> cmd_trace_dump (Some (int_of_string n))
  | [ "trace"; "clear" ] ->
    Trace.clear ();
    print_endline "trace buffer cleared"
  | [ "check" ] ->
    let report = Tree_check.check s.tree in
    Format.printf "%a@." Tree_check.pp report
  | [ "quit" ] | [ "exit" ] -> raise Exit
  | words -> Printf.printf "unknown command %S (try 'help')\n" (String.concat " " words)

let () =
  (* Full-page writes on, so a 'fault torn' crash is repairable from a
     logged page image rather than zeroing the mangled page. *)
  let db = Db.create ~config:{ Db.default_config with Db.full_page_writes = true } () in
  let tree = Gist.create db B.ext ~empty_bp:B.Empty () in
  let s = { db; tree; txn = None; autocommit_count = 0; fault = None } in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "gist_shell — a transactional, recoverable B-tree GiST (type 'help')";
    print_string "> "
  end;
  (try
     while true do
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line ->
         (try dispatch s line with
         | Exit -> raise Exit
         | Fault.Crash -> crash_and_recover s
         | Fault.Io_error ->
           print_endline "I/O error (injected, transient): the operation failed; retry it"
         | Gist_txn.Lock_manager.Deadlock _ -> print_endline "deadlock: operation aborted"
         | Failure m | Invalid_argument m -> Printf.printf "error: %s\n" m);
         if interactive then print_string "> "
     done
   with Exit -> ());
  (match s.txn with Some txn -> Txn.abort s.db.Db.txns txn | None -> ());
  if interactive then print_endline "bye"
