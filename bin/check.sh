#!/bin/sh
# CI-style gate: everything builds, all tests pass, docs build cleanly.
# Run from the repo root: ./bin/check.sh
#
# FUZZ_POINTS tunes the crash-fuzz sweep's point budget (default 200;
# CI raises it — see .github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

FUZZ_POINTS="${FUZZ_POINTS:-200}"
export FUZZ_POINTS

echo "== dune build @all =="
dune build @all

echo "== dune runtest (FUZZ_POINTS=$FUZZ_POINTS) =="
dune runtest

echo "== dune build @doc =="
dune build @doc

echo "check.sh: all green"
