#!/bin/sh
# CI-style gate: everything builds, all tests pass, docs build cleanly.
# Run from the repo root: ./bin/check.sh
#
# FUZZ_POINTS tunes the crash-fuzz sweeps' point budget (default 200;
# CI raises it — see .github/workflows/ci.yml). The same budget covers
# the plain sweep (test/test_fault.ml), the background-writer sweep
# (test/test_eviction.ml), which re-runs every fault mode with the
# writer/checkpointer domain and prefetch racing the crash point, and
# the snapshot-reader sweep (test/test_mvcc.ml), which re-runs every
# fault mode with a lock-free MVCC reader domain racing the crash point.
#
# --force-restarts additionally runs the OLC forced-restart stress cases
# (test/test_olc.ml reads OLC_FORCE_RESTARTS): a writer domain repeatedly
# X-latches the root so optimistic visits must exercise the
# restart/fallback machinery, not just the happy path.
set -eu

cd "$(dirname "$0")/.."

FUZZ_POINTS="${FUZZ_POINTS:-200}"
export FUZZ_POINTS

for arg in "$@"; do
  case "$arg" in
    --force-restarts)
      OLC_FORCE_RESTARTS=1
      export OLC_FORCE_RESTARTS
      echo "(forced-restart OLC stress enabled)"
      ;;
    *)
      echo "check.sh: unknown argument: $arg" >&2
      echo "usage: ./bin/check.sh [--force-restarts]" >&2
      exit 2
      ;;
  esac
done

echo "== dune build @all =="
dune build @all

echo "== dune runtest (FUZZ_POINTS=$FUZZ_POINTS) =="
dune runtest

echo "== dune build @doc =="
dune build @doc

echo "check.sh: all green"
