#!/bin/sh
# CI-style gate: everything builds, all tests pass, docs build cleanly.
# Run from the repo root: ./bin/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== dune build @doc =="
dune build @doc

echo "check.sh: all green"
